"""Setuptools shim.

The execution environment has no network and no ``wheel`` package, so PEP-517
editable installs (which must build a wheel) cannot work.  Keeping a
``setup.py`` and omitting the ``[build-system]`` table from ``pyproject.toml``
makes ``pip install -e .`` take the legacy ``setup.py develop`` path, which
needs only setuptools.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    description=(
        "Reproduction of 'A Scientific Data Management System for Irregular "
        "Applications' (IPPS 2001): SDM on a simulated MPI/MPI-IO/parallel-FS/"
        "metadata-DB stack"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
