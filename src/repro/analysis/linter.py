"""Driving the rules over files: suppressions, baseline, aggregation.

Precedence for each raw finding:

1. An inline ``# spmdlint: ok(<rule>) <reason>`` on the finding's line
   or its governing statement's line, with a matching rule (or ``all``)
   and a non-empty reason, *suppresses* it.  A matching suppression with
   an empty reason does NOT suppress — and is itself reported as
   ``bad-suppression``.
2. A fingerprint present in the baseline file makes the finding *known*
   (reported but not failing).  Baseline entries carry a count, so a
   second new instance of an already-baselined pattern still fails.
3. Everything else is a *new* finding: ``lint_paths(...)`` callers (the
   CLI, ``make lint``) fail the build on any.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.findings import (
    Finding,
    find_suppressions,
    load_baseline,
)
from repro.analysis.rules import RULES, check_module

__all__ = ["LintResult", "lint_source", "lint_paths"]


@dataclass
class LintResult:
    """Outcome of linting one or more files."""

    findings: List[Finding] = field(default_factory=list)
    """New findings — unsuppressed and not in the baseline; any of these
    should fail the build."""

    baselined: List[Finding] = field(default_factory=list)
    """Findings matched (by fingerprint) against the committed baseline."""

    suppressed: List[Finding] = field(default_factory=list)
    """Findings silenced by a justified inline suppression."""

    files: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def extend(self, other: "LintResult") -> None:
        self.findings.extend(other.findings)
        self.baselined.extend(other.baselined)
        self.suppressed.extend(other.suppressed)
        self.files += other.files


def lint_source(
    source: str,
    path: str,
    baseline: Optional[Dict[str, int]] = None,
) -> LintResult:
    """Lint one file's source text."""
    tree = ast.parse(source, filename=path)
    raw = check_module(tree, path)
    sups = find_suppressions(source)
    result = LintResult(files=1)

    candidates: List[Finding] = []
    for f in raw:
        # A suppression may sit on the finding line, on the governing
        # statement's line, or on the line directly above either
        # (disable-next style, for lines with no room for a trailer).
        s = (
            sups.get(f.line)
            or sups.get(f.stmt_line)
            or sups.get(f.line - 1)
            or sups.get(f.stmt_line - 1)
        )
        if s is not None and s.rule in (f.rule, f.code, "all"):
            s.used = True
            if s.valid:
                result.suppressed.append(f)
                continue
            # Reasonless suppression: the finding stands (and the
            # comment itself is flagged below).
        candidates.append(f)

    for line in sorted(sups):
        s = sups[line]
        if not s.valid:
            candidates.append(
                Finding(
                    rule="bad-suppression",
                    code=RULES["bad-suppression"][0],
                    path=path,
                    line=line,
                    stmt_line=line,
                    func="<comment>",
                    op=s.rule,
                    message=(
                        f"suppression `ok({s.rule})` has no justification; "
                        f"write `# spmdlint: ok({s.rule}) <why this is safe>`"
                    ),
                )
            )

    remaining = dict(baseline or {})
    for f in candidates:
        if remaining.get(f.fingerprint, 0) > 0:
            remaining[f.fingerprint] -= 1
            result.baselined.append(f)
        else:
            result.findings.append(f)
    return result


def _iter_py_files(paths: Sequence[str]) -> List[str]:
    out: List[str] = []
    for p in paths:
        if os.path.isdir(p):
            for dirpath, dirnames, filenames in os.walk(p):
                dirnames[:] = sorted(
                    d for d in dirnames if d != "__pycache__"
                )
                for fn in sorted(filenames):
                    if fn.endswith(".py"):
                        out.append(os.path.join(dirpath, fn))
        elif p.endswith(".py"):
            out.append(p)
    return out


def lint_paths(
    paths: Sequence[str],
    baseline_path: Optional[str] = None,
) -> LintResult:
    """Lint every ``.py`` file under the given files/directories."""
    baseline = load_baseline(baseline_path) if baseline_path else {}
    result = LintResult()
    for path in _iter_py_files(paths):
        with open(path, "r", encoding="utf-8") as fh:
            source = fh.read()
        result.extend(lint_source(source, path.replace(os.sep, "/"), baseline))
    return result
