"""Rendering findings — static and runtime — in one house style.

Static findings print as ``path:line: CODE [rule] message``; runtime
mismatches print the same way, synthesized from the two
:class:`~repro.simt.trace.CollectiveSignature` records that disagreed,
so a ``SPMD_VERIFY`` failure reads like a lint finding with both ranks'
call sites attached.  :func:`format_trace_collectives` is the
``trace → lint finding`` pretty-printer: it renders a recorded
collective timeline (e.g. from a failing job's trace) for side-by-side
comparison of what each rank actually issued.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.analysis.findings import Finding
from repro.simt.trace import CollectiveSignature, Trace

__all__ = [
    "format_finding",
    "format_runtime_mismatch",
    "format_trace_collectives",
]


def format_finding(f: Finding) -> str:
    """``src/repro/x.py:42: SPMD001 [rank-branch] ... (in func)``"""
    where = f" (in {f.func})" if f.func and f.func != "<module>" else ""
    return f"{f.path}:{f.line}: {f.code} [{f.rule}] {f.message}{where}"


def format_runtime_mismatch(
    ref: CollectiveSignature, sig: CollectiveSignature, reason: str
) -> str:
    """Render a signature disagreement with both ranks' call sites."""
    return (
        f"SPMD-RT [collective-mismatch] {reason} on communicator context "
        f"{ref.ctx} (collective #{ref.seq}): "
        f"rank {ref.rank} called {ref.describe()} at {ref.site}; "
        f"rank {sig.rank} called {sig.describe()} at {sig.site}"
    )


def format_trace_collectives(
    trace: "Trace | Iterable[CollectiveSignature]",
) -> str:
    """Pretty-print a recorded collective timeline, one line per entry.

    Accepts a :class:`~repro.simt.trace.Trace` (uses its ``collective``
    records) or any iterable of signatures.  Lines are ordered as
    recorded, so interleavings across ranks are visible::

        rank0  #1 ctx=0 barrier() at driver.py:10 in main
        rank1  #1 ctx=0 allgather() at driver.py:14 in main
    """
    sigs: List[CollectiveSignature]
    if isinstance(trace, Trace):
        sigs = trace.collectives()
    else:
        sigs = list(trace)
    if not sigs:
        return "(no collective records — was SPMD_VERIFY/tracing enabled?)"
    lines = []
    for s in sigs:
        site = f" at {s.site}" if s.site else ""
        lines.append(
            f"rank{s.rank}  #{s.seq} ctx={s.ctx} {s.describe()}{site}"
        )
    return "\n".join(lines)
