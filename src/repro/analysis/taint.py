"""Rank-dependence taint: which values (and branches) differ across ranks.

The pass is a single flow-sensitive forward walk over one function body.
Taint *sources* are the syntactic spellings of "my rank": an attribute
access ``<x>.rank`` / ``<x>._rank``, a bare name ``rank`` (SPMD functions
here pass the rank around under that name), and ``Get_rank()`` calls.
Taint propagates through assignment; it is *laundered* by assignment from
a uniform-result collective (``x = comm.bcast(x, root=0)`` makes ``x``
identical on every rank, however rank-dependent it was before — exactly
the rank-0-computes-then-broadcasts idiom this codebase uses everywhere).
Names assigned under a rank-dependent branch are tainted too (implicit
flow: ``flag`` in ``if comm.rank == 0: flag = True`` differs across
ranks), and per-rank collectives (gather, scatter, scan, exscan, reduce)
taint their results.

The pass records, for every ``if``/``while``/``for`` it sees, whether the
controlling expression was rank-dependent at that point — the facts the
rule checkers in :mod:`repro.analysis.rules` consume.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set

from repro.analysis.catalog import match_call

__all__ = ["TaintPass", "RANK_ATTRS", "RANK_NAMES"]

RANK_ATTRS = {"rank", "_rank"}
"""Attribute names that read this rank's identity (``comm.rank``,
``ctx.rank``, ``self._rank``)."""

RANK_NAMES = {"rank", "my_rank", "myid"}
"""Bare names conventionally holding this rank's identity."""


class TaintPass:
    """One function's rank-taint facts (run :meth:`run` once)."""

    def __init__(self) -> None:
        self.tainted: Set[str] = set()
        self.static_len: Set[str] = set()
        """Names currently bound to a list/tuple *literal*: their length
        — hence a loop's trip count — is rank-independent even when the
        elements are rank-dependent data."""
        self.rank_dep: Dict[ast.AST, bool] = {}
        """Control statements (If/While/For) -> was the controlling
        expression rank-dependent when execution reached it."""

    # ------------------------------------------------------------------
    # Expression taint
    # ------------------------------------------------------------------

    def expr_tainted(self, node: ast.AST) -> bool:
        """Does evaluating this expression yield a rank-dependent value?"""
        if isinstance(node, ast.Call):
            spec = match_call(node)
            if spec is not None:
                if spec.uniform_result:
                    # The collective's result is identical on all ranks,
                    # whatever its arguments were: taint is laundered.
                    return False
                # Per-rank collective results (gather/scatter/scan/...)
                # are rank-dependent by construction.
                return True
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "Get_rank"
            ):
                return True
            return any(
                self.expr_tainted(c) for c in ast.iter_child_nodes(node)
            )
        if isinstance(node, ast.Attribute) and node.attr in RANK_ATTRS:
            return True
        if isinstance(node, ast.Name):
            return node.id in RANK_NAMES or node.id in self.tainted
        return any(self.expr_tainted(c) for c in ast.iter_child_nodes(node))

    # ------------------------------------------------------------------
    # Statement walk
    # ------------------------------------------------------------------

    def run(self, fn: ast.AST) -> "TaintPass":
        """Analyze one function (or a module treated as one body)."""
        args = getattr(fn, "args", None)
        if args is not None:
            for a in (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            ):
                if a.arg in RANK_NAMES:
                    self.tainted.add(a.arg)
        self._block(fn.body, implicit=False)
        return self

    def _assign_names(self, target: ast.AST, out: List[str]) -> None:
        if isinstance(target, ast.Name):
            out.append(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign_names(elt, out)
        elif isinstance(target, ast.Starred):
            self._assign_names(target.value, out)
        # Attribute/Subscript targets are not tracked (no object model).

    def _bind(self, targets: List[ast.AST], value_tainted: bool, implicit: bool) -> None:
        names: List[str] = []
        for t in targets:
            self._assign_names(t, names)
        for name in names:
            self.static_len.discard(name)
            if value_tainted or implicit:
                self.tainted.add(name)
            elif name not in RANK_NAMES:
                # A clean unconditional reassignment launders the name.
                self.tainted.discard(name)

    def _block(self, stmts: List[ast.stmt], implicit: bool) -> None:
        for s in stmts:
            if isinstance(s, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                value = s.value
                if value is None:  # bare annotation
                    continue
                if (
                    isinstance(s, ast.Assign)
                    and len(s.targets) == 1
                    and isinstance(s.targets[0], (ast.Tuple, ast.List))
                    and isinstance(value, (ast.Tuple, ast.List))
                    and len(s.targets[0].elts) == len(value.elts)
                    and not any(
                        isinstance(e, ast.Starred) for e in s.targets[0].elts
                    )
                ):
                    # ``rank, size = ctx.rank, ctx.size`` — match
                    # elementwise so the clean elements stay clean.
                    for tgt, val in zip(s.targets[0].elts, value.elts):
                        self._bind([tgt], self.expr_tainted(val), implicit)
                    continue
                vt = self.expr_tainted(value)
                if isinstance(s, ast.Assign):
                    self._bind(list(s.targets), vt, implicit)
                    if (
                        not implicit
                        and len(s.targets) == 1
                        and isinstance(s.targets[0], ast.Name)
                        and isinstance(value, (ast.List, ast.Tuple))
                    ):
                        self.static_len.add(s.targets[0].id)
                elif isinstance(s, ast.AnnAssign):
                    self._bind([s.target], vt, implicit)
                else:  # AugAssign: old value feeds the new one
                    old = self.expr_tainted(s.target)
                    self._bind([s.target], vt or old, implicit)
            elif isinstance(s, ast.If):
                dep = self.expr_tainted(s.test)
                self.rank_dep[s] = dep
                self._block(s.body, implicit or dep)
                self._block(s.orelse, implicit or dep)
            elif isinstance(s, ast.While):
                dep = self.expr_tainted(s.test)
                self.rank_dep[s] = dep
                self._block(s.body, implicit or dep)
                self._block(s.orelse, implicit)
            elif isinstance(s, (ast.For, ast.AsyncFor)):
                if isinstance(s.iter, (ast.List, ast.Tuple)):
                    # Literal sequence: the *trip count* is static even
                    # if the elements are rank-dependent data.
                    dep = False
                    elt_taint = any(
                        self.expr_tainted(e) for e in s.iter.elts
                    )
                elif (
                    isinstance(s.iter, ast.Name)
                    and s.iter.id in self.static_len
                ):
                    dep = False
                    elt_taint = s.iter.id in self.tainted
                else:
                    dep = self.expr_tainted(s.iter)
                    elt_taint = dep
                self.rank_dep[s] = dep
                self._bind([s.target], elt_taint, implicit)
                self._block(s.body, implicit or dep)
                self._block(s.orelse, implicit)
            elif isinstance(s, (ast.With, ast.AsyncWith)):
                for item in s.items:
                    if item.optional_vars is not None:
                        self._bind(
                            [item.optional_vars],
                            self.expr_tainted(item.context_expr),
                            implicit,
                        )
                self._block(s.body, implicit)
            elif isinstance(s, ast.Try):
                self._block(s.body, implicit)
                for h in s.handlers:
                    self._block(h.body, implicit)
                self._block(s.orelse, implicit)
                self._block(s.finalbody, implicit)
            elif isinstance(s, ast.Match):
                subj = self.expr_tainted(s.subject)
                for case in s.cases:
                    self._block(case.body, implicit or subj)
            # Nested function/class definitions are analyzed separately
            # (taint does not cross function boundaries); other statements
            # (Expr, Return, Raise, Pass, ...) neither bind nor branch.
