"""The catalog of collective entry points spmdlint knows about.

A *collective* here is any call that every rank of a communicator must
make, in the same program order, for the program to be correct: the
``Communicator`` collectives themselves, the ``File`` collective I/O
methods (two-phase open/read/write), the transport-level two-phase ops,
and the SDM-layer helpers that are documented "Collective" (they contain
collectives on every path, so a call site is collective-in-shape).

Matching is syntactic — by method/function name, with a receiver-text
guard for names too generic to match bare (``reduce`` must be called on
something communicator-ish, ``write`` on an ``sdm``-ish receiver) and a
blanket exclusion for numpy receivers (``np.maximum.reduce`` is not MPI).
The catalog also records the facts the taint pass and the runtime
verifier need: whether the call's *result* is identical on every rank
(``uniform_result`` — assigning from such a call launders rank taint),
which argument names the root, and whether the op's payload must have
the same shape on every rank (the reduce family).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = ["CollectiveSpec", "CATALOG", "match_call", "receiver_text"]


@dataclass(frozen=True)
class CollectiveSpec:
    """Static facts about one collective entry point."""

    op: str
    """Canonical op label (what findings and signatures report)."""

    uniform_result: bool = False
    """True when the call returns the same value on every rank (bcast,
    allreduce, allgather, barrier, and the bcast-fronted SDM helpers) —
    assignment from such a call *launders* rank taint."""

    root_arg: Optional[Tuple[int, str]] = None
    """(positional index, keyword name) of the root rank, if any."""

    uniform_shape: bool = False
    """True when all ranks must contribute payloads of identical
    dtype/count (the reduce family); the runtime verifier enforces it."""

    receivers: Optional[Tuple[str, ...]] = None
    """Receiver-text guard for generic names: ``"comm"`` matches a
    receiver named exactly ``comm`` or ending in ``.comm`` (likewise
    ``"sdm"``); an exact string such as ``"File"`` matches literally.
    None accepts any receiver (including bare-name calls)."""


_COMMISH = ("comm",)
_SDMISH = ("sdm",)

CATALOG: Dict[str, CollectiveSpec] = {
    # ------------------------------------------------- Communicator ----
    "barrier": CollectiveSpec("barrier", uniform_result=True),
    "bcast": CollectiveSpec("bcast", uniform_result=True, root_arg=(1, "root")),
    "reduce": CollectiveSpec(
        "reduce", root_arg=(2, "root"), uniform_shape=True, receivers=_COMMISH
    ),
    "allreduce": CollectiveSpec(
        "allreduce", uniform_result=True, uniform_shape=True
    ),
    "scan": CollectiveSpec("scan", uniform_shape=True, receivers=_COMMISH),
    "exscan": CollectiveSpec("exscan", uniform_shape=True),
    "gather": CollectiveSpec("gather", root_arg=(1, "root")),
    "allgather": CollectiveSpec("allgather", uniform_result=True),
    "scatter": CollectiveSpec("scatter", root_arg=(1, "root")),
    "alltoall": CollectiveSpec("alltoall"),
    "alltoallv": CollectiveSpec("alltoallv"),
    "ring_shift": CollectiveSpec("ring_shift"),
    "split": CollectiveSpec("split", receivers=_COMMISH),
    "dup": CollectiveSpec("dup", receivers=_COMMISH),
    # ------------------------------------------------- mpiio.File ------
    # Collective opens return matching per-rank handles on one shared
    # file: the *handle* is uniform in the sense the taint pass cares
    # about (all ranks' copies name the same collective context).
    "open": CollectiveSpec("File.open", uniform_result=True, receivers=("File",)),
    "read_at_all": CollectiveSpec("read_at_all"),
    "write_at_all": CollectiveSpec("write_at_all"),
    "read_all": CollectiveSpec("read_all"),
    "write_all": CollectiveSpec("write_all"),
    "read_runs_at_all": CollectiveSpec("read_runs_at_all"),
    "write_runs_at_all": CollectiveSpec("write_runs_at_all"),
    "close_all": CollectiveSpec("close_all", uniform_result=True),
    "_open_cached": CollectiveSpec("open_cached", uniform_result=True),
    "_close_cached": CollectiveSpec("close_cached", uniform_result=True),
    # ------------------------------------- two-phase transport ops -----
    "collective_read": CollectiveSpec("collective_read"),
    "collective_write": CollectiveSpec("collective_write"),
    # ------------------------------------------- SDM-layer helpers -----
    # Documented-collective functions: every rank reaches the same
    # collectives inside, so their *call sites* are collective-in-shape.
    "locate_instance": CollectiveSpec("locate_instance", uniform_result=True),
    "read_instance": CollectiveSpec("read_instance"),
    # Collective index resolution: block→rank dealing over alltoallv;
    # every rank of the file's communicator must call it (empty-wanted
    # ranks participate with empty requests).
    "resolve_chunk_positions": CollectiveSpec("resolve_chunk_positions"),
    "execute_reorganize": CollectiveSpec("execute_reorganize"),
    "compact_chunked_file": CollectiveSpec(
        "compact_chunked_file", uniform_result=True
    ),
    # The flip lease is bcast-fronted: rank 0 runs the insert-then-verify
    # protocol and every rank symmetrically succeeds or raises
    # SDMLeaseConflict, so the call site is collective-in-shape and its
    # (None-or-raise) outcome is uniform.
    "acquire_file_lease": CollectiveSpec(
        "acquire_file_lease", uniform_result=True
    ),
    "register_history_async": CollectiveSpec("register_history_async"),
    "try_load_history": CollectiveSpec("try_load_history"),
    "ring_partition_index": CollectiveSpec("ring_partition_index"),
    "_next_append_base": CollectiveSpec("next_append_base", uniform_result=True),
    "_reorganize": CollectiveSpec("reorganize"),
    # SDM methods (receiver-guarded: the names are too generic bare).
    # ``write``/``reorganize``/``compact`` return the file name — the
    # same on every rank — so they launder taint; ``read`` returns this
    # rank's buffer and does not.
    "write": CollectiveSpec("sdm.write", uniform_result=True, receivers=_SDMISH),
    "read": CollectiveSpec("sdm.read", receivers=_SDMISH),
    "reorganize": CollectiveSpec(
        "sdm.reorganize", uniform_result=True, receivers=_SDMISH
    ),
    "compact": CollectiveSpec(
        "sdm.compact", uniform_result=True, receivers=_SDMISH
    ),
    # The fragmentation watcher is bcast-fronted: rank 0 evaluates the
    # hysteresis trigger against extent_table, every rank receives the
    # boolean, and a firing observation enqueues one background
    # compaction on all ranks — collective-in-shape, uniform (None)
    # result.  Receiver-guarded like the other SDM methods, plus the
    # ``self`` receiver of SDM's own internal call sites.
    "_maybe_autocompact": CollectiveSpec(
        "sdm.autocompact", uniform_result=True,
        receivers=_SDMISH + ("self",),
    ),
    "finalize": CollectiveSpec(
        "sdm.finalize", uniform_result=True, receivers=_SDMISH
    ),
    "set_attributes": CollectiveSpec(
        "sdm.set_attributes", uniform_result=True, receivers=_SDMISH
    ),
    "index_registry": CollectiveSpec("sdm.index_registry", receivers=_SDMISH),
    "import_index": CollectiveSpec(
        "sdm.import_index", uniform_result=False, receivers=_SDMISH
    ),
    "import_contiguous": CollectiveSpec("sdm.import_contiguous", receivers=_SDMISH),
    "import_irregular": CollectiveSpec("sdm.import_irregular", receivers=_SDMISH),
    "partition_index": CollectiveSpec("sdm.partition_index", receivers=_SDMISH),
    # SDMCatalog snapshot lifecycle (receiver-guarded: both names are far
    # too generic bare).  attach pins via a bcast — uniform handle;
    # release is barrier-backed.
    "attach": CollectiveSpec(
        "catalog.attach", uniform_result=True, receivers=("SDMCatalog",)
    ),
    "release": CollectiveSpec(
        "catalog.release", uniform_result=True, receivers=("catalog",)
    ),
}

_NUMPY_PREFIXES = ("np.", "numpy.")


def receiver_text(call: ast.Call) -> str:
    """Source text of the receiver (empty for bare-name calls)."""
    if isinstance(call.func, ast.Attribute):
        try:
            return ast.unparse(call.func.value)
        except Exception:  # pragma: no cover - unparse is total on 3.9+
            return "<?>"
    return ""


def _receiver_ok(recv: str, guards: Optional[Tuple[str, ...]]) -> bool:
    if guards is None:
        return True
    for g in guards:
        if recv == g or recv.endswith("." + g):
            return True
    return False


def match_call(call: ast.Call) -> Optional[CollectiveSpec]:
    """The catalog entry a call matches, or None.

    Numpy-rooted receivers never match (``np.maximum.reduce`` etc.), and
    receiver-guarded names match only communicator-/SDM-ish receivers.
    """
    func = call.func
    if isinstance(func, ast.Attribute):
        name = func.attr
        recv = receiver_text(call)
        if recv.startswith(_NUMPY_PREFIXES) or recv in ("np", "numpy"):
            return None
    elif isinstance(func, ast.Name):
        name = func.id
        recv = ""
    else:
        return None
    spec = CATALOG.get(name)
    if spec is None or not _receiver_ok(recv, spec.receivers):
        return None
    return spec
