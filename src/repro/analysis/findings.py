"""Findings, inline suppressions, and the committed baseline.

A :class:`Finding` is one rule violation, anchored to the collective call
(or early exit) that triggered it.  Two escape hatches keep the linter
usable while the codebase converges:

* **Inline suppression** — ``# spmdlint: ok(<rule>) <reason>`` on the
  finding's line, on the governing statement's first line, or on the
  line directly above either.  The reason is mandatory: a suppression
  without one is itself reported (rule ``bad-suppression``), so every
  accepted divergence carries its justification in the source.
* **Baseline** — a committed text file of finding fingerprints (stable
  across line-number churn).  Findings in the baseline are reported as
  known; only *new* findings fail the build.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List

__all__ = [
    "Finding",
    "Suppression",
    "find_suppressions",
    "load_baseline",
    "save_baseline",
]

_SUPPRESS_RE = re.compile(
    r"#\s*spmdlint:\s*ok\(\s*(?P<rule>[\w-]+)\s*\)\s*(?P<reason>.*)$"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation in one function."""

    rule: str
    """Rule slug (``rank-branch``, ``rank-loop``, ``early-exit``,
    ``comm-mismatch``, ``bad-suppression``)."""

    code: str
    """Stable code (``SPMD001``...)."""

    path: str
    """File the finding is in (as given to the linter)."""

    line: int
    """Line of the offending collective call / return / raise."""

    stmt_line: int
    """Line of the governing statement (the ``if``/``for``/``while``) —
    a suppression comment on either line silences the finding."""

    func: str
    """Enclosing function (``<module>`` for top-level code)."""

    op: str
    """Collective op involved (empty for bad-suppression)."""

    message: str

    @property
    def fingerprint(self) -> str:
        """Line-number-free identity used by the baseline file."""
        return f"{self.path}::{self.func}::{self.rule}::{self.op}"


@dataclass
class Suppression:
    """One inline ``# spmdlint: ok(...)`` comment."""

    rule: str
    reason: str
    line: int
    used: bool = field(default=False)

    @property
    def valid(self) -> bool:
        """Suppressions must carry a non-empty justification."""
        return bool(self.reason.strip())


def find_suppressions(source: str) -> Dict[int, Suppression]:
    """All inline suppressions in a file, keyed by line number."""
    out: Dict[int, Suppression] = {}
    for i, text in enumerate(source.splitlines(), start=1):
        m = _SUPPRESS_RE.search(text)
        if m:
            out[i] = Suppression(
                rule=m.group("rule"), reason=m.group("reason").strip(), line=i
            )
    return out


def load_baseline(path: str) -> Dict[str, int]:
    """Fingerprint -> allowed count.  A missing file is an empty baseline."""
    counts: Dict[str, int] = {}
    try:
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
    except FileNotFoundError:
        return counts
    for raw in lines:
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fingerprint, _, n = line.rpartition(" ")
        if fingerprint and n.isdigit():
            counts[fingerprint] = counts.get(fingerprint, 0) + int(n)
        else:
            counts[line] = counts.get(line, 0) + 1
    return counts


def save_baseline(path: str, findings: List[Finding]) -> None:
    """Write the baseline for the given (unsuppressed) findings."""
    counts: Dict[str, int] = {}
    for f in findings:
        counts[f.fingerprint] = counts.get(f.fingerprint, 0) + 1
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("# spmdlint baseline: known findings, one fingerprint per line\n")
        fh.write("# (regenerate with: python -m repro.analysis --write-baseline)\n")
        for fp in sorted(counts):
            fh.write(f"{fp} {counts[fp]}\n")
