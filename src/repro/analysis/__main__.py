"""Command-line entry point: ``python -m repro.analysis [paths...]``.

Exit status 0 when no *new* findings (suppressed and baselined ones are
reported informationally); 1 otherwise.  ``make lint`` runs this over
``src/repro`` with the committed ``spmdlint.baseline``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.findings import save_baseline
from repro.analysis.linter import lint_paths
from repro.analysis.report import format_finding

DEFAULT_PATHS = ["src/repro"]
DEFAULT_BASELINE = "spmdlint.baseline"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "spmdlint: flag collectives reachable on only some ranks' "
            "paths (see docs/analysis.md for the rules)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=DEFAULT_PATHS,
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help="baseline file of known finding fingerprints "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: report every finding as new",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline to accept all current findings",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="print only new findings and the final summary line",
    )
    args = parser.parse_args(argv)

    baseline_path = None if args.no_baseline else args.baseline
    result = lint_paths(args.paths, baseline_path=baseline_path)

    if not args.quiet:
        for f in result.suppressed:
            print(f"suppressed: {format_finding(f)}")
        for f in result.baselined:
            print(f"baseline:   {format_finding(f)}")
    for f in result.findings:
        print(format_finding(f))

    if args.write_baseline:
        save_baseline(args.baseline, result.findings + result.baselined)
        print(
            f"wrote {args.baseline}: "
            f"{len(result.findings) + len(result.baselined)} finding(s)"
        )
        return 0

    print(
        f"spmdlint: {result.files} file(s), "
        f"{len(result.findings)} new finding(s), "
        f"{len(result.baselined)} baselined, "
        f"{len(result.suppressed)} suppressed"
    )
    return 1 if result.findings else 0


if __name__ == "__main__":
    sys.exit(main())
