"""The ``SPMD_VERIFY=1`` runtime collective-sequence sanitizer.

The static linter sees one function at a time; this verifier sees the
whole job.  When enabled (``SPMD_VERIFY=1`` in the environment at
:func:`~repro.mpi.job.mpirun` time), every :class:`Communicator`
rendezvous deposits a :class:`~repro.simt.trace.CollectiveSignature`
here before parking:

* **At each site** — the first arriver's signature is the reference; any
  later rank disagreeing on op kind or root, or (for the reduce family,
  whose payloads must fold elementwise) on dtype/count, fails *fast*
  with both ranks' call sites.  This catches e.g. the silent
  list-concatenation hazard: ``allreduce([0]*4)`` meeting
  ``allreduce([0]*3)`` would otherwise "succeed" with a 7-element sum.
* **At deadlock** — the verifier registers a reporter with the
  simulator, so an all-ranks-blocked deadlock report includes each
  actor's pending collective and its last few completed ops instead of
  just ``rank1[coll:barrier]``.
* **At job end** — :meth:`SPMDVerifier.final_check` compares every
  rank's per-context sequence (count + rolling hash over op/root): a
  rank that silently issued an extra collective on some context that
  happened never to rendezvous (size-1 communicators, daemon helpers)
  is still caught.

When the flag is off, ``transport.verifier`` is ``None`` and the hot
path pays exactly one attribute test — nothing is recorded, counted, or
allocated (asserted by the overhead test in
``tests/analysis/test_verify_runtime.py``).
"""

from __future__ import annotations

import os
import sys
from collections import deque
from typing import Any, Deque, Dict, Optional, Tuple

from repro.errors import SPMDVerificationError
from repro.simt.trace import COLLECTIVE, CollectiveSignature, Trace

__all__ = ["SPMDVerifier", "spmd_verify_enabled", "payload_signature"]

#: Ops whose payloads fold elementwise — every rank must contribute the
#: same dtype/count (bcast/gather/scatter legitimately differ per rank).
UNIFORM_SHAPE_OPS = frozenset({"allreduce", "reduce", "scan", "exscan"})

_ENV_FLAG = "SPMD_VERIFY"

_INTERNAL_FRAMES = ("communicator.py", "verifier.py")


def spmd_verify_enabled() -> bool:
    """Is the runtime sanitizer requested via ``SPMD_VERIFY``?"""
    return os.environ.get(_ENV_FLAG, "").strip() not in ("", "0", "false", "no")


def payload_signature(payload: Any) -> Tuple[str, int]:
    """(dtype, count) summary of a collective payload.

    ``count`` is -1 for payloads with no meaningful element count (None,
    opaque objects); dtype is a best-effort type label.  Numpy arrays
    are handled duck-typed so the module never imports numpy itself.
    """
    if payload is None:
        return ("", -1)
    dt = getattr(payload, "dtype", None)
    sz = getattr(payload, "size", None)
    if dt is not None and isinstance(sz, int):  # ndarray-like
        return (str(dt), sz)
    if isinstance(payload, (list, tuple)):
        inner = type(payload[0]).__name__ if payload else ""
        return (f"{type(payload).__name__}[{inner}]", len(payload))
    if isinstance(payload, (bytes, bytearray)):
        return (type(payload).__name__, len(payload))
    if isinstance(payload, (int, float, bool, str)):
        return (type(payload).__name__, 1)
    if isinstance(payload, dict):
        return ("dict", len(payload))
    return (type(payload).__name__, -1)


def call_site() -> str:
    """First stack frame outside the MPI/verifier internals."""
    f = sys._getframe(1)
    while f is not None:
        name = os.path.basename(f.f_code.co_filename)
        if name not in _INTERNAL_FRAMES:
            return f"{name}:{f.f_lineno} in {f.f_code.co_name}"
        f = f.f_back
    return "<unknown>"


class SPMDVerifier:
    """Cross-validates per-rank collective signatures for one job."""

    def __init__(self, nprocs: int, trace: Optional[Trace] = None) -> None:
        self.nprocs = nprocs
        self.trace = trace
        # Open rendezvous sites: key -> (reference signature, arrivals).
        self._sites: Dict[Tuple[str, int], Tuple[CollectiveSignature, int]] = {}
        # Per-(ctx, rank) sequence summary: (count, rolling hash).
        self._series: Dict[Tuple[str, int], Tuple[int, int]] = {}
        # Per-actor state for the deadlock reporter.
        self._pending: Dict[str, CollectiveSignature] = {}
        self._recent: Dict[str, Deque[str]] = {}
        self.checked = 0
        """Signatures cross-validated (tests assert the verifier ran)."""

    # ------------------------------------------------------------------
    # Hot-path hooks (called from Communicator._rendezvous)
    # ------------------------------------------------------------------

    def enter(
        self,
        sig: CollectiveSignature,
        actor: str,
        comm_size: int,
        now: float,
    ) -> None:
        """One rank is entering a rendezvous site: validate and record."""
        self.checked += 1
        if self.trace is not None:
            self.trace.record(now, actor, COLLECTIVE, sig)
        count, rolling = self._series.get((sig.ctx, sig.rank), (0, 0))
        self._series[(sig.ctx, sig.rank)] = (
            count + 1,
            hash((rolling, sig.op, sig.root)),
        )
        self._pending[actor] = sig

        ref_entry = self._sites.get(sig.key)
        if ref_entry is None:
            if comm_size > 1:  # size-1 comms complete at the first arrival
                self._sites[sig.key] = (sig, 1)
            return
        ref, arrivals = ref_entry
        reason = self._disagreement(ref, sig)
        if reason is not None:
            from repro.analysis.report import format_runtime_mismatch

            raise SPMDVerificationError(format_runtime_mismatch(ref, sig, reason))
        arrivals += 1
        if arrivals >= comm_size:
            del self._sites[sig.key]
        else:
            self._sites[sig.key] = (ref, arrivals)

    def leave(self, actor: str) -> None:
        """The actor's pending collective completed."""
        sig = self._pending.pop(actor, None)
        if sig is not None:
            recent = self._recent.get(actor)
            if recent is None:
                recent = self._recent[actor] = deque(maxlen=4)
            recent.append(sig.describe())

    @staticmethod
    def _disagreement(
        ref: CollectiveSignature, sig: CollectiveSignature
    ) -> Optional[str]:
        if ref.op != sig.op:
            return f"op mismatch: {ref.op!r} vs {sig.op!r}"
        if ref.root != sig.root:
            return f"root mismatch: {ref.root!r} vs {sig.root!r}"
        if sig.op in UNIFORM_SHAPE_OPS:
            if (ref.dtype, ref.count) != (sig.dtype, sig.count):
                return (
                    f"payload shape mismatch: "
                    f"{ref.dtype or '?'}[{ref.count}] vs "
                    f"{sig.dtype or '?'}[{sig.count}] "
                    f"(reduce-family payloads must fold elementwise)"
                )
        return None

    # ------------------------------------------------------------------
    # End-of-job / deadlock reporting
    # ------------------------------------------------------------------

    def final_check(self) -> None:
        """Verify every context saw identical sequences from its ranks."""
        by_ctx: Dict[str, Dict[int, Tuple[int, int]]] = {}
        for (ctx, rank), summary in self._series.items():
            by_ctx.setdefault(ctx, {})[rank] = summary
        for ctx, per_rank in sorted(by_ctx.items()):
            distinct = set(per_rank.values())
            if len(distinct) > 1:
                detail = ", ".join(
                    f"rank {r}: {n} collective(s)"
                    for r, (n, _h) in sorted(per_rank.items())
                )
                raise SPMDVerificationError(
                    f"SPMD-RT [sequence-mismatch] ranks issued different "
                    f"collective sequences on communicator context {ctx}: "
                    f"{detail}"
                )
        if self._sites:
            open_sites = "; ".join(
                f"{ref.describe()} on ctx {ref.ctx} entered by rank "
                f"{ref.rank} at {ref.site} ({arrived}/{self.nprocs} arrived)"
                for ref, arrived in self._sites.values()
            )
            raise SPMDVerificationError(
                f"SPMD-RT [unmatched-collective] job ended with "
                f"{len(self._sites)} collective site(s) still waiting: "
                f"{open_sites}"
            )

    def deadlock_report(self) -> str:
        """Per-actor pending collectives for the simulator's deadlock error."""
        if not self._pending:
            return "no collectives pending (point-to-point deadlock)"
        lines = []
        for actor in sorted(self._pending):
            sig = self._pending[actor]
            recent = ", ".join(self._recent.get(actor, ())) or "none"
            lines.append(
                f"{actor} waiting in {sig.describe()} on ctx {sig.ctx} "
                f"at {sig.site} (recent: {recent})"
            )
        silent = [
            f"rank{r}" for r in range(self.nprocs)
            if f"rank{r}" not in self._pending
        ]
        if silent:
            lines.append(
                f"not in any collective: {', '.join(silent)} — these "
                f"ranks likely skipped a collective the others entered"
            )
        return "; ".join(lines)
