"""The lint rules: where collective sequences can diverge across ranks.

All four rules reduce to one question — *can some ranks reach this
collective while others do not (or reach it with different arguments)?*
The taint pass answers "is this branch/loop/receiver rank-dependent";
the rules turn those facts into findings:

``rank-branch`` (SPMD001)
    A rank-dependent ``if`` whose arms issue *different* collective
    sequences: ranks taking one path enter a collective the others never
    match.  Arms with identical op sequences are fine (both paths
    rendezvous the same way).

``rank-loop`` (SPMD002)
    A collective inside a loop whose trip count is rank-dependent:
    ranks iterate different numbers of times, so the i-th iteration's
    collective has no peer on some rank.

``early-exit`` (SPMD003)
    A ``return``/``raise`` guarded by a rank-dependent condition, with
    collectives later in the function: the exiting rank abandons its
    peers mid-sequence.  Only fires when exactly one arm exits — if both
    arms exit, every rank leaves and no later collective is reached.

``comm-mismatch`` (SPMD004)
    The two arms of a rank-dependent branch issue the *same* op sequence
    on *different* communicators, or a collective's receiver/root
    expression is itself rank-dependent (``comms[rank].bcast``,
    ``bcast(x, root=rank)``): ranks rendezvous on different contexts or
    disagree on the root.

Inter-procedural divergence (a rank-guarded call to a helper that is not
in the catalog but contains collectives) is out of scope for the static
pass — the runtime sanitizer (``SPMD_VERIFY=1``) covers it.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.catalog import CollectiveSpec, match_call, receiver_text
from repro.analysis.findings import Finding
from repro.analysis.taint import TaintPass

__all__ = ["RULES", "check_module"]

RULES: Dict[str, Tuple[str, str]] = {
    "rank-branch": (
        "SPMD001",
        "collective under a rank-dependent branch without a matching "
        "call on every path",
    ),
    "rank-loop": (
        "SPMD002",
        "collective inside a loop whose trip count is rank-dependent",
    ),
    "early-exit": (
        "SPMD003",
        "rank-dependent early return/raise skips a later collective",
    ),
    "comm-mismatch": (
        "SPMD004",
        "collective on a rank-dependent communicator or root",
    ),
    "bad-suppression": (
        "SPMD005",
        "spmdlint suppression without a justification",
    ),
}

_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


# ----------------------------------------------------------------------
# Scope-bounded AST walking (never cross into nested def/class bodies —
# those are separate SPMD scopes analyzed on their own)
# ----------------------------------------------------------------------


def _stmts_under(stmts: List[ast.stmt]) -> Iterator[ast.stmt]:
    """Every statement under these, excluding nested function/class bodies."""
    for s in stmts:
        if isinstance(s, _SCOPES):
            continue
        yield s
        for name in ("body", "orelse", "finalbody"):
            blk = getattr(s, name, None)
            if blk:
                yield from _stmts_under(blk)
        for h in getattr(s, "handlers", None) or []:
            yield from _stmts_under(h.body)
        for case in getattr(s, "cases", None) or []:
            yield from _stmts_under(case.body)


class _CallCollector(ast.NodeVisitor):
    def __init__(self) -> None:
        self.calls: List[Tuple[ast.Call, CollectiveSpec]] = []

    def visit_Call(self, node: ast.Call) -> None:
        spec = match_call(node)
        if spec is not None:
            self.calls.append((node, spec))
        self.generic_visit(node)

    def _skip(self, node: ast.AST) -> None:
        pass

    visit_FunctionDef = _skip
    visit_AsyncFunctionDef = _skip
    visit_ClassDef = _skip
    visit_Lambda = _skip


def _calls_in(stmts: List[ast.stmt]) -> List[Tuple[ast.Call, CollectiveSpec]]:
    """Catalogued collective calls under these statements, in source order."""
    c = _CallCollector()
    for s in stmts:
        if not isinstance(s, _SCOPES):
            c.visit(s)
    c.calls.sort(key=lambda t: (t[0].lineno, t[0].col_offset))
    return c.calls


def _first_exit(stmts: List[ast.stmt]) -> Optional[ast.stmt]:
    for s in _stmts_under(stmts):
        if isinstance(s, (ast.Return, ast.Raise)):
            return s
    return None


def _following_calls(
    body: List[ast.stmt],
) -> Dict[int, List[Tuple[ast.Call, CollectiveSpec]]]:
    """For each statement (by id), the collective calls on its
    *continuation* — everything after it in its own block plus the
    continuations of all enclosing blocks.  This is what a rank exiting
    early actually skips; a call in a sibling arm of the same ``if`` is
    NOT on the continuation (only one arm ever runs)."""
    mapping: Dict[int, List[Tuple[ast.Call, CollectiveSpec]]] = {}

    def walk(
        stmts: List[ast.stmt],
        after: List[Tuple[ast.Call, CollectiveSpec]],
    ) -> None:
        for i, s in enumerate(stmts):
            cont = _calls_in(stmts[i + 1:]) + after
            mapping[id(s)] = cont
            if isinstance(s, _SCOPES):
                continue
            for name in ("body", "orelse", "finalbody"):
                blk = getattr(s, name, None)
                if blk:
                    walk(blk, cont)
            for h in getattr(s, "handlers", None) or []:
                walk(h.body, cont)
            for case in getattr(s, "cases", None) or []:
                walk(case.body, cont)

    walk(body, [])
    return mapping


def _root_expr(call: ast.Call, spec: CollectiveSpec) -> Optional[ast.expr]:
    if spec.root_arg is None:
        return None
    idx, kw = spec.root_arg
    for k in call.keywords:
        if k.arg == kw:
            return k.value
    if len(call.args) > idx:
        return call.args[idx]
    return None


# ----------------------------------------------------------------------
# Per-scope checking
# ----------------------------------------------------------------------


def _finding(
    rule: str,
    path: str,
    func: str,
    line: int,
    stmt_line: int,
    op: str,
    message: str,
) -> Finding:
    return Finding(
        rule=rule,
        code=RULES[rule][0],
        path=path,
        line=line,
        stmt_line=stmt_line,
        func=func,
        op=op,
        message=message,
    )


def _check_scope(node: ast.AST, func: str, path: str) -> List[Finding]:
    taint = TaintPass().run(node)
    body: List[ast.stmt] = node.body  # type: ignore[attr-defined]
    all_calls = _calls_in(body)
    following = _following_calls(body)
    findings: List[Finding] = []

    for stmt in _stmts_under(body):
        if not taint.rank_dep.get(stmt, False):
            continue

        if isinstance(stmt, ast.If):
            body_calls = _calls_in(stmt.body)
            else_calls = _calls_in(stmt.orelse)
            body_ops = [s.op for _, s in body_calls]
            else_ops = [s.op for _, s in else_calls]
            if body_ops != else_ops:
                # First position where the arm sequences disagree.
                i = 0
                while (
                    i < len(body_ops)
                    and i < len(else_ops)
                    and body_ops[i] == else_ops[i]
                ):
                    i += 1
                call, spec = (body_calls if i < len(body_ops) else else_calls)[i]
                other = "no collective" if not (else_ops if i < len(body_ops) else body_ops)[i:] else "a different sequence"
                findings.append(
                    _finding(
                        "rank-branch",
                        path,
                        func,
                        call.lineno,
                        stmt.lineno,
                        spec.op,
                        f"`{spec.op}` is reached only under the "
                        f"rank-dependent branch at line {stmt.lineno} "
                        f"(the other path issues {other}); ranks taking "
                        f"the other path never match it",
                    )
                )
            elif body_ops:
                # Same op sequence on both arms — but is it the same
                # communicator?  comm.bcast vs other.bcast rendezvous on
                # different contexts and both sides hang.
                for (bc, bs), (ec, _es) in zip(body_calls, else_calls):
                    if receiver_text(bc) != receiver_text(ec):
                        findings.append(
                            _finding(
                                "comm-mismatch",
                                path,
                                func,
                                bc.lineno,
                                stmt.lineno,
                                bs.op,
                                f"both arms of the rank-dependent branch "
                                f"at line {stmt.lineno} call `{bs.op}`, "
                                f"but on different communicators "
                                f"(`{receiver_text(bc)}` vs "
                                f"`{receiver_text(ec)}`)",
                            )
                        )
            # Early exit: one arm leaves the function, the other stays,
            # and collectives follow the branch.
            body_exit = _first_exit(stmt.body)
            else_exit = _first_exit(stmt.orelse)
            if (body_exit is None) != (else_exit is None):
                exit_stmt = body_exit or else_exit
                later = following.get(id(stmt), [])
                if later:
                    nxt_call, nxt_spec = later[0]
                    kind = (
                        "return"
                        if isinstance(exit_stmt, ast.Return)
                        else "raise"
                    )
                    findings.append(
                        _finding(
                            "early-exit",
                            path,
                            func,
                            exit_stmt.lineno,
                            stmt.lineno,
                            nxt_spec.op,
                            f"rank-dependent `{kind}` exits before the "
                            f"`{nxt_spec.op}` at line {nxt_call.lineno}; "
                            f"remaining ranks wait there forever",
                        )
                    )

        elif isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            what = (
                "condition" if isinstance(stmt, ast.While) else "iterable"
            )
            for call, spec in _calls_in(stmt.body):
                findings.append(
                    _finding(
                        "rank-loop",
                        path,
                        func,
                        call.lineno,
                        stmt.lineno,
                        spec.op,
                        f"`{spec.op}` inside the loop at line "
                        f"{stmt.lineno} whose {what} is rank-dependent; "
                        f"ranks run different iteration counts and the "
                        f"extra iterations' collectives have no peer",
                    )
                )

    # Rank-dependent communicator / root on any call in the scope.
    for call, spec in all_calls:
        recv = (
            call.func.value if isinstance(call.func, ast.Attribute) else None
        )
        if recv is not None and taint.expr_tainted(recv):
            findings.append(
                _finding(
                    "comm-mismatch",
                    path,
                    func,
                    call.lineno,
                    call.lineno,
                    spec.op,
                    f"`{spec.op}` is called on a rank-dependent "
                    f"communicator expression `{receiver_text(call)}`; "
                    f"ranks rendezvous on different contexts",
                )
            )
        root = _root_expr(call, spec)
        if root is not None and taint.expr_tainted(root):
            findings.append(
                _finding(
                    "comm-mismatch",
                    path,
                    func,
                    call.lineno,
                    call.lineno,
                    spec.op,
                    f"`{spec.op}` root argument "
                    f"`{ast.unparse(root)}` is rank-dependent; ranks "
                    f"disagree on who the root is",
                )
            )

    return findings


def check_module(tree: ast.Module, path: str) -> List[Finding]:
    """All findings in one parsed module (before suppression/baseline)."""
    findings = _check_scope(tree, "<module>", path)
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            findings.extend(_check_scope(node, node.name, path))
    seen = set()
    out: List[Finding] = []
    for f in sorted(findings, key=lambda f: (f.line, f.code, f.op)):
        key = (f.rule, f.line, f.op)
        if key not in seen:
            seen.add(key)
            out.append(f)
    return out
