"""spmdlint: static and runtime SPMD collective-matching analysis.

Every layer of this codebase assumes the SPMD invariant the paper's
collective-I/O design rests on: *all ranks issue identical collective
sequences on identical communicators*.  A rank-guarded ``bcast`` or a
divergent maintenance enqueue violates it silently — surfacing only as a
hang or corrupted bytes deep in a property run.  This package is the
correctness tooling that catches such divergence before it ships:

* **Static linter** (``python -m repro.analysis`` / ``make lint``) — an
  AST pass over the repo's own source.  :mod:`~repro.analysis.catalog`
  names every collective entry point (``Communicator`` collectives,
  ``File`` collective I/O, the two-phase transport ops, the SDM-level
  collective helpers); :mod:`~repro.analysis.taint` tracks values derived
  from ``comm.rank``; :mod:`~repro.analysis.rules` flags collectives
  reachable on only some ranks' paths.  Findings are suppressed inline
  with ``# spmdlint: ok(<rule>) <reason>`` or carried in a committed
  baseline file.

* **Runtime sanitizer** (``SPMD_VERIFY=1``) — :mod:`~repro.analysis.verifier`
  records a :class:`~repro.simt.trace.CollectiveSignature` for every
  collective a rank enters, cross-validates signatures when each
  rendezvous completes (and the full per-context sequences at job end),
  and enriches the simulator's deadlock report with per-rank pending-op
  stacks, so a mismatched or missing collective fails fast with both
  ranks' call sites instead of hanging or corrupting data.
"""

from repro.analysis.catalog import CollectiveSpec, match_call
from repro.analysis.findings import Finding, Suppression, load_baseline, save_baseline
from repro.analysis.linter import LintResult, lint_paths, lint_source
from repro.analysis.report import format_finding, format_runtime_mismatch
from repro.analysis.rules import RULES, check_module
from repro.analysis.verifier import SPMDVerifier, spmd_verify_enabled

__all__ = [
    "CollectiveSpec",
    "Finding",
    "LintResult",
    "RULES",
    "SPMDVerifier",
    "Suppression",
    "check_module",
    "format_finding",
    "format_runtime_mismatch",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "match_call",
    "save_baseline",
    "spmd_verify_enabled",
]
