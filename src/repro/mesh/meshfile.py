"""The ``uns3d.msh`` binary layout (paper, Figure 3).

The file is header-less: the application knows the counts and computes byte
offsets itself, exactly as the paper's pseudo-code does
(``file_offset = 2*totalEdges*sizeof(int)`` and so on).  Layout::

    edge1   : int32  x n_edges
    edge2   : int32  x n_edges
    <edge data arrays> : float64 x n_edges, one after another
    <node data arrays> : float64 x n_nodes, one after another

Mesh input files are *pre-existing* data (created outside SDM — that is
what "import" means in the paper), so :func:`install_mesh_file` writes the
bytes host-side into the simulated PFS without charging virtual time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.errors import MeshError
from repro.pfs.filesystem import FileSystem
from repro.pfs.striping import StripeLayout
from repro.pfs.file import PFSFile

__all__ = ["MeshFileLayout", "mesh_file_layout", "install_mesh_file"]

INT_SIZE = 4
DOUBLE_SIZE = 8


@dataclass(frozen=True)
class MeshFileLayout:
    """Byte offsets of every array in a mesh file."""

    n_edges: int
    n_nodes: int
    edge_array_names: tuple
    node_array_names: tuple
    offsets: Dict[str, int]
    total_bytes: int

    def offset(self, name: str) -> int:
        """Byte offset of a named array."""
        try:
            return self.offsets[name]
        except KeyError:
            raise MeshError(f"mesh file has no array {name!r}") from None


def mesh_file_layout(
    n_edges: int,
    n_nodes: int,
    edge_array_names: Sequence[str],
    node_array_names: Sequence[str],
) -> MeshFileLayout:
    """Compute the offset table for a mesh file with the given arrays."""
    offsets: Dict[str, int] = {}
    pos = 0
    offsets["edge1"] = pos
    pos += n_edges * INT_SIZE
    offsets["edge2"] = pos
    pos += n_edges * INT_SIZE
    for name in edge_array_names:
        offsets[name] = pos
        pos += n_edges * DOUBLE_SIZE
    for name in node_array_names:
        offsets[name] = pos
        pos += n_nodes * DOUBLE_SIZE
    return MeshFileLayout(
        n_edges=n_edges,
        n_nodes=n_nodes,
        edge_array_names=tuple(edge_array_names),
        node_array_names=tuple(node_array_names),
        offsets=offsets,
        total_bytes=pos,
    )


def install_mesh_file(
    fs: FileSystem,
    name: str,
    edge1: np.ndarray,
    edge2: np.ndarray,
    edge_arrays: Dict[str, np.ndarray],
    node_arrays: Dict[str, np.ndarray],
) -> MeshFileLayout:
    """Create ``name`` in the PFS with the standard layout (host-side).

    Returns the layout so callers can compute import offsets.  No virtual
    time is charged: the file predates the simulated run.
    """
    e1 = np.ascontiguousarray(edge1, dtype=np.int32)
    e2 = np.ascontiguousarray(edge2, dtype=np.int32)
    if e1.shape != e2.shape or e1.ndim != 1:
        raise MeshError("edge1/edge2 must be equal-length 1-D arrays")
    n_edges = len(e1)
    n_nodes = None
    for arr_name, arr in edge_arrays.items():
        if len(arr) != n_edges:
            raise MeshError(
                f"edge array {arr_name!r} has {len(arr)} entries, "
                f"expected {n_edges}"
            )
    for arr_name, arr in node_arrays.items():
        if n_nodes is None:
            n_nodes = len(arr)
        elif len(arr) != n_nodes:
            raise MeshError(
                f"node array {arr_name!r} has {len(arr)} entries, "
                f"expected {n_nodes}"
            )
    if n_nodes is None:
        n_nodes = int(max(e1.max(), e2.max())) + 1 if n_edges else 0
    layout = mesh_file_layout(
        n_edges, n_nodes, list(edge_arrays), list(node_arrays)
    )
    # Host-side install: bypass the cost model, write real bytes.
    if fs.exists(name):
        raise MeshError(f"mesh file already exists: {name!r}")
    f = PFSFile(
        name,
        StripeLayout(
            stripe_size=fs.machine.storage.stripe_size,
            n_controllers=fs.machine.storage.n_controllers,
        ),
        ctime=fs.sim.now,
    )
    fs._files[name] = f
    f.store.write(layout.offset("edge1"), e1)
    f.store.write(layout.offset("edge2"), e2)
    for arr_name, arr in edge_arrays.items():
        f.store.write(
            layout.offset(arr_name), np.ascontiguousarray(arr, dtype=np.float64)
        )
    for arr_name, arr in node_arrays.items():
        f.store.write(
            layout.offset(arr_name), np.ascontiguousarray(arr, dtype=np.float64)
        )
    return layout
