"""Tetrahedral box meshes (Kuhn subdivision), fully vectorized."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MeshError

__all__ = ["TetMesh", "box_tet_mesh"]

# The six tetrahedra of the Kuhn subdivision of a unit cube, as chains
# 0 -> 7 through axis permutations.  Corner b is the cube vertex with bit
# pattern b = (dz<<2 | dy<<1 | dx).
_KUHN_PERMS = (
    (1, 2, 4), (1, 4, 2), (2, 1, 4), (2, 4, 1), (4, 1, 2), (4, 2, 1),
)


@dataclass
class TetMesh:
    """An unstructured tetrahedral mesh.

    Attributes
    ----------
    coords:
        float64 ``(n_nodes, 3)`` vertex coordinates.
    tets:
        int64 ``(n_tets, 4)`` vertex ids per tetrahedron.
    edge1, edge2:
        int64 arrays: unique undirected edges with ``edge1 < edge2``,
        lexicographically sorted — the indirection arrays of the paper.
    faces:
        int64 ``(n_faces, 3)`` unique triangular faces (sorted vertex ids).
    boundary_faces:
        int64 index array into ``faces``: faces on the mesh boundary.
    """

    coords: np.ndarray
    tets: np.ndarray
    edge1: np.ndarray
    edge2: np.ndarray
    faces: np.ndarray
    boundary_faces: np.ndarray

    @property
    def n_nodes(self) -> int:
        """Number of vertices."""
        return len(self.coords)

    @property
    def n_edges(self) -> int:
        """Number of unique undirected edges."""
        return len(self.edge1)

    @property
    def n_tets(self) -> int:
        """Number of tetrahedra."""
        return len(self.tets)

    @property
    def n_faces(self) -> int:
        """Number of unique triangular faces."""
        return len(self.faces)


def box_tet_mesh(nx: int, ny: int, nz: int) -> TetMesh:
    """Tetrahedralize an ``nx x ny x nz``-cell box.

    Produces ``(nx+1)(ny+1)(nz+1)`` nodes and ``6*nx*ny*nz`` tets.  Node ids
    vary fastest along z — a structured numbering with good locality, like a
    mesh that has been through a bandwidth-reducing reordering.
    """
    if min(nx, ny, nz) < 1:
        raise MeshError(f"box dimensions must be >= 1, got {(nx, ny, nz)}")
    npx, npy, npz = nx + 1, ny + 1, nz + 1

    # Node coordinates.
    gx, gy, gz = np.meshgrid(
        np.arange(npx), np.arange(npy), np.arange(npz), indexing="ij"
    )
    coords = np.stack(
        [gx.reshape(-1), gy.reshape(-1), gz.reshape(-1)], axis=1
    ).astype(np.float64)

    def node_id(i, j, k):
        return (i * npy + j) * npz + k

    # Cube origins, flattened.
    ci, cj, ck = np.meshgrid(
        np.arange(nx), np.arange(ny), np.arange(nz), indexing="ij"
    )
    ci, cj, ck = ci.reshape(-1), cj.reshape(-1), ck.reshape(-1)
    corners = np.empty((8, len(ci)), dtype=np.int64)
    for b in range(8):
        dx, dy, dz = b & 1, (b >> 1) & 1, (b >> 2) & 1
        corners[b] = node_id(ci + dx, cj + dy, ck + dz)

    # Six tets per cube: 0 -> a -> a|b -> 7 along each axis permutation.
    tet_list = []
    for a, b, _c in _KUHN_PERMS:
        tet_list.append(
            np.stack(
                [corners[0], corners[a], corners[a | b], corners[7]], axis=1
            )
        )
    tets = np.concatenate(tet_list, axis=0)

    # Unique edges from tets: all 6 vertex pairs, canonicalized.
    n_nodes = npx * npy * npz
    pair_idx = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
    e_a = np.concatenate([tets[:, i] for i, _ in pair_idx])
    e_b = np.concatenate([tets[:, j] for _, j in pair_idx])
    lo = np.minimum(e_a, e_b)
    hi = np.maximum(e_a, e_b)
    enc = np.unique(lo * n_nodes + hi)
    edge1 = (enc // n_nodes).astype(np.int64)
    edge2 = (enc % n_nodes).astype(np.int64)

    # Unique faces (sorted triples) with occurrence counts for boundary.
    f_ids = [(0, 1, 2), (0, 1, 3), (0, 2, 3), (1, 2, 3)]
    tri = np.concatenate([tets[:, list(f)] for f in f_ids], axis=0)
    tri = np.sort(tri, axis=1)
    enc_f = (tri[:, 0] * n_nodes + tri[:, 1]).astype(np.int64) * n_nodes + tri[:, 2]
    uniq, counts = np.unique(enc_f, return_counts=True)
    v0 = uniq // (n_nodes * n_nodes)
    rem = uniq % (n_nodes * n_nodes)
    faces = np.stack([v0, rem // n_nodes, rem % n_nodes], axis=1).astype(np.int64)
    boundary_faces = np.flatnonzero(counts == 1).astype(np.int64)

    return TetMesh(
        coords=coords,
        tets=tets.astype(np.int64),
        edge1=edge1,
        edge2=edge2,
        faces=faces,
        boundary_faces=boundary_faces,
    )
