"""Mesh node reordering: reverse Cuthill–McKee (RCM).

Node *numbering* matters to SDM independently of partition *quality*: file
layouts are "ordered by global node numbers", so a rank's map array turns
into few long byte runs when its nodes are numbered near each other and
into thousands of tiny runs when they are scattered.  Real unstructured
meshes arrive in arbitrary order; production codes renumber them
(bandwidth-reducing orderings like RCM) before anything else.

This module provides that tool: :func:`rcm_ordering` computes the classic
reverse Cuthill–McKee permutation from the edge list, and
:func:`apply_node_permutation` renumbers an edge list in place of the mesh.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Tuple

import numpy as np

from repro.errors import MeshError

__all__ = ["rcm_ordering", "apply_node_permutation", "numbering_bandwidth"]


def _adjacency(n_nodes: int, edge1: np.ndarray, edge2: np.ndarray):
    """CSR adjacency (vectorized) from an undirected edge list."""
    src = np.concatenate([edge1, edge2])
    dst = np.concatenate([edge2, edge1])
    order = np.argsort(src, kind="stable")
    src_s, dst_s = src[order], dst[order]
    counts = np.bincount(src_s, minlength=n_nodes)
    xadj = np.concatenate(
        (np.zeros(1, dtype=np.int64), np.cumsum(counts, dtype=np.int64))
    )
    return xadj, dst_s


def rcm_ordering(
    n_nodes: int, edge1: np.ndarray, edge2: np.ndarray
) -> np.ndarray:
    """Reverse Cuthill–McKee permutation.

    Returns ``perm`` such that new id ``i`` is old node ``perm[i]``.  BFS
    from a minimum-degree vertex of each component, neighbors visited in
    increasing-degree order, final order reversed — the standard recipe.
    """
    e1 = np.asarray(edge1, dtype=np.int64)
    e2 = np.asarray(edge2, dtype=np.int64)
    if len(e1) != len(e2):
        raise MeshError("edge arrays must have equal length")
    if n_nodes <= 0:
        raise MeshError(f"n_nodes must be positive, got {n_nodes}")
    xadj, adjncy = _adjacency(n_nodes, e1, e2)
    degree = np.diff(xadj)
    visited = np.zeros(n_nodes, dtype=bool)
    order = np.empty(n_nodes, dtype=np.int64)
    pos = 0
    # Process components from their minimum-degree vertices.
    by_degree = np.argsort(degree, kind="stable")
    for seed in by_degree.tolist():
        if visited[seed]:
            continue
        visited[seed] = True
        queue = deque([seed])
        while queue:
            v = queue.popleft()
            order[pos] = v
            pos += 1
            nbrs = adjncy[xadj[v] : xadj[v + 1]]
            fresh = nbrs[~visited[nbrs]]
            if len(fresh):
                fresh = np.unique(fresh)
                visited[fresh] = True
                for u in fresh[np.argsort(degree[fresh], kind="stable")].tolist():
                    queue.append(u)
    return order[::-1].copy()


def apply_node_permutation(
    perm: np.ndarray, edge1: np.ndarray, edge2: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Renumber an edge list under ``perm`` (new id i = old ``perm[i]``).

    Returns canonicalized (edge1 < edge2), lexicographically sorted edge
    arrays in the new numbering.
    """
    n = len(perm)
    inverse = np.empty(n, dtype=np.int64)
    inverse[perm] = np.arange(n, dtype=np.int64)
    a = inverse[np.asarray(edge1, dtype=np.int64)]
    b = inverse[np.asarray(edge2, dtype=np.int64)]
    lo, hi = np.minimum(a, b), np.maximum(a, b)
    enc = np.sort(lo * n + hi)
    return (enc // n).astype(np.int64), (enc % n).astype(np.int64)


def numbering_bandwidth(
    n_nodes: int, edge1: np.ndarray, edge2: np.ndarray
) -> int:
    """Graph bandwidth of the numbering: max |edge1 - edge2| over edges.

    The quantity RCM minimizes (approximately); small bandwidth means a
    contiguous node-id block touches only nearby ids — long file runs.
    """
    if len(edge1) == 0:
        return 0
    return int(
        np.abs(
            np.asarray(edge1, dtype=np.int64) - np.asarray(edge2, dtype=np.int64)
        ).max()
    )
