"""Unstructured tetrahedral meshes and the paper's mesh-file format.

The paper's applications run on irregular tetrahedral meshes (FUN3D's
18M-edge aircraft mesh; the Rayleigh–Taylor code's refined interface mesh).
Neither mesh is available, so this package generates synthetic equivalents
with the same structural properties:

* :func:`~repro.mesh.tetra.box_tet_mesh` — a box of hexahedra split into
  tetrahedra (Kuhn subdivision), yielding nodes, unique edges (edge/node
  ratio ~7, matching unstructured CFD meshes), tets, and faces — all
  vectorized numpy;
* :mod:`~repro.mesh.meshfile` — the header-less binary ``uns3d.msh`` layout
  of Figure 3 (edge1 | edge2 | edge arrays | node arrays) with explicit
  offset arithmetic, installed host-side into the simulated PFS as
  "pre-existing" input data;
* :mod:`~repro.mesh.generators` — ratio-preserving scaled stand-ins for the
  FUN3D and RT workloads;
* :mod:`~repro.mesh.validate` — structural invariants used by tests.
"""

from repro.mesh.tetra import TetMesh, box_tet_mesh
from repro.mesh.meshfile import MeshFileLayout, install_mesh_file, mesh_file_layout
from repro.mesh.generators import fun3d_like_problem, rt_like_problem
from repro.mesh.reorder import (
    apply_node_permutation,
    numbering_bandwidth,
    rcm_ordering,
)
from repro.mesh.validate import validate_mesh

__all__ = [
    "TetMesh",
    "box_tet_mesh",
    "MeshFileLayout",
    "mesh_file_layout",
    "install_mesh_file",
    "fun3d_like_problem",
    "rt_like_problem",
    "rcm_ordering",
    "apply_node_permutation",
    "numbering_bandwidth",
    "validate_mesh",
]
