"""Ratio-preserving synthetic stand-ins for the paper's two workloads.

The paper's exact inputs are unavailable (FUN3D's 18M-edge NASA mesh, the
RT code's interface mesh), so these generators build box tet meshes whose
*structural ratios* match, at a size scaled for simulation:

* FUN3D: 18M edges / 2.2M nodes (edge/node ~ 8.2; box tets give ~7), four
  edge-data arrays, four node-data arrays, checkpoint outputs p and q.
* RT: node dataset and triangle dataset with byte ratio 36 : 74 per step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.errors import MeshError
from repro.mesh.tetra import TetMesh, box_tet_mesh

__all__ = ["Fun3dProblem", "RTProblem", "fun3d_like_problem", "rt_like_problem"]

FUN3D_EDGE_ARRAYS = ("xe0", "xe1", "xe2", "xe3")
FUN3D_NODE_ARRAYS = ("yn0", "yn1", "yn2", "yn3")

RT_TRIANGLE_PER_NODE_BYTES = 74.0 / 36.0
"""Paper ratio: 74 MB of triangle data per 36 MB of node data per step."""


@dataclass
class Fun3dProblem:
    """A scaled FUN3D-like workload: mesh + named data arrays."""

    mesh: TetMesh
    edge_arrays: Dict[str, np.ndarray]
    node_arrays: Dict[str, np.ndarray]

    @property
    def import_bytes(self) -> int:
        """Total bytes the initial import moves (edges + 8 data arrays)."""
        e, n = self.mesh.n_edges, self.mesh.n_nodes
        return 2 * e * 4 + len(self.edge_arrays) * e * 8 + len(self.node_arrays) * n * 8


@dataclass
class RTProblem:
    """A scaled Rayleigh–Taylor-like workload."""

    mesh: TetMesh
    n_triangles: int
    node_field: np.ndarray
    triangle_field: np.ndarray
    triangle_nodes: np.ndarray  # (n_triangles, 3) vertex ids


def fun3d_like_problem(cells_per_side: int, seed: int = 12345) -> Fun3dProblem:
    """Build the FUN3D stand-in on a ``cells_per_side``³ box.

    ``cells_per_side=31`` gives ~33k nodes / ~230k edges — the paper's mesh
    scaled down ~70x with ratios intact.
    """
    if cells_per_side < 2:
        raise MeshError("cells_per_side must be >= 2")
    mesh = box_tet_mesh(cells_per_side, cells_per_side, cells_per_side)
    rng = np.random.default_rng(seed)
    edge_arrays = {
        name: rng.standard_normal(mesh.n_edges) for name in FUN3D_EDGE_ARRAYS
    }
    node_arrays = {
        name: rng.standard_normal(mesh.n_nodes) for name in FUN3D_NODE_ARRAYS
    }
    return Fun3dProblem(mesh=mesh, edge_arrays=edge_arrays, node_arrays=node_arrays)


def rt_like_problem(cells_per_side: int, seed: int = 54321) -> RTProblem:
    """Build the RT stand-in: node field + triangle field at the paper's
    byte ratio, triangles drawn from the mesh's face set."""
    if cells_per_side < 2:
        raise MeshError("cells_per_side must be >= 2")
    mesh = box_tet_mesh(cells_per_side, cells_per_side, cells_per_side)
    rng = np.random.default_rng(seed)
    n_tri = int(round(mesh.n_nodes * RT_TRIANGLE_PER_NODE_BYTES))
    if n_tri > mesh.n_faces:
        raise MeshError(
            f"mesh has only {mesh.n_faces} faces, need {n_tri} triangles"
        )
    chosen = rng.choice(mesh.n_faces, size=n_tri, replace=False)
    chosen.sort()
    return RTProblem(
        mesh=mesh,
        n_triangles=n_tri,
        node_field=rng.standard_normal(mesh.n_nodes),
        triangle_field=rng.standard_normal(n_tri),
        triangle_nodes=mesh.faces[chosen],
    )
