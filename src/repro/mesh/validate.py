"""Structural mesh invariants (used by tests and property checks)."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import MeshError
from repro.mesh.tetra import TetMesh

__all__ = ["validate_mesh"]


def validate_mesh(mesh: TetMesh) -> List[str]:
    """Check structural invariants; returns a list of violations (empty =
    valid).  Raises nothing — callers decide severity."""
    problems: List[str] = []
    n = mesh.n_nodes

    if mesh.tets.ndim != 2 or mesh.tets.shape[1] != 4:
        problems.append("tets must be (n, 4)")
    if len(mesh.edge1) != len(mesh.edge2):
        problems.append("edge1/edge2 length mismatch")

    for name, arr in (("tets", mesh.tets), ("edge1", mesh.edge1),
                      ("edge2", mesh.edge2), ("faces", mesh.faces)):
        if arr.size and (arr.min() < 0 or arr.max() >= n):
            problems.append(f"{name} references out-of-range node ids")

    if len(mesh.edge1) != len(mesh.edge2):
        return problems  # downstream checks need aligned edge arrays

    # Edges canonical and unique.
    if len(mesh.edge1):
        if not (mesh.edge1 < mesh.edge2).all():
            problems.append("edges not canonicalized (edge1 < edge2)")
        enc = mesh.edge1 * n + mesh.edge2
        if len(np.unique(enc)) != len(enc):
            problems.append("duplicate edges")
        if not (np.diff(enc) > 0).all():
            problems.append("edges not sorted")

    # Tets non-degenerate: 4 distinct vertices each.
    if mesh.tets.size:
        sorted_tets = np.sort(mesh.tets, axis=1)
        if (np.diff(sorted_tets, axis=1) == 0).any():
            problems.append("degenerate tets (repeated vertex)")

    # Every tet edge must exist in the edge list.
    if mesh.tets.size and len(mesh.edge1):
        enc_edges = set((mesh.edge1 * n + mesh.edge2).tolist())
        pair_idx = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
        a = np.concatenate([mesh.tets[:, i] for i, _ in pair_idx])
        b = np.concatenate([mesh.tets[:, j] for _, j in pair_idx])
        lo, hi = np.minimum(a, b), np.maximum(a, b)
        missing = set(np.unique(lo * n + hi).tolist()) - enc_edges
        if missing:
            problems.append(f"{len(missing)} tet edges missing from edge list")

    # Boundary face indices valid.
    if mesh.boundary_faces.size and (
        mesh.boundary_faces.min() < 0 or mesh.boundary_faces.max() >= mesh.n_faces
    ):
        problems.append("boundary_faces indices out of range")

    return problems
