"""Striping-aware run scheduling: batch file requests per controller.

The file system queues each request at one controller (the one serving
its first byte), so a naive aggregator walking its file domain in offset
order issues every multi-stripe request across controller boundaries and
the batches of different aggregators pile onto the same controller
queues.  This module turns a coalesced run list into *single-controller*
batches, interleaved round-robin from a caller-chosen starting
controller — so N aggregators that pick distinct starting points drive
all controllers concurrently instead of hammering one.

The split is pure layout arithmetic (:class:`~repro.pfs.striping.
StripeLayout`), fully vectorized: runs are cut at stripe boundaries, each
piece is owned by ``controller_of`` its stripe, per-controller pieces are
re-merged where file-contiguous, and size-batched to the collective
buffer limit.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.pfs.striping import StripeLayout

__all__ = ["split_runs_by_stripe", "size_batches", "controller_batches"]


def split_runs_by_stripe(
    layout: StripeLayout, offsets: np.ndarray, lengths: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Cut runs at stripe boundaries.

    Returns ``(piece_offsets, piece_lengths, piece_controllers)`` with
    pieces in file-offset order (inputs must be sorted non-overlapping
    runs); every piece lies within one stripe, hence on one controller.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    keep = lengths > 0
    offsets, lengths = offsets[keep], lengths[keep]
    empty = np.empty(0, dtype=np.int64)
    if len(offsets) == 0:
        return empty, empty.copy(), empty.copy()
    ss = layout.stripe_size
    first = offsets // ss
    last = (offsets + lengths - 1) // ss
    npieces = last - first + 1
    total = int(npieces.sum())
    run_of = np.repeat(np.arange(len(offsets), dtype=np.int64), npieces)
    piece_first = np.cumsum(npieces) - npieces
    within = np.arange(total, dtype=np.int64) - np.repeat(piece_first, npieces)
    stripe = first[run_of] + within
    starts = np.maximum(stripe * ss, offsets[run_of])
    ends = np.minimum((stripe + 1) * ss, (offsets + lengths)[run_of])
    return starts, ends - starts, stripe % layout.n_controllers


def _merge_adjacent(
    offsets: np.ndarray, lengths: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Re-merge exactly-adjacent pieces (undoes the stripe cut wherever
    consecutive stripes landed on the same controller)."""
    if len(offsets) <= 1:
        return offsets, lengths
    new = np.empty(len(offsets), dtype=bool)
    new[0] = True
    np.not_equal(offsets[1:], offsets[:-1] + lengths[:-1], out=new[1:])
    starts_idx = np.flatnonzero(new)
    group_last = np.concatenate((starts_idx[1:], [len(offsets)])) - 1
    mo = offsets[starts_idx]
    return mo, offsets[group_last] + lengths[group_last] - mo


def size_batches(
    offsets: np.ndarray, lengths: np.ndarray, max_bytes: int
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Split a run list into requests of at most ``max_bytes`` each.

    Batches are full to capacity: boundaries sit at multiples of
    ``max_bytes`` in the cumulative byte space of the runs, splitting any
    run that crosses one.  One cumulative-sum/searchsorted pass — no
    per-byte walk.
    """
    keep = lengths > 0
    offsets, lengths = offsets[keep], lengths[keep]
    if len(offsets) == 0:
        return []
    cum = np.cumsum(lengths, dtype=np.int64)
    total = int(cum[-1])
    run_start = cum - lengths  # byte position (in run space) each run begins
    cuts = np.arange(max_bytes, total, max_bytes, dtype=np.int64)
    piece_start = np.union1d(run_start, cuts)
    piece_len = np.diff(np.concatenate((piece_start, [total])))
    run_idx = np.searchsorted(cum, piece_start, side="right")
    piece_off = offsets[run_idx] + (piece_start - run_start[run_idx])
    splits = np.searchsorted(piece_start, cuts)
    bounds = np.concatenate(([0], splits, [len(piece_start)]))
    return [
        (piece_off[a:b], piece_len[a:b])
        for a, b in zip(bounds[:-1], bounds[1:])
        if b > a
    ]


def controller_batches(
    layout: StripeLayout,
    offsets: np.ndarray,
    lengths: np.ndarray,
    max_bytes: int,
    start: int = 0,
) -> List[Tuple[int, np.ndarray, np.ndarray]]:
    """Order a run list into single-controller requests.

    Returns ``(controller, offsets, lengths)`` batches, each at most
    ``max_bytes``, interleaved round-robin over the controllers beginning
    at ``start`` — callers that stagger ``start`` (e.g. by rank) hit
    disjoint controller queues on their first requests and keep every
    controller streaming.
    """
    poff, plen, pctl = split_runs_by_stripe(layout, offsets, lengths)
    queues: List[List[Tuple[int, np.ndarray, np.ndarray]]] = []
    for ctl in range(layout.n_controllers):
        sel = pctl == ctl
        if not sel.any():
            queues.append([])
            continue
        co, cl = _merge_adjacent(poff[sel], plen[sel])
        queues.append(
            [(ctl, bo, bl) for bo, bl in size_batches(co, cl, max_bytes)]
        )
    out: List[Tuple[int, np.ndarray, np.ndarray]] = []
    depth = max((len(q) for q in queues), default=0)
    n = layout.n_controllers
    for round_ in range(depth):
        for c in range(n):
            q = queues[(start + c) % n]
            if round_ < len(q):
                out.append(q[round_])
    return out
