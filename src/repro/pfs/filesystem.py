"""The file-system service: namespace, metadata costs, controller contention.

One :class:`FileSystem` is shared by all ranks of a job (created by the
``services`` factory of :func:`repro.mpi.mpirun`).  Every operation takes the
calling :class:`~repro.simt.Process` so it can charge virtual time:

* **metadata ops** (create, open, stat, unlink) hold the metadata server
  (a capacity-limited FIFO resource) for a fixed cost — 64 ranks opening the
  same file queue up, which is exactly the level-1 penalty of the paper;
* **data ops** (:meth:`read` / :meth:`write`) stream through the
  per-controller queues for a total of ``request_overhead +
  runs·run_overhead + bytes/stream_bandwidth``: a scheduled request
  (explicit ``controller=``) holds its one controller for the whole
  service, an unscheduled one walks its stripe pieces controller by
  controller — so one stream never exceeds stream bandwidth while
  aggregate bandwidth saturates at ``n_controllers`` concurrent streams.

Data is real: writes land in the file's :class:`ByteStore`, reads come back
out, run lists included.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.config import MachineModel
from repro.errors import FileExists, FileNotFound, PFSError
from repro.pfs.file import RD, RDWR, WR, FileStat, PFSFile, PFSHandle
from repro.pfs.scheduler import split_runs_by_stripe
from repro.pfs.striping import StripeLayout
from repro.simt.primitives import Resource
from repro.simt.process import Process
from repro.simt.simulator import Simulator

__all__ = ["FileSystem"]

_METADATA_SERVER_WAYS = 2
"""Concurrent metadata operations the MDS can service."""


class FileSystem:
    """Shared parallel-file-system service for one simulated machine."""

    def __init__(self, sim: Simulator, machine: MachineModel) -> None:
        self.sim = sim
        self.machine = machine
        self._files: Dict[str, PFSFile] = {}
        # One stream slot per I/O controller: a request queues at the
        # controller serving its first byte, so requests landing on
        # distinct controllers proceed concurrently while same-controller
        # requests serialize — the contention the striping-aware run
        # scheduler (repro.pfs.scheduler) exists to spread.
        self.controllers = [
            Resource(sim, capacity=1, name=f"pfs-ctl{i}")
            for i in range(machine.storage.n_controllers)
        ]
        self.metadata_server = Resource(
            sim, capacity=_METADATA_SERVER_WAYS, name="pfs-mds"
        )
        self._write_locks: Dict[str, Resource] = {}
        # Aggregate counters for benchmark reporting.
        self.bytes_written = 0
        self.bytes_read = 0
        self.index_bytes_read = 0
        """Bytes read with ``kind="index"`` — chunked index-block fetches.
        The collective-resolution claim (cold index traffic 1x the index
        size, not P x) is asserted directly against this counter."""
        self.data_bytes_read = 0
        """Bytes read with the default ``kind="data"``."""
        self.n_requests = 0
        self.n_opens = 0
        self.runs_submitted = 0
        """Byte runs handed to the sieving/two-phase entry points — i.e.
        *after* any source-side coalescing a caller performed.  A
        coalescing read path therefore submits O(chunks) runs where an
        uncoalesced one submits O(elements); the datapath bench contrasts
        exactly that (chunked vs canonical submissions)."""
        self.runs_serviced = 0
        """Byte runs actually issued to the file system (post-merge)."""

    _STAT_FIELDS = (
        "bytes_written", "bytes_read", "index_bytes_read",
        "data_bytes_read", "n_requests", "n_opens", "runs_submitted",
        "runs_serviced",
    )

    def stats(self, reset: bool = False) -> Dict[str, int]:
        """Snapshot every aggregate counter; optionally zero them.

        The one counter-window API benches and policies share: take a
        snapshot at the window start (``reset=True``) or subtract two
        snapshots — either way no field can be missed the way ad-hoc
        per-field resets could.
        """
        snap = {name: getattr(self, name) for name in self._STAT_FIELDS}
        if reset:
            for name in self._STAT_FIELDS:
                setattr(self, name, 0)
        return snap

    def queue_depth(self) -> int:
        """Processes currently waiting on storage controllers.

        The contention signal maintenance rate-limiting polls: a nonzero
        depth means foreground I/O is queued behind busy controllers and
        background work should yield.
        """
        return sum(c.n_waiting for c in self.controllers)

    def write_lock(self, name: str) -> Resource:
        """Per-file advisory write lock (fcntl-style).

        Data sieving's read-modify-write is not atomic; ROMIO guards it with
        file locking, and so do we — concurrent sieved writers serialize.
        """
        lock = self._write_locks.get(name)
        if lock is None:
            lock = Resource(self.sim, capacity=1, name=f"wlock:{name}")
            self._write_locks[name] = lock
        return lock

    # ------------------------------------------------------------------
    # Namespace
    # ------------------------------------------------------------------

    def exists(self, name: str) -> bool:
        """Namespace lookup without time charge (client-side cache model)."""
        return name in self._files

    def list_files(self) -> List[str]:
        """All file names, sorted (no time charge; debugging/tests)."""
        return sorted(self._files)

    def lookup(self, name: str) -> PFSFile:
        """Fetch the file object (no time charge; internal/test use)."""
        try:
            return self._files[name]
        except KeyError:
            raise FileNotFound(f"no such file: {name!r}") from None

    def _charge_metadata(self, proc: Process, cost: float) -> None:
        with self.metadata_server.request(proc):
            proc.hold(cost)

    def create(self, proc: Process, name: str, *, exist_ok: bool = False) -> PFSFile:
        """Create an empty file (metadata-op cost; FIFO at the MDS)."""
        self._charge_metadata(proc, self.machine.storage.metadata_op_cost)
        if name in self._files:
            if exist_ok:
                return self._files[name]
            raise FileExists(f"file exists: {name!r}")
        layout = StripeLayout(
            stripe_size=self.machine.storage.stripe_size,
            n_controllers=self.machine.storage.n_controllers,
        )
        f = PFSFile(name, layout, ctime=self.sim.now)
        self._files[name] = f
        return f

    def open(
        self, proc: Process, name: str, mode: int = RD, *, create: bool = False
    ) -> PFSHandle:
        """Open a file, charging the per-process open cost.

        With ``create=True`` the file is created if missing (one extra
        metadata op, only on actual creation).
        """
        if mode not in (RD, WR, RDWR):
            raise PFSError(f"bad open mode: {mode!r}")
        if name not in self._files:
            if not create:
                raise FileNotFound(f"no such file: {name!r}")
            self.create(proc, name, exist_ok=True)
        self._charge_metadata(proc, self.machine.storage.file_open_cost)
        self.n_opens += 1
        self.sim.trace.record(self.sim.now, proc.name, "pfs.open", {"file": name})
        return PFSHandle(self, self._files[name], mode)

    def close(self, proc: Process, handle: PFSHandle) -> None:
        """Close a handle (client-side cost, no MDS trip)."""
        handle.check_open()
        proc.hold(self.machine.storage.file_close_cost)
        handle.closed = True

    def stat(self, proc: Process, name: str) -> FileStat:
        """Stat by name (metadata-op cost)."""
        self._charge_metadata(proc, self.machine.storage.metadata_op_cost)
        f = self.lookup(name)
        return FileStat(name=f.name, size=f.size, ctime=f.ctime, mtime=f.mtime)

    def unlink(self, proc: Process, name: str) -> None:
        """Remove a file (metadata-op cost)."""
        self._charge_metadata(proc, self.machine.storage.metadata_op_cost)
        if name not in self._files:
            raise FileNotFound(f"no such file: {name!r}")
        del self._files[name]

    def truncate(self, proc: Process, name: str, length: int) -> None:
        """Shrink (or zero-extend) a file to ``length`` bytes (metadata-op
        cost) — how a compaction pass returns reclaimed space."""
        self._charge_metadata(proc, self.machine.storage.metadata_op_cost)
        f = self.lookup(name)
        f.store.truncate(length)
        f.mtime = self.sim.now

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------

    def _serve(
        self, proc: Process, handle: PFSHandle, offsets, lengths,
        nbytes: int, controller: Optional[int], *, write: bool,
    ) -> tuple:
        """Charge one request's controller time; returns ``(ctl, nctl)``.

        A *scheduled* request (the striping-aware scheduler emits
        single-controller batches) queues at its chosen controller for
        the full stream time.  An *unscheduled* request is walked stripe
        piece by stripe piece: the fixed per-request overhead is charged
        client-side, then the stream holds each controller its bytes
        land on, in file order, for exactly that visit's transfer time.
        A lone stream therefore still totals ``request_overhead +
        runs·run_overhead + nbytes/bandwidth`` — one stream never
        exceeds stream bandwidth — but concurrent streams pipeline
        through the controller array (while one is on controller *c*,
        another streams on *c+1*) instead of serializing behind
        whichever queue owns their first byte.  Without the walk, every
        rank of an independent-I/O phase would queue at controller 0 —
        aligned region starts all map there — and aggregate bandwidth
        would collapse to a single stream's.
        """
        storage = self.machine.storage
        if controller is not None:
            ctl = controller % len(self.controllers)
            service = storage.stream_time(nbytes, write=write, runs=len(offsets))
            with self.controllers[ctl].request(proc):
                proc.hold(service)
            return ctl, 1
        proc.hold(storage.stream_time(0, write=write, runs=len(offsets)))
        _, plen, pctl = split_runs_by_stripe(
            handle.file.layout, offsets, lengths
        )
        if len(pctl) == 0:
            return 0, 0
        bw = (
            storage.stream_write_bandwidth if write
            else storage.stream_read_bandwidth
        )
        # One hold per controller *visit* (consecutive pieces on the same
        # controller collapse), so the walk length is the stripe count,
        # not the run count.
        new = np.empty(len(pctl), dtype=bool)
        new[0] = True
        np.not_equal(pctl[1:], pctl[:-1], out=new[1:])
        starts = np.flatnonzero(new)
        visit_bytes = np.add.reduceat(plen, starts)
        visit_ctl = pctl[starts]
        for ctl, vbytes in zip(visit_ctl.tolist(), visit_bytes.tolist()):
            with self.controllers[ctl].request(proc):
                proc.hold(float(vbytes) / bw)
        return int(visit_ctl[0]), len(np.unique(visit_ctl))

    def write(
        self, proc: Process, handle: PFSHandle, offsets, lengths, data,
        *, controller: Optional[int] = None,
    ) -> int:
        """One write request over a run list; returns bytes written.

        Holds one controller stream for the modelled service time, then
        lands the real bytes.  ``data`` is contiguous and must match the
        run total.  The request queues at the controller serving its first
        byte unless the caller (the striping-aware scheduler) picked one.
        """
        handle.check_writable()
        offsets = np.atleast_1d(np.asarray(offsets, dtype=np.int64))
        lengths = np.atleast_1d(np.asarray(lengths, dtype=np.int64))
        nbytes = int(lengths.sum())
        ctl, nctl = self._serve(
            proc, handle, offsets, lengths, nbytes, controller, write=True
        )
        handle.file.store.writev(offsets, lengths, data)
        handle.file.mtime = self.sim.now
        self.bytes_written += nbytes
        self.n_requests += 1
        self.runs_serviced += len(offsets)
        self.sim.trace.record(
            self.sim.now, proc.name, "pfs.write",
            {"file": handle.file.name, "bytes": nbytes, "runs": len(offsets),
             "ctl": ctl, "nctl": nctl},
        )
        return nbytes

    def read(
        self, proc: Process, handle: PFSHandle, offsets, lengths,
        *, controller: Optional[int] = None, kind: str = "data",
    ) -> np.ndarray:
        """One read request over a run list; returns the gathered bytes.

        ``kind`` splits the traffic counters: ``"index"`` for chunked
        index-block fetches, ``"data"`` (default) for everything else.
        """
        handle.check_readable()
        offsets = np.atleast_1d(np.asarray(offsets, dtype=np.int64))
        lengths = np.atleast_1d(np.asarray(lengths, dtype=np.int64))
        nbytes = int(lengths.sum())
        ctl, nctl = self._serve(
            proc, handle, offsets, lengths, nbytes, controller, write=False
        )
        self.bytes_read += nbytes
        if kind == "index":
            self.index_bytes_read += nbytes
        else:
            self.data_bytes_read += nbytes
        self.n_requests += 1
        self.runs_serviced += len(offsets)
        self.sim.trace.record(
            self.sim.now, proc.name, "pfs.read",
            {"file": handle.file.name, "bytes": nbytes, "runs": len(offsets),
             "ctl": ctl, "nctl": nctl},
        )
        return handle.file.store.readv(offsets, lengths)

    def write_at(self, proc: Process, handle: PFSHandle, offset: int, data) -> int:
        """Contiguous-write convenience."""
        raw = np.asarray(data).reshape(-1).view(np.uint8)
        return self.write(proc, handle, [offset], [len(raw)], raw)

    def read_at(self, proc: Process, handle: PFSHandle, offset: int, length: int) -> np.ndarray:
        """Contiguous-read convenience."""
        return self.read(proc, handle, [offset], [length])
