"""Simulated parallel file system (XFS-over-FibreChannel stand-in).

Two concerns, cleanly split:

* **Correctness** — :class:`~repro.pfs.blockstore.ByteStore` holds the real
  bytes of every file (growable flat buffer, vectorized scatter/gather), so
  everything SDM writes can be read back and checked against a reference.
* **Timing** — :class:`~repro.pfs.filesystem.FileSystem` charges virtual
  time: per-open/view/close/metadata costs, and data transfers that contend
  for a FIFO pool of ``n_controllers`` full-rate streams.  One sequential
  writer gets one controller's bandwidth; a 64-rank collective saturates the
  aggregate — the mechanism behind the paper's original-vs-SDM gap (Fig 7).

Files are flat byte namespaces (no directories): SDM names files like
``"fun3d/p.0012"`` and treats the name as opaque, as the paper does.
"""

from repro.pfs.blockstore import ByteStore
from repro.pfs.striping import StripeLayout
from repro.pfs.file import FileStat, PFSFile, PFSHandle
from repro.pfs.filesystem import FileSystem

__all__ = [
    "ByteStore",
    "StripeLayout",
    "PFSFile",
    "PFSHandle",
    "FileStat",
    "FileSystem",
]
