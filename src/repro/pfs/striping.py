"""Round-robin striping arithmetic.

Files are striped in fixed-size units over the controllers; these helpers
answer layout questions the cost model and tests need (which controller
serves a byte, how many distinct stripes/controllers a request touches).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["StripeLayout"]


@dataclass(frozen=True)
class StripeLayout:
    """Striping geometry of one file."""

    stripe_size: int
    n_controllers: int

    def __post_init__(self) -> None:
        if self.stripe_size < 1:
            raise ValueError(f"stripe_size must be >= 1, got {self.stripe_size}")
        if self.n_controllers < 1:
            raise ValueError(f"n_controllers must be >= 1, got {self.n_controllers}")

    def stripe_of(self, offset: int) -> int:
        """Index of the stripe containing byte ``offset``."""
        return offset // self.stripe_size

    def controller_of(self, offset: int) -> int:
        """Controller serving byte ``offset`` (round-robin over stripes)."""
        return self.stripe_of(offset) % self.n_controllers

    def stripes_spanned(self, offset: int, length: int) -> int:
        """Number of distinct stripes a ``[offset, offset+length)`` request
        touches (0 for empty requests)."""
        if length <= 0:
            return 0
        first = self.stripe_of(offset)
        last = self.stripe_of(offset + length - 1)
        return last - first + 1

    def controllers_spanned(self, offset: int, length: int) -> int:
        """Number of distinct controllers the request touches."""
        return min(self.stripes_spanned(offset, length), self.n_controllers)

    def controllers_for_runs(self, offsets, lengths) -> np.ndarray:
        """Distinct controllers touched by a run list (sorted array)."""
        offsets = np.asarray(offsets, dtype=np.int64)
        lengths = np.asarray(lengths, dtype=np.int64)
        hit = set()
        for o, l in zip(offsets.tolist(), lengths.tolist()):
            if l <= 0:
                continue
            first = o // self.stripe_size
            last = (o + l - 1) // self.stripe_size
            if last - first + 1 >= self.n_controllers:
                return np.arange(self.n_controllers)
            for s in range(first, last + 1):
                hit.add(s % self.n_controllers)
        return np.array(sorted(hit), dtype=np.int64)
