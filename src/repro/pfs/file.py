"""File objects and open handles in the simulated parallel FS."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import AccessModeError, InvalidFileHandle
from repro.pfs.blockstore import ByteStore
from repro.pfs.striping import StripeLayout

if TYPE_CHECKING:  # pragma: no cover
    from repro.pfs.filesystem import FileSystem

__all__ = ["PFSFile", "PFSHandle", "FileStat", "RD", "WR", "RDWR"]

RD = 0x1
"""Open-for-reading flag."""

WR = 0x2
"""Open-for-writing flag."""

RDWR = RD | WR
"""Read-write flag."""


@dataclass
class FileStat:
    """Result of a stat call."""

    name: str
    size: int
    ctime: float
    mtime: float


class PFSFile:
    """One file: a name, real bytes, striping geometry, and timestamps."""

    def __init__(self, name: str, layout: StripeLayout, ctime: float) -> None:
        self.name = name
        self.layout = layout
        self.store = ByteStore()
        self.ctime = ctime
        self.mtime = ctime
        self.nlink = 1

    @property
    def size(self) -> int:
        """Current file size in bytes."""
        return self.store.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PFSFile {self.name!r} size={self.size}>"


class PFSHandle:
    """A process's open handle on a file.

    Carries the access mode; all data operations go through the owning
    :class:`~repro.pfs.filesystem.FileSystem` (which charges time), using
    this handle for permission checks.
    """

    def __init__(self, fs: "FileSystem", file: PFSFile, mode: int) -> None:
        self.fs = fs
        self.file = file
        self.mode = mode
        self.closed = False

    def check_open(self) -> None:
        """Raise if this handle was already closed."""
        if self.closed:
            raise InvalidFileHandle(f"handle on {self.file.name!r} is closed")

    def check_readable(self) -> None:
        """Raise unless opened for reading."""
        self.check_open()
        if not (self.mode & RD):
            raise AccessModeError(f"{self.file.name!r} not opened for reading")

    def check_writable(self) -> None:
        """Raise unless opened for writing."""
        self.check_open()
        if not (self.mode & WR):
            raise AccessModeError(f"{self.file.name!r} not opened for writing")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self.closed else "open"
        return f"<PFSHandle {self.file.name!r} {state}>"
