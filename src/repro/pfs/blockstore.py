"""Real byte storage for simulated files.

A :class:`ByteStore` is a growable flat ``uint8`` buffer with vectorized
scatter/gather (``writev``/``readv``) over run lists — the storage engine
under every simulated file.  Growth doubles capacity (the same ``realloc``
strategy the paper credits SDM's single-pass edge reading to).

Reads of never-written ranges return zeros, like a POSIX sparse file.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import PFSError

__all__ = ["ByteStore"]

_LOOP_THRESHOLD = 64
"""Run counts below this use a plain loop; above, vectorized fancy indexing."""


def _expand_indices(offsets: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Absolute byte index of every byte covered by the runs, run order."""
    total = int(lengths.sum())
    starts = np.repeat(offsets, lengths)
    run_first = np.cumsum(lengths) - lengths
    within = np.arange(total, dtype=np.int64) - np.repeat(run_first, lengths)
    return starts + within


class ByteStore:
    """Growable in-memory byte array with run-list scatter/gather."""

    def __init__(self, initial_capacity: int = 4096) -> None:
        if initial_capacity < 1:
            raise ValueError("initial_capacity must be positive")
        self._buf = np.zeros(initial_capacity, dtype=np.uint8)
        self.size = 0
        """High-water mark: one past the last byte ever written."""

    @property
    def capacity(self) -> int:
        """Currently allocated bytes (always >= size)."""
        return len(self._buf)

    def _ensure(self, upto: int) -> None:
        if upto <= len(self._buf):
            return
        new_cap = len(self._buf)
        while new_cap < upto:
            new_cap *= 2
        grown = np.zeros(new_cap, dtype=np.uint8)
        grown[: self.size] = self._buf[: self.size]
        self._buf = grown

    # ------------------------------------------------------------------
    # Contiguous access
    # ------------------------------------------------------------------

    def write(self, offset: int, data) -> None:
        """Store ``data`` (any buffer) at byte ``offset``."""
        if offset < 0:
            raise PFSError(f"negative write offset: {offset}")
        raw = np.asarray(data).reshape(-1).view(np.uint8)
        end = offset + len(raw)
        self._ensure(end)
        self._buf[offset:end] = raw
        if end > self.size:
            self.size = end

    def read(self, offset: int, length: int) -> np.ndarray:
        """Return ``length`` bytes at ``offset`` (zeros beyond EOF)."""
        if offset < 0 or length < 0:
            raise PFSError(f"negative read range: offset={offset} length={length}")
        out = np.zeros(length, dtype=np.uint8)
        avail = min(self.size, offset + length) - offset
        if avail > 0:
            out[:avail] = self._buf[offset : offset + avail]
        return out

    # ------------------------------------------------------------------
    # Vectored access over run lists
    # ------------------------------------------------------------------

    def writev(self, offsets, lengths, data) -> None:
        """Scatter contiguous ``data`` into the runs (run order).

        ``sum(lengths)`` must equal ``len(data)`` in bytes.
        """
        offsets = np.asarray(offsets, dtype=np.int64)
        lengths = np.asarray(lengths, dtype=np.int64)
        raw = np.asarray(data).reshape(-1).view(np.uint8)
        total = int(lengths.sum())
        if total != len(raw):
            raise PFSError(f"writev: runs cover {total} bytes, data has {len(raw)}")
        if len(offsets) == 0:
            return
        if len(offsets) and int(offsets.min()) < 0:
            raise PFSError("writev: negative offset")
        end = int((offsets + lengths).max())
        self._ensure(end)
        if len(offsets) == 1:
            o, l = int(offsets[0]), int(lengths[0])
            self._buf[o : o + l] = raw
        elif len(offsets) < _LOOP_THRESHOLD:
            pos = 0
            for o, l in zip(offsets.tolist(), lengths.tolist()):
                self._buf[o : o + l] = raw[pos : pos + l]
                pos += l
        else:
            self._buf[_expand_indices(offsets, lengths)] = raw
        if end > self.size:
            self.size = end

    def readv(self, offsets, lengths) -> np.ndarray:
        """Gather the runs into a fresh contiguous buffer (run order)."""
        offsets = np.asarray(offsets, dtype=np.int64)
        lengths = np.asarray(lengths, dtype=np.int64)
        total = int(lengths.sum())
        out = np.zeros(total, dtype=np.uint8)
        if len(offsets) == 0:
            return out
        if len(offsets) and int(offsets.min()) < 0:
            raise PFSError("readv: negative offset")
        end = int((offsets + lengths).max())
        if end <= self.size:
            if len(offsets) == 1:
                o, l = int(offsets[0]), int(lengths[0])
                out[:] = self._buf[o : o + l]
            elif len(offsets) < _LOOP_THRESHOLD:
                pos = 0
                for o, l in zip(offsets.tolist(), lengths.tolist()):
                    out[pos : pos + l] = self._buf[o : o + l]
                    pos += l
            else:
                out[:] = self._buf[_expand_indices(offsets, lengths)]
            return out
        # Some runs extend past EOF: clamp per run (rare, slow path).
        pos = 0
        for o, l in zip(offsets.tolist(), lengths.tolist()):
            avail = max(min(self.size, o + l) - o, 0)
            if avail:
                out[pos : pos + avail] = self._buf[o : o + avail]
            pos += l
        return out

    def truncate(self, length: int = 0) -> None:
        """Shrink (or zero-extend) the logical size."""
        if length < 0:
            raise PFSError(f"negative truncate length: {length}")
        if length < self.size:
            self._buf[length : self.size] = 0
        else:
            self._ensure(length)
        self.size = length
