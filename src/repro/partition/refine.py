"""Boundary refinement: greedy KL/FM-style passes.

Each pass scans boundary vertices in order of best gain and moves a vertex
to its most-connected other part when that strictly reduces the cut and
keeps part weights within the balance tolerance.  A handful of passes at
each uncoarsening level is the classic METIS recipe; gains are recomputed
locally after each move (degrees are sparse).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.partition.graph import Graph

__all__ = ["refine_kway", "balance_kway"]


def _external_degrees(
    graph: Graph, part: np.ndarray, v: int, k: int
) -> Tuple[np.ndarray, int]:
    """Per-part connection weights of v and its internal degree."""
    conn = np.zeros(k, dtype=np.int64)
    nbrs = graph.neighbors(v)
    wts = graph.neighbor_weights(v)
    np.add.at(conn, part[nbrs], wts)
    internal = int(conn[part[v]])
    return conn, internal


def refine_kway(
    graph: Graph,
    part: np.ndarray,
    k: int,
    *,
    passes: int = 4,
    tolerance: float = 1.05,
) -> np.ndarray:
    """Greedy k-way boundary refinement in place; returns ``part``.

    ``tolerance`` bounds max part weight at ``tolerance * ideal``.
    """
    n = graph.n
    part = np.asarray(part, dtype=np.int64)
    loads = np.bincount(part, weights=graph.vwgt, minlength=k).astype(np.int64)
    total = int(graph.vwgt.sum())
    max_load = int(np.ceil(tolerance * total / k))
    xadj, adjncy, adjwgt = graph.xadj, graph.adjncy, graph.adjwgt

    for _ in range(passes):
        # Boundary: vertices with at least one cross-part neighbor.
        src = np.repeat(np.arange(n, dtype=np.int64), np.diff(xadj))
        cross = part[src] != part[adjncy]
        boundary = np.unique(src[cross])
        if len(boundary) == 0:
            break
        moved = 0
        for v in boundary.tolist():
            pv = int(part[v])
            conn, internal = _external_degrees(graph, part, v, k)
            conn[pv] = -1  # exclude own part from targets
            target = int(np.argmax(conn))
            gain = int(conn[target]) - internal
            if gain <= 0:
                continue
            wv = int(graph.vwgt[v])
            if loads[target] + wv > max_load:
                continue
            if loads[pv] - wv < 0:  # pragma: no cover - defensive
                continue
            part[v] = target
            loads[pv] -= wv
            loads[target] += wv
            moved += 1
        if moved == 0:
            break
    return part


def balance_kway(
    graph: Graph,
    part: np.ndarray,
    k: int,
    *,
    tolerance: float = 1.05,
) -> np.ndarray:
    """Push overweight parts under ``tolerance * ideal`` in place.

    Boundary vertices move first (minimal cut damage, most-connected
    eligible target); if a part is still overweight with no boundary escape
    (disconnected lumps), arbitrary vertices are forced to the lightest
    part.  With unit vertex weights (the finest level) this always
    terminates within tolerance.
    """
    n = graph.n
    part = np.asarray(part, dtype=np.int64)
    loads = np.bincount(part, weights=graph.vwgt, minlength=k).astype(np.int64)
    total = int(graph.vwgt.sum())
    max_load = int(np.ceil(tolerance * total / k))

    for _ in range(8):
        if (loads <= max_load).all():
            return part
        src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.xadj))
        cross = part[src] != part[graph.adjncy]
        boundary = np.unique(src[cross])
        progress = False
        for v in boundary.tolist():
            pv = int(part[v])
            if loads[pv] <= max_load:
                continue
            wv = int(graph.vwgt[v])
            conn, _internal = _external_degrees(graph, part, v, k)
            conn[pv] = -1
            eligible = loads + wv <= max_load
            eligible[pv] = False
            if not eligible.any():
                continue
            masked = np.where(eligible, conn, -1)
            target = int(np.argmax(masked))
            if masked[target] < 0:
                target = int(np.argmin(np.where(eligible, loads, np.iinfo(np.int64).max)))
            part[v] = target
            loads[pv] -= wv
            loads[target] += wv
            progress = True
        if not progress:
            break
    # Forced rebalance for anything still overweight.
    order = np.argsort(graph.vwgt)  # move light vertices first
    for v in order.tolist():
        pv = int(part[v])
        if loads[pv] <= max_load:
            continue
        wv = int(graph.vwgt[v])
        target = int(np.argmin(loads))
        if target == pv or loads[target] + wv > max_load:
            continue
        part[v] = target
        loads[pv] -= wv
        loads[target] += wv
        if (loads <= max_load).all():
            break
    return part
