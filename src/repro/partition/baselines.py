"""Trivial partitioners used as baselines against the multilevel scheme."""

from __future__ import annotations

import numpy as np

from repro.errors import PartitionError

__all__ = ["block_partition", "random_partition"]


def block_partition(n: int, k: int) -> np.ndarray:
    """Contiguous blocks of (nearly) equal size: vertex v -> part v*k//n.

    The natural "no partitioner" choice; for meshes with locality in the
    numbering it is decent, for scrambled numberings it is terrible.
    """
    if n < 0 or k < 1:
        raise PartitionError(f"bad block_partition args: n={n} k={k}")
    return (np.arange(n, dtype=np.int64) * k) // max(n, 1)


def random_partition(n: int, k: int, seed: int = 0) -> np.ndarray:
    """Uniform random assignment (the worst-case baseline: maximal cut)."""
    if n < 0 or k < 1:
        raise PartitionError(f"bad random_partition args: n={n} k={k}")
    rng = np.random.default_rng(seed)
    return rng.integers(0, k, size=n, dtype=np.int64)
