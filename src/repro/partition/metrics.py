"""Partition quality metrics: edge cut, imbalance, ghost statistics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.errors import PartitionError
from repro.partition.graph import Graph

__all__ = ["edge_cut", "imbalance", "ghost_stats", "GhostStats"]


def _check_part(part: np.ndarray, n: int, k: int) -> np.ndarray:
    part = np.asarray(part)
    if len(part) != n:
        raise PartitionError(f"partition vector length {len(part)} != n {n}")
    if len(part) and (part.min() < 0 or part.max() >= k):
        raise PartitionError(f"partition ids outside [0, {k})")
    return part


def edge_cut(graph: Graph, part: np.ndarray) -> int:
    """Total weight of edges whose endpoints live in different parts."""
    part = np.asarray(part)
    if len(part) != graph.n:
        raise PartitionError("partition vector length mismatch")
    src = np.repeat(np.arange(graph.n), np.diff(graph.xadj))
    cut2 = int(graph.adjwgt[part[src] != part[graph.adjncy]].sum())
    return cut2 // 2  # each cut edge counted in both directions


def imbalance(part: np.ndarray, k: int, vwgt: np.ndarray = None) -> float:
    """Max part weight over ideal part weight (1.0 is perfect)."""
    part = np.asarray(part)
    if vwgt is None:
        vwgt = np.ones(len(part), dtype=np.int64)
    loads = np.bincount(part, weights=vwgt, minlength=k)
    total = float(vwgt.sum())
    if total == 0:
        return 1.0
    return float(loads.max()) * k / total


@dataclass(frozen=True)
class GhostStats:
    """Per-partition ghost statistics for an edge-based mesh computation.

    An edge is *local* to every part owning at least one endpoint (the
    paper's rule), so cut edges are replicated; a node referenced by a
    local edge but owned elsewhere is a ghost node.
    """

    owned_nodes: np.ndarray
    local_edges: np.ndarray
    ghost_nodes: np.ndarray
    replicated_edges: int

    @property
    def total_ghosts(self) -> int:
        """Sum of ghost nodes over parts (communication volume proxy)."""
        return int(self.ghost_nodes.sum())


def ghost_stats(edge1, edge2, part: np.ndarray, k: int) -> GhostStats:
    """Compute ghost statistics of an edge list under a node partition."""
    e1 = np.asarray(edge1, dtype=np.int64)
    e2 = np.asarray(edge2, dtype=np.int64)
    part = _check_part(part, int(max(e1.max(), e2.max())) + 1 if len(e1) else len(part), k)
    p1 = part[e1]
    p2 = part[e2]
    owned = np.bincount(part, minlength=k).astype(np.int64)
    # Edge assigned to p1's part always; additionally to p2's when different.
    local = np.bincount(p1, minlength=k).astype(np.int64)
    cross = p1 != p2
    local += np.bincount(p2[cross], minlength=k).astype(np.int64)
    # Ghost nodes per part: distinct nodes referenced via cut edges from the
    # other side.  Node e2 is a ghost of part p1 where p1 != p2 (and vice
    # versa); count distinct (part, node) pairs.
    gp = np.concatenate([p1[cross], p2[cross]])
    gn = np.concatenate([e2[cross], e1[cross]])
    if len(gp):
        pairs = np.unique(gp * (int(max(e1.max(), e2.max())) + 1) + gn)
        ghost_parts = pairs // (int(max(e1.max(), e2.max())) + 1)
        ghosts = np.bincount(ghost_parts, minlength=k).astype(np.int64)
    else:
        ghosts = np.zeros(k, dtype=np.int64)
    return GhostStats(
        owned_nodes=owned,
        local_edges=local,
        ghost_nodes=ghosts,
        replicated_edges=int(cross.sum()),
    )
