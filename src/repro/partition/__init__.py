"""Graph partitioning: the MeTis stand-in.

The paper's applications partition mesh *nodes* with a partitioning vector
"generated from a partitioning tool, such as MeTis".  This package provides
that tool: a multilevel k-way partitioner in the METIS mould —

1. **coarsening** by heavy-edge matching until the graph is small,
2. **initial partitioning** by greedy graph growing on the coarsest graph,
3. **uncoarsening** with boundary Kernighan–Lin/Fiduccia–Mattheyses-style
   refinement at every level —

plus the trivial baselines (block, random) and quality metrics (edge cut,
imbalance, ghost statistics) that the benchmarks report.

Example::

    g = Graph.from_edges(n_nodes, edge1, edge2)
    part = multilevel_kway(g, k=64, seed=1)     # the partitioning vector
    print(edge_cut(g, part), imbalance(part, 64))
"""

from repro.partition.graph import Graph
from repro.partition.metrics import edge_cut, ghost_stats, imbalance
from repro.partition.baselines import block_partition, random_partition
from repro.partition.multilevel import multilevel_kway

__all__ = [
    "Graph",
    "edge_cut",
    "imbalance",
    "ghost_stats",
    "block_partition",
    "random_partition",
    "multilevel_kway",
]
