"""The multilevel k-way driver (METIS-style partitioning vector generator)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import PartitionError
from repro.partition.coarsen import contract, heavy_edge_matching
from repro.partition.graph import Graph
from repro.partition.initial import greedy_grow
from repro.partition.refine import balance_kway, refine_kway

__all__ = ["multilevel_kway", "MultilevelReport"]


@dataclass
class MultilevelReport:
    """Diagnostics of one multilevel run (attached to the result array)."""

    levels: int
    coarsest_n: int
    sizes: List[int]


def multilevel_kway(
    graph: Graph,
    k: int,
    seed: int = 0,
    *,
    tolerance: float = 1.05,
    refine_passes: int = 4,
    coarsen_to: int = 0,
) -> np.ndarray:
    """Partition ``graph`` into ``k`` parts; returns the partitioning vector.

    Parameters
    ----------
    graph:
        The (node) graph to partition.
    k:
        Number of parts (the process count in SDM's use).
    seed:
        RNG seed — same seed, same vector (partitioning vectors must be
        reproducible for history files to make sense).
    tolerance:
        Balance bound: max part weight <= tolerance * ideal.
    refine_passes:
        Boundary refinement passes per level.
    coarsen_to:
        Stop coarsening at this many vertices (default ``max(120, 12*k)``).
    """
    if k < 1:
        raise PartitionError(f"k must be >= 1, got {k}")
    if graph.n == 0:
        return np.empty(0, dtype=np.int64)
    if k == 1:
        return np.zeros(graph.n, dtype=np.int64)
    if k > graph.n:
        raise PartitionError(f"k={k} exceeds vertex count {graph.n}")
    rng = np.random.default_rng(seed)
    target = coarsen_to if coarsen_to > 0 else max(120, 12 * k)

    # Coarsening phase.
    levels: List[Graph] = [graph]
    maps: List[np.ndarray] = []
    g = graph
    while g.n > target:
        match = heavy_edge_matching(g, rng)
        coarse, cmap = contract(g, match)
        if coarse.n > 0.95 * g.n:
            break  # matching stalled (e.g. star graphs): stop coarsening
        levels.append(coarse)
        maps.append(cmap)
        g = coarse

    # Initial partition on the coarsest graph.
    part = greedy_grow(levels[-1], k, rng)
    part = balance_kway(levels[-1], part, k, tolerance=tolerance)
    part = refine_kway(levels[-1], part, k, passes=refine_passes, tolerance=tolerance)

    # Uncoarsen with balance + refinement at each level.
    for level in range(len(maps) - 1, -1, -1):
        part = part[maps[level]]
        part = balance_kway(levels[level], part, k, tolerance=tolerance)
        part = refine_kway(
            levels[level], part, k, passes=refine_passes, tolerance=tolerance
        )
    # Finest level has unit weights: enforce the balance bound strictly.
    part = balance_kway(graph, part, k, tolerance=tolerance)
    return part
