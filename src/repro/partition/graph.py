"""CSR graphs built from mesh edge lists (vectorized construction)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import PartitionError

__all__ = ["Graph"]


class Graph:
    """Undirected weighted graph in CSR form.

    Attributes
    ----------
    n:
        Number of vertices.
    xadj:
        int64 array of length ``n+1``: adjacency-list offsets.
    adjncy:
        int64 array: concatenated neighbor lists.
    adjwgt:
        int64 array: edge weight per adjacency entry (symmetric).
    vwgt:
        int64 array of length ``n``: vertex weights.
    """

    def __init__(
        self,
        xadj: np.ndarray,
        adjncy: np.ndarray,
        adjwgt: np.ndarray,
        vwgt: np.ndarray,
    ) -> None:
        self.xadj = xadj
        self.adjncy = adjncy
        self.adjwgt = adjwgt
        self.vwgt = vwgt
        self.n = len(xadj) - 1

    @classmethod
    def from_edges(
        cls,
        n_vertices: int,
        edge1,
        edge2,
        edge_weights: Optional[np.ndarray] = None,
        vertex_weights: Optional[np.ndarray] = None,
    ) -> "Graph":
        """Build from parallel endpoint arrays (the mesh's edge1/edge2).

        Self-loops are dropped; parallel edges are merged with weights
        summed.  Construction is fully vectorized.
        """
        e1 = np.asarray(edge1, dtype=np.int64)
        e2 = np.asarray(edge2, dtype=np.int64)
        if e1.shape != e2.shape or e1.ndim != 1:
            raise PartitionError("edge1/edge2 must be equal-length 1-D arrays")
        if n_vertices <= 0:
            raise PartitionError(f"n_vertices must be positive, got {n_vertices}")
        if len(e1) and (min(e1.min(), e2.min()) < 0 or max(e1.max(), e2.max()) >= n_vertices):
            raise PartitionError("edge endpoint out of range")
        w = (
            np.asarray(edge_weights, dtype=np.int64)
            if edge_weights is not None
            else np.ones(len(e1), dtype=np.int64)
        )
        if w.shape != e1.shape:
            raise PartitionError("edge_weights length mismatch")
        keep = e1 != e2
        e1, e2, w = e1[keep], e2[keep], w[keep]
        # Symmetrize: each edge appears in both directions.
        src = np.concatenate([e1, e2])
        dst = np.concatenate([e2, e1])
        ww = np.concatenate([w, w])
        # Merge parallel edges: unique (src, dst) with summed weights.
        key = src * n_vertices + dst
        order = np.argsort(key, kind="stable")
        key_s = key[order]
        uniq_mask = np.empty(len(key_s), dtype=bool)
        if len(key_s):
            uniq_mask[0] = True
            np.not_equal(key_s[1:], key_s[:-1], out=uniq_mask[1:])
        group = np.cumsum(uniq_mask) - 1 if len(key_s) else np.empty(0, dtype=np.int64)
        merged_w = (
            np.bincount(group, weights=ww[order]).astype(np.int64)
            if len(key_s)
            else np.empty(0, dtype=np.int64)
        )
        merged_key = key_s[uniq_mask] if len(key_s) else key_s
        msrc = merged_key // n_vertices
        mdst = merged_key % n_vertices
        counts = np.bincount(msrc, minlength=n_vertices)
        xadj = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(counts, dtype=np.int64))
        )
        vwgt = (
            np.asarray(vertex_weights, dtype=np.int64)
            if vertex_weights is not None
            else np.ones(n_vertices, dtype=np.int64)
        )
        if len(vwgt) != n_vertices:
            raise PartitionError("vertex_weights length mismatch")
        return cls(xadj, mdst.astype(np.int64), merged_w, vwgt)

    @property
    def n_edges(self) -> int:
        """Number of undirected edges."""
        return len(self.adjncy) // 2

    def degree(self, v: int) -> int:
        """Number of neighbors of ``v``."""
        return int(self.xadj[v + 1] - self.xadj[v])

    def neighbors(self, v: int) -> np.ndarray:
        """Neighbor ids of ``v`` (CSR slice view)."""
        return self.adjncy[self.xadj[v] : self.xadj[v + 1]]

    def neighbor_weights(self, v: int) -> np.ndarray:
        """Edge weights aligned with :meth:`neighbors`."""
        return self.adjwgt[self.xadj[v] : self.xadj[v + 1]]

    def total_vertex_weight(self) -> int:
        """Sum of vertex weights."""
        return int(self.vwgt.sum())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Graph n={self.n} m={self.n_edges}>"
