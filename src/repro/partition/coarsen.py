"""Coarsening: heavy-edge matching and graph contraction."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.partition.graph import Graph

__all__ = ["heavy_edge_matching", "contract"]

UNMATCHED = -1


def heavy_edge_matching(graph: Graph, rng: np.random.Generator) -> np.ndarray:
    """Greedy heavy-edge matching (HEM).

    Vertices are visited in random order; an unmatched vertex matches its
    unmatched neighbor of maximum edge weight (ties to the first seen).
    Returns ``match`` with ``match[v]`` = partner (or ``v`` itself if no
    partner was available).
    """
    n = graph.n
    match = np.full(n, UNMATCHED, dtype=np.int64)
    order = rng.permutation(n)
    xadj, adjncy, adjwgt = graph.xadj, graph.adjncy, graph.adjwgt
    for v in order.tolist():
        if match[v] != UNMATCHED:
            continue
        best = -1
        best_w = -1
        for i in range(xadj[v], xadj[v + 1]):
            u = adjncy[i]
            if match[u] == UNMATCHED and u != v:
                w = adjwgt[i]
                if w > best_w:
                    best_w = w
                    best = u
        if best >= 0:
            match[v] = best
            match[best] = v
        else:
            match[v] = v
    return match


def contract(graph: Graph, match: np.ndarray) -> Tuple[Graph, np.ndarray]:
    """Contract matched pairs into coarse vertices.

    Returns ``(coarse_graph, cmap)`` where ``cmap[v]`` is the coarse vertex
    of fine vertex ``v``.  Coarse vertex weights are sums; internal (matched)
    edges disappear; parallel edges merge with weights summed (handled by
    :meth:`Graph.from_edges`).
    """
    n = graph.n
    # Number coarse vertices: one per matched pair / singleton, in order of
    # the smaller endpoint.
    reps = np.minimum(np.arange(n, dtype=np.int64), match)
    is_rep = reps == np.arange(n)
    cmap_rep = np.cumsum(is_rep) - 1
    cmap = cmap_rep[reps]
    n_coarse = int(is_rep.sum())
    # Coarse vertex weights.
    cvwgt = np.bincount(cmap, weights=graph.vwgt, minlength=n_coarse).astype(np.int64)
    # Fine adjacency in coarse ids (directed copies; from_edges merges).
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.xadj))
    csrc = cmap[src]
    cdst = cmap[graph.adjncy]
    keep = csrc < cdst  # one direction only; drops contracted (equal) pairs
    coarse = Graph.from_edges(
        n_coarse,
        csrc[keep],
        cdst[keep],
        edge_weights=graph.adjwgt[keep],
        vertex_weights=cvwgt,
    )
    return coarse, cmap
