"""Initial partitioning of the coarsest graph: greedy graph growing.

Seeds are spread by repeated farthest-first BFS; regions then grow one
frontier vertex at a time, always extending the currently lightest part
(greedy graph growing partitioning, GGGP-style).  Unreached vertices
(disconnected components) back-fill the lightest parts.
"""

from __future__ import annotations

import heapq
from typing import List

import numpy as np

from repro.partition.graph import Graph

__all__ = ["greedy_grow"]


def _bfs_far_vertex(graph: Graph, start: int) -> int:
    """Vertex at maximal BFS distance from ``start``."""
    n = graph.n
    dist = np.full(n, -1, dtype=np.int64)
    dist[start] = 0
    frontier = [start]
    last = start
    while frontier:
        nxt: List[int] = []
        for v in frontier:
            for u in graph.neighbors(v).tolist():
                if dist[u] < 0:
                    dist[u] = dist[v] + 1
                    nxt.append(u)
                    last = u
        frontier = nxt
    return last


def _spread_seeds(graph: Graph, k: int, rng: np.random.Generator) -> List[int]:
    """k seeds via farthest-first traversal from a random start."""
    first = int(rng.integers(graph.n))
    seeds = [_bfs_far_vertex(graph, first)]
    n = graph.n
    dist = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
    for _ in range(k - 1):
        # Multi-source BFS from current seeds to find the farthest vertex.
        newest = seeds[-1]
        d = np.full(n, -1, dtype=np.int64)
        d[newest] = 0
        frontier = [newest]
        while frontier:
            nxt: List[int] = []
            for v in frontier:
                for u in graph.neighbors(v).tolist():
                    if d[u] < 0:
                        d[u] = d[v] + 1
                        nxt.append(u)
            frontier = nxt
        reached = d >= 0
        dist[reached] = np.minimum(dist[reached], d[reached])
        dist[~reached & (dist == np.iinfo(np.int64).max)] = -2  # unreachable
        candidates = np.where(dist >= 0)[0]
        if len(candidates) == 0:
            seeds.append(int(rng.integers(n)))
        else:
            seeds.append(int(candidates[np.argmax(dist[candidates])]))
    return seeds[:k]


def greedy_grow(graph: Graph, k: int, rng: np.random.Generator) -> np.ndarray:
    """Grow ``k`` balanced regions from spread seeds; returns part vector."""
    n = graph.n
    part = np.full(n, -1, dtype=np.int64)
    if k == 1:
        return np.zeros(n, dtype=np.int64)
    if k >= n:
        return np.arange(n, dtype=np.int64) % k
    seeds = _spread_seeds(graph, k, rng)
    loads = np.zeros(k, dtype=np.int64)
    frontiers: List[List[int]] = [[] for _ in range(k)]
    counter = 0
    for p, s in enumerate(seeds):
        if part[s] != -1:
            # Seed collision (tiny graphs): pick any free vertex.
            free = np.where(part == -1)[0]
            s = int(free[0])
        part[s] = p
        loads[p] += int(graph.vwgt[s])
        frontiers[p] = [s]
    # Grow: repeatedly extend the lightest part that still has a frontier.
    heap = [(int(loads[p]), p) for p in range(k)]
    heapq.heapify(heap)
    assigned = int((part != -1).sum())
    stale_rounds = 0
    while assigned < n and heap:
        load, p = heapq.heappop(heap)
        if load != loads[p]:
            heapq.heappush(heap, (int(loads[p]), p))
            stale_rounds += 1
            if stale_rounds > 4 * k:
                break
            continue
        stale_rounds = 0
        # Find an unassigned vertex adjacent to part p.
        grown = False
        frontier = frontiers[p]
        while frontier and not grown:
            v = frontier[-1]
            for u in graph.neighbors(v).tolist():
                if part[u] == -1:
                    part[u] = p
                    loads[p] += int(graph.vwgt[u])
                    frontier.append(u)
                    assigned += 1
                    grown = True
                    counter += 1
                    break
            if not grown:
                frontier.pop()
        if grown or frontier:
            heapq.heappush(heap, (int(loads[p]), p))
        # Parts with exhausted frontiers drop out of the heap.
    # Back-fill disconnected leftovers onto the lightest parts.
    leftovers = np.where(part == -1)[0]
    for v in leftovers.tolist():
        p = int(np.argmin(loads))
        part[v] = p
        loads[p] += int(graph.vwgt[v])
    return part
