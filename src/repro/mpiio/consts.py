"""MPI-IO access-mode flags."""

from __future__ import annotations

MODE_CREATE = 0x01
"""Create the file if it does not exist."""

MODE_RDONLY = 0x02
"""Read-only access."""

MODE_WRONLY = 0x04
"""Write-only access."""

MODE_RDWR = 0x08
"""Read-write access."""

MODE_EXCL = 0x40
"""Error if MODE_CREATE and the file already exists."""

MODE_APPEND = 0x80
"""Position the individual file pointer at end-of-file on open."""
