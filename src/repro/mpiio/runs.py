"""Vectorized byte-run coalescing: merge many small I/O requests into few.

The collective-I/O discipline of the source paper (and of ROMIO's data
sieving / two-phase machinery) is to never let "many small noncontiguous
requests" reach the file system.  This module is the request-merging core
the rest of the I/O stack shares:

* :func:`coalesce_runs` — merge sorted byte runs into maximal contiguous
  runs, optionally bridging holes of at most ``gap`` bytes (the
  data-sieving trade: read-and-discard a small hole to save a request);
* :func:`coalesce_positions` — the uniform-width special case the chunked
  read path uses (element positions, all ``width`` bytes long);
* :func:`extract_runs` / :func:`gather_elements` — pull the originally
  requested bytes back out of a coalesced read blob (which may contain
  bridged hole bytes), fully vectorized.

Every function is O(n) numpy work with no Python-level per-run loop; the
``owner`` array returned by the coalescers (input run -> coalesced run) is
what makes the inverse mapping vectorizable.

Gap-tolerant merging (``gap > 0``) is only meaningful for *reads* — a
write must not touch hole bytes.  Zero-gap coalescing of sorted
non-overlapping runs is *lossless* (``clen.sum() == lengths.sum()``, the
coalesced byte stream is exactly the concatenated input runs) and is
therefore safe for writes too.

The gap itself may be *derived* instead of configured: with the
``coalesce_gap`` hint set to :data:`ADAPTIVE_GAP` (-1), every read calls
:func:`adaptive_gap` on its own run list and bridges the largest holes it
can while the bridged (read-and-discarded) bytes stay under a configured
fraction of the payload.  The choice is a pure function of the rank's own
runs — each rank coalesces only the runs it ships into the collective —
so per-rank adaptivity never diverges a collective's shape.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = [
    "ADAPTIVE_GAP",
    "adaptive_gap",
    "adaptive_gap_positions",
    "coalesce_runs",
    "coalesce_positions",
    "extract_runs",
    "gather_elements",
    "resolve_gap",
    "resolve_gap_positions",
]

ADAPTIVE_GAP = -1
"""``coalesce_gap`` sentinel: derive the gap per read from the hole
distribution (see :func:`adaptive_gap`) instead of using a fixed byte
count."""

_EMPTY = np.empty(0, dtype=np.int64)


def _gap_from_holes(
    holes: np.ndarray,
    payload: int,
    waste_fraction: float,
    max_gap: Optional[int],
) -> int:
    """Largest gap whose bridged holes total <= ``waste_fraction * payload``.

    ``holes`` are the positive hole sizes of one run list.  Bridging at
    gap ``g`` reads-and-discards every hole of size <= ``g``, so the
    waste of a candidate gap is the cumulative size of all holes up to
    it: sort the distinct hole sizes, accumulate ``size * count``, and
    take the largest size still within budget.  ``max_gap`` additionally
    caps the result (the data-sieving threshold: a hole that large is
    cheaper as a separate request no matter the budget).
    """
    holes = holes[holes > 0]
    if len(holes) == 0 or payload <= 0:
        return 0
    sizes, counts = np.unique(holes, return_counts=True)
    if max_gap is not None:
        keep = sizes <= max_gap
        sizes, counts = sizes[keep], counts[keep]
        if len(sizes) == 0:
            return 0
    waste = np.cumsum(sizes * counts)
    budget = waste_fraction * payload
    k = int(np.searchsorted(waste, budget, side="right"))
    return int(sizes[k - 1]) if k > 0 else 0


def adaptive_gap(
    offsets: np.ndarray,
    lengths: np.ndarray,
    waste_fraction: float = 0.25,
    max_gap: Optional[int] = None,
) -> int:
    """Derive a coalescing gap from one run list's hole distribution.

    Holes are measured against the zero-gap coalescing reach (ascending
    ``offsets``, overlaps covered), payload is ``lengths.sum()``; see
    :func:`_gap_from_holes` for the budgeted choice.
    """
    off = np.asarray(offsets, dtype=np.int64).reshape(-1)
    ln = np.asarray(lengths, dtype=np.int64).reshape(-1)
    if len(off) < 2:
        return 0
    reach = np.maximum.accumulate(off + ln)
    return _gap_from_holes(
        off[1:] - reach[:-1], int(ln.sum()), waste_fraction, max_gap
    )


def adaptive_gap_positions(
    positions: np.ndarray,
    width: int,
    waste_fraction: float = 0.25,
    max_gap: Optional[int] = None,
) -> int:
    """Uniform-width special case of :func:`adaptive_gap` (the chunked
    read path's shape: unique ascending element positions)."""
    pos = np.asarray(positions, dtype=np.int64).reshape(-1)
    if len(pos) < 2:
        return 0
    return _gap_from_holes(
        np.diff(pos) - width, len(pos) * width, waste_fraction, max_gap
    )


def resolve_gap(
    gap: int,
    offsets: np.ndarray,
    lengths: np.ndarray,
    waste_fraction: float = 0.25,
    max_gap: Optional[int] = None,
) -> int:
    """The effective gap for one read: the hint's value, or — for
    :data:`ADAPTIVE_GAP` (any negative value) — :func:`adaptive_gap` of
    this run list."""
    if gap >= 0:
        return gap
    return adaptive_gap(offsets, lengths, waste_fraction, max_gap)


def resolve_gap_positions(
    gap: int,
    positions: np.ndarray,
    width: int,
    waste_fraction: float = 0.25,
    max_gap: Optional[int] = None,
) -> int:
    """:func:`resolve_gap` for the uniform-width position shape."""
    if gap >= 0:
        return gap
    return adaptive_gap_positions(positions, width, waste_fraction, max_gap)


def coalesce_runs(
    offsets: np.ndarray, lengths: np.ndarray, gap: int = 0
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Merge sorted byte runs into maximal runs bridging holes <= ``gap``.

    ``offsets`` must be ascending; runs may abut or overlap (a coalesced
    run covers through the furthest end seen so far, like
    :func:`repro.mpiio.twophase.union_runs`).  Returns ``(coff, clen,
    owner)`` where ``owner[i]`` is the index of the coalesced run
    containing input run ``i``.
    """
    off = np.asarray(offsets, dtype=np.int64).reshape(-1)
    ln = np.asarray(lengths, dtype=np.int64).reshape(-1)
    n = len(off)
    if n == 0:
        return _EMPTY.copy(), _EMPTY.copy(), _EMPTY.copy()
    ends = off + ln
    reach = np.maximum.accumulate(ends)
    new = np.empty(n, dtype=bool)
    new[0] = True
    np.greater(off[1:], reach[:-1] + gap, out=new[1:])
    owner = np.cumsum(new, dtype=np.int64) - 1
    starts = np.flatnonzero(new)
    coff = off[starts]
    cend = np.maximum.reduceat(ends, starts)
    return coff, cend - coff, owner


def coalesce_positions(
    positions: np.ndarray, width: int, gap: int = 0
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Coalesced byte runs for sorted positions of uniform ``width`` bytes.

    The chunked read path's shape: ``positions`` are the (unique,
    ascending) file offsets of wanted elements, each ``width`` bytes.
    Adjacent elements (``diff == width``) always merge; holes up to
    ``gap`` bytes are bridged.  Returns ``(coff, clen, owner)`` with
    ``owner[i]`` the coalesced run holding element ``i``.
    """
    pos = np.asarray(positions, dtype=np.int64).reshape(-1)
    n = len(pos)
    if n == 0:
        return _EMPTY.copy(), _EMPTY.copy(), _EMPTY.copy()
    new = np.empty(n, dtype=bool)
    new[0] = True
    np.greater(np.diff(pos), width + gap, out=new[1:])
    owner = np.cumsum(new, dtype=np.int64) - 1
    starts = np.flatnonzero(new)
    last = np.r_[starts[1:] - 1, n - 1]
    coff = pos[starts]
    clen = pos[last] + width - coff
    return coff, clen, owner


def extract_runs(
    blob: np.ndarray,
    coff: np.ndarray,
    clen: np.ndarray,
    offsets: np.ndarray,
    lengths: np.ndarray,
    owner: np.ndarray,
) -> np.ndarray:
    """Original runs' bytes out of a coalesced read blob, in input order.

    ``blob`` is the concatenated coalesced runs (bridged hole bytes
    included); the result has ``lengths.sum()`` bytes — exactly the bytes
    the caller asked for before coalescing.
    """
    ln = np.asarray(lengths, dtype=np.int64).reshape(-1)
    total = int(ln.sum())
    if total == 0:
        return np.empty(0, dtype=np.uint8)
    cstart = np.cumsum(clen, dtype=np.int64) - clen
    run_start = cstart[owner] + (np.asarray(offsets, dtype=np.int64) - coff[owner])
    first = np.cumsum(ln, dtype=np.int64) - ln
    idx = np.arange(total, dtype=np.int64) + np.repeat(run_start - first, ln)
    return blob[idx]


def gather_elements(
    blob: np.ndarray,
    coff: np.ndarray,
    clen: np.ndarray,
    positions: np.ndarray,
    width: int,
    owner: np.ndarray,
) -> np.ndarray:
    """Uniform-width special case of :func:`extract_runs`.

    Returns the ``len(positions) * width`` requested bytes in position
    order, pulled out of the coalesced blob with one 2-D fancy index.
    """
    pos = np.asarray(positions, dtype=np.int64).reshape(-1)
    if len(pos) == 0:
        return np.empty(0, dtype=np.uint8)
    cstart = np.cumsum(clen, dtype=np.int64) - clen
    elem_start = cstart[owner] + (pos - coff[owner])
    idx = elem_start[:, None] + np.arange(width, dtype=np.int64)[None, :]
    return np.ascontiguousarray(blob[idx]).reshape(-1)
