"""MPI-IO on the simulated parallel file system.

The layer SDM actually calls: file views built from derived datatypes, and
independent vs. collective data operations with the classic ROMIO
optimizations:

* **File views** (:class:`~repro.mpiio.view.FileView`) — ``(displacement,
  etype, filetype)`` triples mapping a rank's linear data stream onto
  noncontiguous file regions (vectorized run-list expansion).
* **Data sieving** (:mod:`~repro.mpiio.sieving`) — independent noncontiguous
  access groups nearby runs into large covering requests (read-modify-write
  for writes) instead of issuing one tiny request per run.
* **Two-phase collective I/O** (:mod:`~repro.mpiio.twophase`) — ranks
  exchange data with a set of aggregator ranks that each own a contiguous
  slice of the file domain and issue few large requests; this is what turns
  64 ranks' interleaved 8-byte writes into controller-saturating streams.

Entry point is :class:`~repro.mpiio.file.File`, mirroring mpi4py's
``MPI.File``: ``File.open(comm, fs, name, amode)``, ``set_view``,
``read_at/write_at`` (independent), ``read_at_all/write_at_all``
(collective), individual file pointers, ``close``.
"""

from repro.mpiio.consts import (
    MODE_APPEND,
    MODE_CREATE,
    MODE_EXCL,
    MODE_RDONLY,
    MODE_RDWR,
    MODE_WRONLY,
)
from repro.mpiio.hints import Hints
from repro.mpiio.view import FileView
from repro.mpiio.file import File

__all__ = [
    "File",
    "FileView",
    "Hints",
    "MODE_RDONLY",
    "MODE_WRONLY",
    "MODE_RDWR",
    "MODE_CREATE",
    "MODE_EXCL",
    "MODE_APPEND",
]
