"""Two-phase (collective-buffering) I/O, ROMIO style.

Collective read/write of noncontiguous interleaved data proceeds in two
phases instead of thousands of tiny independent requests:

1. **Exchange** — the file range covered by the call is split into
   contiguous *file domains*, one per aggregator rank (``cb_nodes`` of
   them, stripe-aligned).  Every rank splits its byte runs by domain and
   ships ``(offsets, lengths, data)`` segments to the owning aggregators
   with one ``alltoallv``.
2. **Access** — each aggregator coalesces the segments it received into
   maximal contiguous *union runs* and accesses the file system in at most
   ``cb_buffer_size``-byte requests, each a streaming transfer.  Requests
   are scheduled striping-aware (:mod:`repro.pfs.scheduler`): every batch
   targets a single controller, and aggregators stagger their starting
   controller by rank so a collective drives all controllers concurrently.

Writes resolve overlapping segments deterministically: segments are applied
in source-rank order, so the highest writing rank wins byte-wise (matters
for SDM's ghost-inclusive map arrays, where overlapping values are equal
anyway).  Reads are the mirror image with a second ``alltoallv`` returning
data.

All data movement is real numpy traffic; all timing (exchange cost,
aggregator memcpy, controller contention) comes from the machine model.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.mpi.communicator import Communicator
from repro.mpi.ops import MAX, MIN
from repro.mpiio.hints import Hints
from repro.pfs.file import PFSHandle
from repro.pfs.filesystem import FileSystem
from repro.pfs.scheduler import controller_batches
from repro.simt.process import Process

__all__ = [
    "file_domain_bounds",
    "split_runs_by_bounds",
    "union_runs",
    "collective_write",
    "collective_read",
]

_NO_OFFSET = 1 << 62


def file_domain_bounds(glo: int, ghi: int, naggs: int, align: int) -> np.ndarray:
    """Domain boundaries: ``naggs+1`` positions splitting [glo, ghi).

    Interior bounds are aligned down to ``align`` (stripe size), so one
    stripe is never shared by two aggregators.
    """
    if ghi <= glo:
        raise ValueError(f"empty global range [{glo}, {ghi})")
    raw = glo + ((ghi - glo) * np.arange(naggs + 1, dtype=np.int64)) // naggs
    bounds = (raw // align) * align
    bounds[0] = glo
    bounds[-1] = ghi
    return np.maximum.accumulate(bounds)


def split_runs_by_bounds(
    offsets: np.ndarray, lengths: np.ndarray, bounds: np.ndarray
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Clip sorted non-overlapping runs into each ``[bounds[d], bounds[d+1])``.

    Returns one ``(offsets, lengths)`` pair per domain; a run crossing a
    boundary contributes a clipped piece to both sides.  Data order is
    preserved: concatenating the pieces domain-by-domain reproduces the
    original byte stream.
    """
    ends = offsets + lengths
    out: List[Tuple[np.ndarray, np.ndarray]] = []
    for d in range(len(bounds) - 1):
        lo, hi = int(bounds[d]), int(bounds[d + 1])
        i0 = int(np.searchsorted(ends, lo, side="right"))
        i1 = int(np.searchsorted(offsets, hi, side="left"))
        if i0 >= i1:
            out.append(
                (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
            )
            continue
        o = offsets[i0:i1].copy()
        l = lengths[i0:i1].copy()
        if o[0] < lo:
            l[0] -= lo - o[0]
            o[0] = lo
        if o[-1] + l[-1] > hi:
            l[-1] = hi - o[-1]
        out.append((o, l))
    return out


def union_runs(offsets: np.ndarray, lengths: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Maximal contiguous intervals covering possibly-overlapping runs."""
    if len(offsets) == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    order = np.argsort(offsets, kind="stable")
    so = offsets[order]
    se = so + lengths[order]
    running_end = np.maximum.accumulate(se)
    new = np.empty(len(so), dtype=bool)
    new[0] = True
    np.greater(so[1:], running_end[:-1], out=new[1:])
    starts_idx = np.flatnonzero(new)
    uo = so[starts_idx]
    ue = np.maximum.reduceat(se, starts_idx)
    return uo, ue - uo


def _segment_scatter_indices(
    seg_off: np.ndarray, seg_len: np.ndarray, uo: np.ndarray, ucum: np.ndarray
) -> np.ndarray:
    """Byte indices (into union space) each segment byte lands at, in
    concatenation (source-rank) order."""
    k = np.searchsorted(uo, seg_off, side="right") - 1
    base = ucum[k] + (seg_off - uo[k])
    total = int(seg_len.sum())
    starts = np.repeat(base, seg_len)
    run_first = np.cumsum(seg_len) - seg_len
    within = np.arange(total, dtype=np.int64) - np.repeat(run_first, seg_len)
    return starts + within


def _gather_segments(
    recv: Sequence[Optional[tuple]],
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray], np.ndarray]:
    """Concatenate per-source segment tuples (src-rank order).

    Returns (offsets, lengths, data-or-None, per-source piece counts).
    """
    offs, lens, datas, counts = [], [], [], []
    for entry in recv:
        if entry is None:
            counts.append(0)
            continue
        o, l = entry[0], entry[1]
        counts.append(len(o))
        offs.append(o)
        lens.append(l)
        if len(entry) > 2 and entry[2] is not None:
            datas.append(entry[2])
    if not offs:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            None,
            np.array(counts, dtype=np.int64),
        )
    data = np.concatenate(datas) if datas else None
    return (
        np.concatenate(offs),
        np.concatenate(lens),
        data,
        np.array(counts, dtype=np.int64),
    )


def _local_extent(offsets: np.ndarray, lengths: np.ndarray) -> Tuple[int, int]:
    if len(offsets) == 0:
        return _NO_OFFSET, -1
    return int(offsets[0]), int(offsets[-1] + lengths[-1])


def collective_write(
    comm: Communicator,
    proc: Process,
    fs: FileSystem,
    handle: PFSHandle,
    offsets: np.ndarray,
    lengths: np.ndarray,
    data: np.ndarray,
    hints: Hints,
) -> int:
    """Two-phase collective write of this rank's runs; returns local bytes."""
    handle.check_writable()
    fs.runs_submitted += len(offsets)
    raw = np.asarray(data).reshape(-1).view(np.uint8)
    lo, hi = _local_extent(offsets, lengths)
    glo = comm.allreduce(lo, op=MIN)
    ghi = comm.allreduce(hi, op=MAX)
    if ghi <= glo:
        comm.barrier()
        return 0
    naggs = hints.resolve_cb_nodes(comm.size, fs.machine.storage.n_controllers)
    bounds = file_domain_bounds(glo, ghi, naggs, fs.machine.storage.stripe_size)
    pieces = split_runs_by_bounds(offsets, lengths, bounds)

    sends: List[Optional[tuple]] = [None] * comm.size
    pos = 0
    for d, (o, l) in enumerate(pieces):
        nb = int(l.sum())
        if len(o):
            sends[d] = (o, l, raw[pos : pos + nb])
        pos += nb
    recv = comm.alltoallv(sends)

    if comm.rank < naggs:
        seg_off, seg_len, seg_data, _counts = _gather_segments(recv)
        if len(seg_off):
            uo, ul = union_runs(seg_off, seg_len)
            ucum = np.concatenate(
                (np.zeros(1, dtype=np.int64), np.cumsum(ul, dtype=np.int64))
            )
            scratch = np.zeros(int(ul.sum()), dtype=np.uint8)
            idx = _segment_scatter_indices(seg_off, seg_len, uo, ucum[:-1])
            scratch[idx] = seg_data  # src-rank order: highest rank wins overlaps
            proc.hold(fs.machine.compute.copy_time(len(seg_data)))
            # Striping-aware access: single-controller batches, staggered
            # by rank so concurrent aggregators start on disjoint
            # controller queues.  Batches are arbitrary sub-runs of the
            # union, so each slices its scratch bytes by scatter index
            # instead of a sequential cursor.
            layout = handle.file.layout
            for ctl, b_off, b_len in controller_batches(
                layout, uo, ul, hints.cb_buffer_size,
                start=comm.rank % layout.n_controllers,
            ):
                bidx = _segment_scatter_indices(b_off, b_len, uo, ucum[:-1])
                fs.write(
                    proc, handle, b_off, b_len, scratch[bidx], controller=ctl
                )
    comm.barrier()
    return int(lengths.sum())


def collective_read(
    comm: Communicator,
    proc: Process,
    fs: FileSystem,
    handle: PFSHandle,
    offsets: np.ndarray,
    lengths: np.ndarray,
    hints: Hints,
) -> np.ndarray:
    """Two-phase collective read; returns this rank's bytes in run order."""
    handle.check_readable()
    fs.runs_submitted += len(offsets)
    lo, hi = _local_extent(offsets, lengths)
    glo = comm.allreduce(lo, op=MIN)
    ghi = comm.allreduce(hi, op=MAX)
    total_local = int(lengths.sum())
    if ghi <= glo:
        comm.barrier()
        return np.empty(0, dtype=np.uint8)
    naggs = hints.resolve_cb_nodes(comm.size, fs.machine.storage.n_controllers)
    bounds = file_domain_bounds(glo, ghi, naggs, fs.machine.storage.stripe_size)
    pieces = split_runs_by_bounds(offsets, lengths, bounds)

    sends: List[Optional[tuple]] = [None] * comm.size
    for d, (o, l) in enumerate(pieces):
        if len(o):
            sends[d] = (o, l)
    recv = comm.alltoallv(sends)

    replies: List[Optional[np.ndarray]] = [None] * comm.size
    if comm.rank < naggs:
        seg_off, seg_len, _nodata, counts = _gather_segments(recv)
        if len(seg_off):
            uo, ul = union_runs(seg_off, seg_len)
            ucum = np.concatenate(
                (np.zeros(1, dtype=np.int64), np.cumsum(ul, dtype=np.int64))
            )
            scratch = np.empty(int(ul.sum()), dtype=np.uint8)
            layout = handle.file.layout
            for ctl, b_off, b_len in controller_batches(
                layout, uo, ul, hints.cb_buffer_size,
                start=comm.rank % layout.n_controllers,
            ):
                bidx = _segment_scatter_indices(b_off, b_len, uo, ucum[:-1])
                scratch[bidx] = fs.read(
                    proc, handle, b_off, b_len, controller=ctl
                )
            idx = _segment_scatter_indices(seg_off, seg_len, uo, ucum[:-1])
            gathered = scratch[idx]  # all requested bytes, src-rank order
            proc.hold(fs.machine.compute.copy_time(len(gathered)))
            # Split back per source rank.
            seg_first = np.cumsum(seg_len) - seg_len
            piece_idx = 0
            byte_pos = 0
            for src in range(comm.size):
                n_pieces = int(counts[src])
                if n_pieces == 0:
                    continue
                nb = int(seg_len[piece_idx : piece_idx + n_pieces].sum())
                replies[src] = gathered[byte_pos : byte_pos + nb]
                piece_idx += n_pieces
                byte_pos += nb
            del seg_first
    back = comm.alltoallv(replies)

    out = np.empty(total_local, dtype=np.uint8)
    pos = 0
    for d, (o, l) in enumerate(pieces):
        nb = int(l.sum())
        if nb:
            chunk = back[d]
            out[pos : pos + nb] = chunk
            pos += nb
    return out
