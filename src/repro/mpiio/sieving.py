"""Data sieving for independent noncontiguous I/O.

Instead of issuing one request per byte run (the naive path that makes
independent irregular I/O catastrophically slow), ROMIO groups nearby runs
and issues one large *covering* request per group:

* **reads** — read the covering extent once, copy out the wanted runs;
* **writes** — read-modify-write: read the covering extent, overlay the
  runs, write it back (two requests, but each is a streaming transfer).

Grouping policy: a run joins the current group while the hole separating it
from the previous run is at most ``ds_threshold_gap`` and the group span
stays within ``ds_buffer_size``.

Group boundaries are computed vectorized: the gap condition is a single
``np.diff``/``flatnonzero`` pass, and the span condition subdivides each
gap segment with one ``searchsorted`` per *emitted group* (run ends are
monotone for sorted non-overlapping runs), so the cost is O(runs) numpy
work plus O(groups) Python — not O(runs) Python.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.mpiio.hints import Hints
from repro.mpiio.runs import extract_runs
from repro.pfs.file import PFSHandle
from repro.pfs.filesystem import FileSystem
from repro.simt.process import Process

__all__ = ["sieve_groups", "independent_read", "independent_write"]


def sieve_groups(
    offsets: np.ndarray, lengths: np.ndarray, hints: Hints
) -> Iterator[Tuple[int, int]]:
    """Yield ``(start_run, end_run)`` index ranges forming sieving groups.

    Runs must be sorted ascending and non-overlapping (file views guarantee
    this).
    """
    n = len(offsets)
    if n == 0:
        return
    ends = offsets + lengths
    # Gap cuts are position-independent: one vectorized pass finds every
    # hole wider than the threshold.
    gap_cuts = 1 + np.flatnonzero(
        offsets[1:] - ends[:-1] > hints.ds_threshold_gap
    )
    segment_bounds = np.concatenate(([0], gap_cuts, [n]))
    for s in range(len(segment_bounds) - 1):
        start, seg_end = int(segment_bounds[s]), int(segment_bounds[s + 1])
        # Span cuts within a gap segment: ends are monotone, so the last
        # run fitting the buffer from the group's start is one bisect.
        while start < seg_end:
            limit = int(offsets[start]) + hints.ds_buffer_size
            end = start + int(
                np.searchsorted(ends[start:seg_end], limit, side="right")
            )
            end = max(end, start + 1)  # an oversized run forms its own group
            yield start, min(end, seg_end)
            start = end


def independent_read(
    fs: FileSystem,
    proc: Process,
    handle: PFSHandle,
    offsets: np.ndarray,
    lengths: np.ndarray,
    kind: str = "data",
) -> np.ndarray:
    """Sieved independent read; returns the gathered bytes in run order.

    ``kind`` feeds the file system's index/data traffic split.
    """
    hints = Hints.from_machine(fs.machine)
    fs.runs_submitted += len(offsets)
    total = int(lengths.sum())
    out = np.empty(total, dtype=np.uint8)
    out_pos = 0
    for lo, hi in sieve_groups(offsets, lengths, hints):
        grp_off = offsets[lo:hi]
        grp_len = lengths[lo:hi]
        span_start = int(grp_off[0])
        span_len = int(grp_off[-1] + grp_len[-1]) - span_start
        grp_bytes = int(grp_len.sum())
        if span_len == grp_bytes:
            # Solid group: read exactly.
            data = fs.read(proc, handle, [span_start], [span_len], kind=kind)
            out[out_pos : out_pos + grp_bytes] = data
        else:
            cover = fs.read(proc, handle, [span_start], [span_len], kind=kind)
            proc.hold(fs.machine.compute.copy_time(grp_bytes))
            out[out_pos : out_pos + grp_bytes] = extract_runs(
                cover,
                np.array([span_start], dtype=np.int64),
                np.array([span_len], dtype=np.int64),
                grp_off, grp_len,
                np.zeros(len(grp_off), dtype=np.int64),
            )
        out_pos += grp_bytes
    return out


def independent_write(
    fs: FileSystem,
    proc: Process,
    handle: PFSHandle,
    offsets: np.ndarray,
    lengths: np.ndarray,
    data: np.ndarray,
) -> int:
    """Sieved independent write; returns bytes of payload written.

    Requires read access for the read-modify-write path; on a write-only
    handle it falls back to one request per run (as ROMIO does when data
    sieving is impossible) — the catastrophically slow path the paper's
    collective I/O avoids.
    """
    hints = Hints.from_machine(fs.machine)
    fs.runs_submitted += len(offsets)
    data = np.asarray(data).reshape(-1).view(np.uint8)
    from repro.pfs.file import RD

    if not (handle.mode & RD):
        pos = 0
        for o, l in zip(offsets.tolist(), lengths.tolist()):
            fs.write(proc, handle, [o], [l], data[pos : pos + l])
            pos += l
        return pos
    data_pos = 0
    for lo, hi in sieve_groups(offsets, lengths, hints):
        grp_off = offsets[lo:hi]
        grp_len = lengths[lo:hi]
        span_start = int(grp_off[0])
        span_len = int(grp_off[-1] + grp_len[-1]) - span_start
        grp_bytes = int(grp_len.sum())
        chunk = data[data_pos : data_pos + grp_bytes]
        if span_len == grp_bytes:
            # Solid group: plain write, no read-modify-write needed.
            fs.write(proc, handle, [span_start], [span_len], chunk)
        else:
            # Read-modify-write the covering extent, under the file's write
            # lock — concurrent RMWs on interleaved data would otherwise
            # resurrect stale bytes (the race ROMIO prevents with fcntl).
            with fs.write_lock(handle.file.name).request(proc):
                cover = fs.read(proc, handle, [span_start], [span_len])
                proc.hold(fs.machine.compute.copy_time(grp_bytes))
                rel = grp_off - span_start
                first = np.cumsum(grp_len) - grp_len
                idx = (
                    np.arange(grp_bytes, dtype=np.int64)
                    + np.repeat(rel - first, grp_len)
                )
                cover[idx] = chunk
                fs.write(proc, handle, [span_start], [span_len], cover)
        data_pos += grp_bytes
    return data_pos
