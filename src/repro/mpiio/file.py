"""The MPI-IO ``File`` object (mpi4py-style interface).

Each rank constructs its own :class:`File` via the collective
:meth:`File.open`; independent operations (``read_at``/``write_at``) use
data sieving, collective operations (``read_at_all``/``write_at_all``) use
two-phase I/O.  Offsets are in *etype units of the current view*, exactly
as in MPI.

Buffers are numpy arrays of any dtype; the byte count of an operation is
the buffer's ``nbytes``.
"""

from __future__ import annotations

from typing import Mapping, Optional

import numpy as np

from repro.dtypes.base import Datatype
from repro.dtypes.primitives import BYTE
from repro.errors import FileExists, FileNotFound, MPIIOError
from repro.mpi.communicator import Communicator
from repro.mpiio import sieving, twophase
from repro.mpiio.runs import coalesce_runs, extract_runs, resolve_gap
from repro.mpiio.consts import (
    MODE_APPEND,
    MODE_CREATE,
    MODE_EXCL,
    MODE_RDONLY,
    MODE_RDWR,
    MODE_WRONLY,
)
from repro.mpiio.hints import Hints
from repro.mpiio.view import FileView, check_runs
from repro.pfs.file import RD, RDWR, WR
from repro.pfs.filesystem import FileSystem

__all__ = ["File"]

SEEK_SET = 0
SEEK_CUR = 1
SEEK_END = 2


def _as_bytes(buf) -> np.ndarray:
    arr = np.asarray(buf)
    if arr.dtype == np.uint8 and arr.ndim == 1:
        return arr
    return arr.reshape(-1).view(np.uint8)


class File:
    """One rank's handle on a collectively opened file."""

    def __init__(
        self,
        comm: Communicator,
        fs: FileSystem,
        name: str,
        amode: int,
        handle,
        hints: Hints,
    ) -> None:
        self.comm = comm
        self.fs = fs
        self.name = name
        self.amode = amode
        self._handle = handle
        self.hints = hints
        self._view = FileView()
        self._pos = 0  # individual file pointer, in etype units
        self.closed = False

    # ------------------------------------------------------------------
    # Open / close
    # ------------------------------------------------------------------

    @classmethod
    def open(
        cls,
        comm: Communicator,
        fs: FileSystem,
        name: str,
        amode: int = MODE_RDONLY,
        hints: Optional[Mapping[str, int]] = None,
    ) -> "File":
        """Collective open; every rank of ``comm`` must call with the same
        arguments.  Honors MODE_CREATE / MODE_EXCL / MODE_APPEND."""
        n_access = bool(amode & MODE_RDONLY) + bool(amode & MODE_WRONLY) + bool(
            amode & MODE_RDWR
        )
        if n_access != 1:
            raise MPIIOError(
                "exactly one of MODE_RDONLY/MODE_WRONLY/MODE_RDWR required"
            )
        proc = comm.proc
        # Rank 0 handles creation & existence checking, then broadcasts.
        verdict = None
        if comm.rank == 0:
            exists = fs.exists(name)
            if amode & MODE_CREATE:
                if exists and (amode & MODE_EXCL):
                    verdict = "excl"
                elif not exists:
                    fs.create(proc, name)
                    verdict = "ok"
                else:
                    verdict = "ok"
            else:
                verdict = "ok" if exists else "missing"
        verdict = comm.bcast(verdict, root=0)
        if verdict == "excl":
            raise FileExists(f"MODE_EXCL and file exists: {name!r}")
        if verdict == "missing":
            raise FileNotFound(f"no such file: {name!r}")
        if amode & MODE_RDONLY:
            mode = RD
        elif amode & MODE_WRONLY:
            mode = WR
        else:
            mode = RDWR
        handle = fs.open(proc, name, mode)
        resolved = Hints.from_machine(fs.machine, hints)
        f = cls(comm, fs, name, amode, handle, resolved)
        if amode & MODE_APPEND:
            f._pos = handle.file.size  # etype is BYTE initially
        return f

    def close(self) -> None:
        """Collective close."""
        if self.closed:
            raise MPIIOError(f"file {self.name!r} already closed")
        self.comm.barrier()
        self.fs.close(self.comm.proc, self._handle)
        self.closed = True

    def __enter__(self) -> "File":
        return self

    def __exit__(self, *exc) -> None:
        if not self.closed:
            self.close()

    # ------------------------------------------------------------------
    # Views and pointers
    # ------------------------------------------------------------------

    def set_view(
        self,
        disp: int = 0,
        etype: Datatype = BYTE,
        filetype: Optional[Datatype] = None,
    ) -> None:
        """Install a file view (charges the per-process view cost) and reset
        the individual file pointer."""
        self._check_live()
        self.comm.proc.hold(self.fs.machine.storage.file_view_cost)
        self._view = FileView(disp, etype, filetype)
        self._pos = 0

    def get_view(self) -> FileView:
        """The currently installed view."""
        return self._view

    def seek(self, offset: int, whence: int = SEEK_SET) -> None:
        """Move the individual file pointer (etype units of the view)."""
        self._check_live()
        if whence == SEEK_SET:
            new = offset
        elif whence == SEEK_CUR:
            new = self._pos + offset
        elif whence == SEEK_END:
            new = self.get_size() // self._view.etype.size + offset
        else:
            raise MPIIOError(f"bad whence: {whence!r}")
        if new < 0:
            raise MPIIOError(f"seek to negative offset: {new}")
        self._pos = new

    def get_position(self) -> int:
        """Individual file pointer, in etype units."""
        return self._pos

    def get_size(self) -> int:
        """Current file size in bytes (no time charge: cached attr model)."""
        return self._handle.file.size

    # ------------------------------------------------------------------
    # Independent data access (data sieving)
    # ------------------------------------------------------------------

    def write_at(self, offset: int, buf) -> int:
        """Independent write at ``offset`` (etype units); returns bytes."""
        self._check_live()
        raw = _as_bytes(buf)
        off, ln = self._view.runs_for(offset * self._view.etype.size, len(raw))
        return sieving.independent_write(
            self.fs, self.comm.proc, self._handle, off, ln, raw
        )

    def read_at(self, offset: int, buf) -> np.ndarray:
        """Independent read at ``offset`` (etype units) into ``buf``;
        returns ``buf``."""
        self._check_live()
        raw = _as_bytes(buf)
        off, ln = self._view.runs_for(offset * self._view.etype.size, len(raw))
        data = sieving.independent_read(self.fs, self.comm.proc, self._handle, off, ln)
        raw[:] = data
        return buf

    def write(self, buf) -> int:
        """Independent write at the individual file pointer."""
        n = self.write_at(self._pos, buf)
        self._pos += n // self._view.etype.size
        return n

    def read(self, buf) -> np.ndarray:
        """Independent read at the individual file pointer."""
        out = self.read_at(self._pos, buf)
        self._pos += _as_bytes(buf).size // self._view.etype.size
        return out

    # ------------------------------------------------------------------
    # Collective data access (two-phase)
    # ------------------------------------------------------------------

    def write_at_all(self, offset: int, buf) -> int:
        """Collective write at ``offset`` (etype units); all ranks call."""
        self._check_live()
        raw = _as_bytes(buf)
        off, ln = self._view.runs_for(offset * self._view.etype.size, len(raw))
        return twophase.collective_write(
            self.comm, self.comm.proc, self.fs, self._handle, off, ln, raw, self.hints
        )

    def read_at_all(self, offset: int, buf) -> np.ndarray:
        """Collective read at ``offset`` (etype units) into ``buf``."""
        self._check_live()
        raw = _as_bytes(buf)
        off, ln = self._view.runs_for(offset * self._view.etype.size, len(raw))
        raw[:] = self._collective_read_coalesced(off, ln)
        return buf

    def _collective_read_coalesced(
        self, off: np.ndarray, ln: np.ndarray
    ) -> np.ndarray:
        """Two-phase read with source-side run coalescing.

        This rank merges its runs before the exchange — exactly-adjacent
        runs always (gap 0, lossless), nearby runs with holes up to the
        ``coalesce_gap`` hint (read-and-discard) — so the request
        *metadata* shipped to the aggregators shrinks with the run count,
        not the element count.  The returned bytes are exactly the
        requested runs, in run order, either way.
        """
        if len(off) > 1:
            gap = resolve_gap(
                self.hints.coalesce_gap, off, ln,
                waste_fraction=self.hints.coalesce_waste,
                max_gap=self.hints.ds_threshold_gap,
            )
            coff, clen, owner = coalesce_runs(off, ln, gap)
            if len(coff) < len(off):
                blob = twophase.collective_read(
                    self.comm, self.comm.proc, self.fs, self._handle,
                    coff, clen, self.hints,
                )
                if int(clen.sum()) == int(ln.sum()):
                    # Lossless merge (no holes bridged): the coalesced
                    # stream is already the concatenated requested runs.
                    return blob
                return extract_runs(blob, coff, clen, off, ln, owner)
        return twophase.collective_read(
            self.comm, self.comm.proc, self.fs, self._handle, off, ln,
            self.hints,
        )

    def write_all(self, buf) -> int:
        """Collective write at the individual file pointer."""
        n = self.write_at_all(self._pos, buf)
        self._pos += len(_as_bytes(buf)) // self._view.etype.size
        return n

    def read_all(self, buf) -> np.ndarray:
        """Collective read at the individual file pointer."""
        out = self.read_at_all(self._pos, buf)
        self._pos += len(_as_bytes(buf)) // self._view.etype.size
        return out

    # ------------------------------------------------------------------
    # Direct-run data access (per-chunk views)
    # ------------------------------------------------------------------
    #
    # The storage-order layer addresses files by explicit byte runs built
    # from chunk maps — one "view" per chunk, too short-lived to install.
    # These methods take absolute file byte runs (the installed view and
    # its displacement are ignored) but keep its contract: runs must be
    # sorted ascending and non-overlapping (``check_runs``).

    def write_runs(self, offsets, lengths, buf) -> int:
        """Independent write of explicit byte runs; returns bytes written."""
        self._check_live()
        off, ln = check_runs(offsets, lengths)
        if len(off) == 0:
            return 0
        raw = _as_bytes(buf)
        if raw.size != int(ln.sum()):
            raise MPIIOError(
                f"buffer has {raw.size} bytes, runs cover {int(ln.sum())}"
            )
        return sieving.independent_write(
            self.fs, self.comm.proc, self._handle, off, ln, raw
        )

    def read_runs(self, offsets, lengths, buf, kind: str = "data") -> np.ndarray:
        """Independent read of explicit byte runs into ``buf``.

        ``kind="index"`` tags the traffic as chunked index-block bytes in
        the file system's counters."""
        self._check_live()
        off, ln = check_runs(offsets, lengths)
        raw = _as_bytes(buf)
        if raw.size != int(ln.sum()):
            raise MPIIOError(
                f"buffer has {raw.size} bytes, runs cover {int(ln.sum())}"
            )
        if len(off):
            raw[:] = sieving.independent_read(
                self.fs, self.comm.proc, self._handle, off, ln, kind=kind
            )
        return buf

    def write_runs_at_all(self, offsets, lengths, buf) -> int:
        """Collective write of explicit byte runs; all ranks call (a rank
        with no runs passes empty arrays)."""
        self._check_live()
        off, ln = check_runs(offsets, lengths)
        raw = _as_bytes(buf)
        if raw.size != int(ln.sum()):
            raise MPIIOError(
                f"buffer has {raw.size} bytes, runs cover {int(ln.sum())}"
            )
        return twophase.collective_write(
            self.comm, self.comm.proc, self.fs, self._handle, off, ln, raw,
            self.hints,
        )

    def read_runs_at_all(self, offsets, lengths) -> np.ndarray:
        """Collective read of explicit byte runs; returns the bytes in run
        order (empty for a rank with no runs).  Nearby runs are merged at
        the source under the ``coalesce_gap`` hint."""
        self._check_live()
        off, ln = check_runs(offsets, lengths)
        return self._collective_read_coalesced(off, ln)

    # ------------------------------------------------------------------

    def _check_live(self) -> None:
        if self.closed:
            raise MPIIOError(f"operation on closed file {self.name!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self.closed else "open"
        return f"<mpiio.File {self.name!r} {state} rank={self.comm.rank}>"
