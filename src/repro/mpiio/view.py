"""File views: mapping a rank's linear data stream onto file bytes.

An MPI-IO view is ``(disp, etype, filetype)``: starting at byte ``disp``,
the *filetype* tiles the file; only its data bytes are visible, and offsets
in read/write calls count in *etype* units of that visible stream.

:meth:`FileView.runs_for` lowers a ``(data_offset, nbytes)`` window of the
visible stream to file byte runs — the single operation the I/O paths need.
MPI legally requires filetype displacements to be monotonically
nondecreasing for views; we enforce strict monotonicity (no overlaps), which
makes visible-stream order equal file-offset order and keeps scatter/gather
trivially correct.

:func:`check_runs` applies the same contract to *explicit* byte runs — the
storage-order layer builds per-chunk runs directly from chunk maps (no
filetype in sight) and hands them to :meth:`repro.mpiio.file.File`'s
``*_runs`` methods, which validate through this one gate.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.dtypes.base import Datatype
from repro.dtypes.flatten import flatten
from repro.dtypes.primitives import BYTE
from repro.errors import MPIIOError

__all__ = ["FileView", "check_runs"]


def check_runs(offsets, lengths) -> Tuple[np.ndarray, np.ndarray]:
    """Validate explicit file byte runs; returns them as int64 arrays.

    Enforces the file-view contract — nonnegative, sorted ascending,
    non-overlapping — so direct-run I/O has exactly the semantics of I/O
    through an installed view.
    """
    off = np.asarray(offsets, dtype=np.int64).reshape(-1)
    ln = np.asarray(lengths, dtype=np.int64).reshape(-1)
    if len(off) != len(ln):
        raise MPIIOError(
            f"{len(off)} run offsets but {len(ln)} run lengths"
        )
    if len(off) == 0:
        return off, ln
    if int(off[0]) < 0 or int(ln.min()) < 0:
        raise MPIIOError("negative run offset or length")
    if len(off) > 1 and not (off[1:] >= off[:-1] + ln[:-1]).all():
        raise MPIIOError(
            "runs must be sorted ascending and non-overlapping"
        )
    return off, ln

_EXPANSION_CAP = 32_000_000
"""Refuse run expansions above this many runs (guards absurd views)."""


class FileView:
    """An installed file view for one rank."""

    def __init__(
        self,
        disp: int = 0,
        etype: Datatype = BYTE,
        filetype: Optional[Datatype] = None,
    ) -> None:
        if disp < 0:
            raise MPIIOError(f"negative view displacement: {disp}")
        self.disp = int(disp)
        self.etype = etype
        self.filetype = filetype if filetype is not None else etype
        if self.etype.size <= 0:
            raise MPIIOError("etype must have positive size")
        if self.filetype.size <= 0:
            raise MPIIOError("filetype must have positive size")
        if self.filetype.size % self.etype.size != 0:
            raise MPIIOError(
                f"filetype size {self.filetype.size} not a multiple of "
                f"etype size {self.etype.size}"
            )
        off, ln = flatten(self.filetype)
        if len(off) > 1:
            ends = off[:-1] + ln[:-1]
            if not (off[1:] >= ends).all():
                raise MPIIOError(
                    "filetype displacements must be monotonically "
                    "nondecreasing and non-overlapping for a file view"
                )
        self._tile_off = off
        self._tile_len = ln
        self._tile_size = self.filetype.size
        self._tile_extent = self.filetype.extent
        self._cum = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(ln, dtype=np.int64))
        )
        self.dense = (
            len(off) == 1 and off[0] == 0 and ln[0] == self._tile_extent
        )

    @property
    def tile_size(self) -> int:
        """Visible data bytes per filetype tile."""
        return self._tile_size

    @property
    def tile_extent(self) -> int:
        """File bytes (holes included) per filetype tile."""
        return self._tile_extent

    def _clip(self, a: int, b: int) -> Tuple[np.ndarray, np.ndarray]:
        """Runs of visible-data range [a, b) within one tile, tile-relative."""
        cum = self._cum
        i0 = int(np.searchsorted(cum, a, side="right")) - 1
        i1 = int(np.searchsorted(cum, b - 1, side="right")) - 1
        off = self._tile_off[i0 : i1 + 1].copy()
        ln = self._tile_len[i0 : i1 + 1].copy()
        head_trim = a - int(cum[i0])
        off[0] += head_trim
        ln[0] -= head_trim
        tail_trim = int(cum[i1 + 1]) - b
        ln[-1] -= tail_trim
        return off, ln

    def runs_for(self, data_offset: int, nbytes: int) -> Tuple[np.ndarray, np.ndarray]:
        """File byte runs for ``nbytes`` of visible data at ``data_offset``.

        Both arguments are in bytes of the visible stream.  Returned runs are
        absolute file offsets, sorted ascending, non-overlapping, in data
        order; their lengths sum to ``nbytes``.
        """
        if data_offset < 0 or nbytes < 0:
            raise MPIIOError(
                f"negative I/O range: offset={data_offset} nbytes={nbytes}"
            )
        empty = (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        if nbytes == 0:
            return empty
        if self.dense:
            return (
                np.array([self.disp + data_offset], dtype=np.int64),
                np.array([nbytes], dtype=np.int64),
            )
        size, extent = self._tile_size, self._tile_extent
        t0, r0 = divmod(data_offset, size)
        t1, r1 = divmod(data_offset + nbytes - 1, size)
        if t0 == t1:
            off, ln = self._clip(r0, r1 + 1)
            return off + (self.disp + t0 * extent), ln
        pieces_off, pieces_len = [], []
        # Head partial tile.
        o, l = self._clip(r0, size)
        pieces_off.append(o + (self.disp + t0 * extent))
        pieces_len.append(l)
        # Full middle tiles, vectorized.
        n_mid = t1 - t0 - 1
        if n_mid > 0:
            n_runs = len(self._tile_off)
            if n_mid * n_runs > _EXPANSION_CAP:
                raise MPIIOError(
                    f"view expansion too large: {n_mid} tiles x {n_runs} runs"
                )
            starts = self.disp + (t0 + 1 + np.arange(n_mid, dtype=np.int64)) * extent
            mid_off = (starts[:, None] + self._tile_off[None, :]).reshape(-1)
            mid_len = np.broadcast_to(self._tile_len, (n_mid, n_runs)).reshape(-1)
            pieces_off.append(mid_off)
            pieces_len.append(mid_len.astype(np.int64, copy=True))
        # Tail partial tile.
        o, l = self._clip(0, r1 + 1)
        pieces_off.append(o + (self.disp + t1 * extent))
        pieces_len.append(l)
        from repro.dtypes.flatten import merge_runs

        return merge_runs(np.concatenate(pieces_off), np.concatenate(pieces_len))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FileView disp={self.disp} tile_size={self._tile_size} "
            f"tile_extent={self._tile_extent} dense={self.dense}>"
        )
