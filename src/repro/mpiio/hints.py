"""MPI-IO hints (the ``MPI_Info`` knobs ROMIO understands).

Defaults come from the machine model's :class:`CollectiveIOModel`; user code
overrides per-open, exactly as the paper describes SDM passing hints about
access patterns and striping to the MPI-IO implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.config import MachineModel

__all__ = ["Hints"]


@dataclass
class Hints:
    """Resolved collective-buffering and data-sieving parameters."""

    cb_buffer_size: int
    cb_nodes: int
    ds_buffer_size: int
    ds_threshold_gap: int
    coalesce_gap: int = 0
    """Read-side source coalescing: bridge holes up to this many bytes
    when merging a rank's byte runs into requests (read-and-discard the
    hole to save a request).  Never applied to writes."""

    @classmethod
    def from_machine(
        cls, machine: MachineModel, overrides: Optional[Mapping[str, int]] = None
    ) -> "Hints":
        """Machine defaults, selectively overridden (unknown keys rejected)."""
        cio = machine.collective_io
        values = {
            "cb_buffer_size": cio.cb_buffer_size,
            "cb_nodes": cio.cb_nodes,
            "ds_buffer_size": cio.ds_buffer_size,
            "ds_threshold_gap": cio.ds_threshold_gap,
            "coalesce_gap": cio.coalesce_gap,
        }
        if overrides:
            for key, val in overrides.items():
                if key not in values:
                    raise KeyError(f"unknown MPI-IO hint: {key!r}")
                values[key] = int(val)
        return cls(**values)

    def resolve_cb_nodes(self, comm_size: int, n_controllers: int) -> int:
        """Number of aggregators: the hint, else min(P, 2 x controllers)."""
        if self.cb_nodes > 0:
            return max(1, min(self.cb_nodes, comm_size))
        return max(1, min(comm_size, 2 * n_controllers))
