"""MPI-IO hints (the ``MPI_Info`` knobs ROMIO understands).

Defaults come from the machine model's :class:`CollectiveIOModel`; user code
overrides per-open, exactly as the paper describes SDM passing hints about
access patterns and striping to the MPI-IO implementation.

:func:`validate_hints` is the shared early check SDM-level entry points run
on user-supplied hint dicts, so a mistyped hint name fails at construction
time with the accepted list instead of at the first file open.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Mapping, Optional, Tuple

from repro.config import MachineModel
from repro.mpiio.runs import ADAPTIVE_GAP

__all__ = ["Hints", "accepted_hints", "validate_hints"]


@dataclass
class Hints:
    """Resolved collective-buffering and data-sieving parameters."""

    cb_buffer_size: int
    cb_nodes: int
    ds_buffer_size: int
    ds_threshold_gap: int
    coalesce_gap: int = 0
    """Read-side source coalescing: bridge holes up to this many bytes
    when merging a rank's byte runs into requests (read-and-discard the
    hole to save a request).  Never applied to writes.  The sentinel
    :data:`~repro.mpiio.runs.ADAPTIVE_GAP` (-1) derives the gap per read
    from that read's own hole distribution instead."""
    coalesce_waste: float = 0.25
    """Adaptive-gap budget: the largest fraction of a read's payload the
    derived gap may spend on bridged (read-and-discarded) hole bytes.
    Only consulted when ``coalesce_gap`` is adaptive."""

    @classmethod
    def from_machine(
        cls, machine: MachineModel, overrides: Optional[Mapping[str, int]] = None
    ) -> "Hints":
        """Machine defaults, selectively overridden (unknown keys rejected)."""
        cio = machine.collective_io
        values = {
            "cb_buffer_size": cio.cb_buffer_size,
            "cb_nodes": cio.cb_nodes,
            "ds_buffer_size": cio.ds_buffer_size,
            "ds_threshold_gap": cio.ds_threshold_gap,
            "coalesce_gap": cio.coalesce_gap,
            "coalesce_waste": cio.coalesce_waste,
        }
        if overrides:
            validate_hints(overrides)
            for key, val in overrides.items():
                coerce = float if key == "coalesce_waste" else int
                values[key] = coerce(val)
        return cls(**values)

    def resolve_cb_nodes(self, comm_size: int, n_controllers: int) -> int:
        """Number of aggregators: the hint, else min(P, 2 x controllers)."""
        if self.cb_nodes > 0:
            return max(1, min(self.cb_nodes, comm_size))
        return max(1, min(comm_size, 2 * n_controllers))


def accepted_hints() -> Tuple[str, ...]:
    """The hint names an ``io_hints`` dict may carry."""
    return tuple(f.name for f in fields(Hints))


def validate_hints(hints: Optional[Mapping[str, int]]) -> None:
    """Reject unknown hint names (and nonsense values) up front.

    Raises ``KeyError`` naming the offender *and* the accepted list —
    a silently ignored hint is a tuning knob that does nothing.
    """
    if not hints:
        return
    accepted = accepted_hints()
    for key, val in hints.items():
        if key not in accepted:
            raise KeyError(
                f"unknown MPI-IO hint: {key!r} "
                f"(accepted hints: {', '.join(accepted)})"
            )
        if key == "coalesce_gap" and int(val) < ADAPTIVE_GAP:
            raise ValueError(
                f"coalesce_gap must be >= 0 or ADAPTIVE_GAP ({ADAPTIVE_GAP}), "
                f"got {val!r}"
            )
        if key == "coalesce_waste" and not 0.0 <= float(val) <= 1.0:
            raise ValueError(
                f"coalesce_waste must be a fraction in [0, 1], got {val!r}"
            )
