"""repro — reproduction of "A Scientific Data Management System for
Irregular Applications" (No, Thakur, Kaushik, Freitag, Choudhary; IPPS 2001).

The package rebuilds the paper's full stack in Python: SDM itself
(:mod:`repro.core`) over simulated MPI (:mod:`repro.mpi`), MPI-IO
(:mod:`repro.mpiio`) with derived datatypes (:mod:`repro.dtypes`), a
parallel file system with real bytes (:mod:`repro.pfs`), an embedded
metadata database (:mod:`repro.metadb`), a METIS-like partitioner
(:mod:`repro.partition`), synthetic meshes (:mod:`repro.mesh`), the two
evaluation applications (:mod:`repro.apps`), and the benchmark harness
(:mod:`repro.bench`) — all on a deterministic discrete-event simulator
(:mod:`repro.simt`).

The shortest useful import surface::

    from repro import SDM, Organization, mpirun, origin2000, sdm_services
"""

from repro.config import MachineModel, fast_test, high_open_cost, origin2000
from repro.core import SDM, Organization, sdm_services, snapshot_services
from repro.mpi import mpirun

__version__ = "0.1.0"

__all__ = [
    "SDM",
    "Organization",
    "mpirun",
    "sdm_services",
    "snapshot_services",
    "MachineModel",
    "origin2000",
    "high_open_cost",
    "fast_test",
    "__version__",
]
