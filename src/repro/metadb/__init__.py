"""Embedded relational metadata database (the paper's MySQL stand-in).

SDM stores *metadata* — run records, access patterns, file offsets, import
descriptions, index-distribution history — in a relational database, keeping
only bulk data in the parallel file system.  This package provides that
database as an embedded engine:

* a mini-SQL dialect (:mod:`~repro.metadb.sqlparser`):
  ``CREATE TABLE`` / ``DROP TABLE`` / ``INSERT`` / ``SELECT`` (WHERE,
  ORDER BY, LIMIT) / ``UPDATE`` / ``DELETE``, with ``?`` parameters;
* typed storage (:mod:`~repro.metadb.table`): INTEGER / REAL / TEXT / BLOB
  columns with validation;
* a :class:`~repro.metadb.engine.Database` front end with optional JSON
  persistence and a per-statement virtual-time cost model (so "the database
  cost to access the metadata" shows up in history-file timings, as the
  paper reports) — charged on rows *touched*: returned for SELECT,
  inserted for INSERT, matched for UPDATE/DELETE;
* :mod:`~repro.metadb.schema` — the paper's six SDM tables, typed
  accessors, and the :data:`~repro.metadb.schema.SDM_INDEXES` declarations.

Query pipeline architecture
---------------------------

Statements flow through three layers, each optional-but-default on the SDM
path:

1. **Statement cache** (:meth:`~repro.metadb.engine.Database.prepare`) —
   parsed ASTs are memoized by exact SQL text in a bounded per-instance
   LRU backed by a bounded *process-global* cache shared across every
   ``Database``, so the parameterized statements SDM issues in loops
   (one per timestep, rank, dataset) tokenize and parse exactly once per
   process — even across :meth:`~repro.metadb.engine.Database.loads`
   restores, which arrive with a cold instance cache but a warm shared
   one.  Both :meth:`~repro.metadb.engine.Database.execute` and
   :meth:`~repro.metadb.engine.Database.query_dicts` share it, so a dict
   query costs a single parse (historically it parsed twice).  Batched
   ``execute_many`` INSERTs take a bulk-load path: rows are coerced
   up front, appended once, and each ordered index ingests the batch
   with one sort instead of a per-row ``insort``.
2. **Conjunct planner** (``Database._index_candidates`` /
   ``Database._sorted_rowids``) — a WHERE tree is decomposed
   (:func:`~repro.metadb.expr.conjuncts_of`) into its top-level AND of
   equality (``col = v``) and range (``col < v``, ``col >= v``, BETWEEN,
   …) conjuncts, and the cheapest applicable access path wins:

   a. a **sorted probe**: when the WHERE decomposes *completely* into
      equality conjuncts (plus at most one range pair on the first ORDER
      BY column) covered by an ordered index whose remaining columns are
      exactly the ORDER BY columns, the query — filter, sort, and LIMIT —
      is answered straight from the index with no scan and no sort
      (``SELECT ... ORDER BY file_offset DESC LIMIT 1`` is two bisects);
   b. a **hash probe**: any hash index whose columns are all bound by
      equality conjuncts probes its value tuple once (a composite index
      like ``execution_table(runid, dataset, timestep)`` replaces the
      old intersect-smallest-single-column-bucket dance);
   c. an **ordered slice**: any ordered index with an equality-bound
      column prefix and/or range bounds on the following column narrows
      candidates to one contiguous bisect slice;
   d. the **full scan** otherwise.

   For (b) and (c) the smallest candidate set wins and the full WHERE is
   still evaluated on every candidate, so the planner only ever *narrows*
   the scan; path (a) is taken only when the index provably yields the
   exact result.  Results, ordering, and NULL semantics are bit-identical
   to the fallback full scan for every path (property-tested across all
   index configurations in
   ``tests/properties/test_metadb_index_property.py``).
3. **Secondary indexes** (:meth:`~repro.metadb.table.Table.create_index`,
   declared per column tuple via
   :meth:`~repro.metadb.engine.Database.create_index`) — two kinds:

   * ``hash`` (:class:`~repro.metadb.table.HashIndex`) — value tuple →
     ascending rowids, single or composite columns, O(1) equality;
   * ``ordered`` (:class:`~repro.metadb.table.OrderedIndex`) — a
     ``bisect``-maintained sorted array of ``(key, rowid)`` entries whose
     key wrapping matches ORDER BY semantics exactly (NULL first
     ascending, insertion order among duplicates).

   Both are maintained incrementally on INSERT and UPDATE; DELETE
   compacts rowids and rebuilds.  :meth:`~repro.metadb.engine.Database.dump`
   persists the declarations (``{"kind", "columns"}`` per table) and
   :meth:`~repro.metadb.engine.Database.loads` rebuilds the structures
   from the restored rows, so a snapshot is self-contained — no
   re-declaration needed.  ``Database.n_parses`` / ``n_index_probes`` /
   ``n_sorted_probes`` / ``n_full_scans`` expose cache and planner
   behavior for tests and benchmarks.

Example::

    db = Database()
    db.execute("CREATE TABLE run_table (runid INTEGER, dataset TEXT)")
    db.execute("INSERT INTO run_table VALUES (?, ?)", (1, "p"))
    rows = db.execute("SELECT * FROM run_table WHERE runid = ?", (1,))
"""

from repro.metadb.types import ColumnType, BLOB, INTEGER, REAL, TEXT
from repro.metadb.table import Column, HashIndex, OrderedIndex, Row, Table
from repro.metadb.engine import Database
from repro.metadb.schema import SDM_INDEXES, SDM_SCHEMA, SDMTables

__all__ = [
    "ColumnType",
    "INTEGER",
    "REAL",
    "TEXT",
    "BLOB",
    "Column",
    "Row",
    "Table",
    "HashIndex",
    "OrderedIndex",
    "Database",
    "SDM_SCHEMA",
    "SDM_INDEXES",
    "SDMTables",
]
