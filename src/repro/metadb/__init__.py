"""Embedded relational metadata database (the paper's MySQL stand-in).

SDM stores *metadata* — run records, access patterns, file offsets, import
descriptions, index-distribution history — in a relational database, keeping
only bulk data in the parallel file system.  This package provides that
database as an embedded engine:

* a mini-SQL dialect (:mod:`~repro.metadb.sqlparser`):
  ``CREATE TABLE`` / ``DROP TABLE`` / ``INSERT`` / ``SELECT`` (WHERE,
  ORDER BY, LIMIT) / ``UPDATE`` / ``DELETE``, with ``?`` parameters;
* typed storage (:mod:`~repro.metadb.table`): INTEGER / REAL / TEXT / BLOB
  columns with validation;
* a :class:`~repro.metadb.engine.Database` front end with optional JSON
  persistence and a per-statement virtual-time cost model (so "the database
  cost to access the metadata" shows up in history-file timings, as the
  paper reports);
* :mod:`~repro.metadb.schema` — the paper's six SDM tables and typed
  accessors.

Example::

    db = Database()
    db.execute("CREATE TABLE run_table (runid INTEGER, dataset TEXT)")
    db.execute("INSERT INTO run_table VALUES (?, ?)", (1, "p"))
    rows = db.execute("SELECT * FROM run_table WHERE runid = ?", (1,))
"""

from repro.metadb.types import ColumnType, BLOB, INTEGER, REAL, TEXT
from repro.metadb.table import Column, Row, Table
from repro.metadb.engine import Database
from repro.metadb.schema import SDM_SCHEMA, SDMTables

__all__ = [
    "ColumnType",
    "INTEGER",
    "REAL",
    "TEXT",
    "BLOB",
    "Column",
    "Row",
    "Table",
    "Database",
    "SDM_SCHEMA",
    "SDMTables",
]
