"""Embedded relational metadata database (the paper's MySQL stand-in).

SDM stores *metadata* — run records, access patterns, file offsets, import
descriptions, index-distribution history — in a relational database, keeping
only bulk data in the parallel file system.  This package provides that
database as an embedded engine:

* a mini-SQL dialect (:mod:`~repro.metadb.sqlparser`):
  ``CREATE TABLE`` / ``DROP TABLE`` / ``INSERT`` / ``SELECT`` (WHERE,
  ORDER BY, LIMIT) / ``UPDATE`` / ``DELETE``, with ``?`` parameters;
* typed storage (:mod:`~repro.metadb.table`): INTEGER / REAL / TEXT / BLOB
  columns with validation;
* a :class:`~repro.metadb.engine.Database` front end with optional JSON
  persistence and a per-statement virtual-time cost model (so "the database
  cost to access the metadata" shows up in history-file timings, as the
  paper reports) — charged on rows *touched*: returned for SELECT,
  inserted for INSERT, matched for UPDATE/DELETE;
* :mod:`~repro.metadb.schema` — the paper's six SDM tables, typed
  accessors, and the :data:`~repro.metadb.schema.SDM_INDEXES` declarations.

Query pipeline architecture
---------------------------

Statements flow through three layers, each optional-but-default on the SDM
path:

1. **Statement cache** (:meth:`~repro.metadb.engine.Database.prepare`) —
   parsed ASTs are memoized by exact SQL text in a bounded LRU, so the
   parameterized statements SDM issues in loops (one per timestep, rank,
   dataset) tokenize and parse exactly once per process.  Both
   :meth:`~repro.metadb.engine.Database.execute` and
   :meth:`~repro.metadb.engine.Database.query_dicts` share it, so a dict
   query costs a single parse (historically it parsed twice).
2. **Equality planner** (``Database._index_candidates``) — a WHERE tree is
   decomposed into its top-level AND of ``column = literal/?`` conjuncts;
   each conjunct on an indexed column probes the table's secondary hash
   index (value → ascending rowids) and the smallest candidate set wins.
   The full WHERE expression is still evaluated on every candidate row, so
   the planner only ever *narrows* the scan: results, ordering, and NULL
   semantics are bit-identical to the fallback full scan (property-tested
   in ``tests/properties/test_metadb_index_property.py``).
3. **Secondary indexes** (:meth:`~repro.metadb.table.Table.create_index`,
   declared per column via
   :meth:`~repro.metadb.engine.Database.create_index`) — maintained
   incrementally on INSERT and UPDATE; DELETE compacts rowids and rebuilds.
   ``Database.n_parses`` / ``n_index_probes`` / ``n_full_scans`` expose
   cache and planner behavior for tests and benchmarks.

Example::

    db = Database()
    db.execute("CREATE TABLE run_table (runid INTEGER, dataset TEXT)")
    db.execute("INSERT INTO run_table VALUES (?, ?)", (1, "p"))
    rows = db.execute("SELECT * FROM run_table WHERE runid = ?", (1,))
"""

from repro.metadb.types import ColumnType, BLOB, INTEGER, REAL, TEXT
from repro.metadb.table import Column, Row, Table
from repro.metadb.engine import Database
from repro.metadb.schema import SDM_INDEXES, SDM_SCHEMA, SDMTables

__all__ = [
    "ColumnType",
    "INTEGER",
    "REAL",
    "TEXT",
    "BLOB",
    "Column",
    "Row",
    "Table",
    "Database",
    "SDM_SCHEMA",
    "SDM_INDEXES",
    "SDMTables",
]
