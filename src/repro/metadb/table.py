"""Tables: typed row storage with schema validation and secondary indexes."""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ColumnNotFound, MetaDBError, SQLTypeError
from repro.metadb.types import ColumnType

__all__ = ["Column", "Row", "Table"]

Row = Tuple[Any, ...]
"""Rows are plain tuples in column-declaration order."""


@dataclass(frozen=True)
class Column:
    """One declared column."""

    name: str
    type: ColumnType


class Table:
    """Heap of typed rows, append-ordered (insertion order is stable).

    A table may carry secondary hash indexes on individual columns
    (:meth:`create_index`): each maps a stored value to the ascending list
    of rowids holding it, so equality lookups probe a dict instead of
    scanning the heap.  Indexes are maintained on insert and in-place
    update; deletion compacts rowids, so it rebuilds them.
    """

    def __init__(self, name: str, columns: Sequence[Column]) -> None:
        if not columns:
            raise MetaDBError(f"table {name!r} must have at least one column")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise MetaDBError(f"duplicate column names in table {name!r}")
        self.name = name
        self.columns = list(columns)
        self._index: Dict[str, int] = {c.name: i for i, c in enumerate(columns)}
        self.rows: List[Row] = []
        self.indexes: Dict[str, Dict[Any, List[int]]] = {}

    @property
    def column_names(self) -> List[str]:
        """Declared column names in order."""
        return [c.name for c in self.columns]

    def column_pos(self, name: str) -> int:
        """Position of a column (raises :class:`ColumnNotFound`)."""
        try:
            return self._index[name]
        except KeyError:
            raise ColumnNotFound(
                f"table {self.name!r} has no column {name!r}"
            ) from None

    def coerce_row(
        self, values: Sequence[Any], columns: Optional[Sequence[str]] = None
    ) -> Row:
        """Validate a row; ``columns`` selects a subset (others NULL)."""
        if columns is None:
            if len(values) != len(self.columns):
                raise SQLTypeError(
                    f"table {self.name!r} expects {len(self.columns)} values, "
                    f"got {len(values)}"
                )
            return tuple(
                col.type.coerce(v) for col, v in zip(self.columns, values)
            )
        if len(columns) != len(values):
            raise SQLTypeError(
                f"{len(columns)} columns but {len(values)} values"
            )
        if len(set(columns)) != len(columns):
            dupes = sorted({c for c in columns if list(columns).count(c) > 1})
            raise SQLTypeError(
                f"duplicate column(s) {dupes} in INSERT column list"
            )
        row: List[Any] = [None] * len(self.columns)
        for name, value in zip(columns, values):
            pos = self.column_pos(name)
            row[pos] = self.columns[pos].type.coerce(value)
        return tuple(row)

    def insert(
        self, values: Sequence[Any], columns: Optional[Sequence[str]] = None
    ) -> Row:
        """Append a validated row; returns it."""
        row = self.coerce_row(values, columns)
        rowid = len(self.rows)
        self.rows.append(row)
        for col, buckets in self.indexes.items():
            buckets.setdefault(row[self._index[col]], []).append(rowid)
        return row

    def scan(self) -> Iterable[Tuple[int, Row]]:
        """Iterate ``(rowid, row)`` pairs in insertion order."""
        return enumerate(self.rows)

    def replace_row(self, rowid: int, row: Row) -> None:
        """Overwrite one row in place, keeping indexes consistent."""
        old = self.rows[rowid]
        self.rows[rowid] = row
        for col, buckets in self.indexes.items():
            pos = self._index[col]
            if old[pos] is row[pos] or old[pos] == row[pos]:
                continue  # same dict key (1 == 1.0 == True hash together)
            bucket = buckets.get(old[pos])
            if bucket is not None:
                bucket.remove(rowid)
                if not bucket:
                    del buckets[old[pos]]
            insort(buckets.setdefault(row[pos], []), rowid)

    def delete_rowids(self, rowids: Iterable[int]) -> int:
        """Remove rows by position; returns how many were removed."""
        doomed = set(rowids)
        if not doomed:
            return 0
        before = len(self.rows)
        self.rows = [r for i, r in enumerate(self.rows) if i not in doomed]
        if self.indexes:
            # Compaction renumbers every surviving rowid: rebuild.
            for col in self.indexes:
                self.indexes[col] = self._build_index(col)
        return before - len(self.rows)

    # -- secondary indexes ------------------------------------------------

    def _build_index(self, column: str) -> Dict[Any, List[int]]:
        pos = self.column_pos(column)
        buckets: Dict[Any, List[int]] = {}
        for i, row in enumerate(self.rows):
            buckets.setdefault(row[pos], []).append(i)
        return buckets

    def create_index(self, column: str) -> None:
        """Declare a hash index on one column (idempotent)."""
        if column not in self.indexes:
            self.indexes[column] = self._build_index(column)

    def probe_index(self, column: str, value: Any) -> Optional[List[int]]:
        """Ascending rowids where ``column == value``; None if unindexed.

        An unhashable probe value also returns None (the caller falls back
        to a scan, which compares without hashing).
        """
        buckets = self.indexes.get(column)
        if buckets is None:
            return None
        try:
            return buckets.get(value, [])
        except TypeError:
            return None

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Table {self.name!r} cols={self.column_names} rows={len(self.rows)}>"
