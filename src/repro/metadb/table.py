"""Tables: typed row storage with schema validation and secondary indexes.

Two index kinds back the engine's planner:

* :class:`HashIndex` — a dict from a tuple of column values to the
  ascending list of rowids holding it.  One or more columns; an equality
  probe over *all* indexed columns answers in O(1).
* :class:`OrderedIndex` — a ``bisect``-maintained sorted array of
  ``(key, rowid)`` entries over one or more columns.  Serves equality
  probes on a column *prefix*, range predicates (``<`` ``<=`` ``>`` ``>=``
  and BETWEEN-style pairs) on the column after the bound prefix, and
  ``ORDER BY ... [LIMIT n]`` without sorting.

Ordered keys wrap every column value with :func:`_sort_key`, the exact
key function the engine's ORDER BY uses (NULL sorts first ascending), so
an index walk and a sort of scanned rows produce identical orderings —
including rowid-ascending tie-breaks.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ColumnNotFound, MetaDBError, SQLTypeError
from repro.metadb.types import ColumnType

__all__ = ["Column", "Row", "Table", "HashIndex", "OrderedIndex", "index_name"]

Row = Tuple[Any, ...]
"""Rows are plain tuples in column-declaration order."""

INDEX_KINDS = ("hash", "ordered")

_KEY_HI = (2,)
"""Sorts after every wrapped column value ((False, _) and (True, _))."""


def _sort_key(value: Any) -> Tuple[Any, ...]:
    """Total-order key for one column value; matches ORDER BY semantics
    (NULL first ascending, ties left to the caller)."""
    return (True, value) if value is not None else (False, 0)


@dataclass(frozen=True)
class Column:
    """One declared column."""

    name: str
    type: ColumnType


def index_name(kind: str, columns: Sequence[str]) -> str:
    """Canonical name of an index declaration, e.g. ``hash(runid,dataset)``."""
    return f"{kind}({','.join(columns)})"


class HashIndex:
    """value-tuple → ascending rowids; equality probes on all columns."""

    kind = "hash"

    def __init__(self, columns: Sequence[str], positions: Sequence[int]) -> None:
        self.columns = tuple(columns)
        self.positions = tuple(positions)
        self.buckets: Dict[Tuple[Any, ...], List[int]] = {}

    @property
    def name(self) -> str:
        return index_name(self.kind, self.columns)

    def key_of(self, row: Row) -> Tuple[Any, ...]:
        return tuple(row[p] for p in self.positions)

    def add(self, rowid: int, row: Row) -> None:
        self.buckets.setdefault(self.key_of(row), []).append(rowid)

    def add_many(self, pairs: Sequence[Tuple[int, Row]]) -> None:
        """Index a batch of appended ``(rowid, row)`` pairs.

        Rowids ascend (the pairs come from an append), so plain bucket
        appends keep every bucket's rowid list sorted.
        """
        for rowid, row in pairs:
            self.buckets.setdefault(self.key_of(row), []).append(rowid)

    def move(self, rowid: int, old: Row, new: Row) -> None:
        old_key, new_key = self.key_of(old), self.key_of(new)
        if old_key == new_key:
            return  # same dict key (1 == 1.0 hash together)
        bucket = self.buckets.get(old_key)
        if bucket is not None:
            bucket.remove(rowid)
            if not bucket:
                del self.buckets[old_key]
        insort(self.buckets.setdefault(new_key, []), rowid)

    def rebuild(self, rows: Sequence[Row]) -> None:
        self.buckets = {}
        for i, row in enumerate(rows):
            self.buckets.setdefault(self.key_of(row), []).append(i)

    def probe(self, values: Tuple[Any, ...]) -> Optional[List[int]]:
        """Ascending rowids where every column equals its value; None when
        the probe value is unhashable (caller falls back to a scan)."""
        try:
            return self.buckets.get(values, [])
        except TypeError:
            return None


class OrderedIndex:
    """Sorted ``(wrapped-key-tuple, rowid)`` entries over the columns.

    Every row is present (NULL keys wrap to a value that sorts first), so
    any contiguous slice is a faithful fragment of the ORDER BY ordering
    and slicing can only ever *narrow* a scan.
    """

    kind = "ordered"

    def __init__(self, columns: Sequence[str], positions: Sequence[int]) -> None:
        self.columns = tuple(columns)
        self.positions = tuple(positions)
        self.entries: List[Tuple[Tuple[Any, ...], int]] = []

    @property
    def name(self) -> str:
        return index_name(self.kind, self.columns)

    def key_of(self, row: Row) -> Tuple[Any, ...]:
        return tuple(_sort_key(row[p]) for p in self.positions)

    def add(self, rowid: int, row: Row) -> None:
        insort(self.entries, (self.key_of(row), rowid))

    def add_many(self, pairs: Sequence[Tuple[int, Row]]) -> None:
        """Index a batch of appended ``(rowid, row)`` pairs in one sort.

        Per-row :meth:`add` pays an O(n) ``insort`` memmove per row; a
        batch extends the array once and re-sorts.  Timsort is near-linear
        on the mostly-sorted result, so a bulk INSERT stays linear in the
        batch instead of quadratic — the ordered-index write cost of the
        batched ``execute_many`` paths.
        """
        self.entries.extend((self.key_of(row), rowid) for rowid, row in pairs)
        self.entries.sort()

    def move(self, rowid: int, old: Row, new: Row) -> None:
        old_key, new_key = self.key_of(old), self.key_of(new)
        if old_key == new_key:
            return
        i = bisect_left(self.entries, (old_key, rowid))
        if i < len(self.entries) and self.entries[i] == (old_key, rowid):
            del self.entries[i]
        insort(self.entries, (new_key, rowid))

    def rebuild(self, rows: Sequence[Row]) -> None:
        self.entries = sorted((self.key_of(row), i) for i, row in enumerate(rows))

    def slice_bounds(
        self,
        prefix: Sequence[Any],
        lower: Optional[Tuple[str, Any]] = None,
        upper: Optional[Tuple[str, Any]] = None,
    ) -> Tuple[int, int]:
        """``[start, end)`` of entries matching ``columns[:k] == prefix``
        plus an optional lower/upper bound ``(op, value)`` on column ``k``.

        The slice is *exact*: equality uses the same ``==`` the evaluator
        does, and range bounds exclude NULL keys (a comparison with NULL is
        always False).  Raises TypeError if the probe values cannot be
        ordered against the stored keys — callers fall back to a scan,
        which raises (or not) with identical semantics.
        """
        p = tuple(_sort_key(v) for v in prefix)
        entries = self.entries
        if lower is not None:
            op, value = lower
            w = _sort_key(value)
            if op == ">":
                start = bisect_right(entries, (p + (w, _KEY_HI),))
            else:  # >=
                start = bisect_left(entries, (p + (w,),))
        elif upper is not None:
            # Skip NULL keys so an upper-bound-only slice stays exact.
            start = bisect_left(entries, (p + ((True,),),))
        else:
            start = bisect_left(entries, (p,)) if p else 0
        if upper is not None:
            op, value = upper
            w = _sort_key(value)
            if op == "<":
                end = bisect_left(entries, (p + (w,),))
            else:  # <=
                end = bisect_right(entries, (p + (w, _KEY_HI),))
        else:
            end = bisect_right(entries, (p + (_KEY_HI,),)) if p else len(entries)
        return start, max(start, end)

    def min_in_slice(self, prefix: Sequence[Any], start: int, end: int) -> Any:
        """Smallest non-NULL value of column ``len(prefix)`` over
        ``entries[start:end]`` (a :meth:`slice_bounds` slice, so the prefix
        columns are constant and that column ascends); None when every key
        in the slice is NULL."""
        p = tuple(_sort_key(v) for v in prefix)
        # NULL keys wrap to (False, 0) and sort first: bisect past them.
        nn = bisect_left(self.entries, (p + ((True,),),), start, end)
        if nn >= end:
            return None
        return self.entries[nn][0][len(p)][1]

    def max_in_slice(self, prefix: Sequence[Any], start: int, end: int) -> Any:
        """Largest non-NULL value of column ``len(prefix)`` over
        ``entries[start:end]``; None when the slice is empty or all-NULL."""
        if end <= start:
            return None
        non_null, value = self.entries[end - 1][0][len(prefix)]
        return value if non_null else None


class Table:
    """Heap of typed rows, append-ordered (insertion order is stable).

    A table may carry secondary indexes (:meth:`create_index`) of two
    kinds — ``hash`` (single or composite equality) and ``ordered``
    (range / ORDER BY) — maintained on insert and in-place update;
    deletion compacts rowids, so it rebuilds them.
    """

    def __init__(self, name: str, columns: Sequence[Column]) -> None:
        if not columns:
            raise MetaDBError(f"table {name!r} must have at least one column")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise MetaDBError(f"duplicate column names in table {name!r}")
        self.name = name
        self.columns = list(columns)
        self._index: Dict[str, int] = {c.name: i for i, c in enumerate(columns)}
        self.rows: List[Row] = []
        self.indexes: Dict[str, Any] = {}
        """Index name → :class:`HashIndex` | :class:`OrderedIndex`."""

    @property
    def column_names(self) -> List[str]:
        """Declared column names in order."""
        return [c.name for c in self.columns]

    def column_pos(self, name: str) -> int:
        """Position of a column (raises :class:`ColumnNotFound`)."""
        try:
            return self._index[name]
        except KeyError:
            raise ColumnNotFound(
                f"table {self.name!r} has no column {name!r}"
            ) from None

    def coerce_row(
        self, values: Sequence[Any], columns: Optional[Sequence[str]] = None
    ) -> Row:
        """Validate a row; ``columns`` selects a subset (others NULL)."""
        if columns is None:
            if len(values) != len(self.columns):
                raise SQLTypeError(
                    f"table {self.name!r} expects {len(self.columns)} values, "
                    f"got {len(values)}"
                )
            return tuple(
                col.type.coerce(v) for col, v in zip(self.columns, values)
            )
        if len(columns) != len(values):
            raise SQLTypeError(
                f"{len(columns)} columns but {len(values)} values"
            )
        if len(set(columns)) != len(columns):
            dupes = sorted({c for c in columns if list(columns).count(c) > 1})
            raise SQLTypeError(
                f"duplicate column(s) {dupes} in INSERT column list"
            )
        row: List[Any] = [None] * len(self.columns)
        for name, value in zip(columns, values):
            pos = self.column_pos(name)
            row[pos] = self.columns[pos].type.coerce(value)
        return tuple(row)

    def insert(
        self, values: Sequence[Any], columns: Optional[Sequence[str]] = None
    ) -> Row:
        """Append a validated row; returns it."""
        row = self.coerce_row(values, columns)
        rowid = len(self.rows)
        self.rows.append(row)
        for index in self.indexes.values():
            index.add(rowid, row)
        return row

    def append_rows(self, rows: Sequence[Row]) -> None:
        """Append pre-coerced rows and index them in one batch.

        The bulk-load half of :meth:`insert`: callers coerce every row
        first (so a bad row rejects the whole batch before any state
        changes), then the heap extends once and each index ingests the
        batch through its ``add_many`` (one sort for ordered indexes
        instead of per-row ``insort``).
        """
        start = len(self.rows)
        self.rows.extend(rows)
        pairs = list(enumerate(rows, start))
        for index in self.indexes.values():
            index.add_many(pairs)

    def scan(self) -> Iterable[Tuple[int, Row]]:
        """Iterate ``(rowid, row)`` pairs in insertion order."""
        return enumerate(self.rows)

    def replace_row(self, rowid: int, row: Row) -> None:
        """Overwrite one row in place, keeping indexes consistent."""
        old = self.rows[rowid]
        self.rows[rowid] = row
        for index in self.indexes.values():
            index.move(rowid, old, row)

    def delete_rowids(self, rowids: Iterable[int]) -> int:
        """Remove rows by position; returns how many were removed."""
        doomed = set(rowids)
        if not doomed:
            return 0
        before = len(self.rows)
        self.rows = [r for i, r in enumerate(self.rows) if i not in doomed]
        # Compaction renumbers every surviving rowid: rebuild.
        for index in self.indexes.values():
            index.rebuild(self.rows)
        return before - len(self.rows)

    # -- secondary indexes ------------------------------------------------

    def make_index(self, columns, kind: str = "hash"):
        """Build (but do not attach) an index over the current rows."""
        if isinstance(columns, str):
            columns = (columns,)
        columns = tuple(columns)
        if not columns:
            raise MetaDBError(f"index on {self.name!r} needs at least one column")
        if len(set(columns)) != len(columns):
            raise MetaDBError(f"duplicate columns in index on {self.name!r}")
        positions = tuple(self.column_pos(c) for c in columns)
        if kind == "hash":
            index = HashIndex(columns, positions)
        elif kind == "ordered":
            index = OrderedIndex(columns, positions)
        else:
            raise MetaDBError(
                f"unknown index kind {kind!r} (expected one of {INDEX_KINDS})"
            )
        index.rebuild(self.rows)
        return index

    def create_index(self, columns, kind: str = "hash") -> None:
        """Declare an index on a column or column tuple (idempotent)."""
        index = self.make_index(columns, kind)
        if index.name not in self.indexes:
            self.indexes[index.name] = index

    def hash_indexes(self) -> List[HashIndex]:
        return [i for i in self.indexes.values() if i.kind == "hash"]

    def ordered_indexes(self) -> List[OrderedIndex]:
        return [i for i in self.indexes.values() if i.kind == "ordered"]

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Table {self.name!r} cols={self.column_names} rows={len(self.rows)}>"
