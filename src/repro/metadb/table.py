"""Tables: typed row storage with schema validation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ColumnNotFound, MetaDBError, SQLTypeError
from repro.metadb.types import ColumnType

__all__ = ["Column", "Row", "Table"]

Row = Tuple[Any, ...]
"""Rows are plain tuples in column-declaration order."""


@dataclass(frozen=True)
class Column:
    """One declared column."""

    name: str
    type: ColumnType


class Table:
    """Heap of typed rows, append-ordered (insertion order is stable)."""

    def __init__(self, name: str, columns: Sequence[Column]) -> None:
        if not columns:
            raise MetaDBError(f"table {name!r} must have at least one column")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise MetaDBError(f"duplicate column names in table {name!r}")
        self.name = name
        self.columns = list(columns)
        self._index: Dict[str, int] = {c.name: i for i, c in enumerate(columns)}
        self.rows: List[Row] = []

    @property
    def column_names(self) -> List[str]:
        """Declared column names in order."""
        return [c.name for c in self.columns]

    def column_pos(self, name: str) -> int:
        """Position of a column (raises :class:`ColumnNotFound`)."""
        try:
            return self._index[name]
        except KeyError:
            raise ColumnNotFound(
                f"table {self.name!r} has no column {name!r}"
            ) from None

    def coerce_row(
        self, values: Sequence[Any], columns: Optional[Sequence[str]] = None
    ) -> Row:
        """Validate a row; ``columns`` selects a subset (others NULL)."""
        if columns is None:
            if len(values) != len(self.columns):
                raise SQLTypeError(
                    f"table {self.name!r} expects {len(self.columns)} values, "
                    f"got {len(values)}"
                )
            return tuple(
                col.type.coerce(v) for col, v in zip(self.columns, values)
            )
        if len(columns) != len(values):
            raise SQLTypeError(
                f"{len(columns)} columns but {len(values)} values"
            )
        row: List[Any] = [None] * len(self.columns)
        for name, value in zip(columns, values):
            pos = self.column_pos(name)
            row[pos] = self.columns[pos].type.coerce(value)
        return tuple(row)

    def insert(
        self, values: Sequence[Any], columns: Optional[Sequence[str]] = None
    ) -> Row:
        """Append a validated row; returns it."""
        row = self.coerce_row(values, columns)
        self.rows.append(row)
        return row

    def scan(self) -> Iterable[Tuple[int, Row]]:
        """Iterate ``(rowid, row)`` pairs in insertion order."""
        return enumerate(self.rows)

    def delete_rowids(self, rowids: Iterable[int]) -> int:
        """Remove rows by position; returns how many were removed."""
        doomed = set(rowids)
        if not doomed:
            return 0
        before = len(self.rows)
        self.rows = [r for i, r in enumerate(self.rows) if i not in doomed]
        return before - len(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Table {self.name!r} cols={self.column_names} rows={len(self.rows)}>"
