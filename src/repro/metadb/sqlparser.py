"""Tokenizer and recursive-descent parser for the mini-SQL dialect.

Supported statements (keywords case-insensitive, identifiers preserved):

.. code-block:: sql

    CREATE TABLE [IF NOT EXISTS] t (col TYPE, ...)
    DROP TABLE [IF EXISTS] t
    INSERT INTO t [(col, ...)] VALUES (expr, ...)
    SELECT * | col, ... | COUNT(*) | MAX(col) | MIN(col) | SUM(col)
        FROM t [WHERE expr] [ORDER BY col [ASC|DESC], ...] [LIMIT n]
    UPDATE t SET col = expr, ... [WHERE expr]
    DELETE FROM t [WHERE expr]

Expressions: literals (integers, floats, 'strings', NULL), ``?`` parameters,
column refs, comparisons (= != <> < <= > >=), ``x BETWEEN lo AND hi``
(desugared to ``x >= lo AND x <= hi``, so the planner sees two range
conjuncts), IS [NOT] NULL, NOT, AND, OR, parentheses.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.errors import SQLSyntaxError
from repro.metadb.expr import (
    BoolOp,
    ColumnRef,
    Compare,
    Expr,
    IsNull,
    Literal,
    Not,
    Param,
)
from repro.metadb.types import ColumnType, type_by_name

__all__ = [
    "parse",
    "CreateTable",
    "DropTable",
    "Insert",
    "Select",
    "Update",
    "Delete",
]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<float>\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+)
  | (?P<int>\d+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><>|<=|>=|!=|=|<|>|\(|\)|,|\?|\*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "CREATE", "TABLE", "IF", "NOT", "EXISTS", "DROP", "INSERT", "INTO",
    "VALUES", "SELECT", "FROM", "WHERE", "ORDER", "BY", "ASC", "DESC",
    "LIMIT", "UPDATE", "SET", "DELETE", "AND", "OR", "NULL", "IS",
    "BETWEEN", "COUNT", "MAX", "MIN", "SUM",
}


@dataclass(frozen=True)
class _Token:
    kind: str  # "int" | "float" | "string" | "ident" | "keyword" | "op"
    text: str


def _tokenize(sql: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    while pos < len(sql):
        m = _TOKEN_RE.match(sql, pos)
        if m is None:
            raise SQLSyntaxError(f"bad character {sql[pos]!r} at position {pos}")
        pos = m.end()
        kind = m.lastgroup
        if kind == "ws":
            continue
        text = m.group()
        if kind == "ident" and text.upper() in _KEYWORDS:
            tokens.append(_Token("keyword", text.upper()))
        else:
            tokens.append(_Token(kind, text))
    return tokens


# ---------------------------------------------------------------------------
# Statement ASTs
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CreateTable:
    name: str
    columns: Tuple[Tuple[str, ColumnType], ...]
    if_not_exists: bool = False


@dataclass(frozen=True)
class DropTable:
    name: str
    if_exists: bool = False


@dataclass(frozen=True)
class Insert:
    table: str
    columns: Optional[Tuple[str, ...]]
    values: Tuple[Expr, ...]


@dataclass(frozen=True)
class Select:
    table: str
    columns: Optional[Tuple[str, ...]]  # None means '*'
    aggregate: Optional[Tuple[str, Optional[str]]] = None  # (fn, col-or-None)
    where: Optional[Expr] = None
    order_by: Tuple[Tuple[str, bool], ...] = ()  # (col, descending)
    limit: Optional[int] = None


@dataclass(frozen=True)
class Update:
    table: str
    assignments: Tuple[Tuple[str, Expr], ...]
    where: Optional[Expr] = None


@dataclass(frozen=True)
class Delete:
    table: str
    where: Optional[Expr] = None


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

class _Parser:
    def __init__(self, sql: str) -> None:
        self.sql = sql
        self.tokens = _tokenize(sql)
        self.pos = 0
        self.n_params = 0

    # -- token plumbing -------------------------------------------------

    def peek(self) -> Optional[_Token]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> _Token:
        tok = self.peek()
        if tok is None:
            raise SQLSyntaxError(f"unexpected end of statement: {self.sql!r}")
        self.pos += 1
        return tok

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[_Token]:
        tok = self.peek()
        if tok is not None and tok.kind == kind and (text is None or tok.text == text):
            self.pos += 1
            return tok
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> _Token:
        tok = self.accept(kind, text)
        if tok is None:
            got = self.peek()
            want = text or kind
            raise SQLSyntaxError(
                f"expected {want!r}, got {got.text if got else 'end'!r} "
                f"in {self.sql!r}"
            )
        return tok

    def expect_ident(self) -> str:
        tok = self.peek()
        if tok is None or tok.kind != "ident":
            raise SQLSyntaxError(
                f"expected identifier, got "
                f"{tok.text if tok else 'end'!r} in {self.sql!r}"
            )
        self.pos += 1
        return tok.text

    def done(self) -> None:
        if self.peek() is not None:
            raise SQLSyntaxError(
                f"trailing tokens starting at {self.peek().text!r} in {self.sql!r}"
            )

    # -- statements ------------------------------------------------------

    def parse_statement(self):
        tok = self.peek()
        if tok is None:
            raise SQLSyntaxError("empty statement")
        if tok.kind != "keyword":
            raise SQLSyntaxError(f"statement must start with a keyword: {self.sql!r}")
        handler = {
            "CREATE": self._create,
            "DROP": self._drop,
            "INSERT": self._insert,
            "SELECT": self._select,
            "UPDATE": self._update,
            "DELETE": self._delete,
        }.get(tok.text)
        if handler is None:
            raise SQLSyntaxError(f"unsupported statement {tok.text!r}")
        stmt = handler()
        self.done()
        return stmt

    def _create(self) -> CreateTable:
        self.expect("keyword", "CREATE")
        self.expect("keyword", "TABLE")
        if_not_exists = False
        if self.accept("keyword", "IF"):
            self.expect("keyword", "NOT")
            self.expect("keyword", "EXISTS")
            if_not_exists = True
        name = self.expect_ident()
        self.expect("op", "(")
        cols: List[Tuple[str, ColumnType]] = []
        while True:
            col = self.expect_ident()
            type_tok = self.next()
            if type_tok.kind not in ("ident", "keyword"):
                raise SQLSyntaxError(f"expected type after column {col!r}")
            cols.append((col, type_by_name(type_tok.text)))
            if not self.accept("op", ","):
                break
        self.expect("op", ")")
        return CreateTable(name, tuple(cols), if_not_exists)

    def _drop(self) -> DropTable:
        self.expect("keyword", "DROP")
        self.expect("keyword", "TABLE")
        if_exists = False
        if self.accept("keyword", "IF"):
            self.expect("keyword", "EXISTS")
            if_exists = True
        return DropTable(self.expect_ident(), if_exists)

    def _insert(self) -> Insert:
        self.expect("keyword", "INSERT")
        self.expect("keyword", "INTO")
        table = self.expect_ident()
        columns = None
        if self.accept("op", "("):
            names = [self.expect_ident()]
            while self.accept("op", ","):
                names.append(self.expect_ident())
            self.expect("op", ")")
            columns = tuple(names)
        self.expect("keyword", "VALUES")
        self.expect("op", "(")
        values = [self._expr()]
        while self.accept("op", ","):
            values.append(self._expr())
        self.expect("op", ")")
        return Insert(table, columns, tuple(values))

    def _select(self) -> Select:
        self.expect("keyword", "SELECT")
        columns: Optional[Tuple[str, ...]] = None
        aggregate = None
        if self.accept("op", "*"):
            pass
        elif self.peek() and self.peek().kind == "keyword" and self.peek().text in (
            "COUNT", "MAX", "MIN", "SUM"
        ):
            fn = self.next().text
            self.expect("op", "(")
            if fn == "COUNT" and self.accept("op", "*"):
                aggregate = ("COUNT", None)
            else:
                aggregate = (fn, self.expect_ident())
            self.expect("op", ")")
        else:
            names = [self.expect_ident()]
            while self.accept("op", ","):
                names.append(self.expect_ident())
            columns = tuple(names)
        self.expect("keyword", "FROM")
        table = self.expect_ident()
        where = self._where_clause()
        order_by: List[Tuple[str, bool]] = []
        if self.accept("keyword", "ORDER"):
            self.expect("keyword", "BY")
            while True:
                col = self.expect_ident()
                desc = False
                if self.accept("keyword", "DESC"):
                    desc = True
                else:
                    self.accept("keyword", "ASC")
                order_by.append((col, desc))
                if not self.accept("op", ","):
                    break
        limit = None
        if self.accept("keyword", "LIMIT"):
            tok = self.expect("int")
            limit = int(tok.text)
        return Select(table, columns, aggregate, where, tuple(order_by), limit)

    def _update(self) -> Update:
        self.expect("keyword", "UPDATE")
        table = self.expect_ident()
        self.expect("keyword", "SET")
        assignments = []
        while True:
            col = self.expect_ident()
            self.expect("op", "=")
            assignments.append((col, self._expr()))
            if not self.accept("op", ","):
                break
        return Update(table, tuple(assignments), self._where_clause())

    def _delete(self) -> Delete:
        self.expect("keyword", "DELETE")
        self.expect("keyword", "FROM")
        table = self.expect_ident()
        return Delete(table, self._where_clause())

    def _where_clause(self) -> Optional[Expr]:
        if self.accept("keyword", "WHERE"):
            return self._expr()
        return None

    # -- expressions -------------------------------------------------------
    # precedence: OR < AND < NOT < comparison < primary

    def _expr(self) -> Expr:
        return self._or()

    def _or(self) -> Expr:
        operands = [self._and()]
        while self.accept("keyword", "OR"):
            operands.append(self._and())
        return operands[0] if len(operands) == 1 else BoolOp("OR", tuple(operands))

    def _and(self) -> Expr:
        operands = [self._not()]
        while self.accept("keyword", "AND"):
            operands.append(self._not())
        return operands[0] if len(operands) == 1 else BoolOp("AND", tuple(operands))

    def _not(self) -> Expr:
        if self.accept("keyword", "NOT"):
            return Not(self._not())
        return self._comparison()

    def _comparison(self) -> Expr:
        left = self._primary()
        tok = self.peek()
        if tok and tok.kind == "op" and tok.text in ("=", "!=", "<>", "<", "<=", ">", ">="):
            self.pos += 1
            op = "!=" if tok.text == "<>" else tok.text
            right = self._primary()
            return Compare(op, left, right)
        if tok and tok.kind == "keyword" and tok.text == "IS":
            self.pos += 1
            negated = bool(self.accept("keyword", "NOT"))
            self.expect("keyword", "NULL")
            return IsNull(left, negated)
        if tok and tok.kind == "keyword" and tok.text == "BETWEEN":
            # BETWEEN binds tighter than AND: the AND here is part of the
            # BETWEEN, and the whole thing desugars to two range conjuncts.
            self.pos += 1
            low = self._primary()
            self.expect("keyword", "AND")
            high = self._primary()
            return BoolOp(
                "AND", (Compare(">=", left, low), Compare("<=", left, high))
            )
        return left

    def _primary(self) -> Expr:
        tok = self.peek()
        if tok is None:
            raise SQLSyntaxError(f"unexpected end of expression in {self.sql!r}")
        if tok.kind == "op" and tok.text == "(":
            self.pos += 1
            inner = self._expr()
            self.expect("op", ")")
            return inner
        if tok.kind == "op" and tok.text == "?":
            self.pos += 1
            param = Param(self.n_params)
            self.n_params += 1
            return param
        if tok.kind == "int":
            self.pos += 1
            return Literal(int(tok.text))
        if tok.kind == "float":
            self.pos += 1
            return Literal(float(tok.text))
        if tok.kind == "string":
            self.pos += 1
            return Literal(tok.text[1:-1].replace("''", "'"))
        if tok.kind == "keyword" and tok.text == "NULL":
            self.pos += 1
            return Literal(None)
        if tok.kind == "ident":
            self.pos += 1
            return ColumnRef(tok.text)
        raise SQLSyntaxError(f"unexpected token {tok.text!r} in {self.sql!r}")


def parse(sql: str):
    """Parse one statement; returns its AST dataclass."""
    return _Parser(sql).parse_statement()
