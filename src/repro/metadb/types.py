"""Column types of the metadata database."""

from __future__ import annotations

import base64
from dataclasses import dataclass
from typing import Any

from repro.errors import SQLTypeError

__all__ = ["ColumnType", "INTEGER", "REAL", "TEXT", "BLOB", "type_by_name"]


@dataclass(frozen=True)
class ColumnType:
    """A declared SQL column type with validation/coercion rules."""

    name: str

    def coerce(self, value: Any) -> Any:
        """Validate/convert a Python value for storage; None always allowed."""
        if value is None:
            return None
        if self.name == "INTEGER":
            if isinstance(value, bool) or not isinstance(value, int):
                # numpy integer scalars are fine; bools are not.
                try:
                    import numpy as np

                    if isinstance(value, np.integer):
                        return int(value)
                except ImportError:  # pragma: no cover
                    pass
                raise SQLTypeError(f"INTEGER column got {value!r}")
            return int(value)
        if self.name == "REAL":
            if isinstance(value, bool):
                raise SQLTypeError(f"REAL column got {value!r}")
            if isinstance(value, (int, float)):
                return float(value)
            try:
                import numpy as np

                if isinstance(value, (np.integer, np.floating)):
                    return float(value)
            except ImportError:  # pragma: no cover
                pass
            raise SQLTypeError(f"REAL column got {value!r}")
        if self.name == "TEXT":
            if not isinstance(value, str):
                raise SQLTypeError(f"TEXT column got {value!r}")
            return value
        if self.name == "BLOB":
            if isinstance(value, (bytes, bytearray, memoryview)):
                return bytes(value)
            raise SQLTypeError(f"BLOB column got {value!r}")
        raise SQLTypeError(f"unknown column type {self.name!r}")  # pragma: no cover

    def to_json(self, value: Any) -> Any:
        """JSON-serializable representation for persistence."""
        if value is None:
            return None
        if self.name == "BLOB":
            return base64.b64encode(value).decode("ascii")
        return value

    def from_json(self, value: Any) -> Any:
        """Inverse of :meth:`to_json`."""
        if value is None:
            return None
        if self.name == "BLOB":
            return base64.b64decode(value)
        return self.coerce(value)


INTEGER = ColumnType("INTEGER")
REAL = ColumnType("REAL")
TEXT = ColumnType("TEXT")
BLOB = ColumnType("BLOB")

_TYPES = {t.name: t for t in (INTEGER, REAL, TEXT, BLOB)}


def type_by_name(name: str) -> ColumnType:
    """Look up a type by its SQL name (case-insensitive)."""
    try:
        return _TYPES[name.upper()]
    except KeyError:
        raise SQLTypeError(f"unknown column type {name!r}") from None
