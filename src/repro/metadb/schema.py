"""The paper's SDM metadata schema (Figure 4) and typed accessors.

Nine tables, as created by ``SDM_initialize`` (the paper's seven, plus
two that back the maintenance service layer):

* ``run_table`` — one row per application run: id, dimensionality, problem
  size, timestep count, wall-clock date fields.
* ``access_pattern_table`` — one row per output dataset: its basic pattern
  (IRREGULAR here), element type, storage order, global size.
* ``execution_table`` — one row per (dataset, timestep) written: which file
  and at which offset — this is what makes level-2/3 packed organizations
  navigable.
* ``chunk_table`` — one row per rank-chunk of a *chunked* (write-optimized)
  dataset instance: which global index range the chunk covers (plus its
  ``gid_step`` for arithmetic-progression maps, which store no index
  block) and where its index block and data block live in the file.  A
  (runid, dataset, timestep) with chunk rows is stored in distribution
  order; one without is canonical.
  :meth:`SDMTables.update_execution` + :meth:`SDMTables.delete_chunks` flip
  an instance from chunked to canonical after reorganization.
* ``import_table`` — one row per imported (externally created) array.
* ``index_table`` — one row per registered index distribution: problem
  size, process count, history file name.
* ``index_history_table`` — per-rank partitioned sizes and history-file
  offsets for a registered distribution.
* ``maintenance_table`` — one row per *pending* background-maintenance
  job (reorganization or compaction) queued with
  :mod:`repro.core.maintenance`.  Rows are inserted at enqueue time and
  deleted when the job completes, so the set of rows *is* the surviving
  work queue: a snapshot taken mid-backlog carries it to the next job,
  which adopts and executes it (the DataFed-style persistent service
  tier).
* ``extent_table`` — one free (dead) region per row of a ``.chunked``
  checkpoint file: reorganization moves an instance out of the file but
  only the topmost region is reclaimed by the append cursor; interior
  regions are recorded here until a compaction pass slides the live
  chunks down and clears them.  Writes never consult this table — the
  cursor never dips below a recorded extent (reorganization truncates
  extents whenever it retreats the cursor), so extents are exact without
  touching the chunked write hot path.

Plus the MVCC/robustness tier: ``epoch_table`` (the publish log doubling
as the flip intent journal), ``lease_table`` (exclusive flip leases with
boot/heartbeat/TTL liveness), ``pin_table`` (reader snapshot pins with
abandonment stamps), and ``watermark_table`` (per-file reap progress) —
see the inline DDL comments.

:class:`SDMTables` wraps a :class:`~repro.metadb.engine.Database` with typed
methods for exactly the statements SDM issues, so the SQL lives here and the
runtime stays readable.

:data:`SDM_INDEXES` declares secondary indexes on the hot lookup paths:
composite hash indexes for the multi-column equality probes (the
``(runid, dataset, timestep)`` point lookup behind every read, the
``(problem_size, num_procs[, rank])`` history lookups) and ordered
indexes for the range/ORDER BY shapes (``max_offset_in_file``'s
end-of-file probe, the catalog's timestep and run listings).  (This
flattens the *host* execution time of the simulator itself as runs and
timesteps accumulate; the simulated virtual-time charge is set by the
:class:`~repro.config.DatabaseModel` cost model and is per-row-touched
either way.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import SDMStateError
from repro.metadb.engine import Database
from repro.simt.process import Process

__all__ = [
    "SDM_SCHEMA",
    "SDM_INDEXES",
    "SDMTables",
    "ChunkRecord",
    "HistoryRecord",
    "HistoryRankRecord",
    "MaintenanceRecord",
    "OPEN_EPOCH",
    "EPOCH_INTENT",
    "EPOCH_PUBLISHED",
    "DEFAULT_LEASE_TTL",
    "DEFAULT_PIN_TTL",
]

#: ``valid_to`` sentinel of a row that is current (not superseded).  An
#: equality conjunct on this value resolves current visibility in the
#: same single statement the unversioned schema used, so the hot read
#: path never consults epoch_table.
OPEN_EPOCH = 2 ** 62

#: epoch_table states: a flip's write-ahead record starts as ``intent``
#: and :meth:`SDMTables.commit_flip` flips it to ``published`` — the
#: single-statement commit point of the whole metadata flip.
EPOCH_INTENT = "intent"
EPOCH_PUBLISHED = "published"

#: Virtual-time lease lifetime: a flip lease whose heartbeat is older
#: than this is presumed dead and may be recovered + stolen.  Flips
#: heartbeat before each publish step, so a live holder never expires.
DEFAULT_LEASE_TTL = 60.0

#: Virtual-time pin lifetime: a snapshot pin untouched for this long is
#: presumed abandoned and released by the maintenance reaper.  Readers
#: touch their pin (throttled to every TTL/4) on the read path.
DEFAULT_PIN_TTL = 300.0

SDM_SCHEMA: Tuple[str, ...] = (
    """CREATE TABLE IF NOT EXISTS run_table (
        runid INTEGER, application TEXT, dimension INTEGER,
        problem_size INTEGER, num_timesteps INTEGER,
        year INTEGER, month INTEGER, day INTEGER, hour INTEGER, minute INTEGER
    )""",
    """CREATE TABLE IF NOT EXISTS access_pattern_table (
        runid INTEGER, dataset TEXT, basic_pattern TEXT,
        data_type TEXT, storage_order TEXT, global_size INTEGER
    )""",
    # execution_table and chunk_table rows are *versioned*: a row is
    # visible at epoch E iff valid_from <= E < valid_to.  Open (current)
    # rows carry valid_to = OPEN_EPOCH; a metadata flip closes the old
    # version (valid_to = new epoch) and inserts the successor
    # (valid_from = new epoch).  Fresh appends insert valid_from = 0 so
    # they are visible to every pinned snapshot — MVCC isolates flips,
    # not ordinary writes.
    """CREATE TABLE IF NOT EXISTS execution_table (
        runid INTEGER, dataset TEXT, timestep INTEGER,
        file_name TEXT, file_offset INTEGER, nbytes INTEGER,
        valid_from INTEGER, valid_to INTEGER
    )""",
    """CREATE TABLE IF NOT EXISTS chunk_table (
        runid INTEGER, dataset TEXT, timestep INTEGER, rank INTEGER,
        gid_min INTEGER, gid_max INTEGER, num_elements INTEGER,
        gid_step INTEGER, index_offset INTEGER, data_offset INTEGER,
        valid_from INTEGER, valid_to INTEGER
    )""",
    """CREATE TABLE IF NOT EXISTS import_table (
        runid INTEGER, imported_name TEXT, file_name TEXT,
        data_type TEXT, storage_order TEXT, partition TEXT,
        file_content TEXT, file_offset INTEGER, num_elements INTEGER
    )""",
    """CREATE TABLE IF NOT EXISTS index_table (
        problem_size INTEGER, num_procs INTEGER, dimension INTEGER,
        registered_file_name TEXT
    )""",
    """CREATE TABLE IF NOT EXISTS index_history_table (
        problem_size INTEGER, num_procs INTEGER, rank INTEGER,
        edge_count INTEGER, node_count INTEGER,
        edge_offset INTEGER, node_offset INTEGER
    )""",
    """CREATE TABLE IF NOT EXISTS maintenance_table (
        jobid INTEGER, kind TEXT, application TEXT, organization INTEGER,
        group_id INTEGER, runid INTEGER, dataset TEXT, timestep INTEGER,
        file_name TEXT, data_type TEXT, global_size INTEGER
    )""",
    """CREATE TABLE IF NOT EXISTS extent_table (
        file_name TEXT, file_offset INTEGER, nbytes INTEGER
    )""",
    # Append-only publish log doubling as the flip *intent journal*: one
    # row per epoch of a file.  A flip first writes its row with
    # state='intent' (the write-ahead record), inserts/closes the row
    # versions, then flips state='published' — the commit point.  A
    # recovering lease stealer resolves a surviving 'intent' row by
    # rolling the flip back, and a 'published' row by finishing its reap.
    # The global epoch counter is MAX(epoch) across all files; a file's
    # current epoch is MAX(epoch) for its rows.  Reaped history is pruned
    # up to the file's reap watermark.
    """CREATE TABLE IF NOT EXISTS epoch_table (
        file_name TEXT, epoch INTEGER, state TEXT
    )""",
    # Short exclusive per-file lease taken by metadata flips (reorganize,
    # compact).  A second writer finding a *live* lease here fails fast
    # with SDMLeaseConflict instead of silently losing an update.  A
    # lease is dead — stealable after recovery — when its holder's boot
    # predates the database's current incarnation, or when its heartbeat
    # is older than its ttl.
    """CREATE TABLE IF NOT EXISTS lease_table (
        file_name TEXT, holder TEXT,
        boot INTEGER, acquired_at REAL, heartbeat REAL, ttl REAL
    )""",
    # Reader snapshots: a pin holds its epoch's row versions alive.  The
    # reaper skips any dead version whose validity interval contains a
    # pinned epoch.  boot/touched support the abandoned-pin reaper: a pin
    # from a prior incarnation, or one untouched past the timeout, was
    # leaked by a dead client and is released on its behalf.
    """CREATE TABLE IF NOT EXISTS pin_table (
        pin_id INTEGER, client TEXT, epoch INTEGER,
        boot INTEGER, touched REAL
    )""",
    # Per-file reap progress: every row version of epochs below the
    # watermark has been reaped, so epoch history below it is pruned.
    # Replaces the global min-pin floor — one stuck pin no longer blocks
    # epoch-log truncation for every other file.
    """CREATE TABLE IF NOT EXISTS watermark_table (
        file_name TEXT, epoch INTEGER
    )""",
)

SDM_INDEXES: Tuple[Tuple[str, Tuple[str, ...], str], ...] = (
    # One probe allocates runids; the ordered index also serves the
    # catalog's `ORDER BY runid` run listing without a sort.
    ("run_table", ("runid",), "ordered"),
    # datasets_for_run (single-column) and _dataset_record (composite).
    ("access_pattern_table", ("runid",), "hash"),
    ("access_pattern_table", ("runid", "dataset"), "hash"),
    # lookup_execution probes the composite hash once; the ordered twin
    # serves the catalog's `WHERE runid/dataset ORDER BY timestep`; the
    # (file_name, file_offset) index answers max_offset_in_file's
    # `ORDER BY file_offset DESC LIMIT 1` end-of-file probe directly.
    ("execution_table", ("runid", "dataset", "timestep"), "hash"),
    ("execution_table", ("runid", "dataset", "timestep"), "ordered"),
    ("execution_table", ("file_name", "file_offset"), "ordered"),
    # chunks_for is a sorted probe (equality triple + ORDER BY rank); the
    # hash twin serves delete_chunks' narrowing.
    ("chunk_table", ("runid", "dataset", "timestep"), "hash"),
    ("chunk_table", ("runid", "dataset", "timestep", "rank"), "ordered"),
    ("import_table", ("runid", "imported_name"), "hash"),
    ("index_table", ("problem_size", "num_procs"), "hash"),
    # history_rank probes the triple; drop_history narrows by the pair.
    ("index_history_table", ("problem_size", "num_procs", "rank"), "hash"),
    ("index_history_table", ("problem_size", "num_procs"), "hash"),
    # Pending-job adoption walks `ORDER BY jobid` and allocation probes
    # MAX(jobid) — both served from the slice ends of one ordered index.
    ("maintenance_table", ("jobid",), "ordered"),
    # Extent listing/truncation is an equality-plus-range shape; the hash
    # twin serves clear_extents / free-byte narrowing.
    ("extent_table", ("file_name", "file_offset"), "ordered"),
    ("extent_table", ("file_name",), "hash"),
    # Global epoch allocation probes MAX(epoch); per-file current-epoch
    # and history pruning narrow on (file_name, epoch).
    ("epoch_table", ("epoch",), "ordered"),
    ("epoch_table", ("file_name", "epoch"), "ordered"),
    ("lease_table", ("file_name",), "hash"),
    # Pin release probes pin_id; the reap floor probes MIN(epoch).
    ("pin_table", ("pin_id",), "ordered"),
    ("pin_table", ("epoch",), "ordered"),
    # Reap-watermark lookup is a per-file point probe.
    ("watermark_table", ("file_name",), "hash"),
)
"""(table, column tuple, kind) declarations for SDM's hot lookups."""


@dataclass(frozen=True)
class ChunkRecord:
    """chunk_table row: one rank's block of a chunked dataset instance.

    ``gid_min``/``gid_max`` bound the global indices the chunk covers
    (``(0, -1)`` for an empty chunk); ``index_offset``/``data_offset`` are
    absolute file byte offsets of the chunk's sorted int64 index block and
    its data block.  ``index_offset == data_offset`` marks an *arithmetic*
    chunk — the map is the progression ``gid_min, gid_min + gid_step, ...,
    gid_max`` (``gid_step == 1``: the dense case), so no index block is
    stored and element positions are computed, never fetched.  For chunks
    with a real index block ``gid_step`` is 1 and unused.
    """

    rank: int
    gid_min: int
    gid_max: int
    num_elements: int
    index_offset: int
    data_offset: int
    gid_step: int = 1


@dataclass(frozen=True)
class MaintenanceRecord:
    """maintenance_table row: one pending background-maintenance job.

    ``kind`` is ``"reorganize"`` or ``"compact"``.  Reorganize jobs carry
    everything the execute half needs to run without the producing
    :class:`~repro.core.groups.DataGroup` (the dataset's type name and
    global size, the group id for level-3 file naming); compact jobs only
    use ``file_name``.
    """

    jobid: int
    kind: str
    application: str
    organization: int
    group_id: int
    runid: int
    dataset: str
    timestep: int
    file_name: str
    data_type: str
    global_size: int


@dataclass(frozen=True)
class HistoryRecord:
    """index_table row: one registered index distribution."""

    problem_size: int
    num_procs: int
    dimension: int
    file_name: str


@dataclass(frozen=True)
class HistoryRankRecord:
    """index_history_table row: one rank's slice of a history file."""

    rank: int
    edge_count: int
    node_count: int
    edge_offset: int
    node_offset: int


class SDMTables:
    """Typed accessors over the SDM schema."""

    def __init__(self, db: Database) -> None:
        self.db = db
        self.n_leases_stolen = 0
        """Expired leases recovered and taken over by a later acquirer."""
        self.n_flips_rolled_back = 0
        """Interrupted flips withdrawn (intent record found, commit not
        reached: successors deleted, predecessors reopened)."""
        self.n_flips_rolled_forward = 0
        """Committed flips whose reap half was finished by recovery."""
        self.n_pins_expired = 0
        """Abandoned snapshot pins released on a dead client's behalf."""

    def create_all(self, proc: Optional[Process] = None) -> None:
        """Create the thirteen tables and their secondary indexes (idempotent)."""
        for ddl in SDM_SCHEMA:
            self.db.execute(ddl, proc=proc)
        self.declare_indexes()

    def declare_indexes(self) -> None:
        """Declare :data:`SDM_INDEXES` on whichever SDM tables exist.

        Idempotent.  :meth:`Database.loads` now restores persisted index
        declarations, so a snapshot-restored database is already indexed;
        this remains for pre-persistence snapshots and databases seeded by
        hand (rows inserted directly into :class:`Table`).
        """
        for table, columns, kind in SDM_INDEXES:
            if table in self.db.tables:
                self.db.create_index(table, columns, kind)

    # -- run_table -------------------------------------------------------

    def next_runid(self, proc: Optional[Process] = None) -> int:
        """Allocate the next run id (MAX(runid)+1, starting at 1)."""
        rows = self.db.execute("SELECT MAX(runid) FROM run_table", proc=proc)
        current = rows[0][0]
        return 1 if current is None else int(current) + 1

    def insert_run(
        self,
        runid: int,
        application: str,
        dimension: int,
        problem_size: int,
        num_timesteps: int,
        date_fields: Sequence[int] = (0, 0, 0, 0, 0),
        proc: Optional[Process] = None,
    ) -> None:
        """Record a run in run_table."""
        y, mo, d, h, mi = date_fields
        self.db.execute(
            "INSERT INTO run_table VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (runid, application, dimension, problem_size, num_timesteps, y, mo, d, h, mi),
            proc=proc,
        )

    # -- access_pattern_table ---------------------------------------------

    def register_dataset(
        self,
        runid: int,
        dataset: str,
        data_type: str,
        storage_order: str,
        global_size: int,
        basic_pattern: str = "IRREGULAR",
        proc: Optional[Process] = None,
    ) -> None:
        """Record one output dataset's access pattern."""
        self.db.execute(
            "INSERT INTO access_pattern_table VALUES (?, ?, ?, ?, ?, ?)",
            (runid, dataset, basic_pattern, data_type, storage_order, global_size),
            proc=proc,
        )

    def dataset_type_name(
        self, runid: int, dataset: str, proc: Optional[Process] = None
    ) -> Optional[str]:
        """Registered element-type name of one dataset (composite-hash
        probe), or None if the dataset was never registered."""
        rows = self.db.execute(
            "SELECT data_type FROM access_pattern_table "
            "WHERE runid = ? AND dataset = ?",
            (runid, dataset),
            proc=proc,
        )
        return rows[0][0] if rows else None

    def datasets_for_run(
        self, runid: int, proc: Optional[Process] = None
    ) -> List[str]:
        """Dataset names registered for a run, in registration order."""
        rows = self.db.execute(
            "SELECT dataset FROM access_pattern_table WHERE runid = ?",
            (runid,),
            proc=proc,
        )
        return [r[0] for r in rows]

    # -- execution_table ---------------------------------------------------

    def record_execution(
        self,
        runid: int,
        dataset: str,
        timestep: int,
        file_name: str,
        file_offset: int,
        nbytes: int,
        proc: Optional[Process] = None,
        valid_from: int = 0,
    ) -> None:
        """Record where one (dataset, timestep) landed.

        Fresh appends keep the default ``valid_from=0``: a new instance
        is immediately visible to every snapshot, however early it was
        pinned.  Metadata flips pass their published epoch.
        """
        self.db.execute(
            "INSERT INTO execution_table VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            (runid, dataset, timestep, file_name, file_offset, nbytes,
             valid_from, OPEN_EPOCH),
            proc=proc,
        )

    def lookup_execution(
        self,
        runid: int,
        dataset: str,
        timestep: int,
        proc: Optional[Process] = None,
    ) -> Optional[Tuple[str, int, int]]:
        """(file_name, file_offset, nbytes) of a written dataset instance,
        at *current* visibility — still a single composite-hash probe (the
        OPEN_EPOCH equality rides along as a verified conjunct).  Inside a
        flip's publish window two open versions can coexist; the newest
        ``valid_from`` wins."""
        row = self._lookup_row(runid, dataset, timestep, None, proc)
        return (row[0], int(row[1]), int(row[2])) if row else None

    def lookup_execution_version(
        self,
        runid: int,
        dataset: str,
        timestep: int,
        epoch: Optional[int] = None,
        proc: Optional[Process] = None,
    ) -> Optional[Tuple[str, int, int, int]]:
        """Like :meth:`lookup_execution` but resolved against a pinned
        epoch (``epoch=None``: current visibility) and additionally
        returning the matched version's ``valid_from`` — the reference
        epoch chunk maps and index-block cache keys resolve against."""
        row = self._lookup_row(runid, dataset, timestep, epoch, proc)
        if row is None:
            return None
        return (row[0], int(row[1]), int(row[2]), int(row[3]))

    def _lookup_row(
        self,
        runid: int,
        dataset: str,
        timestep: int,
        epoch: Optional[int],
        proc: Optional[Process],
    ) -> Optional[Tuple]:
        if epoch is None:
            rows = self.db.execute(
                "SELECT file_name, file_offset, nbytes, valid_from "
                "FROM execution_table WHERE runid = ? AND dataset = ? "
                "AND timestep = ? AND valid_to = ?",
                (runid, dataset, timestep, OPEN_EPOCH),
                proc=proc,
            )
        else:
            rows = self.db.execute(
                "SELECT file_name, file_offset, nbytes, valid_from "
                "FROM execution_table WHERE runid = ? AND dataset = ? "
                "AND timestep = ? AND valid_from <= ? AND valid_to > ?",
                (runid, dataset, timestep, epoch, epoch),
                proc=proc,
            )
        if not rows:
            return None
        return max(rows, key=lambda r: int(r[3]))

    def max_offset_in_file(
        self, file_name: str, proc: Optional[Process] = None
    ) -> int:
        """Next append position in a packed (level 2/3) file."""
        rows = self.db.execute(
            "SELECT file_offset, nbytes FROM execution_table WHERE file_name = ? "
            "ORDER BY file_offset DESC LIMIT 1",
            (file_name,),
            proc=proc,
        )
        if not rows:
            return 0
        return int(rows[0][0]) + int(rows[0][1])

    def executions_in_file(
        self, file_name: str, proc: Optional[Process] = None
    ) -> List[Tuple[int, str, int, int, int]]:
        """Every *current* instance living in one file, by ascending base
        offset (a sorted probe of the ``(file_name, file_offset)`` ordered
        index): ``(runid, dataset, timestep, file_offset, nbytes)``."""
        rows = self.db.execute(
            "SELECT runid, dataset, timestep, file_offset, nbytes "
            "FROM execution_table WHERE file_name = ? AND valid_to = ? "
            "ORDER BY file_offset",
            (file_name, OPEN_EPOCH),
            proc=proc,
        )
        return [
            (int(r), d, int(t), int(o), int(n)) for r, d, t, o, n in rows
        ]

    def open_execution_versions(
        self, file_name: str, proc: Optional[Process] = None
    ) -> List[Tuple[int, str, int, int, int, int]]:
        """:meth:`executions_in_file` plus each open row's ``valid_from``
        — what a compaction plan needs to close exactly the versions it
        supersedes: ``(runid, dataset, timestep, file_offset, nbytes,
        valid_from)``."""
        rows = self.db.execute(
            "SELECT runid, dataset, timestep, file_offset, nbytes, "
            "valid_from FROM execution_table "
            "WHERE file_name = ? AND valid_to = ? ORDER BY file_offset",
            (file_name, OPEN_EPOCH),
            proc=proc,
        )
        return [
            (int(r), d, int(t), int(o), int(n), int(vf))
            for r, d, t, o, n, vf in rows
        ]

    def dead_executions_in_file(
        self, file_name: str, proc: Optional[Process] = None
    ) -> List[Tuple[int, str, int, int, int, int, int]]:
        """Superseded versions still occupying bytes of one file:
        ``(runid, dataset, timestep, file_offset, nbytes, valid_from,
        valid_to)``, ascending base offset.  The reaper's work list."""
        rows = self.db.execute(
            "SELECT runid, dataset, timestep, file_offset, nbytes, "
            "valid_from, valid_to FROM execution_table "
            "WHERE file_name = ? AND valid_to < ? ORDER BY file_offset",
            (file_name, OPEN_EPOCH),
            proc=proc,
        )
        return [
            (int(r), d, int(t), int(o), int(n), int(vf), int(vt))
            for r, d, t, o, n, vf, vt in rows
        ]

    def files_with_dead_rows(
        self, proc: Optional[Process] = None
    ) -> List[str]:
        """Files holding superseded row versions (reap candidates)."""
        rows = self.db.execute(
            "SELECT file_name FROM execution_table WHERE valid_to < ?",
            (OPEN_EPOCH,),
            proc=proc,
        )
        seen: List[str] = []
        for (f,) in rows:
            if f not in seen:
                seen.append(f)
        return seen

    def update_execution(
        self,
        runid: int,
        dataset: str,
        timestep: int,
        old_file_name: str,
        file_name: str,
        file_offset: int,
        nbytes: int,
        epoch: int,
        proc: Optional[Process] = None,
    ) -> None:
        """Repoint an execution record (reorganization moved the instance)
        by publishing a new version at ``epoch`` and closing the old one.

        The successor is inserted *first* so a concurrent current reader
        always sees at least one open version; the close then targets the
        old row by its (distinct) file name.  A zero-row close means the
        instance was concurrently repointed from under us — raised as
        :class:`SDMStateError` instead of silently dropping the flip.
        """
        self.db.execute(
            "INSERT INTO execution_table VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            (runid, dataset, timestep, file_name, file_offset, nbytes,
             epoch, OPEN_EPOCH),
            proc=proc,
        )
        touched = self.db.execute_count(
            "UPDATE execution_table SET valid_to = ? WHERE runid = ? "
            "AND dataset = ? AND timestep = ? AND file_name = ? "
            "AND valid_to = ?",
            (epoch, runid, dataset, timestep, old_file_name, OPEN_EPOCH),
            proc=proc,
        )
        if touched != 1:
            raise SDMStateError(
                f"update_execution matched {touched} rows for "
                f"({runid}, {dataset!r}, {timestep}) in {old_file_name!r}; "
                "the instance was concurrently repointed"
            )

    # -- chunk_table ---------------------------------------------------------

    def record_chunks(
        self,
        runid: int,
        dataset: str,
        timestep: int,
        chunks: Sequence[ChunkRecord],
        proc: Optional[Process] = None,
        valid_from: int = 0,
    ) -> None:
        """Record every rank's chunk of a chunked dataset instance (one
        batched INSERT — this sits on the per-timestep write path)."""
        self.db.execute_many(
            "INSERT INTO chunk_table VALUES "
            "(?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            [
                (
                    runid, dataset, timestep, c.rank, c.gid_min, c.gid_max,
                    c.num_elements, c.gid_step, c.index_offset, c.data_offset,
                    valid_from, OPEN_EPOCH,
                )
                for c in chunks
            ],
            proc=proc,
        )

    def chunks_for(
        self,
        runid: int,
        dataset: str,
        timestep: int,
        proc: Optional[Process] = None,
        at: Optional[int] = None,
    ) -> List[ChunkRecord]:
        """Chunk maps of a dataset instance, by ascending writer rank
        (empty for canonical instances).  Served as a sorted probe of the
        ordered ``(runid, dataset, timestep, rank)`` index.

        ``at=None`` resolves current visibility (open rows); a pinned or
        publish-window reader passes the reference epoch — the matched
        execution row's ``valid_from``.  Either way, when a publish window
        briefly exposes two complete version sets, the newest
        ``valid_from`` set wins (a flip always rewrites the full set, so
        the winner is complete)."""
        if at is None:
            rows = self.db.execute(
                "SELECT rank, gid_min, gid_max, num_elements, index_offset, "
                "data_offset, gid_step, valid_from FROM chunk_table "
                "WHERE runid = ? AND dataset = ? AND timestep = ? "
                "AND valid_to = ? ORDER BY rank",
                (runid, dataset, timestep, OPEN_EPOCH),
                proc=proc,
            )
        else:
            rows = self.db.execute(
                "SELECT rank, gid_min, gid_max, num_elements, index_offset, "
                "data_offset, gid_step, valid_from FROM chunk_table "
                "WHERE runid = ? AND dataset = ? AND timestep = ? "
                "AND valid_from <= ? AND valid_to > ? ORDER BY rank",
                (runid, dataset, timestep, at, at),
                proc=proc,
            )
        if not rows:
            return []
        newest = max(int(r[7]) for r in rows)
        return [
            ChunkRecord(int(r), int(lo), int(hi), int(n), int(io), int(do),
                        int(step))
            for r, lo, hi, n, io, do, step, vf in rows
            if int(vf) == newest
        ]

    def close_chunks(
        self,
        runid: int,
        dataset: str,
        timestep: int,
        epoch: int,
        proc: Optional[Process] = None,
    ) -> None:
        """Close an instance's open chunk maps at ``epoch`` (it became
        canonical, or a compaction rewrote them).  Pinned snapshots keep
        reading the closed version until it is reaped.  The
        ``valid_from < epoch`` conjunct spares successor rows the same
        publish just inserted at ``epoch``."""
        self.db.execute(
            "UPDATE chunk_table SET valid_to = ? "
            "WHERE runid = ? AND dataset = ? AND timestep = ? "
            "AND valid_to = ? AND valid_from < ?",
            (epoch, runid, dataset, timestep, OPEN_EPOCH, epoch),
            proc=proc,
        )

    def delete_chunk_version(
        self,
        runid: int,
        dataset: str,
        timestep: int,
        valid_to: int,
        proc: Optional[Process] = None,
    ) -> None:
        """Reap one superseded chunk-map version (closed at ``valid_to``)."""
        self.db.execute(
            "DELETE FROM chunk_table "
            "WHERE runid = ? AND dataset = ? AND timestep = ? "
            "AND valid_to = ?",
            (runid, dataset, timestep, valid_to),
            proc=proc,
        )

    def update_execution_offsets(
        self,
        updates: Sequence[Tuple[int, int, int, str, int, int]],
        file_name: str,
        epoch: int,
        proc: Optional[Process] = None,
    ) -> None:
        """Rebase instances a compaction pass moved, publishing the moves
        as new row versions at ``epoch``.

        ``updates`` rows are ``(file_offset, nbytes, runid, dataset,
        timestep, old_valid_from)``.  Successors are inserted first (one
        batched INSERT), then every old version is closed in one batched
        UPDATE whose matched-row count must equal the move count — a
        short count means a concurrent flip repointed a row under us and
        raises :class:`SDMStateError` instead of losing the update.
        """
        if not updates:
            return
        self.db.execute_many(
            "INSERT INTO execution_table VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            [
                (r, d, t, file_name, off, nbytes, epoch, OPEN_EPOCH)
                for off, nbytes, r, d, t, _vf in updates
            ],
            proc=proc,
        )
        touched = self.db.execute_many_count(
            "UPDATE execution_table SET valid_to = ? WHERE runid = ? "
            "AND dataset = ? AND timestep = ? AND file_name = ? "
            "AND valid_from = ? AND valid_to = ?",
            [
                (epoch, r, d, t, file_name, vf, OPEN_EPOCH)
                for _off, _nbytes, r, d, t, vf in updates
            ],
            proc=proc,
        )
        if touched != len(updates):
            raise SDMStateError(
                f"update_execution_offsets matched {touched} of "
                f"{len(updates)} rows in {file_name!r}; a concurrent flip "
                "repointed an instance under this compaction"
            )

    # -- extent_table --------------------------------------------------------

    def record_extent(
        self,
        file_name: str,
        file_offset: int,
        nbytes: int,
        proc: Optional[Process] = None,
    ) -> None:
        """Record a dead region of a chunked file (reorganization moved an
        interior instance out; compaction will reclaim it)."""
        self.db.execute(
            "INSERT INTO extent_table VALUES (?, ?, ?)",
            (file_name, file_offset, nbytes),
            proc=proc,
        )

    def extents_for(
        self, file_name: str, proc: Optional[Process] = None
    ) -> List[Tuple[int, int]]:
        """Free ``(offset, nbytes)`` extents of a file, ascending."""
        rows = self.db.execute(
            "SELECT file_offset, nbytes FROM extent_table "
            "WHERE file_name = ? ORDER BY file_offset",
            (file_name,),
            proc=proc,
        )
        return [(int(o), int(n)) for o, n in rows]

    def free_bytes_in(
        self, file_name: str, proc: Optional[Process] = None
    ) -> int:
        """Total dead bytes recorded for one file (0 when fully live)."""
        rows = self.db.execute(
            "SELECT SUM(nbytes) FROM extent_table WHERE file_name = ?",
            (file_name,),
            proc=proc,
        )
        return 0 if rows[0][0] is None else int(rows[0][0])

    def truncate_extents(
        self, file_name: str, above: int, proc: Optional[Process] = None
    ) -> None:
        """Forget extents at or above an offset (the append cursor
        retreated past them: the region is beyond end-of-data and will be
        reclaimed by ordinary appends)."""
        self.db.execute(
            "DELETE FROM extent_table "
            "WHERE file_name = ? AND file_offset >= ?",
            (file_name, above),
            proc=proc,
        )

    def clear_extents(
        self, file_name: str, proc: Optional[Process] = None
    ) -> None:
        """Forget every extent of a file (compaction reclaimed them all)."""
        self.db.execute(
            "DELETE FROM extent_table WHERE file_name = ?",
            (file_name,),
            proc=proc,
        )

    def _protected_index_ranges(
        self, file_name: str, proc: Optional[Process] = None
    ) -> List[Tuple[int, int]]:
        """Byte ranges of index blocks any surviving chunk-map version of
        this file may still resolve against.

        A reaped instance's region can strand a *shared* index block that
        later instances' chunk rows reference (``index_offset`` pointing
        backward), so an extent is not automatically clobber-safe.  Data
        bytes never have this problem — a row's data offsets lie inside
        its own execution region, and reap only frees regions no pin can
        see — but index references cross region boundaries.  Conservative
        by design: every chunk row of every instance recorded in the file
        (open or closed-but-unreaped) contributes its range.
        """
        keys = self.db.execute(
            "SELECT runid, dataset, timestep FROM execution_table "
            "WHERE file_name = ?",
            (file_name,),
            proc=proc,
        )
        ranges: List[Tuple[int, int]] = []
        for runid, dataset, timestep in dict.fromkeys(keys):
            rows = self.db.execute(
                "SELECT num_elements, index_offset, data_offset "
                "FROM chunk_table WHERE runid = ? AND dataset = ? "
                "AND timestep = ?",
                (runid, dataset, timestep),
                proc=proc,
            )
            for n, io, do in rows:
                if int(n) and int(io) != int(do):  # arithmetic: no block
                    ranges.append((int(io), int(io) + int(n) * 8))
        return ranges

    def allocate_extent(
        self,
        file_name: str,
        need: int,
        min_fill: float = 0.5,
        proc: Optional[Process] = None,
    ) -> Optional[int]:
        """First-fit placement of ``need`` bytes into a free extent.

        Returns the base offset of the allocated region (the extent row
        is consumed; any remainder is re-recorded as a smaller extent), or
        None when no extent qualifies and the caller should append at the
        cursor.  An extent qualifies when it is large enough, the write
        would fill at least ``min_fill`` of it (skipping an allocation
        that strands a large splinter), and the allocated prefix does not
        overlap an index block a surviving chunk-map version still
        references (:meth:`_protected_index_ranges`).

        Safety against pins comes for free: :meth:`reap_file` records an
        extent only for versions below the min-pinned floor, so extent
        bytes are never visible to any snapshot.
        """
        if need <= 0:
            return None
        protected = self._protected_index_ranges(file_name, proc)
        for off, nbytes in self.extents_for(file_name, proc):
            if nbytes < need or need < min_fill * nbytes:
                continue
            end = off + need
            if any(lo < end and hi > off for lo, hi in protected):
                continue
            self.db.execute(
                "DELETE FROM extent_table "
                "WHERE file_name = ? AND file_offset = ?",
                (file_name, off),
                proc=proc,
            )
            if nbytes > need:
                self.record_extent(file_name, end, nbytes - need, proc)
            return off
        return None

    # -- epoch_table / lease_table / pin_table -------------------------------

    def current_epoch(self, proc: Optional[Process] = None) -> int:
        """Newest published epoch across all files (0 before any flip).
        This is what a reader pins at attach."""
        rows = self.db.execute(
            "SELECT MAX(epoch) FROM epoch_table", proc=proc
        )
        return 0 if rows[0][0] is None else int(rows[0][0])

    def begin_flip(
        self, file_name: str, proc: Optional[Process] = None
    ) -> int:
        """Open a metadata flip: allocate a globally-unique epoch and
        journal the intent against ``file_name``.

        The intent row is the flip's write-ahead record: until
        :meth:`commit_flip` turns it ``published``, a recovering lease
        stealer treats every row version touched at this epoch as
        uncommitted and rolls the flip back.  Rollback is keyed on the
        epoch number alone, so unlike the old ``publish_epoch`` the
        allocation is insert-then-verify: a number shared with a
        concurrent other-file flip (same-file flips are serialized by the
        lease) is withdrawn and retried — recovery must never confuse two
        flips' row versions.
        """
        while True:
            epoch = self.current_epoch(proc) + 1
            self.db.execute(
                "INSERT INTO epoch_table VALUES (?, ?, ?)",
                (file_name, epoch, EPOCH_INTENT),
                proc=proc,
            )
            rows = self.db.execute(
                "SELECT COUNT(*) FROM epoch_table WHERE epoch = ?",
                (epoch,),
                proc=proc,
            )
            if int(rows[0][0]) == 1:
                return epoch
            self.db.execute(
                "DELETE FROM epoch_table "
                "WHERE file_name = ? AND epoch = ?",
                (file_name, epoch),
                proc=proc,
            )

    def commit_flip(
        self, file_name: str, epoch: int, proc: Optional[Process] = None
    ) -> None:
        """Commit a flip: turn its intent record ``published``.

        This single count-checked UPDATE is the commit point — a crash
        before it rolls the whole flip back, a crash after it rolls the
        flip forward (the remaining reap is completed by recovery).  A
        zero-row update means recovery already rolled this flip back
        under a stolen lease; raised as :class:`SDMStateError` so the
        fenced-off publisher cannot continue as if it committed.
        """
        touched = self.db.execute_count(
            "UPDATE epoch_table SET state = ? "
            "WHERE file_name = ? AND epoch = ? AND state = ?",
            (EPOCH_PUBLISHED, file_name, epoch, EPOCH_INTENT),
            proc=proc,
        )
        if touched != 1:
            raise SDMStateError(
                f"commit_flip matched {touched} intent rows for "
                f"({file_name!r}, epoch {epoch}); the flip was rolled "
                "back by recovery under a stolen lease"
            )

    def publish_epoch(
        self, file_name: str, proc: Optional[Process] = None
    ) -> int:
        """One-shot :meth:`begin_flip` + :meth:`commit_flip` for callers
        with no crash window between allocation and publish (tests,
        single-statement bumps).  The flip protocols proper journal the
        two halves around their row-version writes."""
        epoch = self.begin_flip(file_name, proc)
        self.commit_flip(file_name, epoch, proc)
        return epoch

    def flip_intent(
        self, file_name: str, proc: Optional[Process] = None
    ) -> Optional[int]:
        """Epoch of the file's surviving intent record, or None.

        At most one can exist: intents are written under the file's
        exclusive lease and resolved before the lease changes hands.
        """
        rows = self.db.execute(
            "SELECT epoch FROM epoch_table "
            "WHERE file_name = ? AND state = ?",
            (file_name, EPOCH_INTENT),
            proc=proc,
        )
        return None if not rows else int(rows[0][0])

    def files_with_flip_intents(
        self, proc: Optional[Process] = None
    ) -> List[str]:
        """Files carrying an unresolved flip intent (recovery sweep)."""
        rows = self.db.execute(
            "SELECT file_name FROM epoch_table WHERE state = ?",
            (EPOCH_INTENT,),
            proc=proc,
        )
        return [f for (f,) in dict.fromkeys(rows)]

    def rollback_flip(
        self, file_name: str, epoch: int, proc: Optional[Process] = None
    ) -> None:
        """Withdraw an uncommitted flip: delete the successor row
        versions it inserted at ``epoch`` (reorganize successors live in
        a *different* file, hence no file_name conjunct — epochs are
        globally unique), reopen the predecessors it closed, and drop the
        intent record.  Leaves the metadata byte-identical to the
        pre-flip state; any data bytes the flip staged are unreferenced.
        """
        self.db.execute(
            "DELETE FROM execution_table WHERE valid_from = ?",
            (epoch,),
            proc=proc,
        )
        self.db.execute(
            "DELETE FROM chunk_table WHERE valid_from = ?",
            (epoch,),
            proc=proc,
        )
        self.db.execute(
            "UPDATE execution_table SET valid_to = ? WHERE valid_to = ?",
            (OPEN_EPOCH, epoch),
            proc=proc,
        )
        self.db.execute(
            "UPDATE chunk_table SET valid_to = ? WHERE valid_to = ?",
            (OPEN_EPOCH, epoch),
            proc=proc,
        )
        self.db.execute(
            "DELETE FROM epoch_table WHERE file_name = ? AND epoch = ?",
            (file_name, epoch),
            proc=proc,
        )

    def recover_file(
        self, file_name: str, proc: Optional[Process] = None
    ) -> Optional[str]:
        """Resolve whatever a dead lease holder left on one file, exactly
        one way: a surviving intent rolls the flip *back*
        (:meth:`rollback_flip`); otherwise any committed-but-unreaped
        residue rolls *forward* by finishing the reap.  Idempotent;
        returns ``"rolled_back"``, ``"rolled_forward"``, or None when
        there was nothing to resolve."""
        intent = self.flip_intent(file_name, proc)
        if intent is not None:
            self.rollback_flip(file_name, intent, proc)
            self.n_flips_rolled_back += 1
            return "rolled_back"
        if self.dead_executions_in_file(file_name, proc):
            # record_extents=False: recovery cannot know whether the
            # interrupted flip was a quiesced in-place compaction, whose
            # dead versions' old offsets overlap the slid-down live
            # layout — recording those as free extents would hand live
            # bytes to allocate_extent.  Forgoing the extent record only
            # defers space reuse to the next compaction pass.
            self.reap_file(file_name, proc, record_extents=False)
            self.n_flips_rolled_forward += 1
            return "rolled_forward"
        return None

    def file_epoch(
        self, file_name: str, proc: Optional[Process] = None
    ) -> int:
        """Newest epoch published against one file (0 if never flipped)."""
        rows = self.db.execute(
            "SELECT MAX(epoch) FROM epoch_table WHERE file_name = ?",
            (file_name,),
            proc=proc,
        )
        return 0 if rows[0][0] is None else int(rows[0][0])

    def epochs_for_file(
        self, file_name: str, proc: Optional[Process] = None
    ) -> List[int]:
        """Published epochs of one file, ascending (leak-audit helper)."""
        rows = self.db.execute(
            "SELECT epoch FROM epoch_table WHERE file_name = ? "
            "ORDER BY epoch",
            (file_name,),
            proc=proc,
        )
        return [int(e) for (e,) in rows]

    def prune_epochs(
        self, file_name: str, below: int, proc: Optional[Process] = None
    ) -> None:
        """Forget a file's epoch history older than ``below`` (every row
        version of those epochs has been reaped)."""
        self.db.execute(
            "DELETE FROM epoch_table WHERE file_name = ? AND epoch < ?",
            (file_name, below),
            proc=proc,
        )

    def lease_holder(
        self, file_name: str, proc: Optional[Process] = None
    ) -> Optional[str]:
        """Current lease holder of a file, or None."""
        rows = self.db.execute(
            "SELECT holder FROM lease_table WHERE file_name = ?",
            (file_name,),
            proc=proc,
        )
        return rows[0][0] if rows else None

    def _lease_expired(
        self, boot: int, heartbeat: float, ttl: float, now: Optional[float]
    ) -> bool:
        """True when a lease row's holder is presumed dead: its boot
        predates this database incarnation (its job ended without
        releasing — deterministic, no clock heuristics), or its
        heartbeat is a full TTL stale at ``now``."""
        if boot < self.db.boot_id:
            return True
        return now is not None and heartbeat + ttl <= now

    def try_acquire_lease(
        self,
        file_name: str,
        holder: str,
        proc: Optional[Process] = None,
        now: Optional[float] = None,
        ttl: float = DEFAULT_LEASE_TTL,
    ) -> bool:
        """Attempt to take the exclusive flip lease on one file.

        Insert-then-verify: a pre-check rejects an existing *live* lease,
        the optimistic insert is then re-counted, and on a photo-finish
        race (two holders inserted) *both* withdraw — symmetric fail-fast
        is the contract; the callers retry or surface SDMLeaseConflict.

        An existing lease whose holder is dead (:meth:`_lease_expired`)
        is not a conflict: the acquirer first resolves whatever the dead
        holder left mid-flip (:meth:`recover_file` — roll back or roll
        forward, never half), then steals the row and proceeds.  Pass the
        caller's virtual ``now`` to enable same-incarnation expiry;
        without it only cross-incarnation (boot) death is detected.
        """
        rows = self.db.execute(
            "SELECT holder, boot, heartbeat, ttl FROM lease_table "
            "WHERE file_name = ?",
            (file_name,),
            proc=proc,
        )
        if rows:
            dead_holder, boot, hb, row_ttl = rows[0]
            if not self._lease_expired(
                int(boot), float(hb), float(row_ttl), now
            ):
                return False
            self.recover_file(file_name, proc)
            stolen = self.db.execute_count(
                "DELETE FROM lease_table "
                "WHERE file_name = ? AND holder = ?",
                (file_name, dead_holder),
                proc=proc,
            )
            if stolen != 1:
                # A concurrent acquirer recovered and stole it first.
                return False
            self.n_leases_stolen += 1
        t = 0.0 if now is None else float(now)
        self.db.execute(
            "INSERT INTO lease_table VALUES (?, ?, ?, ?, ?, ?)",
            (file_name, holder, self.db.boot_id, t, t, ttl),
            proc=proc,
        )
        rows = self.db.execute(
            "SELECT holder FROM lease_table WHERE file_name = ?",
            (file_name,),
            proc=proc,
        )
        if len(rows) > 1:
            self.release_lease(file_name, holder, proc)
            return False
        return True

    def release_lease(
        self, file_name: str, holder: str, proc: Optional[Process] = None
    ) -> None:
        """Drop one holder's lease on a file.

        Count-checked: releasing a lease this holder no longer owns
        (double release, or the lease was recovered and stolen while the
        holder was presumed dead) raises :class:`SDMStateError` instead
        of silently deleting nothing — the holder must not believe it
        still ended the critical section cleanly.
        """
        touched = self.db.execute_count(
            "DELETE FROM lease_table WHERE file_name = ? AND holder = ?",
            (file_name, holder),
            proc=proc,
        )
        if touched != 1:
            raise SDMStateError(
                f"release_lease matched {touched} rows for {holder!r} on "
                f"{file_name!r}; the lease was never held, already "
                "released, or stolen by recovery"
            )

    def heartbeat_lease(
        self,
        file_name: str,
        holder: str,
        now: float,
        proc: Optional[Process] = None,
    ) -> None:
        """Refresh a held lease's liveness stamp (one local UPDATE — no
        network traffic; flips call it before each publish step).

        Count-checked as a *fence*: a zero-row update means the lease
        expired and was stolen, so the presumed-dead holder stops before
        publishing over the thief's flip."""
        touched = self.db.execute_count(
            "UPDATE lease_table SET heartbeat = ? "
            "WHERE file_name = ? AND holder = ?",
            (now, file_name, holder),
            proc=proc,
        )
        if touched != 1:
            raise SDMStateError(
                f"heartbeat_lease matched {touched} rows for {holder!r} "
                f"on {file_name!r}; the lease expired and was stolen"
            )

    def lease_count(self, proc: Optional[Process] = None) -> int:
        """Outstanding leases (leak-audit helper)."""
        rows = self.db.execute(
            "SELECT COUNT(*) FROM lease_table", proc=proc
        )
        return int(rows[0][0])

    def all_leases(
        self, proc: Optional[Process] = None
    ) -> List[Tuple[str, str, int]]:
        """Every outstanding lease: ``(file_name, holder, boot)`` —
        shutdown leak audits and attach-time recovery sweeps."""
        rows = self.db.execute(
            "SELECT file_name, holder, boot FROM lease_table", proc=proc
        )
        return [(f, h, int(b)) for f, h, b in rows]

    def create_pin(
        self,
        client: str,
        epoch: int,
        proc: Optional[Process] = None,
        now: float = 0.0,
    ) -> int:
        """Pin a snapshot: row versions live at ``epoch`` stay readable
        (and unreaped) until :meth:`release_pin`.  Returns the pin id.
        ``now`` seeds the last-touched stamp the abandoned-pin reaper
        ages against."""
        rows = self.db.execute(
            "SELECT MAX(pin_id) FROM pin_table", proc=proc
        )
        pin_id = 1 if rows[0][0] is None else int(rows[0][0]) + 1
        self.db.execute(
            "INSERT INTO pin_table VALUES (?, ?, ?, ?, ?)",
            (pin_id, client, epoch, self.db.boot_id, now),
            proc=proc,
        )
        return pin_id

    def release_pin(
        self, pin_id: int, proc: Optional[Process] = None
    ) -> None:
        """Release a snapshot pin (the caller should then reap).

        Count-checked: a double release, or releasing a pin the
        abandoned-pin reaper already expired, raises
        :class:`SDMStateError` instead of silently deleting nothing."""
        touched = self.db.execute_count(
            "DELETE FROM pin_table WHERE pin_id = ?",
            (pin_id,),
            proc=proc,
        )
        if touched != 1:
            raise SDMStateError(
                f"release_pin matched {touched} rows for pin {pin_id}; "
                "the pin was never created, already released, or expired "
                "by the abandoned-pin reaper"
            )

    def touch_pin(
        self, pin_id: int, now: float, proc: Optional[Process] = None
    ) -> None:
        """Refresh a pin's last-touched stamp (readers call this,
        throttled, on the read path so live pins never age out).
        Count-checked as a fence against reading through an
        already-reaped pin."""
        touched = self.db.execute_count(
            "UPDATE pin_table SET touched = ? WHERE pin_id = ?",
            (now, pin_id),
            proc=proc,
        )
        if touched != 1:
            raise SDMStateError(
                f"touch_pin matched {touched} rows for pin {pin_id}; "
                "the pin expired and was reaped"
            )

    def expired_pins(
        self,
        now: float,
        timeout: float = DEFAULT_PIN_TTL,
        proc: Optional[Process] = None,
    ) -> List[Tuple[int, str, int]]:
        """Pins presumed abandoned: ``(pin_id, client, epoch)`` for every
        pin from a prior database incarnation, or untouched for a full
        ``timeout`` at ``now`` — the leak reaper's work list."""
        rows = self.db.execute(
            "SELECT pin_id, client, epoch, boot, touched FROM pin_table",
            proc=proc,
        )
        out: List[Tuple[int, str, int]] = []
        for pid, client, epoch, boot, touched in rows:
            if int(boot) < self.db.boot_id or float(touched) + timeout <= now:
                out.append((int(pid), client, int(epoch)))
        return out

    def all_pins(
        self, proc: Optional[Process] = None
    ) -> List[Tuple[int, str, int]]:
        """Every outstanding pin: ``(pin_id, client, epoch)`` — shutdown
        leak audits and attach-time recovery sweeps."""
        rows = self.db.execute(
            "SELECT pin_id, client, epoch FROM pin_table", proc=proc
        )
        return [(int(p), c, int(e)) for p, c, e in rows]

    def advance_pin(
        self, pin_id: int, epoch: int, proc: Optional[Process] = None
    ) -> None:
        """Move a pin forward (a publisher reads its own writes)."""
        self.db.execute(
            "UPDATE pin_table SET epoch = ? WHERE pin_id = ?",
            (epoch, pin_id),
            proc=proc,
        )

    def min_pinned_epoch(
        self, proc: Optional[Process] = None
    ) -> Optional[int]:
        """Oldest pinned epoch, or None when unpinned.  No longer the
        reap floor — :meth:`reap_file` tests each dead version's validity
        interval against the individual pinned epochs — but still a
        useful summary statistic."""
        rows = self.db.execute(
            "SELECT MIN(epoch) FROM pin_table", proc=proc
        )
        return None if rows[0][0] is None else int(rows[0][0])

    def pin_count(self, proc: Optional[Process] = None) -> int:
        """Outstanding pins (quiesced-compaction precondition)."""
        rows = self.db.execute(
            "SELECT COUNT(*) FROM pin_table", proc=proc
        )
        return int(rows[0][0])

    def reap_file(
        self,
        file_name: str,
        proc: Optional[Process] = None,
        record_extents: bool = True,
    ) -> bool:
        """Garbage-collect superseded row versions of one file whose
        epochs no pin can still see, then account the freed bytes.

        For each reaped version below the surviving end-of-data the dead
        region becomes a free extent (compaction's work list); regions at
        or beyond it simply retreat the append cursor, and any extents
        stranded past the new cursor are forgotten — exactly the
        unversioned reorganize bookkeeping, which this reproduces
        verbatim when nothing is pinned.  Returns True when no dead
        versions remain (full reap).

        A dead version is reapable iff **no pinned epoch falls inside its
        validity interval** ``[valid_from, valid_to)`` — per-row
        precision, strictly finer than the old global min-pin floor: one
        long-lived pin at epoch P only protects versions actually visible
        at P, instead of freezing every file's reap at P.  Either way the
        file's reap watermark advances to the oldest surviving dead
        version (or the current epoch on a full reap) and epoch history
        below the watermark is pruned — the epoch log now truncates even
        while old pins persist."""
        pinned = [int(e) for (e,) in self.db.execute(
            "SELECT epoch FROM pin_table", proc=proc
        )]
        dead = self.dead_executions_in_file(file_name, proc)
        reapable = [
            row for row in dead
            if not any(row[5] <= p < row[6] for p in pinned)
        ]
        if reapable:
            for r, d, t, _off, _n, vf, vt in reapable:
                self.db.execute(
                    "DELETE FROM execution_table WHERE runid = ? "
                    "AND dataset = ? AND timestep = ? AND file_name = ? "
                    "AND valid_to = ?",
                    (r, d, t, file_name, vt),
                    proc=proc,
                )
                self.delete_chunk_version(r, d, t, vt, proc)
            new_end = self.max_offset_in_file(file_name, proc)
            if record_extents:
                for _r, _d, _t, off, nbytes, _vf, _vt in reapable:
                    if off < new_end:
                        self.record_extent(file_name, off, nbytes, proc)
            self.truncate_extents(file_name, new_end, proc)
        fully_reaped = len(reapable) == len(dead)
        if fully_reaped:
            watermark = self.file_epoch(file_name, proc)
        else:
            watermark = min(
                row[5] for row in dead if row not in reapable
            )
        self.set_reap_watermark(file_name, watermark, proc)
        self.prune_epochs(file_name, watermark, proc)
        return fully_reaped

    def reap_watermark(
        self, file_name: str, proc: Optional[Process] = None
    ) -> int:
        """A file's reap watermark: every row version of epochs below it
        has been reaped (0 before the first reap)."""
        rows = self.db.execute(
            "SELECT epoch FROM watermark_table WHERE file_name = ?",
            (file_name,),
            proc=proc,
        )
        return 0 if not rows else int(rows[0][0])

    def set_reap_watermark(
        self, file_name: str, epoch: int, proc: Optional[Process] = None
    ) -> None:
        """Advance a file's reap watermark (monotone upsert: a stale
        concurrent reaper can never move it backwards)."""
        if epoch <= self.reap_watermark(file_name, proc):
            return
        self.db.execute(
            "DELETE FROM watermark_table WHERE file_name = ?",
            (file_name,),
            proc=proc,
        )
        self.db.execute(
            "INSERT INTO watermark_table VALUES (?, ?)",
            (file_name, epoch),
            proc=proc,
        )

    # -- maintenance_table ---------------------------------------------------

    def next_maintenance_jobid(self, proc: Optional[Process] = None) -> int:
        """Allocate the next maintenance job id (MAX+1, starting at 1)."""
        rows = self.db.execute(
            "SELECT MAX(jobid) FROM maintenance_table", proc=proc
        )
        current = rows[0][0]
        return 1 if current is None else int(current) + 1

    def record_maintenance(
        self, rec: MaintenanceRecord, proc: Optional[Process] = None
    ) -> None:
        """Queue one background-maintenance job (the row *is* the pending
        work; it is deleted when the job completes)."""
        self.db.execute(
            "INSERT INTO maintenance_table "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                rec.jobid, rec.kind, rec.application, rec.organization,
                rec.group_id, rec.runid, rec.dataset, rec.timestep,
                rec.file_name, rec.data_type, rec.global_size,
            ),
            proc=proc,
        )

    def pending_maintenance(
        self, proc: Optional[Process] = None
    ) -> List[MaintenanceRecord]:
        """Every queued job, oldest first (sorted jobid-index walk) —
        what a restored database hands the next job's maintenance
        service."""
        rows = self.db.execute(
            "SELECT jobid, kind, application, organization, group_id, "
            "runid, dataset, timestep, file_name, data_type, global_size "
            "FROM maintenance_table ORDER BY jobid",
            proc=proc,
        )
        return [
            MaintenanceRecord(
                int(j), k, a, int(o), int(g), int(r), d, int(t), f, dt,
                int(gs),
            )
            for j, k, a, o, g, r, d, t, f, dt, gs in rows
        ]

    def delete_maintenance(
        self, jobid: int, proc: Optional[Process] = None
    ) -> None:
        """Mark a maintenance job done by removing its queue row."""
        self.db.execute(
            "DELETE FROM maintenance_table WHERE jobid = ?",
            (jobid,),
            proc=proc,
        )

    # -- import_table --------------------------------------------------------

    def register_import(
        self,
        runid: int,
        imported_name: str,
        file_name: str,
        data_type: str,
        storage_order: str,
        partition: str,
        file_content: str,
        file_offset: int,
        num_elements: int,
        proc: Optional[Process] = None,
    ) -> None:
        """Record one imported array's description."""
        self.db.execute(
            "INSERT INTO import_table VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                runid, imported_name, file_name, data_type, storage_order,
                partition, file_content, file_offset, num_elements,
            ),
            proc=proc,
        )

    def lookup_import(
        self, runid: int, imported_name: str, proc: Optional[Process] = None
    ) -> Optional[dict]:
        """Full import record for one imported array, or None."""
        rows = self.db.query_dicts(
            "SELECT * FROM import_table WHERE runid = ? AND imported_name = ?",
            (runid, imported_name),
            proc=proc,
        )
        return rows[0] if rows else None

    # -- index_table / index_history_table ------------------------------------

    def find_history(
        self,
        problem_size: int,
        num_procs: int,
        proc: Optional[Process] = None,
    ) -> Optional[HistoryRecord]:
        """History file registered for this (problem size, process count)."""
        rows = self.db.execute(
            "SELECT problem_size, num_procs, dimension, registered_file_name "
            "FROM index_table WHERE problem_size = ? AND num_procs = ?",
            (problem_size, num_procs),
            proc=proc,
        )
        if not rows:
            return None
        ps, np_, dim, fname = rows[0]
        return HistoryRecord(int(ps), int(np_), int(dim), fname)

    def register_history(
        self,
        record: HistoryRecord,
        ranks: Sequence[HistoryRankRecord],
        proc: Optional[Process] = None,
    ) -> None:
        """Register a history file and its per-rank slices."""
        self.db.execute(
            "INSERT INTO index_table VALUES (?, ?, ?, ?)",
            (record.problem_size, record.num_procs, record.dimension, record.file_name),
            proc=proc,
        )
        self.db.execute_many(
            "INSERT INTO index_history_table VALUES (?, ?, ?, ?, ?, ?, ?)",
            [
                (
                    record.problem_size, record.num_procs, r.rank,
                    r.edge_count, r.node_count, r.edge_offset, r.node_offset,
                )
                for r in ranks
            ],
            proc=proc,
        )

    def history_rank(
        self,
        problem_size: int,
        num_procs: int,
        rank: int,
        proc: Optional[Process] = None,
    ) -> Optional[HistoryRankRecord]:
        """One rank's slice metadata of a registered history."""
        rows = self.db.execute(
            "SELECT rank, edge_count, node_count, edge_offset, node_offset "
            "FROM index_history_table "
            "WHERE problem_size = ? AND num_procs = ? AND rank = ?",
            (problem_size, num_procs, rank),
            proc=proc,
        )
        if not rows:
            return None
        r, ec, nc, eo, no = rows[0]
        return HistoryRankRecord(int(r), int(ec), int(nc), int(eo), int(no))

    def drop_history(
        self, problem_size: int, num_procs: int, proc: Optional[Process] = None
    ) -> None:
        """Forget a registered history (both tables)."""
        self.db.execute(
            "DELETE FROM index_table WHERE problem_size = ? AND num_procs = ?",
            (problem_size, num_procs),
            proc=proc,
        )
        self.db.execute(
            "DELETE FROM index_history_table "
            "WHERE problem_size = ? AND num_procs = ?",
            (problem_size, num_procs),
            proc=proc,
        )
