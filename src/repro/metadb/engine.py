"""The Database engine: statement execution, persistence, cost model.

A :class:`Database` may be *plain* (no simulation attached — unit tests,
offline inspection) or *attached* to a simulator, in which case every
statement issued with a ``proc`` serializes through the database server
resource and charges ``query_cost + rows x row_cost`` of virtual time —
the "database cost to access the metadata" the paper folds into the
history-file path.  ``rows`` is the number of rows the statement *touched*:
returned for SELECT, written for INSERT, matched for UPDATE/DELETE.

Three optimizations keep the metadata path off the application's critical
path as tables grow:

* **Statement cache** — parsed ASTs are memoized by SQL text
  (:meth:`Database.prepare`), so the parameterized statements SDM issues in
  loops (one per timestep, per rank, per dataset) parse once per process.
* **Conjunct planner** — WHERE trees are decomposed into their top-level
  AND of equality and range conjuncts (:func:`~repro.metadb.expr.conjuncts_of`)
  and the cheapest access path is chosen among a composite/single hash
  probe, an ordered-index slice, and the full scan; candidate rows are
  still verified against the complete WHERE, so results are
  scan-identical.
* **Sorted probes** — ``ORDER BY ... [LIMIT n]`` whose WHERE is fully
  covered by an ordered index's leading columns is answered straight from
  the index, skipping both the scan and the sort.
* **Aggregate probes** — ``MIN(col)``/``MAX(col)`` whose WHERE is fully
  covered by an ordered index's equality prefix, with ``col`` the next
  indexed column, come from the slice *ends* (two bisects) instead of
  materializing every matching row — ``SELECT MAX(runid) FROM run_table``
  is the runid-allocation hot path.

Access-path choice uses a small cost model rather than raw candidate
counts: a hash-bucket walk costs ~1 per candidate, while an ordered slice
pays bisect setup plus per-candidate materialization and rowid sorting, so
a slightly larger hash bucket beats a slice it would lose to on size alone.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.config import MachineModel
from repro.errors import MetaDBError, TableExists, TableNotFound
from repro.metadb.expr import Expr, conjuncts_of
from repro.metadb.sqlparser import (
    CreateTable,
    Delete,
    DropTable,
    Insert,
    Select,
    Update,
    parse,
)
from repro.metadb.table import Column, Table
from repro.metadb.types import type_by_name
from repro.simt.primitives import Resource
from repro.simt.process import Crashed, Process
from repro.simt.simulator import Simulator

__all__ = ["Database"]

_SERVER_CONNECTIONS = 4
"""Concurrent statements the database server executes."""

_STMT_CACHE_CAPACITY = 512
"""Parsed statements kept per database (LRU eviction beyond this)."""

_GLOBAL_STMT_CAPACITY = 4096
"""Parsed statements shared across every Database in the process."""

_GLOBAL_STMT_CACHE: "OrderedDict[str, Any]" = OrderedDict()
"""Process-global parse cache, keyed by exact SQL text.

Per-database caches die with their instance, but the SQL text SDM issues
is identical across instances — a :meth:`Database.loads` restore (the
"subsequent run" path) would otherwise re-parse every statement from a
cold cache.  Parsed ASTs are immutable once built, so sharing them across
databases is safe; the per-instance LRU stays in front of this one so
instance-level cache accounting (``n_parses``) is unchanged.
"""


def clear_global_statement_cache() -> None:
    """Drop every shared parsed statement (benchmarks' cold-parse baseline)."""
    _GLOBAL_STMT_CACHE.clear()

_PROBE_COST = 1.0
"""Cost-model: flat cost of probing a hash bucket or bisecting a slice."""

_SLICE_ROW_COST = 2.0
"""Cost-model: per-candidate cost of an ordered slice relative to a hash
bucket's (the slice is materialized and its rowids sorted back into
insertion order before verification; a bucket is walked as-is)."""


def _descending_rowids(
    entries, start: int, end: int, limit: Optional[int] = None
) -> List[int]:
    """Rowids of ``entries[start:end]`` in ``ORDER BY ... DESC`` order.

    Keys descend, but insertion order is preserved *within* each group of
    equal keys — exactly what the scan path's stable ``reverse=True`` sort
    produces.  Walks backwards group by group, so a small LIMIT touches
    only the tail of the slice (the ``LIMIT 1`` end-of-file probe is O(1)
    past the bisect when keys are distinct).
    """
    out: List[int] = []
    i = end
    while i > start and (limit is None or len(out) < limit):
        j = i - 1
        key = entries[j][0]
        while j > start and entries[j - 1][0] == key:
            j -= 1
        out.extend(rowid for _, rowid in entries[j:i])
        i = j
    return out if limit is None else out[:limit]


class Database:
    """An embedded SQL database with optional virtual-time accounting."""

    def __init__(
        self,
        sim: Optional[Simulator] = None,
        machine: Optional[MachineModel] = None,
    ) -> None:
        self.tables: Dict[str, Table] = {}
        self.sim = sim
        self.machine = machine
        self.boot_id = 0
        """Incarnation counter: 0 for a fresh database, and one past the
        dumping incarnation's value after :meth:`loads`.  Rows that stamp
        the writer's ``boot`` (leases, pins) can then detect holders from
        a *prior* incarnation deterministically — any ``boot < boot_id``
        holder died with its job, since dump/restore is the only way
        state crosses jobs here."""
        self.n_statements = 0
        self.n_parses = 0
        """Statements this instance had to prepare (instance-cache misses;
        a miss resolved by the process-global cache still counts)."""
        self.n_cold_parses = 0
        """Statements that actually ran the parser (missed both the
        instance cache and the process-global cache)."""
        self.n_index_probes = 0
        """WHERE evaluations narrowed by a secondary index."""
        self.n_full_scans = 0
        """WHERE evaluations that walked the whole table."""
        self.n_sorted_probes = 0
        """SELECTs whose WHERE/ORDER BY/LIMIT was answered entirely from
        an ordered index (no scan, no sort)."""
        self.n_agg_probes = 0
        """MIN/MAX aggregates answered from an ordered index's slice ends
        (no row materialized)."""
        self.n_hash_paths = 0
        """Index probes where the planner chose a hash bucket."""
        self.n_slice_paths = 0
        """Index probes where the planner chose an ordered slice."""
        self.n_rows_examined = 0
        """Candidate rows evaluated against a WHERE clause — the work the
        planner's access-path choice actually controls (a full scan
        examines the whole table, an index path only its candidates)."""
        self.probe_cost = _PROBE_COST
        self.slice_row_cost = _SLICE_ROW_COST
        """Planner cost constants, per instance so the self-tuning policy
        tier can calibrate them; the module constants stay the static
        defaults."""
        self.planner_calibration = None
        """Optional observer/override for the planner's cost model (the
        policy tier's :class:`~repro.core.policy.PlannerCalibration`,
        duck-typed here to keep metadb below core in the layering).  When
        set, :meth:`_match_rowids` reports every index-served statement's
        ``(path kind, candidates, seconds)`` to ``observe`` and the
        planner reads ``probe_cost`` / ``slice_row_cost`` from it (and
        lets ``decide`` flip contested choices for exploration) instead
        of using the instance constants."""
        self._last_path: Optional[str] = None
        self._stmt_cache: "OrderedDict[str, Any]" = OrderedDict()
        self._server: Optional[Resource] = None
        if sim is not None and machine is not None:
            self._server = Resource(
                sim, capacity=_SERVER_CONNECTIONS, name="metadb-server"
            )

    # ------------------------------------------------------------------
    # Statement execution
    # ------------------------------------------------------------------

    def prepare(self, sql: str):
        """Parse one statement, memoized by SQL text (two-level LRU).

        An instance-cache miss consults the process-global cache before
        parsing, so statements another :class:`Database` already prepared
        (e.g. the instance this one was :meth:`loads`-restored from) cost
        a dict lookup, not a parse.
        """
        cache = self._stmt_cache
        try:
            stmt = cache[sql]
        except KeyError:
            self.n_parses += 1
            shared = _GLOBAL_STMT_CACHE
            try:
                stmt = shared[sql]
                shared.move_to_end(sql)
            except KeyError:
                stmt = parse(sql)
                self.n_cold_parses += 1
                shared[sql] = stmt
                if len(shared) > _GLOBAL_STMT_CAPACITY:
                    shared.popitem(last=False)
            cache[sql] = stmt
            if len(cache) > _STMT_CACHE_CAPACITY:
                cache.popitem(last=False)
        else:
            cache.move_to_end(sql)
        return stmt

    def execute(
        self,
        sql: str,
        params: Sequence[Any] = (),
        proc: Optional[Process] = None,
    ) -> List[Tuple[Any, ...]]:
        """Run one statement.

        Returns result rows for SELECT and an empty list otherwise.  When
        ``proc`` is given and the database is attached to a simulation, the
        statement's virtual-time cost is charged to that process.
        """
        return self._run(self.prepare(sql), params, proc)

    @staticmethod
    def _check_live(proc: Optional[Process]) -> None:
        """Refuse statements from a process crash-unwinding an injected
        fault: its ``finally`` cleanup (lease releases, reaps) must not
        reach shared metadata, exactly as if its host died mid-protocol.
        Raising :class:`~repro.simt.process.Crashed` keeps the unwind
        going past any ``except Exception``."""
        if proc is not None and getattr(proc, "crashed", False):
            raise Crashed(
                f"process {proc.name!r} crashed; statement refused"
            )

    def _run(
        self, stmt, params: Sequence[Any], proc: Optional[Process]
    ) -> List[Tuple[Any, ...]]:
        self._check_live(proc)
        rows, touched = self._dispatch(stmt, list(params))
        self.n_statements += 1
        if proc is not None and self._server is not None:
            cost = self.machine.database.statement_time(rows=touched)
            with self._server.request(proc):
                proc.hold(cost)
        return rows

    def execute_count(
        self,
        sql: str,
        params: Sequence[Any] = (),
        proc: Optional[Process] = None,
    ) -> int:
        """Run one statement and return the matched-row count.

        UPDATE/DELETE statements report how many rows the WHERE clause
        actually touched, which callers flipping versioned metadata must
        verify — a zero-row update means the target row was concurrently
        repointed, not that the flip succeeded.
        """
        self._check_live(proc)
        stmt = self.prepare(sql)
        _, touched = self._dispatch(stmt, list(params))
        self.n_statements += 1
        if proc is not None and self._server is not None:
            cost = self.machine.database.statement_time(rows=touched)
            with self._server.request(proc):
                proc.hold(cost)
        return touched

    def execute_many_count(
        self,
        sql: str,
        param_rows: Sequence[Sequence[Any]],
        proc: Optional[Process] = None,
    ) -> int:
        """``execute_many`` but returning the total matched-row count
        (billed identically: one batched statement)."""
        self._check_live(proc)
        stmt = self.prepare(sql)
        if isinstance(stmt, Insert):
            raise ValueError("execute_many_count is for UPDATE/DELETE batches")
        touched = 0
        for params in param_rows:
            _, t = self._dispatch(stmt, list(params))
            touched += t
        self.n_statements += 1
        if proc is not None and self._server is not None:
            cost = self.machine.database.statement_time(rows=touched)
            with self._server.request(proc):
                proc.hold(cost)
        return touched

    def execute_many(
        self,
        sql: str,
        param_rows: Sequence[Sequence[Any]],
        proc: Optional[Process] = None,
    ) -> List[Tuple[Any, ...]]:
        """Run one parameterized statement over many parameter rows,
        billed as a single batched statement: one parse, one server trip,
        ``query_cost + total rows x row_cost`` — the multi-row INSERT
        shape.  Results (for SELECTs) are concatenated in row order.
        """
        self._check_live(proc)
        stmt = self.prepare(sql)
        out: List[Tuple[Any, ...]] = []
        if isinstance(stmt, Insert):
            # Bulk-load fast path: coerce every row first (a bad row
            # rejects the whole batch before any state changes), append
            # the heap once, and let each index ingest the batch — one
            # sort per ordered index instead of per-row insort.
            table = self._table(stmt.table)
            coerced = []
            for params in param_rows:
                row_params = list(params)
                coerced.append(table.coerce_row(
                    [e.eval({}, row_params) for e in stmt.values],
                    stmt.columns,
                ))
            table.append_rows(coerced)
            touched = len(coerced)
        else:
            touched = 0
            for params in param_rows:
                rows, t = self._dispatch(stmt, list(params))
                out.extend(rows)
                touched += t
        self.n_statements += 1
        if proc is not None and self._server is not None:
            cost = self.machine.database.statement_time(rows=touched)
            with self._server.request(proc):
                proc.hold(cost)
        return out

    def connect(self, proc: Optional[Process] = None) -> None:
        """Model establishing the connection (charged in SDM_initialize)."""
        if proc is not None and self._server is not None:
            proc.hold(self.machine.database.connect_cost)

    def query_dicts(
        self,
        sql: str,
        params: Sequence[Any] = (),
        proc: Optional[Process] = None,
    ) -> List[Dict[str, Any]]:
        """SELECT convenience: rows as dicts keyed by column name."""
        stmt = self.prepare(sql)
        if not isinstance(stmt, Select):
            raise MetaDBError("query_dicts requires a SELECT statement")
        rows = self._run(stmt, params, proc)
        if stmt.aggregate is not None:
            name = stmt.aggregate[0].lower()
            return [{name: rows[0][0]}]
        names = (
            list(stmt.columns)
            if stmt.columns is not None
            else self._table(stmt.table).column_names
        )
        return [dict(zip(names, row)) for row in rows]

    def create_index(self, table: str, columns, kind: str = "hash") -> None:
        """Declare a secondary index on a column or column tuple.

        ``kind='hash'`` serves equality WHERE conjuncts (all indexed
        columns must be bound; a multi-column tuple is a composite index
        probed once).  ``kind='ordered'`` serves equality on a leading
        column prefix, range predicates on the next column, and
        ``ORDER BY`` over the remaining columns.
        """
        self._table(table).create_index(columns, kind)

    # ------------------------------------------------------------------

    def _table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise TableNotFound(f"no such table: {name!r}") from None

    def _dispatch(self, stmt, params: List[Any]) -> Tuple[List[Tuple[Any, ...]], int]:
        """Execute one parsed statement.

        Returns ``(result rows, rows touched)`` — touched is what the cost
        model bills: rows returned by a SELECT, inserted by an INSERT,
        matched by an UPDATE or DELETE, zero for DDL.
        """
        if isinstance(stmt, CreateTable):
            return self._create(stmt), 0
        if isinstance(stmt, DropTable):
            return self._drop(stmt), 0
        if isinstance(stmt, Insert):
            return self._insert(stmt, params), 1
        if isinstance(stmt, Select):
            rows = self._select(stmt, params)
            return rows, len(rows)
        if isinstance(stmt, Update):
            return self._update(stmt, params)
        if isinstance(stmt, Delete):
            return self._delete(stmt, params)
        raise MetaDBError(f"unhandled statement {stmt!r}")  # pragma: no cover

    def _create(self, stmt: CreateTable) -> list:
        if stmt.name in self.tables:
            if stmt.if_not_exists:
                return []
            raise TableExists(f"table exists: {stmt.name!r}")
        self.tables[stmt.name] = Table(
            stmt.name, [Column(n, t) for n, t in stmt.columns]
        )
        return []

    def _drop(self, stmt: DropTable) -> list:
        if stmt.name not in self.tables:
            if stmt.if_exists:
                return []
            raise TableNotFound(f"no such table: {stmt.name!r}")
        del self.tables[stmt.name]
        return []

    def _insert(self, stmt: Insert, params: List[Any]) -> list:
        table = self._table(stmt.table)
        values = [e.eval({}, params) for e in stmt.values]
        table.insert(values, stmt.columns)
        return []

    # -- planner ---------------------------------------------------------

    @staticmethod
    def _conjunct_values(cj, params: Sequence[Any]):
        """Evaluate every conjunct's value expression once.

        Returns ``(eq_vals, lowers, uppers)`` dicts keyed by column (first
        conjunct per column wins; duplicates are still re-verified by the
        full WHERE evaluation), or None when any value is NULL — a
        comparison with NULL is always False, so the whole AND matches
        nothing.
        """
        eq_vals: Dict[str, Any] = {}
        for col, e in cj.eq:
            v = e.eval({}, params)
            if v is None:
                return None
            eq_vals.setdefault(col, v)
        lowers: Dict[str, Tuple[str, Any]] = {}
        uppers: Dict[str, Tuple[str, Any]] = {}
        for bounds, conjuncts in ((lowers, cj.lower), (uppers, cj.upper)):
            for col, op, e in conjuncts:
                v = e.eval({}, params)
                if v is None:
                    return None
                bounds.setdefault(col, (op, v))
        return eq_vals, lowers, uppers

    def _index_candidates(
        self, table: Table, where: Expr, params: Sequence[Any]
    ) -> Optional[List[int]]:
        """Rowids worth checking against ``where``, or None to full-scan.

        Access paths, cheapest estimated cost wins:

        1. every hash index whose columns are all bound by equality
           conjuncts — a composite index probes its value tuple once;
        2. every ordered index with a non-empty equality-bound column
           prefix and/or range bounds on the following column — candidates
           are a contiguous ``bisect`` slice.

        Costs are modelled, not just counted: a bucket costs
        ``_PROBE_COST + n`` while a slice costs
        ``_PROBE_COST + _SLICE_ROW_COST * n`` (its rowids must be
        materialized and re-sorted into insertion order), so a hash probe
        beats a somewhat smaller ordered slice.

        The caller still evaluates the complete WHERE on each candidate,
        so this only ever *narrows* the scan — NULL/type semantics are
        decided by the same ``Expr.eval`` as the slow path.
        """
        self._last_path = None
        cj = conjuncts_of(where)
        if cj.empty:
            return None
        values = self._conjunct_values(cj, params)
        if values is None:
            return []
        eq_vals, lowers, uppers = values

        best: Optional[List[int]] = None
        for index in table.hash_indexes():
            if not all(c in eq_vals for c in index.columns):
                continue
            bucket = index.probe(tuple(eq_vals[c] for c in index.columns))
            if bucket is None:  # unhashable probe value: scan instead
                continue
            if not bucket:
                return []
            if best is None or len(bucket) < len(best):
                best = bucket

        best_slice = None  # (count, index, start, end)
        for index in table.ordered_indexes():
            k = 0
            while k < len(index.columns) and index.columns[k] in eq_vals:
                k += 1
            nxt = index.columns[k] if k < len(index.columns) else None
            lo = lowers.get(nxt) if nxt is not None else None
            hi = uppers.get(nxt) if nxt is not None else None
            if k == 0 and lo is None and hi is None:
                continue  # index leads with an unbound column
            prefix = [eq_vals[c] for c in index.columns[:k]]
            try:
                start, end = index.slice_bounds(prefix, lo, hi)
            except TypeError:  # unorderable probe value: scan instead
                continue
            count = end - start
            if count == 0:
                return []
            if best_slice is None or count < best_slice[0]:
                best_slice = (count, index, start, end)

        cal = self.planner_calibration
        probe = self.probe_cost if cal is None else cal.probe_cost
        per_slice_row = self.slice_row_cost if cal is None else cal.slice_row_cost
        hash_cost = None if best is None else probe + len(best)
        slice_cost = (
            None if best_slice is None
            else probe + per_slice_row * best_slice[0]
        )
        pick_slice = slice_cost is not None and (
            hash_cost is None or slice_cost < hash_cost
        )
        if cal is not None and hash_cost is not None and slice_cost is not None:
            # Contested choice: the calibration may flip it to feed an
            # observation-starved path (results stay scan-identical —
            # candidates from either path are verified the same way).
            pick_slice = cal.decide(pick_slice)
        if pick_slice:
            _, index, start, end = best_slice
            self.n_slice_paths += 1
            self._last_path = "slice"
            # Candidates must be evaluated in insertion order so that
            # un-ORDERed results stay scan-identical.
            return sorted(rowid for _, rowid in index.entries[start:end])
        if best is not None:
            self.n_hash_paths += 1
            self._last_path = "hash"
        return best

    def _match_rowids(self, table: Table, where, params) -> List[int]:
        if where is None:
            return [i for i, _ in table.scan()]
        cal = self.planner_calibration
        t0 = perf_counter() if cal is not None else 0.0
        candidates = self._index_candidates(table, where, params)
        if candidates is None:
            self.n_full_scans += 1
            examined = len(table.rows)
            kind = "scan"
            pairs = table.scan()
        else:
            self.n_index_probes += 1
            examined = len(candidates)
            kind = self._last_path
            pairs = ((i, table.rows[i]) for i in candidates)
        self.n_rows_examined += examined
        names = table.column_names
        hits = []
        for i, row in pairs:
            ctx = dict(zip(names, row))
            if where.eval(ctx, params):
                hits.append(i)
        if cal is not None and kind is not None:
            # The window covers candidate generation (the slice path's
            # materialize + sort included) plus verification — the work
            # the access-path choice controls.
            cal.observe(kind, examined, perf_counter() - t0)
        return hits

    def _sorted_rowids(
        self, table: Table, stmt: Select, params: Sequence[Any]
    ) -> Optional[List[int]]:
        """Rowids already filtered, ordered, and limited — or None.

        The whole query must be answerable from one ordered index with no
        WHERE re-evaluation: the WHERE decomposes *completely* into at
        most one equality conjunct per column, plus at most one lower and
        one upper bound on the first ORDER BY column; some ordered index's
        columns are exactly those equality columns (in any order) followed
        by the ORDER BY columns (in order, uniform direction).  The index
        slice then contains exactly the matching rows, pre-sorted with the
        same key and tie-break the scan path's stable sort would use.
        """
        directions = {desc for _, desc in stmt.order_by}
        if len(directions) != 1:
            return None
        desc = directions.pop()
        cj = conjuncts_of(stmt.where)
        if not cj.complete:
            return None
        eq_cols = [c for c, _ in cj.eq]
        order_cols = tuple(c for c, _ in stmt.order_by)
        if len(set(eq_cols)) != len(eq_cols) or set(eq_cols) & set(order_cols):
            return None
        if len(cj.lower) > 1 or len(cj.upper) > 1:
            return None
        range_cols = {c for c, _, _ in cj.lower} | {c for c, _, _ in cj.upper}
        if range_cols and range_cols != {order_cols[0]}:
            return None
        k = len(eq_cols)
        for index in table.ordered_indexes():
            if len(index.columns) != k + len(order_cols):
                continue
            if set(index.columns[:k]) != set(eq_cols):
                continue
            if index.columns[k:] != order_cols:
                continue
            values = self._conjunct_values(cj, params)
            if values is None:
                return []  # a NULL conjunct value: nothing matches
            eq_vals, lowers, uppers = values
            prefix = [eq_vals[c] for c in index.columns[:k]]
            try:
                start, end = index.slice_bounds(
                    prefix, lowers.get(order_cols[0]), uppers.get(order_cols[0])
                )
            except TypeError:  # unorderable probe value: scan instead
                return None
            if desc:
                return _descending_rowids(
                    index.entries, start, end, stmt.limit
                )
            if stmt.limit is not None:
                end = min(end, start + stmt.limit)
            return [rowid for _, rowid in index.entries[start:end]]
        return None

    def _aggregate_probe(
        self, table: Table, stmt: Select, params: Sequence[Any]
    ) -> Optional[List[Tuple[Any, ...]]]:
        """Answer ``MIN(col)``/``MAX(col)`` from an ordered index, or None.

        Needs the same coverage as a sorted probe: the WHERE decomposes
        *completely* into at most one equality conjunct per column plus at
        most one lower and one upper bound on ``col``, and some ordered
        index's columns are exactly the equality columns (any order)
        followed by ``col``.  The slice then holds exactly the matching
        rows with ``col`` ascending (NULLs first), so the aggregate is a
        slice end — no row is materialized or verified.
        """
        fn, col = stmt.aggregate
        if fn not in ("MIN", "MAX") or col is None:
            return None
        if stmt.order_by or stmt.limit is not None:
            return None
        cj = conjuncts_of(stmt.where)
        if not cj.complete:
            return None
        eq_cols = [c for c, _ in cj.eq]
        if len(set(eq_cols)) != len(eq_cols) or col in eq_cols:
            return None
        if len(cj.lower) > 1 or len(cj.upper) > 1:
            return None
        range_cols = {c for c, _, _ in cj.lower} | {c for c, _, _ in cj.upper}
        if range_cols and range_cols != {col}:
            return None
        k = len(eq_cols)
        for index in table.ordered_indexes():
            if len(index.columns) <= k:
                continue
            if set(index.columns[:k]) != set(eq_cols) or index.columns[k] != col:
                continue
            values = self._conjunct_values(cj, params)
            if values is None:
                return [(None,)]  # a NULL conjunct value: nothing matches
            eq_vals, lowers, uppers = values
            prefix = [eq_vals[c] for c in index.columns[:k]]
            try:
                start, end = index.slice_bounds(
                    prefix, lowers.get(col), uppers.get(col)
                )
            except TypeError:  # unorderable probe value: scan instead
                return None
            self.n_agg_probes += 1
            if fn == "MIN":
                return [(index.min_in_slice(prefix, start, end),)]
            return [(index.max_in_slice(prefix, start, end),)]
        return None

    def _select(self, stmt: Select, params: List[Any]) -> List[Tuple[Any, ...]]:
        table = self._table(stmt.table)
        if stmt.aggregate is not None:
            probed = self._aggregate_probe(table, stmt, params)
            if probed is not None:
                return probed
        rows = None
        if stmt.order_by:
            rowids = self._sorted_rowids(table, stmt, params)
            if rowids is not None:
                self.n_sorted_probes += 1
                rows = [table.rows[i] for i in rowids]
        if rows is None:
            rowids = self._match_rowids(table, stmt.where, params)
            rows = [table.rows[i] for i in rowids]
            if stmt.order_by:
                # Sort by keys right-to-left for stable multi-key ordering;
                # None sorts first ascending (last descending).
                for col, desc in reversed(stmt.order_by):
                    pos = table.column_pos(col)
                    rows.sort(
                        key=lambda r: (r[pos] is not None, r[pos])
                        if r[pos] is not None
                        else (False, 0),
                        reverse=desc,
                    )
            if stmt.limit is not None:
                rows = rows[: stmt.limit]
        if stmt.aggregate is not None:
            fn, col = stmt.aggregate
            if fn == "COUNT" and col is None:
                return [(len(rows),)]
            pos = table.column_pos(col)
            values = [r[pos] for r in rows if r[pos] is not None]
            if not values:
                return [(None,)]
            if fn == "COUNT":
                return [(len(values),)]
            if fn == "MAX":
                return [(max(values),)]
            if fn == "MIN":
                return [(min(values),)]
            if fn == "SUM":
                return [(sum(values),)]
            raise MetaDBError(f"unknown aggregate {fn!r}")  # pragma: no cover
        if stmt.columns is None:
            return rows
        positions = [table.column_pos(c) for c in stmt.columns]
        return [tuple(r[p] for p in positions) for r in rows]

    def _update(self, stmt: Update, params: List[Any]) -> Tuple[list, int]:
        table = self._table(stmt.table)
        rowids = self._match_rowids(table, stmt.where, params)
        names = table.column_names
        positions = [(table.column_pos(c), c, e) for c, e in stmt.assignments]
        for i in rowids:
            row = list(table.rows[i])
            ctx = dict(zip(names, row))
            for pos, _col, e in positions:
                row[pos] = table.columns[pos].type.coerce(e.eval(ctx, params))
            table.replace_row(i, tuple(row))
        return [], len(rowids)

    def _delete(self, stmt: Delete, params: List[Any]) -> Tuple[list, int]:
        table = self._table(stmt.table)
        rowids = self._match_rowids(table, stmt.where, params)
        return [], table.delete_rowids(rowids)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def dump(self) -> str:
        """Serialize the whole database to a JSON string.

        Index *declarations* (kind + column tuple) are persisted per
        table; the structures themselves are rebuilt from the rows on
        :meth:`loads`, so a restored database is self-contained — no
        ``create_index`` re-declaration needed.
        """
        doc = {}
        for name, table in self.tables.items():
            doc[name] = {
                "columns": [(c.name, c.type.name) for c in table.columns],
                "rows": [
                    [c.type.to_json(v) for c, v in zip(table.columns, row)]
                    for row in table.rows
                ],
                "indexes": [
                    {"kind": index.kind, "columns": list(index.columns)}
                    for index in table.indexes.values()
                ],
            }
        return json.dumps({"tables": doc, "boot": self.boot_id})

    @classmethod
    def loads(cls, text: str) -> "Database":
        """Rebuild a database (rows *and* indexes) from :meth:`dump` output."""
        doc = json.loads(text)
        db = cls()
        db.boot_id = int(doc.get("boot", 0)) + 1
        for name, spec in doc["tables"].items():
            columns = [Column(n, type_by_name(t)) for n, t in spec["columns"]]
            table = Table(name, columns)
            for row in spec["rows"]:
                table.rows.append(
                    tuple(
                        c.type.from_json(v) for c, v in zip(columns, row)
                    )
                )
            # Pre-index-persistence dumps carry no "indexes" key; they
            # load fine and simply need re-declaration as before.
            for index in spec.get("indexes", ()):
                table.create_index(tuple(index["columns"]), index["kind"])
            db.tables[name] = table
        return db

    def save(self, path: str) -> None:
        """Persist to a file on the host filesystem."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.dump())

    @classmethod
    def load(cls, path: str) -> "Database":
        """Load a database persisted with :meth:`save`."""
        with open(path, "r", encoding="utf-8") as fh:
            return cls.loads(fh.read())
