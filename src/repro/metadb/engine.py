"""The Database engine: statement execution, persistence, cost model.

A :class:`Database` may be *plain* (no simulation attached — unit tests,
offline inspection) or *attached* to a simulator, in which case every
statement issued with a ``proc`` serializes through the database server
resource and charges ``query_cost + rows x row_cost`` of virtual time —
the "database cost to access the metadata" the paper folds into the
history-file path.  ``rows`` is the number of rows the statement *touched*:
returned for SELECT, written for INSERT, matched for UPDATE/DELETE.

Two optimizations keep the metadata path off the application's critical
path as tables grow:

* **Statement cache** — parsed ASTs are memoized by SQL text
  (:meth:`Database.prepare`), so the parameterized statements SDM issues in
  loops (one per timestep, per rank, per dataset) parse once per process.
* **Equality planner** — WHERE trees whose top level is an AND of
  ``column = literal/?`` conjuncts probe a secondary hash index on the
  table (:meth:`Database.create_index`) and verify only the candidate
  rows, instead of evaluating the predicate against every row.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.config import MachineModel
from repro.errors import MetaDBError, TableExists, TableNotFound
from repro.metadb.expr import BoolOp, ColumnRef, Compare, Expr, Literal, Param
from repro.metadb.sqlparser import (
    CreateTable,
    Delete,
    DropTable,
    Insert,
    Select,
    Update,
    parse,
)
from repro.metadb.table import Column, Table
from repro.metadb.types import type_by_name
from repro.simt.primitives import Resource
from repro.simt.process import Process
from repro.simt.simulator import Simulator

__all__ = ["Database"]

_SERVER_CONNECTIONS = 4
"""Concurrent statements the database server executes."""

_STMT_CACHE_CAPACITY = 512
"""Parsed statements kept per database (LRU eviction beyond this)."""


def _equality_conjuncts(where: Expr) -> List[Tuple[str, Expr]]:
    """``(column, value-expr)`` pairs that must *all* hold for a row to match.

    Walks ``Compare('=')`` nodes with a column ref on one side and a
    literal or parameter on the other, recursing through ``BoolOp('AND')``
    (nested ANDs from parenthesized input included).  Other node kinds
    contribute no conjuncts but do not invalidate their AND siblings; OR
    and NOT subtrees are opaque.
    """
    if isinstance(where, Compare) and where.op == "=":
        for ref, value in ((where.left, where.right), (where.right, where.left)):
            if isinstance(ref, ColumnRef) and isinstance(value, (Literal, Param)):
                return [(ref.name, value)]
        return []
    if isinstance(where, BoolOp) and where.op == "AND":
        out: List[Tuple[str, Expr]] = []
        for operand in where.operands:
            out.extend(_equality_conjuncts(operand))
        return out
    return []


class Database:
    """An embedded SQL database with optional virtual-time accounting."""

    def __init__(
        self,
        sim: Optional[Simulator] = None,
        machine: Optional[MachineModel] = None,
    ) -> None:
        self.tables: Dict[str, Table] = {}
        self.sim = sim
        self.machine = machine
        self.n_statements = 0
        self.n_parses = 0
        """Statements actually parsed (cache misses)."""
        self.n_index_probes = 0
        """WHERE evaluations answered from a secondary index."""
        self.n_full_scans = 0
        """WHERE evaluations that walked the whole table."""
        self._stmt_cache: "OrderedDict[str, Any]" = OrderedDict()
        self._server: Optional[Resource] = None
        if sim is not None and machine is not None:
            self._server = Resource(
                sim, capacity=_SERVER_CONNECTIONS, name="metadb-server"
            )

    # ------------------------------------------------------------------
    # Statement execution
    # ------------------------------------------------------------------

    def prepare(self, sql: str):
        """Parse one statement, memoized by SQL text (LRU)."""
        cache = self._stmt_cache
        try:
            stmt = cache[sql]
        except KeyError:
            stmt = parse(sql)
            self.n_parses += 1
            cache[sql] = stmt
            if len(cache) > _STMT_CACHE_CAPACITY:
                cache.popitem(last=False)
        else:
            cache.move_to_end(sql)
        return stmt

    def execute(
        self,
        sql: str,
        params: Sequence[Any] = (),
        proc: Optional[Process] = None,
    ) -> List[Tuple[Any, ...]]:
        """Run one statement.

        Returns result rows for SELECT and an empty list otherwise.  When
        ``proc`` is given and the database is attached to a simulation, the
        statement's virtual-time cost is charged to that process.
        """
        return self._run(self.prepare(sql), params, proc)

    def _run(
        self, stmt, params: Sequence[Any], proc: Optional[Process]
    ) -> List[Tuple[Any, ...]]:
        rows, touched = self._dispatch(stmt, list(params))
        self.n_statements += 1
        if proc is not None and self._server is not None:
            cost = self.machine.database.statement_time(rows=touched)
            with self._server.request(proc):
                proc.hold(cost)
        return rows

    def connect(self, proc: Optional[Process] = None) -> None:
        """Model establishing the connection (charged in SDM_initialize)."""
        if proc is not None and self._server is not None:
            proc.hold(self.machine.database.connect_cost)

    def query_dicts(
        self,
        sql: str,
        params: Sequence[Any] = (),
        proc: Optional[Process] = None,
    ) -> List[Dict[str, Any]]:
        """SELECT convenience: rows as dicts keyed by column name."""
        stmt = self.prepare(sql)
        if not isinstance(stmt, Select):
            raise MetaDBError("query_dicts requires a SELECT statement")
        rows = self._run(stmt, params, proc)
        if stmt.aggregate is not None:
            name = stmt.aggregate[0].lower()
            return [{name: rows[0][0]}]
        names = (
            list(stmt.columns)
            if stmt.columns is not None
            else self._table(stmt.table).column_names
        )
        return [dict(zip(names, row)) for row in rows]

    def create_index(self, table: str, column: str) -> None:
        """Declare a secondary hash index used by equality WHERE clauses."""
        self._table(table).create_index(column)

    # ------------------------------------------------------------------

    def _table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise TableNotFound(f"no such table: {name!r}") from None

    def _dispatch(self, stmt, params: List[Any]) -> Tuple[List[Tuple[Any, ...]], int]:
        """Execute one parsed statement.

        Returns ``(result rows, rows touched)`` — touched is what the cost
        model bills: rows returned by a SELECT, inserted by an INSERT,
        matched by an UPDATE or DELETE, zero for DDL.
        """
        if isinstance(stmt, CreateTable):
            return self._create(stmt), 0
        if isinstance(stmt, DropTable):
            return self._drop(stmt), 0
        if isinstance(stmt, Insert):
            return self._insert(stmt, params), 1
        if isinstance(stmt, Select):
            rows = self._select(stmt, params)
            return rows, len(rows)
        if isinstance(stmt, Update):
            return self._update(stmt, params)
        if isinstance(stmt, Delete):
            return self._delete(stmt, params)
        raise MetaDBError(f"unhandled statement {stmt!r}")  # pragma: no cover

    def _create(self, stmt: CreateTable) -> list:
        if stmt.name in self.tables:
            if stmt.if_not_exists:
                return []
            raise TableExists(f"table exists: {stmt.name!r}")
        self.tables[stmt.name] = Table(
            stmt.name, [Column(n, t) for n, t in stmt.columns]
        )
        return []

    def _drop(self, stmt: DropTable) -> list:
        if stmt.name not in self.tables:
            if stmt.if_exists:
                return []
            raise TableNotFound(f"no such table: {stmt.name!r}")
        del self.tables[stmt.name]
        return []

    def _insert(self, stmt: Insert, params: List[Any]) -> list:
        table = self._table(stmt.table)
        values = [e.eval({}, params) for e in stmt.values]
        table.insert(values, stmt.columns)
        return []

    # -- planner ---------------------------------------------------------

    def _index_candidates(
        self, table: Table, where: Expr, params: Sequence[Any]
    ) -> Optional[List[int]]:
        """Rowids worth checking against ``where``, or None to full-scan.

        Probes the table's secondary indexes with every indexed equality
        conjunct and keeps the smallest candidate set; the caller still
        evaluates the complete WHERE on each candidate, so this only ever
        *narrows* the scan — NULL/type semantics are decided by the same
        ``Expr.eval`` as the slow path.
        """
        best: Optional[List[int]] = None
        for column, value_expr in _equality_conjuncts(where):
            if column not in table.indexes:
                continue
            value = value_expr.eval({}, params)
            if value is None:
                # `col = NULL` matches no row; the whole AND is empty.
                return []
            bucket = table.probe_index(column, value)
            if bucket is None:  # unhashable probe value: scan instead
                continue
            if not bucket:
                return []
            if best is None or len(bucket) < len(best):
                best = bucket
        return best

    def _match_rowids(self, table: Table, where, params) -> List[int]:
        if where is None:
            return [i for i, _ in table.scan()]
        candidates = self._index_candidates(table, where, params)
        if candidates is None:
            self.n_full_scans += 1
            pairs = table.scan()
        else:
            self.n_index_probes += 1
            pairs = ((i, table.rows[i]) for i in candidates)
        names = table.column_names
        hits = []
        for i, row in pairs:
            ctx = dict(zip(names, row))
            if where.eval(ctx, params):
                hits.append(i)
        return hits

    def _select(self, stmt: Select, params: List[Any]) -> List[Tuple[Any, ...]]:
        table = self._table(stmt.table)
        rowids = self._match_rowids(table, stmt.where, params)
        rows = [table.rows[i] for i in rowids]
        if stmt.order_by:
            # Sort by keys right-to-left for stable multi-key ordering;
            # None sorts first ascending (last descending).
            for col, desc in reversed(stmt.order_by):
                pos = table.column_pos(col)
                rows.sort(
                    key=lambda r: (r[pos] is not None, r[pos])
                    if r[pos] is not None
                    else (False, 0),
                    reverse=desc,
                )
        if stmt.limit is not None:
            rows = rows[: stmt.limit]
        if stmt.aggregate is not None:
            fn, col = stmt.aggregate
            if fn == "COUNT" and col is None:
                return [(len(rows),)]
            pos = table.column_pos(col)
            values = [r[pos] for r in rows if r[pos] is not None]
            if not values:
                return [(None,)]
            if fn == "COUNT":
                return [(len(values),)]
            if fn == "MAX":
                return [(max(values),)]
            if fn == "MIN":
                return [(min(values),)]
            if fn == "SUM":
                return [(sum(values),)]
            raise MetaDBError(f"unknown aggregate {fn!r}")  # pragma: no cover
        if stmt.columns is None:
            return rows
        positions = [table.column_pos(c) for c in stmt.columns]
        return [tuple(r[p] for p in positions) for r in rows]

    def _update(self, stmt: Update, params: List[Any]) -> Tuple[list, int]:
        table = self._table(stmt.table)
        rowids = self._match_rowids(table, stmt.where, params)
        names = table.column_names
        positions = [(table.column_pos(c), c, e) for c, e in stmt.assignments]
        for i in rowids:
            row = list(table.rows[i])
            ctx = dict(zip(names, row))
            for pos, _col, e in positions:
                row[pos] = table.columns[pos].type.coerce(e.eval(ctx, params))
            table.replace_row(i, tuple(row))
        return [], len(rowids)

    def _delete(self, stmt: Delete, params: List[Any]) -> Tuple[list, int]:
        table = self._table(stmt.table)
        rowids = self._match_rowids(table, stmt.where, params)
        return [], table.delete_rowids(rowids)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def dump(self) -> str:
        """Serialize the whole database to a JSON string.

        Secondary indexes are not serialized (open item: see ROADMAP);
        re-declare them after :meth:`loads`.
        """
        doc = {}
        for name, table in self.tables.items():
            doc[name] = {
                "columns": [(c.name, c.type.name) for c in table.columns],
                "rows": [
                    [c.type.to_json(v) for c, v in zip(table.columns, row)]
                    for row in table.rows
                ],
            }
        return json.dumps({"tables": doc})

    @classmethod
    def loads(cls, text: str) -> "Database":
        """Rebuild a database from :meth:`dump` output."""
        doc = json.loads(text)
        db = cls()
        for name, spec in doc["tables"].items():
            columns = [Column(n, type_by_name(t)) for n, t in spec["columns"]]
            table = Table(name, columns)
            for row in spec["rows"]:
                table.rows.append(
                    tuple(
                        c.type.from_json(v) for c, v in zip(columns, row)
                    )
                )
            db.tables[name] = table
        return db

    def save(self, path: str) -> None:
        """Persist to a file on the host filesystem."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.dump())

    @classmethod
    def load(cls, path: str) -> "Database":
        """Load a database persisted with :meth:`save`."""
        with open(path, "r", encoding="utf-8") as fh:
            return cls.loads(fh.read())
