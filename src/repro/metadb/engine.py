"""The Database engine: statement execution, persistence, cost model.

A :class:`Database` may be *plain* (no simulation attached — unit tests,
offline inspection) or *attached* to a simulator, in which case every
statement issued with a ``proc`` serializes through the database server
resource and charges ``query_cost + rows x row_cost`` of virtual time —
the "database cost to access the metadata" the paper folds into the
history-file path.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.config import MachineModel
from repro.errors import MetaDBError, TableExists, TableNotFound
from repro.metadb.sqlparser import (
    CreateTable,
    Delete,
    DropTable,
    Insert,
    Select,
    Update,
    parse,
)
from repro.metadb.table import Column, Table
from repro.metadb.types import type_by_name
from repro.simt.primitives import Resource
from repro.simt.process import Process
from repro.simt.simulator import Simulator

__all__ = ["Database"]

_SERVER_CONNECTIONS = 4
"""Concurrent statements the database server executes."""


class Database:
    """An embedded SQL database with optional virtual-time accounting."""

    def __init__(
        self,
        sim: Optional[Simulator] = None,
        machine: Optional[MachineModel] = None,
    ) -> None:
        self.tables: Dict[str, Table] = {}
        self.sim = sim
        self.machine = machine
        self.n_statements = 0
        self._server: Optional[Resource] = None
        if sim is not None and machine is not None:
            self._server = Resource(
                sim, capacity=_SERVER_CONNECTIONS, name="metadb-server"
            )

    # ------------------------------------------------------------------
    # Statement execution
    # ------------------------------------------------------------------

    def execute(
        self,
        sql: str,
        params: Sequence[Any] = (),
        proc: Optional[Process] = None,
    ) -> List[Tuple[Any, ...]]:
        """Run one statement.

        Returns result rows for SELECT and an empty list otherwise.  When
        ``proc`` is given and the database is attached to a simulation, the
        statement's virtual-time cost is charged to that process.
        """
        stmt = parse(sql)
        rows = self._dispatch(stmt, list(params))
        self.n_statements += 1
        if proc is not None and self._server is not None:
            cost = self.machine.database.statement_time(rows=len(rows))
            with self._server.request(proc):
                proc.hold(cost)
        return rows

    def connect(self, proc: Optional[Process] = None) -> None:
        """Model establishing the connection (charged in SDM_initialize)."""
        if proc is not None and self._server is not None:
            proc.hold(self.machine.database.connect_cost)

    def query_dicts(
        self,
        sql: str,
        params: Sequence[Any] = (),
        proc: Optional[Process] = None,
    ) -> List[Dict[str, Any]]:
        """SELECT convenience: rows as dicts keyed by column name."""
        stmt = parse(sql)
        if not isinstance(stmt, Select):
            raise MetaDBError("query_dicts requires a SELECT statement")
        rows = self.execute(sql, params, proc=proc)
        table = self._table(stmt.table)
        if stmt.aggregate is not None:
            name = stmt.aggregate[0].lower()
            return [{name: rows[0][0]}]
        names = list(stmt.columns) if stmt.columns is not None else table.column_names
        return [dict(zip(names, row)) for row in rows]

    # ------------------------------------------------------------------

    def _table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise TableNotFound(f"no such table: {name!r}") from None

    def _dispatch(self, stmt, params: List[Any]) -> List[Tuple[Any, ...]]:
        if isinstance(stmt, CreateTable):
            return self._create(stmt)
        if isinstance(stmt, DropTable):
            return self._drop(stmt)
        if isinstance(stmt, Insert):
            return self._insert(stmt, params)
        if isinstance(stmt, Select):
            return self._select(stmt, params)
        if isinstance(stmt, Update):
            return self._update(stmt, params)
        if isinstance(stmt, Delete):
            return self._delete(stmt, params)
        raise MetaDBError(f"unhandled statement {stmt!r}")  # pragma: no cover

    def _create(self, stmt: CreateTable) -> list:
        if stmt.name in self.tables:
            if stmt.if_not_exists:
                return []
            raise TableExists(f"table exists: {stmt.name!r}")
        self.tables[stmt.name] = Table(
            stmt.name, [Column(n, t) for n, t in stmt.columns]
        )
        return []

    def _drop(self, stmt: DropTable) -> list:
        if stmt.name not in self.tables:
            if stmt.if_exists:
                return []
            raise TableNotFound(f"no such table: {stmt.name!r}")
        del self.tables[stmt.name]
        return []

    def _insert(self, stmt: Insert, params: List[Any]) -> list:
        table = self._table(stmt.table)
        values = [e.eval({}, params) for e in stmt.values]
        table.insert(values, stmt.columns)
        return []

    def _match_rowids(self, table: Table, where, params) -> List[int]:
        if where is None:
            return [i for i, _ in table.scan()]
        names = table.column_names
        hits = []
        for i, row in table.scan():
            ctx = dict(zip(names, row))
            if where.eval(ctx, params):
                hits.append(i)
        return hits

    def _select(self, stmt: Select, params: List[Any]) -> List[Tuple[Any, ...]]:
        table = self._table(stmt.table)
        rowids = self._match_rowids(table, stmt.where, params)
        rows = [table.rows[i] for i in rowids]
        if stmt.order_by:
            # Sort by keys right-to-left for stable multi-key ordering;
            # None sorts first ascending (last descending).
            for col, desc in reversed(stmt.order_by):
                pos = table.column_pos(col)
                rows.sort(
                    key=lambda r: (r[pos] is not None, r[pos])
                    if r[pos] is not None
                    else (False, 0),
                    reverse=desc,
                )
        if stmt.limit is not None:
            rows = rows[: stmt.limit]
        if stmt.aggregate is not None:
            fn, col = stmt.aggregate
            if fn == "COUNT" and col is None:
                return [(len(rows),)]
            pos = table.column_pos(col)
            values = [r[pos] for r in rows if r[pos] is not None]
            if not values:
                return [(None,)]
            if fn == "COUNT":
                return [(len(values),)]
            if fn == "MAX":
                return [(max(values),)]
            if fn == "MIN":
                return [(min(values),)]
            if fn == "SUM":
                return [(sum(values),)]
            raise MetaDBError(f"unknown aggregate {fn!r}")  # pragma: no cover
        if stmt.columns is None:
            return rows
        positions = [table.column_pos(c) for c in stmt.columns]
        return [tuple(r[p] for p in positions) for r in rows]

    def _update(self, stmt: Update, params: List[Any]) -> list:
        table = self._table(stmt.table)
        rowids = self._match_rowids(table, stmt.where, params)
        names = table.column_names
        positions = [(table.column_pos(c), c, e) for c, e in stmt.assignments]
        for i in rowids:
            row = list(table.rows[i])
            ctx = dict(zip(names, row))
            for pos, _col, e in positions:
                row[pos] = table.columns[pos].type.coerce(e.eval(ctx, params))
            table.rows[i] = tuple(row)
        return []

    def _delete(self, stmt: Delete, params: List[Any]) -> list:
        table = self._table(stmt.table)
        rowids = self._match_rowids(table, stmt.where, params)
        table.delete_rowids(rowids)
        return []

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def dump(self) -> str:
        """Serialize the whole database to a JSON string."""
        doc = {}
        for name, table in self.tables.items():
            doc[name] = {
                "columns": [(c.name, c.type.name) for c in table.columns],
                "rows": [
                    [c.type.to_json(v) for c, v in zip(table.columns, row)]
                    for row in table.rows
                ],
            }
        return json.dumps({"tables": doc})

    @classmethod
    def loads(cls, text: str) -> "Database":
        """Rebuild a database from :meth:`dump` output."""
        doc = json.loads(text)
        db = cls()
        for name, spec in doc["tables"].items():
            columns = [Column(n, type_by_name(t)) for n, t in spec["columns"]]
            table = Table(name, columns)
            for row in spec["rows"]:
                table.rows.append(
                    tuple(
                        c.type.from_json(v) for c, v in zip(columns, row)
                    )
                )
            db.tables[name] = table
        return db

    def save(self, path: str) -> None:
        """Persist to a file on the host filesystem."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.dump())

    @classmethod
    def load(cls, path: str) -> "Database":
        """Load a database persisted with :meth:`save`."""
        with open(path, "r", encoding="utf-8") as fh:
            return cls.loads(fh.read())
