"""WHERE/SET expression AST and evaluation.

Expressions are small immutable trees evaluated against a row context
(column name → value).  SQL three-valued logic is simplified to two-valued
with explicit ``IS NULL`` / ``IS NOT NULL``: comparisons involving NULL are
False (which matches how SDM's queries use the database).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import MetaDBError

__all__ = [
    "Expr",
    "Literal",
    "Param",
    "ColumnRef",
    "Compare",
    "BoolOp",
    "Not",
    "IsNull",
    "Conjuncts",
    "conjuncts_of",
]


class Expr:
    """Base expression node."""

    def eval(self, row: Dict[str, Any], params: Sequence[Any]) -> Any:
        raise NotImplementedError


@dataclass(frozen=True)
class Literal(Expr):
    """A constant (int, float, str, or None)."""

    value: Any

    def eval(self, row, params):
        return self.value


@dataclass(frozen=True)
class Param(Expr):
    """A positional ``?`` parameter."""

    index: int

    def eval(self, row, params):
        if self.index >= len(params):
            raise MetaDBError(
                f"statement needs parameter #{self.index + 1}, "
                f"got only {len(params)}"
            )
        return params[self.index]


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A column reference."""

    name: str

    def eval(self, row, params):
        try:
            return row[self.name]
        except KeyError:
            raise MetaDBError(f"unknown column {self.name!r}") from None


_COMPARATORS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Compare(Expr):
    """Binary comparison; NULL on either side yields False."""

    op: str
    left: Expr
    right: Expr

    def eval(self, row, params):
        a = self.left.eval(row, params)
        b = self.right.eval(row, params)
        if a is None or b is None:
            return False
        try:
            return _COMPARATORS[self.op](a, b)
        except TypeError:
            raise MetaDBError(
                f"cannot compare {a!r} {self.op} {b!r}"
            ) from None


@dataclass(frozen=True)
class BoolOp(Expr):
    """AND / OR over two or more operands (short-circuiting)."""

    op: str  # "AND" | "OR"
    operands: tuple

    def eval(self, row, params):
        if self.op == "AND":
            return all(bool(o.eval(row, params)) for o in self.operands)
        return any(bool(o.eval(row, params)) for o in self.operands)


@dataclass(frozen=True)
class Not(Expr):
    """Logical negation."""

    operand: Expr

    def eval(self, row, params):
        return not bool(self.operand.eval(row, params))


@dataclass(frozen=True)
class IsNull(Expr):
    """``col IS NULL`` / ``col IS NOT NULL``."""

    operand: Expr
    negated: bool = False

    def eval(self, row, params):
        result = self.operand.eval(row, params) is None
        return not result if self.negated else result


# ---------------------------------------------------------------------------
# Conjunct decomposition (what the planner sees)
# ---------------------------------------------------------------------------

_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


@dataclass
class Conjuncts:
    """A WHERE tree decomposed into its top-level AND conjuncts.

    Each entry pairs a column name with a value expression (a
    :class:`Literal` or :class:`Param`); reversed comparisons
    (``? < col``) are normalized so the column is always on the left.
    ``complete`` is True iff *every* node of the tree was consumed — the
    conjuncts then are not merely necessary for a row to match but
    sufficient, which is what lets the engine answer a query entirely
    from an index without re-evaluating the WHERE expression.
    """

    eq: List[Tuple[str, Expr]] = field(default_factory=list)
    """``col = value`` conjuncts."""
    lower: List[Tuple[str, str, Expr]] = field(default_factory=list)
    """``(col, '>' | '>=', value)`` lower-bound conjuncts."""
    upper: List[Tuple[str, str, Expr]] = field(default_factory=list)
    """``(col, '<' | '<=', value)`` upper-bound conjuncts."""
    complete: bool = True

    @property
    def empty(self) -> bool:
        return not (self.eq or self.lower or self.upper)


def conjuncts_of(where: Optional[Expr]) -> Conjuncts:
    """Decompose a WHERE tree for the planner.

    Walks ``Compare`` nodes with a column ref on one side and a literal
    or parameter on the other, recursing through ``BoolOp('AND')``
    (nested ANDs from parenthesized input included).  Any other node —
    OR, NOT, IS NULL, ``!=``, column-to-column comparison — contributes
    no conjuncts and clears ``complete``, but does not invalidate its
    AND siblings.
    """
    out = Conjuncts()
    if where is None:
        return out

    def walk(node: Expr) -> None:
        if isinstance(node, BoolOp) and node.op == "AND":
            for operand in node.operands:
                walk(operand)
            return
        if isinstance(node, Compare):
            op = node.op
            if isinstance(node.left, ColumnRef) and isinstance(
                node.right, (Literal, Param)
            ):
                col, value = node.left.name, node.right
            elif isinstance(node.right, ColumnRef) and isinstance(
                node.left, (Literal, Param)
            ):
                col, value = node.right.name, node.left
                op = _FLIP.get(op, op)
            else:
                out.complete = False
                return
            if op == "=":
                out.eq.append((col, value))
            elif op in (">", ">="):
                out.lower.append((col, op, value))
            elif op in ("<", "<="):
                out.upper.append((col, op, value))
            else:  # != narrows nothing
                out.complete = False
            return
        out.complete = False

    walk(where)
    return out
