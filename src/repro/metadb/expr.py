"""WHERE/SET expression AST and evaluation.

Expressions are small immutable trees evaluated against a row context
(column name → value).  SQL three-valued logic is simplified to two-valued
with explicit ``IS NULL`` / ``IS NOT NULL``: comparisons involving NULL are
False (which matches how SDM's queries use the database).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence

from repro.errors import MetaDBError

__all__ = [
    "Expr",
    "Literal",
    "Param",
    "ColumnRef",
    "Compare",
    "BoolOp",
    "Not",
    "IsNull",
]


class Expr:
    """Base expression node."""

    def eval(self, row: Dict[str, Any], params: Sequence[Any]) -> Any:
        raise NotImplementedError


@dataclass(frozen=True)
class Literal(Expr):
    """A constant (int, float, str, or None)."""

    value: Any

    def eval(self, row, params):
        return self.value


@dataclass(frozen=True)
class Param(Expr):
    """A positional ``?`` parameter."""

    index: int

    def eval(self, row, params):
        if self.index >= len(params):
            raise MetaDBError(
                f"statement needs parameter #{self.index + 1}, "
                f"got only {len(params)}"
            )
        return params[self.index]


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A column reference."""

    name: str

    def eval(self, row, params):
        try:
            return row[self.name]
        except KeyError:
            raise MetaDBError(f"unknown column {self.name!r}") from None


_COMPARATORS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Compare(Expr):
    """Binary comparison; NULL on either side yields False."""

    op: str
    left: Expr
    right: Expr

    def eval(self, row, params):
        a = self.left.eval(row, params)
        b = self.right.eval(row, params)
        if a is None or b is None:
            return False
        try:
            return _COMPARATORS[self.op](a, b)
        except TypeError:
            raise MetaDBError(
                f"cannot compare {a!r} {self.op} {b!r}"
            ) from None


@dataclass(frozen=True)
class BoolOp(Expr):
    """AND / OR over two or more operands (short-circuiting)."""

    op: str  # "AND" | "OR"
    operands: tuple

    def eval(self, row, params):
        if self.op == "AND":
            return all(bool(o.eval(row, params)) for o in self.operands)
        return any(bool(o.eval(row, params)) for o in self.operands)


@dataclass(frozen=True)
class Not(Expr):
    """Logical negation."""

    operand: Expr

    def eval(self, row, params):
        return not bool(self.operand.eval(row, params))


@dataclass(frozen=True)
class IsNull(Expr):
    """``col IS NULL`` / ``col IS NOT NULL``."""

    operand: Expr
    negated: bool = False

    def eval(self, row, params):
        result = self.operand.eval(row, params) is None
        return not result if self.negated else result
