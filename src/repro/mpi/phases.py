"""Per-rank phase timing in virtual time.

The paper reports stacked costs ("index distri." vs "import" in Figure 5);
:class:`PhaseTimer` is how application code attributes virtual time to those
named phases::

    with ctx.phase("index_distri"):
        ...ring distribution...
    with ctx.phase("import"):
        ...collective reads...

Nested phases are allowed; time is charged to every open phase (the outer
phase's total includes the inner's, as a wall-clock profiler would report).
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, Iterator

from repro.simt.process import Process

__all__ = ["PhaseTimer"]


class PhaseTimer:
    """Accumulates virtual-time totals under named phases for one rank."""

    def __init__(self, proc: Process) -> None:
        self.proc = proc
        self.totals: "OrderedDict[str, float]" = OrderedDict()
        self.counts: Dict[str, int] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Attribute virtual time spent in the body to ``name``."""
        start = self.proc.now
        try:
            yield
        finally:
            elapsed = self.proc.now - start
            self.totals[name] = self.totals.get(name, 0.0) + elapsed
            self.counts[name] = self.counts.get(name, 0) + 1

    def total(self, name: str) -> float:
        """Accumulated virtual seconds in ``name`` (0 if never entered)."""
        return self.totals.get(name, 0.0)

    def as_dict(self) -> Dict[str, float]:
        """Snapshot of all phase totals."""
        return dict(self.totals)
