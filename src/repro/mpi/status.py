"""Receive-status objects (source / tag / size of the matched message)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class Status:
    """Outcome of a receive, analogous to ``MPI_Status``.

    Attributes
    ----------
    source:
        Rank the matched message came from.
    tag:
        Tag of the matched message.
    nbytes:
        Modelled on-wire size of the message payload.
    """

    source: int = -1
    tag: int = -1
    nbytes: int = 0
