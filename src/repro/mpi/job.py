"""SPMD job launcher: run a rank function on P simulated processes.

:func:`mpirun` is the simulated analogue of ``mpiexec -n P python app.py``:
it builds a fresh :class:`~repro.simt.Simulator`, a shared
:class:`~repro.mpi.transport.Transport`, optional shared *services* (the
parallel file system, the metadata database — anything all ranks must see),
then spawns ``nprocs`` rank processes and runs to completion.

The rank function receives a :class:`RankContext` and may return a value;
returns, phase timings, and the final virtual clock come back in a
:class:`JobResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.analysis.verifier import SPMDVerifier, spmd_verify_enabled
from repro.config import MachineModel, origin2000
from repro.errors import SimParticipantLost
from repro.mpi.communicator import Communicator
from repro.mpi.phases import PhaseTimer
from repro.mpi.transport import Transport
from repro.simt.simulator import FaultPlan, Simulator
from repro.simt.trace import Trace

__all__ = ["RankContext", "JobResult", "mpirun"]

ServicesFactory = Callable[[Simulator, MachineModel], Dict[str, Any]]


@dataclass
class RankContext:
    """Everything one simulated rank needs: identity, MPI, services, timing."""

    rank: int
    size: int
    comm: Communicator
    proc: Any
    machine: MachineModel
    services: Dict[str, Any]
    timer: PhaseTimer

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.proc.now

    def phase(self, name: str):
        """Context manager charging the body's virtual time to ``name``."""
        return self.timer.phase(name)

    def service(self, name: str) -> Any:
        """Look up a shared service (e.g. ``"fs"``, ``"db"``) by name."""
        return self.services[name]


@dataclass
class JobResult:
    """Outcome of an :func:`mpirun` job."""

    nprocs: int
    machine: MachineModel
    values: List[Any]
    elapsed: float
    phase_totals: List[Dict[str, float]]
    services: Dict[str, Any]
    sim: Simulator = field(repr=False, default=None)
    crashed: List[str] = field(default_factory=list)
    """Names of processes killed by the job's :class:`FaultPlan` (empty for
    fault-free runs).  Crashed ranks have ``values[r] is None``."""
    fault_log: List[Any] = field(default_factory=list)
    """Every fault-point hit recorded while a plan was installed:
    ``(process name, point, nth)`` — replayable as crash schedules."""

    def phase_max(self, name: str) -> float:
        """Max-over-ranks total for a phase — the cost on the critical path
        (what the paper's stacked bars report)."""
        return max((p.get(name, 0.0) for p in self.phase_totals), default=0.0)

    def phase_mean(self, name: str) -> float:
        """Mean-over-ranks total for a phase."""
        if not self.phase_totals:
            return 0.0
        return sum(p.get(name, 0.0) for p in self.phase_totals) / len(self.phase_totals)

    def phase_names(self) -> List[str]:
        """All phase names observed, in first-use order across ranks."""
        seen: List[str] = []
        for totals in self.phase_totals:
            for name in totals:
                if name not in seen:
                    seen.append(name)
        return seen


def mpirun(
    fn: Callable[[RankContext], Any],
    nprocs: int,
    machine: Optional[MachineModel] = None,
    services: Optional[ServicesFactory] = None,
    trace: bool = False,
    fault_plan: Optional[FaultPlan] = None,
) -> JobResult:
    """Run ``fn(ctx)`` as an SPMD program on ``nprocs`` simulated ranks.

    Parameters
    ----------
    fn:
        The rank program.  Runs once per rank; its return value is collected.
    nprocs:
        Number of ranks.
    machine:
        Cost model (defaults to :func:`repro.config.origin2000`).
    services:
        Optional factory called once as ``services(sim, machine)`` before
        ranks start; the returned dict is visible to every rank through
        :meth:`RankContext.service`.
    trace:
        Enable the simulator's trace log.
    fault_plan:
        Optional :class:`~repro.simt.simulator.FaultPlan` installing a
        crash schedule.  With a plan installed the job is *crash
        tolerant*: a rank killed at a fault point does not abort the
        job — the run ends when the survivors finish or stall on the
        dead rank, and the result reports :attr:`JobResult.crashed` and
        the full :attr:`JobResult.fault_log` instead of raising.

    Raises
    ------
    repro.errors.SimProcessCrashed
        If any rank raised; the original exception is chained.
    repro.errors.SPMDVerificationError
        With ``SPMD_VERIFY=1`` in the environment: if the per-context
        collective sequences the ranks issued do not match at job end.
        (Mid-job signature mismatches are raised inside the offending
        rank and so surface chained under ``SimProcessCrashed``.)
    """
    if nprocs < 1:
        raise ValueError(f"nprocs must be >= 1, got {nprocs}")
    machine = machine if machine is not None else origin2000()
    verify = spmd_verify_enabled()
    # The verifier files its signatures through the trace, so turning
    # verification on implies recording (the records are what the
    # trace -> finding pretty-printer and the deadlock report consume).
    sim = Simulator(trace=Trace(enabled=trace or verify))
    transport = Transport(sim, machine, nprocs)
    if verify:
        transport.verifier = SPMDVerifier(nprocs, trace=sim.trace)
        sim.deadlock_reporters.append(transport.verifier.deadlock_report)
    shared: Dict[str, Any] = services(sim, machine) if services is not None else {}

    contexts: List[Optional[RankContext]] = [None] * nprocs

    def rank_main(proc, r: int):
        comm = Communicator(transport, r, proc)
        ctx = RankContext(
            rank=r,
            size=nprocs,
            comm=comm,
            proc=proc,
            machine=machine,
            services=shared,
            timer=PhaseTimer(proc),
        )
        contexts[r] = ctx
        return fn(ctx)

    sim.fault_plan = fault_plan
    procs = [sim.spawn(rank_main, r, name=f"rank{r}") for r in range(nprocs)]
    try:
        elapsed = sim.run()
    except SimParticipantLost:
        if fault_plan is None:  # pragma: no cover - defensive
            raise
        # Survivors stalled on a fault-killed rank: an expected outcome
        # under an installed plan, not a job failure.  The job ends at
        # the stall time; recovery happens in a follow-on job seeded
        # from this one's services.
        elapsed = sim.now
    crashed = [p.name for p in sim._procs if p.crashed]
    if transport.verifier is not None and not crashed:
        # Crashed ranks leave open collective sites and shorter
        # per-context sequences by construction; the sanitizer's
        # end-of-job uniformity check only makes sense fault-free.
        transport.verifier.final_check()
    return JobResult(
        nprocs=nprocs,
        machine=machine,
        values=[p.result for p in procs],
        elapsed=elapsed,
        phase_totals=[
            (contexts[r].timer.as_dict() if contexts[r] is not None else {})
            for r in range(nprocs)
        ],
        services=shared,
        sim=sim,
        crashed=crashed,
        fault_log=list(sim.fault_log),
    )
