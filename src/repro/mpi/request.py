"""Nonblocking communication requests.

A :class:`Request` wraps a :class:`~repro.simt.primitives.SimEvent` that
fires when the operation completes.  For receives, the event value is the
``(payload, Status)`` pair; for sends it is ``None``.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from repro.simt.primitives import SimEvent
from repro.simt.process import Process

__all__ = ["Request"]


class Request:
    """Handle for an in-flight nonblocking send or receive."""

    def __init__(self, event: SimEvent, kind: str) -> None:
        self._event = event
        self.kind = kind

    @property
    def done(self) -> bool:
        """True once the operation has completed (no time is charged)."""
        return self._event.is_set

    def _unwrap(self, value: Any) -> Any:
        # Receive completions carry (payload, Status); expose the payload,
        # matching mpi4py's Request.wait() convention.
        if self.kind == "irecv" and isinstance(value, tuple) and len(value) == 2:
            return value[0]
        return value

    def test(self) -> Tuple[bool, Any]:
        """Nonblocking completion check: ``(done, value-or-None)``."""
        if self._event.is_set:
            return True, self._unwrap(self._event.value)
        return False, None

    def wait(self, proc: Process) -> Any:
        """Block the calling process until completion; returns the payload
        for receive requests and ``None`` for send requests."""
        return self._unwrap(self._event.wait(proc))

    @staticmethod
    def waitall(proc: Process, requests: list["Request"]) -> list[Any]:
        """Wait for every request; returns their values in order."""
        return [r.wait(proc) for r in requests]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else "pending"
        return f"<Request {self.kind} {state}>"
