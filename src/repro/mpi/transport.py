"""The message-matching engine shared by all ranks of a job.

One :class:`Transport` exists per simulated MPI world.  It owns:

* a mailbox per destination rank — a list of *arrived* messages plus a list
  of *posted* (blocked) receives, matched in MPI order: a receive matches the
  earliest arrived message whose ``(source, tag)`` fits, wildcards allowed;
* per ``(source, destination)`` FIFO enforcement — delivery times are clamped
  to be monotone per pair, so a small message injected after a large one
  cannot overtake it (MPI's non-overtaking rule);
* the rendezvous *sites* used by the collective algorithms
  (see :mod:`repro.mpi.collectives`);
* traffic counters — messages and payload bytes per point-to-point send and
  per collective op.  They let tests *prove* communication properties (e.g.
  that a chunked checkpoint write ships no data through ``alltoallv``, the
  op two-phase I/O exchanges file data with) instead of inferring them from
  timings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.config import MachineModel
from repro.errors import MPIInvalidRank
from repro.mpi.constants import ANY_SOURCE, ANY_TAG
from repro.mpi.status import Status
from repro.simt.primitives import SimEvent
from repro.simt.process import Process
from repro.simt.simulator import Simulator

__all__ = ["Transport", "Message"]


@dataclass
class Message:
    """An arrived point-to-point message waiting to be matched.

    ``source`` is the sender's rank *within its communicator*; ``ctx`` is
    the communicator context id, so split/dup'd communicators cannot match
    each other's traffic (MPI's communicator isolation).
    """

    source: int
    tag: int
    payload: Any
    nbytes: int
    ctx: Any = 0


@dataclass
class _PostedRecv:
    """A posted receive waiting for a matching arrival.

    Exactly one of ``proc`` (blocking receive) or ``event`` (nonblocking
    receive) is set; arrival either resumes the process or fires the event.
    """

    source: int
    tag: int
    proc: Optional[Process] = None
    event: Optional[SimEvent] = None
    ctx: Any = 0


@dataclass
class _Mailbox:
    arrived: List[Message] = field(default_factory=list)
    posted: List[_PostedRecv] = field(default_factory=list)


def _matches(msg: Message, source: int, tag: int, ctx: Any) -> bool:
    return (
        msg.ctx == ctx
        and (source == ANY_SOURCE or msg.source == source)
        and (tag == ANY_TAG or msg.tag == tag)
    )


class Transport:
    """Shared state of one simulated MPI world."""

    def __init__(self, sim: Simulator, machine: MachineModel, size: int) -> None:
        if size < 1:
            raise ValueError(f"world size must be >= 1, got {size}")
        self.sim = sim
        self.machine = machine
        self.size = size
        self._mailboxes: Dict[int, _Mailbox] = {r: _Mailbox() for r in range(size)}
        # Monotone delivery clock per (src, dst) pair for non-overtaking.
        self._pair_clock: Dict[Tuple[int, int], float] = {}
        # Collective rendezvous sites keyed by op sequence number.
        self._sites: Dict[int, Any] = {}
        self.n_p2p_messages = 0
        """Point-to-point messages injected."""
        self.p2p_bytes = 0
        """Payload bytes across all point-to-point messages."""
        self.coll_counts: Dict[str, int] = {}
        """Completed collective calls per op name."""
        self.coll_bytes: Dict[str, int] = {}
        """Total payload bytes contributed to collectives, per op name."""
        self.verifier: Optional[Any] = None
        """The ``SPMD_VERIFY`` sanitizer (an
        :class:`repro.analysis.verifier.SPMDVerifier`), or None.  When
        None — the default — collectives pay exactly one attribute test
        and nothing is recorded."""

    def stats(self, reset: bool = False) -> Dict[str, Any]:
        """Snapshot the traffic counters; optionally zero them.

        Mirrors :meth:`repro.pfs.filesystem.FileSystem.stats` so bench
        counter windows are one call per service instead of a hand-kept
        list of fields.  The collective dicts are copied — mutating the
        snapshot never touches the live counters.
        """
        snap: Dict[str, Any] = {
            "n_p2p_messages": self.n_p2p_messages,
            "p2p_bytes": self.p2p_bytes,
            "coll_counts": dict(self.coll_counts),
            "coll_bytes": dict(self.coll_bytes),
        }
        if reset:
            self.n_p2p_messages = 0
            self.p2p_bytes = 0
            self.coll_counts = {}
            self.coll_bytes = {}
        return snap

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------

    def check_rank(self, rank: int, *, wildcard_ok: bool = False) -> None:
        """Validate a rank argument."""
        if wildcard_ok and rank == ANY_SOURCE:
            return
        if not (0 <= rank < self.size):
            raise MPIInvalidRank(f"rank {rank} outside [0, {self.size})")

    def transfer_time(self, nbytes: int) -> float:
        """Modelled time for one message of ``nbytes`` on the wire."""
        return self.machine.network.transfer_time(nbytes)

    def inject(
        self,
        source: int,
        dest: int,
        payload: Any,
        tag: int,
        nbytes: int,
        completion: Optional[SimEvent] = None,
        ctx: Any = 0,
    ) -> float:
        """Put a message in flight; returns its delivery (virtual) time.

        Delivery time is ``now + latency + nbytes/bandwidth``, clamped to be
        monotone per (source, dest) pair.  ``completion`` (if given) is set at
        delivery time — used to complete nonblocking send requests.
        """
        now = self.sim.now
        arrive = now + self.transfer_time(nbytes)
        key = (ctx, source, dest)
        floor = self._pair_clock.get(key, 0.0)
        if arrive < floor:
            arrive = floor
        self._pair_clock[key] = arrive
        self.n_p2p_messages += 1
        self.p2p_bytes += int(nbytes)
        msg = Message(source=source, tag=tag, payload=payload, nbytes=nbytes, ctx=ctx)

        def deliver() -> None:
            self._deposit(dest, msg)
            if completion is not None:
                completion.set(None)

        self.sim.call_at(arrive, deliver)
        return arrive

    def _deposit(self, dest: int, msg: Message) -> None:
        box = self._mailboxes[dest]
        for i, pr in enumerate(box.posted):
            if _matches(msg, pr.source, pr.tag, pr.ctx):
                box.posted.pop(i)
                status = Status(source=msg.source, tag=msg.tag, nbytes=msg.nbytes)
                if pr.event is not None:
                    pr.event.set((msg.payload, status))
                else:
                    self.sim.schedule_resume(pr.proc, value=(msg.payload, status))
                return
        box.arrived.append(msg)

    def post_event_recv(
        self, dest: int, source: int, tag: int, event: SimEvent, ctx: Any = 0
    ) -> None:
        """Post a nonblocking receive completing ``event`` on match.

        If a matching message has already arrived it is consumed immediately.
        """
        box = self._mailboxes[dest]
        for i, msg in enumerate(box.arrived):
            if _matches(msg, source, tag, ctx):
                box.arrived.pop(i)
                event.set((msg.payload, Status(msg.source, msg.tag, msg.nbytes)))
                return
        box.posted.append(_PostedRecv(source=source, tag=tag, event=event, ctx=ctx))

    def match_or_post(
        self, proc: Process, dest: int, source: int, tag: int, ctx: Any = 0
    ) -> Tuple[Any, Status]:
        """Blocking-receive core: match an arrived message or park."""
        box = self._mailboxes[dest]
        for i, msg in enumerate(box.arrived):
            if _matches(msg, source, tag, ctx):
                box.arrived.pop(i)
                return msg.payload, Status(msg.source, msg.tag, msg.nbytes)
        box.posted.append(_PostedRecv(source=source, tag=tag, proc=proc, ctx=ctx))
        payload, status = proc.park(
            reason=f"recv(src={source},tag={tag})@{dest}"
        )
        return payload, status

    def probe(
        self, dest: int, source: int, tag: int, ctx: Any = 0
    ) -> Optional[Status]:
        """Nonblocking probe of rank ``dest``'s mailbox."""
        box = self._mailboxes[dest]
        for msg in box.arrived:
            if _matches(msg, source, tag, ctx):
                return Status(msg.source, msg.tag, msg.nbytes)
        return None

    def record_collective(self, op: str, nbytes: int) -> None:
        """Count one completed collective and its total payload bytes."""
        self.coll_counts[op] = self.coll_counts.get(op, 0) + 1
        self.coll_bytes[op] = self.coll_bytes.get(op, 0) + int(nbytes)

    # ------------------------------------------------------------------
    # Collective rendezvous sites
    # ------------------------------------------------------------------

    def site(self, seq: int, factory) -> Any:
        """Get or create the rendezvous site for collective call ``seq``."""
        site = self._sites.get(seq)
        if site is None:
            site = factory()
            self._sites[seq] = site
        return site

    def drop_site(self, seq: int) -> None:
        """Free a completed collective's site."""
        self._sites.pop(seq, None)
