"""Wildcard and sentinel rank constants (mirroring MPI's)."""

from __future__ import annotations

ANY_SOURCE: int = -1
"""Match a message from any source rank."""

ANY_TAG: int = -1
"""Match a message with any tag."""

PROC_NULL: int = -2
"""Null process: sends/recvs to it complete immediately and move no data."""
