"""Estimating the on-wire size of message payloads.

The simulation needs a byte count for every message to charge transfer time.
NumPy arrays report exactly; other Python objects get a cheap structural
estimate (we deliberately avoid pickling large object graphs on the hot
path — the estimate only needs to be the right order of magnitude, since
metadata messages are latency-dominated anyway).
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = ["payload_nbytes"]

_SCALAR_BYTES = 8
_CONTAINER_OVERHEAD = 16


def payload_nbytes(obj: Any) -> int:
    """Best-effort on-wire byte size of ``obj``.

    Exact for numpy arrays, bytes, and str; structural estimate for
    containers; 8 bytes for scalars and None.
    """
    if obj is None:
        return _SCALAR_BYTES
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode("utf-8", errors="replace"))
    if isinstance(obj, (bool, int, float, complex, np.generic)):
        return _SCALAR_BYTES
    if isinstance(obj, (list, tuple, set, frozenset)):
        return _CONTAINER_OVERHEAD + sum(payload_nbytes(x) for x in obj)
    if isinstance(obj, dict):
        return _CONTAINER_OVERHEAD + sum(
            payload_nbytes(k) + payload_nbytes(v) for k, v in obj.items()
        )
    # Dataclass-like/arbitrary object: estimate from its attribute dict.
    attrs = getattr(obj, "__dict__", None)
    if attrs:
        return _CONTAINER_OVERHEAD + payload_nbytes(attrs)
    return 64
