"""Simulated MPI over the :mod:`repro.simt` kernel.

This package provides the message-passing substrate SDM is written against.
It follows mpi4py's conventions where they matter to the paper:

* **Point-to-point** — :meth:`Communicator.send` / :meth:`recv` /
  :meth:`isend` / :meth:`irecv` / :meth:`sendrecv` with tags,
  ``ANY_SOURCE`` / ``ANY_TAG`` wildcards, and MPI's per-(source, destination)
  non-overtaking guarantee.  Payloads are arbitrary Python objects (numpy
  arrays travel by reference — the simulation charges transfer time for
  their ``nbytes`` but does not copy them).
* **Collectives** — barrier, bcast, reduce, allreduce, gather, allgather,
  scatter, alltoall(v).  Data movement is real; completion *times* follow the
  standard algorithms (dissemination barrier, binomial trees, recursive
  doubling, pairwise exchange) computed analytically so a 64-rank alltoallv
  costs O(P) simulator events instead of O(P²) thread handoffs.
* **Jobs** — :func:`mpirun` launches an SPMD function on ``nprocs`` simulated
  ranks, wiring up shared services (file system, metadata DB) and per-rank
  phase timers, and returns per-rank results plus timing breakdowns.

Example::

    from repro.mpi import mpirun

    def program(ctx):
        data = ctx.comm.bcast([1, 2, 3] if ctx.rank == 0 else None, root=0)
        return sum(data) * ctx.rank

    job = mpirun(program, nprocs=4)
    assert job.values == [0, 6, 12, 18]
"""

from repro.mpi.constants import ANY_SOURCE, ANY_TAG, PROC_NULL
from repro.mpi.status import Status
from repro.mpi.request import Request
from repro.mpi.communicator import Communicator
from repro.mpi.ops import MAX, MIN, PROD, SUM
from repro.mpi.phases import PhaseTimer
from repro.mpi.job import JobResult, RankContext, mpirun

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "PROC_NULL",
    "Status",
    "Request",
    "Communicator",
    "SUM",
    "MAX",
    "MIN",
    "PROD",
    "PhaseTimer",
    "RankContext",
    "JobResult",
    "mpirun",
]
