"""Collective algorithms: real data movement, modelled completion times.

Each collective is executed as a **rendezvous**: every rank deposits its
contribution at a per-call site; the last rank to arrive computes all
results and completion times and wakes everyone.  Data movement is therefore
exact (the values each rank receives are precisely what MPI semantics
dictate), while the *time* each rank completes at follows the textbook
algorithm the real implementation would use:

==============  =====================================  ========================
collective      algorithm modelled                      completion cost
==============  =====================================  ========================
barrier         dissemination                           ``L·α``
bcast           binomial tree                           ``L·(α + n/β)``
reduce          binomial tree (reversed)                ``L·(α + n/β + γ·n)``
allreduce       recursive doubling                      ``L·(α + n/β + γ·n)``
gather          binomial tree                           ``L·α + Σ n_r/β``
allgather       gather + bcast of concatenation         sum of the two
scatter         binomial tree                           ``L·α + Σ n_r/β``
alltoallv       pairwise exchange, P−1 rounds           ``Σ_s (α + max_i n_{i,i⊕s}/β)``
scan            recursive doubling                      ``L·(α + n/β + γ·n)``
==============  =====================================  ========================

with ``L = ⌈log₂ P⌉``, ``α`` latency, ``β`` bandwidth, ``γ`` per-element
reduction cost, and all times measured from the *last* rank's arrival (a
collective cannot finish before everyone shows up).

This costs O(P) simulator events per collective instead of the O(P log P) to
O(P²) thread handoffs a message-by-message implementation would need — the
difference between benchmarks that run in seconds and in hours.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Tuple

import numpy as np

from repro.config import MachineModel
from repro.errors import MPICollectiveMismatch
from repro.mpi.nbytes import payload_nbytes
from repro.mpi.ops import ReduceOp
from repro.simt.process import Process

__all__ = ["CollectiveSite", "COMPUTE_FNS"]

Results = Dict[int, Any]
Completions = Dict[int, float]
ComputeFn = Callable[["CollectiveSite", MachineModel, int], Tuple[Results, Completions]]


@dataclass
class _Entry:
    proc: Process
    payload: Any
    nbytes: int
    arrive: float


class CollectiveSite:
    """Per-call rendezvous state for one collective operation."""

    def __init__(self, op: str, size: int) -> None:
        self.op = op
        self.size = size
        self.entries: Dict[int, _Entry] = {}
        self.root: int | None = None
        self.reduce_op: ReduceOp | None = None

    def deposit(self, rank: int, proc: Process, payload: Any, now: float) -> None:
        """Record rank's contribution; payload size is measured once here."""
        if rank in self.entries:
            raise MPICollectiveMismatch(
                f"rank {rank} entered collective {self.op!r} twice"
            )
        self.entries[rank] = _Entry(proc, payload, payload_nbytes(payload), now)

    @property
    def complete(self) -> bool:
        return len(self.entries) == self.size

    def last_arrival(self) -> float:
        return max(e.arrive for e in self.entries.values())


def _log2ceil(p: int) -> int:
    return int(math.ceil(math.log2(p))) if p > 1 else 0


def _uniform(site: CollectiveSite, t: float, value_of) -> Tuple[Results, Completions]:
    results = {r: value_of(r) for r in site.entries}
    completions = {r: max(t, site.entries[r].arrive) for r in site.entries}
    return results, completions


# ---------------------------------------------------------------------------
# Individual collectives
# ---------------------------------------------------------------------------

def _barrier(site: CollectiveSite, m: MachineModel, size: int):
    t = site.last_arrival() + _log2ceil(size) * m.network.latency
    return _uniform(site, t, lambda r: None)


def _bcast(site: CollectiveSite, m: MachineModel, size: int):
    root = site.root or 0
    n = site.entries[root].nbytes
    depth = _log2ceil(size)
    t = site.last_arrival() + depth * m.network.transfer_time(n)
    payload = site.entries[root].payload
    return _uniform(site, t, lambda r: payload)


def _fold(site: CollectiveSite, upto: int | None = None) -> Any:
    """Deterministic left fold of payloads in rank order."""
    op = site.reduce_op
    acc = None
    for r in sorted(site.entries):
        if upto is not None and r > upto:
            break
        v = site.entries[r].payload
        acc = v if acc is None else op(acc, v)
    return acc


def _reduce_cost(m: MachineModel, n: int, size: int) -> float:
    depth = _log2ceil(size)
    per_hop = m.network.transfer_time(n) + m.compute.elements(max(n // 8, 1))
    return depth * per_hop


def _reduce(site: CollectiveSite, m: MachineModel, size: int):
    root = site.root or 0
    n = max(e.nbytes for e in site.entries.values())
    t = site.last_arrival() + _reduce_cost(m, n, size)
    total = _fold(site)
    return _uniform(site, t, lambda r: total if r == root else None)


def _allreduce(site: CollectiveSite, m: MachineModel, size: int):
    n = max(e.nbytes for e in site.entries.values())
    t = site.last_arrival() + _reduce_cost(m, n, size)
    total = _fold(site)
    return _uniform(site, t, lambda r: total)


def _scan(site: CollectiveSite, m: MachineModel, size: int):
    n = max(e.nbytes for e in site.entries.values())
    t = site.last_arrival() + _reduce_cost(m, n, size)
    prefix = {r: _fold(site, upto=r) for r in site.entries}
    return _uniform(site, t, lambda r: prefix[r])


def _exscan(site: CollectiveSite, m: MachineModel, size: int):
    n = max(e.nbytes for e in site.entries.values())
    t = site.last_arrival() + _reduce_cost(m, n, size)
    prefix = {
        r: (None if r == 0 else _fold(site, upto=r - 1))
        for r in site.entries
    }
    return _uniform(site, t, lambda r: prefix[r])


def _gather(site: CollectiveSite, m: MachineModel, size: int):
    root = site.root or 0
    other_bytes = sum(e.nbytes for r, e in site.entries.items() if r != root)
    t = (
        site.last_arrival()
        + _log2ceil(size) * m.network.latency
        + other_bytes / m.network.bandwidth
    )
    ordered = [site.entries[r].payload for r in range(size)]
    return _uniform(site, t, lambda r: ordered if r == root else None)


def _allgather(site: CollectiveSite, m: MachineModel, size: int):
    total = sum(e.nbytes for e in site.entries.values())
    depth = _log2ceil(size)
    t_gather = depth * m.network.latency + total / m.network.bandwidth
    t_bcast = depth * m.network.transfer_time(total)
    t = site.last_arrival() + t_gather + t_bcast
    ordered = [site.entries[r].payload for r in range(size)]
    return _uniform(site, t, lambda r: ordered)


def _scatter(site: CollectiveSite, m: MachineModel, size: int):
    root = site.root or 0
    chunks = site.entries[root].payload
    if chunks is None or len(chunks) != size:
        raise MPICollectiveMismatch(
            f"scatter root payload must be a sequence of length {size}"
        )
    total = sum(payload_nbytes(c) for c in chunks)
    t = (
        site.last_arrival()
        + _log2ceil(size) * m.network.latency
        + total / m.network.bandwidth
    )
    return _uniform(site, t, lambda r: chunks[r])


def _alltoallv(site: CollectiveSite, m: MachineModel, size: int):
    # Validate shapes and build the P x P byte matrix.
    for r, e in site.entries.items():
        if e.payload is None or len(e.payload) != size:
            raise MPICollectiveMismatch(
                f"alltoallv rank {r} payload must be a sequence of length {size}"
            )
    bmat = np.zeros((size, size), dtype=np.float64)
    for src, e in site.entries.items():
        for dst, obj in enumerate(e.payload):
            bmat[src, dst] = payload_nbytes(obj)
    # Pairwise-exchange rounds: in round s each rank i exchanges with (i+s)%P.
    alpha, beta = m.network.latency, m.network.bandwidth
    idx = np.arange(size)
    duration = 0.0
    for s in range(1, size):
        round_bytes = bmat[idx, (idx + s) % size].max() if size > 1 else 0.0
        duration += alpha + round_bytes / beta
    t = site.last_arrival() + duration
    recv = {
        r: [site.entries[src].payload[r] for src in range(size)]
        for r in site.entries
    }
    return _uniform(site, t, lambda r: recv[r])


COMPUTE_FNS: Dict[str, ComputeFn] = {
    "barrier": _barrier,
    "bcast": _bcast,
    "reduce": _reduce,
    "allreduce": _allreduce,
    "scan": _scan,
    "exscan": _exscan,
    "gather": _gather,
    "allgather": _allgather,
    "scatter": _scatter,
    "alltoallv": _alltoallv,
}
