"""Reduction operators for reduce/allreduce/scan.

Each op is a binary callable working on scalars, numpy arrays, or anything
supporting the underlying operator.  Arrays are combined elementwise without
copies where numpy allows.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

__all__ = ["SUM", "MAX", "MIN", "PROD", "ReduceOp"]

ReduceOp = Callable[[Any, Any], Any]


def SUM(a: Any, b: Any) -> Any:
    """Elementwise / scalar addition."""
    return np.add(a, b) if isinstance(a, np.ndarray) or isinstance(b, np.ndarray) else a + b


def MAX(a: Any, b: Any) -> Any:
    """Elementwise / scalar maximum."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.maximum(a, b)
    return a if a >= b else b


def MIN(a: Any, b: Any) -> Any:
    """Elementwise / scalar minimum."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.minimum(a, b)
    return a if a <= b else b


def PROD(a: Any, b: Any) -> Any:
    """Elementwise / scalar product."""
    return np.multiply(a, b) if isinstance(a, np.ndarray) or isinstance(b, np.ndarray) else a * b
