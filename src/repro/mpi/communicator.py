"""Per-rank communicator facade: point-to-point and collective operations.

Each simulated rank holds its own :class:`Communicator` bound to the shared
:class:`~repro.mpi.transport.Transport`.  Semantics follow MPI/mpi4py's
pickle-object layer: objects in, objects out, sizes inferred for timing.

Blocking sends model eager-protocol behaviour: the sender is charged the
full injection time (``latency + nbytes/bandwidth``) and the message lands in
the destination mailbox at that completion time.  ``isend`` charges the
sender nothing (NIC offload) but the request completes — and the data
arrives — at the same modelled time, with per-(src, dst) FIFO enforced.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.analysis.verifier import call_site, payload_signature
from repro.errors import MPICollectiveMismatch, MPIInvalidRank
from repro.mpi.collectives import COMPUTE_FNS, CollectiveSite
from repro.mpi.constants import ANY_SOURCE, ANY_TAG, PROC_NULL
from repro.mpi.nbytes import payload_nbytes
from repro.mpi.ops import SUM, ReduceOp
from repro.mpi.request import Request
from repro.mpi.status import Status
from repro.mpi.transport import Transport
from repro.simt.primitives import SimEvent
from repro.simt.process import Crashed, Process
from repro.simt.trace import CollectiveSignature

__all__ = ["Communicator"]


class Communicator:
    """One rank's handle on a communicator (the world, or a split/dup).

    ``group`` (when given) lists the member *world* ranks in group order;
    ``rank`` is then this process's index within the group.  All traffic is
    tagged with ``ctx_id``, so communicators are fully isolated from each
    other, as MPI requires.
    """

    def __init__(
        self,
        transport: Transport,
        rank: int,
        proc: Process,
        ctx_id: Any = 0,
        group: Optional[List[int]] = None,
    ) -> None:
        if group is None:
            transport.check_rank(rank)
        else:
            if not (0 <= rank < len(group)):
                raise MPIInvalidRank(
                    f"group rank {rank} outside [0, {len(group)})"
                )
        self.transport = transport
        self._rank = rank
        self.proc = proc
        self.ctx_id = ctx_id
        self._group = list(group) if group is not None else None
        self._op_seq = 0
        self._derive_seq = 0

    def _world(self, rank: int) -> int:
        """Translate a communicator rank to a world (mailbox) rank."""
        return rank if self._group is None else self._group[rank]

    def _check_rank(self, rank: int, *, wildcard_ok: bool = False) -> None:
        from repro.mpi.constants import ANY_SOURCE as _ANY

        if wildcard_ok and rank == _ANY:
            return
        if not (0 <= rank < self.size):
            raise MPIInvalidRank(f"rank {rank} outside [0, {self.size})")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def rank(self) -> int:
        """This process's rank in ``[0, size)``."""
        return self._rank

    @property
    def size(self) -> int:
        """Number of ranks in this communicator."""
        return len(self._group) if self._group is not None else self.transport.size

    @property
    def now(self) -> float:
        """Current virtual time (convenience passthrough)."""
        return self.proc.now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Communicator rank={self._rank}/{self.size}>"

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Blocking standard-mode send."""
        if dest == PROC_NULL:
            return
        self._check_rank(dest)
        nbytes = payload_nbytes(obj)
        self.transport.inject(
            self._rank, self._world(dest), obj, tag, nbytes, ctx=self.ctx_id
        )
        self.proc.hold(self.transport.transfer_time(nbytes))

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Nonblocking send; the request completes at delivery time."""
        event = SimEvent(self.proc.sim, name=f"isend->{dest}")
        if dest == PROC_NULL:
            event.set(None)
            return Request(event, "isend")
        self._check_rank(dest)
        nbytes = payload_nbytes(obj)
        self.transport.inject(
            self._rank, self._world(dest), obj, tag, nbytes,
            completion=event, ctx=self.ctx_id,
        )
        return Request(event, "isend")

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        status: Optional[Status] = None,
    ) -> Any:
        """Blocking receive; wildcards allowed for source and tag."""
        if source == PROC_NULL:
            if status is not None:
                status.source, status.tag, status.nbytes = PROC_NULL, tag, 0
            return None
        self._check_rank(source, wildcard_ok=True)
        payload, st = self.transport.match_or_post(
            self.proc, self._world(self._rank), source, tag, ctx=self.ctx_id
        )
        if status is not None:
            status.source, status.tag, status.nbytes = st.source, st.tag, st.nbytes
        return payload

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Nonblocking receive; ``Request.wait`` returns the payload."""
        event = SimEvent(self.proc.sim, name=f"irecv<-{source}")
        if source == PROC_NULL:
            event.set(None)
            return Request(event, "irecv")
        self._check_rank(source, wildcard_ok=True)
        self.transport.post_event_recv(
            self._world(self._rank), source, tag, event, ctx=self.ctx_id
        )
        return Request(event, "irecv")

    def sendrecv(
        self,
        obj: Any,
        dest: int,
        source: int = ANY_SOURCE,
        sendtag: int = 0,
        recvtag: int = ANY_TAG,
        status: Optional[Status] = None,
    ) -> Any:
        """Simultaneous send and receive (deadlock-free ring building block)."""
        req = self.isend(obj, dest, tag=sendtag)
        got = self.recv(source=source, tag=recvtag, status=status)
        req.wait(self.proc)
        return got

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Optional[Status]:
        """Nonblocking probe: Status if a matching message has arrived."""
        return self.transport.probe(
            self._world(self._rank), source, tag, ctx=self.ctx_id
        )

    def ring_shift(self, obj: Any, displacement: int = 1, tag: int = 0) -> Any:
        """Pass ``obj`` to rank ``(rank+displacement) % size`` and receive from
        ``(rank-displacement) % size`` — the paper's ring-oriented exchange."""
        if self.size == 1:
            return obj
        dest = (self._rank + displacement) % self.size
        source = (self._rank - displacement) % self.size
        return self.sendrecv(obj, dest=dest, source=source, sendtag=tag, recvtag=tag)

    # ------------------------------------------------------------------
    # Collectives (rendezvous execution, modelled algorithm costs)
    # ------------------------------------------------------------------

    def _rendezvous(
        self,
        op: str,
        payload: Any,
        root: Optional[int] = None,
        reduce_op: Optional[ReduceOp] = None,
    ) -> Any:
        if getattr(self.proc, "crashed", False):
            # Cleanup code unwinding past an injected crash must not
            # join (and misalign) the survivors' collective sequence —
            # same containment as Process._park and Database._check_live.
            raise Crashed(
                f"crashed process {self.proc.name!r} cannot join "
                f"collective {op!r}"
            )
        size = self.size
        self._op_seq += 1
        verifier = self.transport.verifier
        if verifier is not None:
            dtype, count = payload_signature(payload)
            verifier.enter(
                CollectiveSignature(
                    op=op,
                    ctx=str(self.ctx_id),
                    seq=self._op_seq,
                    rank=self._rank,
                    root=root,
                    dtype=dtype,
                    count=count,
                    site=call_site(),
                ),
                self.proc.name,
                size,
                self.proc.now,
            )
        if size == 1:
            # Degenerate world: apply semantics directly, zero cost.
            site = CollectiveSite(op, 1)
            site.root, site.reduce_op = root or 0, reduce_op
            site.deposit(0, self.proc, payload, self.proc.now)
            results, _ = COMPUTE_FNS[op](site, self.transport.machine, 1)
            self.transport.record_collective(op, site.entries[0].nbytes)
            if verifier is not None:
                verifier.leave(self.proc.name)
            return results[0]
        key = (self.ctx_id, self._op_seq)
        site: CollectiveSite = self.transport.site(
            key, lambda: CollectiveSite(op, size)
        )
        if site.op != op:
            raise MPICollectiveMismatch(
                f"rank {self._rank} called {op!r} while others called {site.op!r}"
            )
        if root is not None:
            if site.root is None:
                site.root = root
            elif site.root != root:
                raise MPICollectiveMismatch(
                    f"collective {op!r}: ranks disagree on root "
                    f"({site.root} vs {root})"
                )
        if reduce_op is not None:
            site.reduce_op = reduce_op
        site.deposit(self._rank, self.proc, payload, self.proc.now)
        if site.complete:
            self.transport.record_collective(
                op, sum(e.nbytes for e in site.entries.values())
            )
            results, completions = COMPUTE_FNS[op](
                site, self.transport.machine, size
            )
            self.transport.drop_site(key)
            now = self.proc.sim.now
            for r, entry in site.entries.items():
                delay = max(completions[r] - now, 0.0)
                self.proc.sim.schedule_resume(entry.proc, delay=delay, value=results[r])
        result = self.proc.park(reason=f"coll:{op}")
        if verifier is not None:
            verifier.leave(self.proc.name)
        return result

    def barrier(self) -> None:
        """Block until every rank reaches the barrier."""
        self._rendezvous("barrier", None)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast ``obj`` from ``root``; returns it on every rank."""
        self._check_rank(root)
        return self._rendezvous("bcast", obj if self._rank == root else None, root=root)

    def reduce(self, obj: Any, op: ReduceOp = SUM, root: int = 0) -> Any:
        """Combine contributions; the result lands only on ``root``."""
        self._check_rank(root)
        return self._rendezvous("reduce", obj, root=root, reduce_op=op)

    def allreduce(self, obj: Any, op: ReduceOp = SUM) -> Any:
        """Combine contributions; the result lands on every rank."""
        return self._rendezvous("allreduce", obj, reduce_op=op)

    def scan(self, obj: Any, op: ReduceOp = SUM) -> Any:
        """Inclusive prefix reduction over ranks 0..self."""
        return self._rendezvous("scan", obj, reduce_op=op)

    def exscan(self, obj: Any, op: ReduceOp = SUM) -> Any:
        """Exclusive prefix reduction: rank r gets the fold of ranks 0..r-1
        (``None`` on rank 0) — the idiom for computing file offsets from
        per-rank byte counts."""
        return self._rendezvous("exscan", obj, reduce_op=op)

    def gather(self, obj: Any, root: int = 0) -> Optional[List[Any]]:
        """Root receives ``[obj_0, ..., obj_{P-1}]``; others get ``None``."""
        self._check_rank(root)
        return self._rendezvous("gather", obj, root=root)

    def allgather(self, obj: Any) -> List[Any]:
        """Every rank receives ``[obj_0, ..., obj_{P-1}]``."""
        return self._rendezvous("allgather", obj)

    def scatter(self, objs: Optional[Sequence[Any]], root: int = 0) -> Any:
        """Root provides one object per rank; each rank gets its own."""
        self._check_rank(root)
        return self._rendezvous(
            "scatter", objs if self._rank == root else None, root=root
        )

    def alltoall(self, objs: Sequence[Any]) -> List[Any]:
        """Alias for :meth:`alltoallv` (object layer does not distinguish)."""
        return self.alltoallv(objs)

    def alltoallv(self, objs: Sequence[Any]) -> List[Any]:
        """Personalized all-to-all: ``objs[d]`` goes to rank ``d``; returns
        the list of objects every rank sent to this one, indexed by source."""
        return self._rendezvous("alltoallv", list(objs))

    # ------------------------------------------------------------------
    # Communicator construction (split / dup)
    # ------------------------------------------------------------------

    def split(self, color: Optional[int], key: int = 0) -> Optional["Communicator"]:
        """Partition this communicator by ``color`` (``MPI_Comm_split``).

        Ranks sharing a color form a new communicator, ordered by
        ``(key, old rank)``.  ``color=None`` (MPI_UNDEFINED) opts out and
        returns None.  Collective over this communicator.
        """
        self._derive_seq += 1
        infos = self.allgather((color, key, self._rank))
        if color is None:
            return None
        members = sorted(
            (k, r) for (c, k, r) in infos if c == color
        )
        group_world = [self._world(r) for (_k, r) in members]
        my_index = [r for (_k, r) in members].index(self._rank)
        new_ctx = (self.ctx_id, "split", self._derive_seq, color)
        return Communicator(
            self.transport, my_index, self.proc, ctx_id=new_ctx,
            group=group_world,
        )

    def dup(self) -> "Communicator":
        """Duplicate this communicator with an isolated context
        (``MPI_Comm_dup``).  Collective."""
        self._derive_seq += 1
        self.barrier()
        new_ctx = (self.ctx_id, "dup", self._derive_seq)
        group = self._group if self._group is not None else list(
            range(self.transport.size)
        )
        return Communicator(
            self.transport, self._rank, self.proc, ctx_id=new_ctx, group=group
        )
