"""Command-line reproduction runner: ``python -m repro.bench``.

Runs the three figure experiments (optionally a subset) without pytest and
prints the paper-comparison tables — the quickest way for a reader to see
the reproduction end to end.

Usage::

    python -m repro.bench                 # all three figures
    python -m repro.bench fig5 fig7       # a subset
    python -m repro.bench --fast          # smaller problems, quicker run
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.figures import run_fig5, run_fig6, run_fig7

_RUNNERS = {
    "fig5": lambda fast: run_fig5(nprocs=32 if fast else 64,
                                  cells=10 if fast else 16),
    "fig6": lambda fast: run_fig6(nprocs=32 if fast else 64,
                                  cells=10 if fast else 16),
    "fig7": lambda fast: run_fig7(proc_counts=(8, 16) if fast else (32, 64),
                                  cells=8 if fast else 16),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation figures.",
    )
    parser.add_argument(
        "figures", nargs="*", choices=[*_RUNNERS, []],
        help="which figures to run (default: all)",
    )
    parser.add_argument(
        "--fast", action="store_true",
        help="smaller problems and process counts (for a quick look)",
    )
    args = parser.parse_args(argv)
    selected = args.figures or list(_RUNNERS)

    for name in selected:
        t0 = time.perf_counter()
        table = _RUNNERS[name](args.fast)
        wall = time.perf_counter() - t0
        print(table.render())
        print(f"[{name}: simulated in {wall:.1f}s wall time]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
