"""Benchmark harness: experiment definitions and result reporting.

Each figure of the paper's evaluation has a runner in
:mod:`repro.bench.figures` returning :class:`~repro.bench.harness.ResultTable`
rows (config, metric, measured value, paper value, unit); the pytest
benchmarks under ``benchmarks/`` drive these runners and print the tables.

Scaled-down problems use **time dilation** (:func:`scaled_machine`): the
machine's bandwidths are divided — and per-element compute multiplied — by
the problem's scale factor, so virtual *times* match what the full-size
problem would take on the real machine, fixed per-operation costs keep their
true relative weight, and bandwidths reported against paper-scale byte
counts are directly comparable to the paper's axes.
"""

from repro.bench.harness import ExperimentRow, ResultTable, scaled_machine
from repro.bench.figures import run_fig5, run_fig6, run_fig7

__all__ = [
    "ExperimentRow",
    "ResultTable",
    "scaled_machine",
    "run_fig5",
    "run_fig6",
    "run_fig7",
]
