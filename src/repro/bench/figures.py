"""Runners regenerating each figure of the paper's evaluation section.

Every runner builds a ratio-preserving scaled problem, time-dilates the
machine model by the scale factor (see
:func:`~repro.bench.harness.scaled_machine`), runs the relevant
configurations, and returns a :class:`~repro.bench.harness.ResultTable`
whose values are directly comparable to the paper's axes.

Paper reference values are approximate — the paper reports them only as bar
charts — and are marked as such in the rows.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.apps.fun3d.driver import Fun3dRunConfig, run_fun3d_sdm
from repro.apps.fun3d.original import run_fun3d_original
from repro.apps.rt.driver import RTRunConfig, run_rt_sdm
from repro.apps.rt.original import run_rt_original
from repro.bench.harness import ResultTable, scaled_machine
from repro.config import MachineModel, origin2000
from repro.core import Organization, sdm_services, snapshot_services
from repro.mesh import fun3d_like_problem, install_mesh_file, rt_like_problem
from repro.mpi import mpirun
from repro.partition import Graph, multilevel_kway

__all__ = ["PAPER", "run_fig5", "run_fig6", "run_fig7"]

MB = 1024.0 * 1024.0

PAPER = {
    # FUN3D workload constants (Section 4).
    "fun3d_edges": 18_000_000,
    "fun3d_nodes": 2_600_000,
    "fun3d_import_bytes": 807 * MB,
    "fun3d_checkpoint_bytes": 379 * MB,
    # RT workload constants.
    "rt_nodes": int(36 * MB / 8),
    "rt_step_bytes": (36 + 74) * MB,
    "rt_total_bytes": 550 * MB,
    # Approximate values read off the figures (bar charts).
    "fig5": {
        ("original", "index_distri"): 18.0,
        ("original", "import"): 68.0,
        ("sdm_no_history", "index_distri"): 12.0,
        ("sdm_no_history", "import"): 28.0,
        ("sdm_with_history", "index_distri"): 5.0,
        ("sdm_with_history", "import"): 21.0,
    },
    "fig6": {
        ("level1", "write"): 85.0,
        ("level2", "write"): 90.0,
        ("level3", "write"): 100.0,
        ("level1", "read"): 125.0,
        ("level2", "read"): 135.0,
        ("level3", "read"): 145.0,
    },
    "fig7": {
        ("original", 32): 12.0,
        ("original", 64): 10.0,
        ("level1", 32): 75.0,
        ("level1", 64): 62.0,
        ("level23", 32): 78.0,
        ("level23", 64): 65.0,
    },
}

_APPROX = "paper value approximate (read off bar chart)"


def _fun3d_setup(cells: int, nprocs: int, seed: int = 1):
    problem = fun3d_like_problem(cells)
    g = Graph.from_edges(
        problem.mesh.n_nodes, problem.mesh.edge1, problem.mesh.edge2
    )
    part = multilevel_kway(g, nprocs, seed=seed)
    return problem, part


def _fun3d_services(problem, seed_from=None):
    base = sdm_services(seed_from=seed_from)

    def factory(sim, machine):
        services = base(sim, machine)
        if not services["fs"].exists("uns3d.msh"):
            install_mesh_file(
                services["fs"], "uns3d.msh",
                problem.mesh.edge1, problem.mesh.edge2,
                problem.edge_arrays, problem.node_arrays,
            )
        return services

    return factory


def run_fig5(
    nprocs: int = 64,
    cells: int = 20,
    machine: Optional[MachineModel] = None,
) -> ResultTable:
    """Figure 5: time to import + partition the FUN3D mesh, three ways."""
    problem, part = _fun3d_setup(cells, nprocs)
    scale = PAPER["fun3d_edges"] / problem.mesh.n_edges
    m = scaled_machine(machine or origin2000(), scale)
    table = ResultTable(
        f"Figure 5 - FUN3D import + index distribution "
        f"(P={nprocs}, {problem.mesh.n_edges} edges, scale x{scale:.0f})"
    )

    no_writes = Fun3dRunConfig(
        timesteps=1, checkpoint_every=2, register_history=True
    )

    def orig_prog(ctx):
        return run_fun3d_original(
            ctx, problem, part, timesteps=1, checkpoint_every=2
        )

    def sdm_prog(ctx):
        return run_fun3d_sdm(ctx, problem, part, no_writes)

    job_orig = mpirun(orig_prog, nprocs, machine=m,
                      services=_fun3d_services(problem))
    job_cold = mpirun(sdm_prog, nprocs, machine=m,
                      services=_fun3d_services(problem))
    snap = snapshot_services(job_cold)
    job_warm = mpirun(sdm_prog, nprocs, machine=m,
                      services=_fun3d_services(problem, seed_from=snap))
    assert all(not r.used_history for r in job_cold.values)
    assert all(r.used_history for r in job_warm.values)

    for config, job in (
        ("original", job_orig),
        ("sdm_no_history", job_cold),
        ("sdm_with_history", job_warm),
    ):
        for metric in ("index_distri", "import"):
            table.add(
                "fig5", config, metric, job.phase_max(metric), "s",
                paper_value=PAPER["fig5"][(config, metric)], note=_APPROX,
            )
        table.add(
            "fig5", config, "total",
            job.phase_max("index_distri") + job.phase_max("import"), "s",
            paper_value=(
                PAPER["fig5"][(config, "index_distri")]
                + PAPER["fig5"][(config, "import")]
            ),
            note=_APPROX,
        )
    return table


def run_fig6(
    nprocs: int = 64,
    cells: int = 20,
    machine: Optional[MachineModel] = None,
) -> ResultTable:
    """Figure 6: FUN3D checkpoint write+read bandwidth per organization."""
    problem, part = _fun3d_setup(cells, nprocs)
    scale = PAPER["fun3d_edges"] / problem.mesh.n_edges
    m = scaled_machine(machine or origin2000(), scale)
    table = ResultTable(
        f"Figure 6 - FUN3D I/O bandwidth by file organization "
        f"(P={nprocs}, scale x{scale:.0f})"
    )

    levels = {
        "level1": Organization.LEVEL_1,
        "level2": Organization.LEVEL_2,
        "level3": Organization.LEVEL_3,
    }
    for config, level in levels.items():
        cfg = Fun3dRunConfig(
            organization=level, timesteps=2, checkpoint_every=1,
            register_history=False, read_back=True,
        )

        def program(ctx, cfg=cfg):
            return run_fun3d_sdm(ctx, problem, part, cfg)

        job = mpirun(program, nprocs, machine=m,
                     services=_fun3d_services(problem))
        total_bytes = sum(r.bytes_written for r in job.values)
        paper_equiv_bytes = total_bytes * scale
        for metric in ("write", "read"):
            bw = paper_equiv_bytes / job.phase_max(metric) / MB
            table.add(
                "fig6", config, metric, bw, "MB/s",
                paper_value=PAPER["fig6"][(config, metric)], note=_APPROX,
            )
    return table


def run_fig7(
    proc_counts=(32, 64),
    cells: int = 16,
    machine: Optional[MachineModel] = None,
) -> ResultTable:
    """Figure 7: RT write bandwidth — original vs SDM L1 vs L2/3, by P."""
    problem = rt_like_problem(cells)
    g = Graph.from_edges(
        problem.mesh.n_nodes, problem.mesh.edge1, problem.mesh.edge2
    )
    scale = PAPER["rt_nodes"] / problem.mesh.n_nodes
    m = scaled_machine(machine or origin2000(), scale)
    table = ResultTable(
        f"Figure 7 - RT write bandwidth "
        f"({problem.mesh.n_nodes} nodes, scale x{scale:.0f})"
    )

    for nprocs in proc_counts:
        part = multilevel_kway(g, nprocs, seed=1)
        configs = {
            "original": lambda ctx: run_rt_original(
                ctx, problem, part, RTRunConfig(timesteps=5)
            ),
            "level1": lambda ctx: run_rt_sdm(
                ctx, problem, part,
                RTRunConfig(organization=Organization.LEVEL_1, timesteps=5),
            ),
            "level23": lambda ctx: run_rt_sdm(
                ctx, problem, part,
                RTRunConfig(organization=Organization.LEVEL_2, timesteps=5),
            ),
        }
        for config, program in configs.items():
            job = mpirun(program, nprocs, machine=m, services=sdm_services())
            total_bytes = sum(r.bytes_written for r in job.values)
            bw = total_bytes * scale / job.phase_max("write") / MB
            table.add(
                "fig7", f"{config}/P{nprocs}", "write", bw, "MB/s",
                paper_value=PAPER["fig7"].get((config, nprocs)), note=_APPROX,
            )
    return table
