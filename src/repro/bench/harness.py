"""Result records, table rendering, and machine-model time dilation."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

from repro.config import MachineModel

__all__ = ["ExperimentRow", "ResultTable", "scaled_machine"]


@dataclass
class ExperimentRow:
    """One reported value of one experiment configuration."""

    experiment: str
    config: str
    metric: str
    value: float
    unit: str
    paper_value: Optional[float] = None
    note: str = ""

    def formatted(self) -> List[str]:
        paper = f"{self.paper_value:g}" if self.paper_value is not None else "-"
        return [
            self.experiment,
            self.config,
            self.metric,
            f"{self.value:.2f}",
            paper,
            self.unit,
            self.note,
        ]


@dataclass
class ResultTable:
    """A collection of rows with ASCII rendering (what the bench prints)."""

    title: str
    rows: List[ExperimentRow] = field(default_factory=list)

    HEADER = ["experiment", "config", "metric", "measured", "paper", "unit", "note"]

    def add(self, *args, **kwargs) -> ExperimentRow:
        """Append a row (same signature as :class:`ExperimentRow`)."""
        row = ExperimentRow(*args, **kwargs)
        self.rows.append(row)
        return row

    def get(self, config: str, metric: str) -> ExperimentRow:
        """Look up a row by (config, metric)."""
        for row in self.rows:
            if row.config == config and row.metric == metric:
                return row
        raise KeyError(f"no row for config={config!r} metric={metric!r}")

    def value(self, config: str, metric: str) -> float:
        """Measured value of a (config, metric) row."""
        return self.get(config, metric).value

    def render(self) -> str:
        """Fixed-width ASCII table."""
        cells = [self.HEADER] + [r.formatted() for r in self.rows]
        widths = [max(len(row[i]) for row in cells) for i in range(len(self.HEADER))]
        lines = [self.title, "=" * len(self.title)]
        for i, row in enumerate(cells):
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
            if i == 0:
                lines.append("  ".join("-" * w for w in widths))
        return "\n".join(lines)


def scaled_machine(base: MachineModel, scale: float) -> MachineModel:
    """Time-dilate a machine model for a problem ``scale`` times smaller
    than the paper's.

    Dividing bandwidths by ``scale`` and multiplying per-element compute by
    ``scale`` makes the scaled problem take the *time* the full problem
    would take at full speed, while fixed per-operation costs (latencies,
    opens, database statements — which do not shrink with problem size)
    keep their true relative weight.  Bandwidths computed against
    paper-scale byte counts then land on the paper's axes.
    """
    if scale < 1.0:
        raise ValueError(f"scale must be >= 1 (paper size / our size), got {scale}")
    m = base
    m = replace(
        m,
        network=replace(m.network, bandwidth=m.network.bandwidth / scale),
        compute=replace(
            m.compute,
            element_op=m.compute.element_op * scale,
            memcpy_bandwidth=m.compute.memcpy_bandwidth / scale,
        ),
        storage=replace(
            m.storage,
            stream_read_bandwidth=m.storage.stream_read_bandwidth / scale,
            stream_write_bandwidth=m.storage.stream_write_bandwidth / scale,
            # Byte-granularity parameters scale too, or aggregator domains
            # and sieving windows collapse at small problem sizes (floors
            # are one element / a handful of elements).
            stripe_size=max(int(m.storage.stripe_size / scale), 8),
        ),
        collective_io=replace(
            m.collective_io,
            cb_buffer_size=max(int(m.collective_io.cb_buffer_size / scale), 16),
            ds_buffer_size=max(int(m.collective_io.ds_buffer_size / scale), 16),
            ds_threshold_gap=max(int(m.collective_io.ds_threshold_gap / scale), 8),
        ),
    )
    m.name = f"{base.name}/scale{scale:g}"
    return m
