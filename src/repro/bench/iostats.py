"""Per-job I/O statistics reporting.

SDM's pitch includes letting users see what their I/O actually did.
:func:`io_report` summarizes a finished job's file-system activity —
bytes moved, request counts, opens, per-file sizes, and effective
bandwidths per phase — into a printable report that benchmarks and
examples share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.mpi.job import JobResult
from repro.pfs.filesystem import FileSystem

__all__ = ["IOReport", "io_report"]

MB = 1024.0 * 1024.0


@dataclass
class IOReport:
    """Aggregate I/O statistics of one job."""

    elapsed: float
    bytes_written: int
    bytes_read: int
    n_requests: int
    n_opens: int
    file_sizes: Dict[str, int]
    phase_bandwidth: Dict[str, float]
    """Effective MB/s per timed phase that moved data (write/read/import)."""

    def render(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            "I/O report",
            "----------",
            f"virtual time      : {self.elapsed:.4f} s",
            f"bytes written     : {self.bytes_written / MB:.2f} MB",
            f"bytes read        : {self.bytes_read / MB:.2f} MB",
            f"requests / opens  : {self.n_requests} / {self.n_opens}",
        ]
        for phase, bw in sorted(self.phase_bandwidth.items()):
            lines.append(f"{phase:<18}: {bw:.2f} MB/s effective")
        lines.append(f"files ({len(self.file_sizes)}):")
        for name, size in sorted(self.file_sizes.items()):
            lines.append(f"  {name:<40} {size / MB:8.3f} MB")
        return "\n".join(lines)


def io_report(job: JobResult, fs: Optional[FileSystem] = None) -> IOReport:
    """Build an :class:`IOReport` from a finished job.

    ``fs`` defaults to the job's ``"fs"`` service.  Phase bandwidths divide
    the direction's total bytes by the max-over-ranks phase time for the
    conventional phase names (``write``, ``read``, ``import``).
    """
    if fs is None:
        fs = job.services["fs"]
    phase_bw: Dict[str, float] = {}
    for phase, total in (
        ("write", fs.bytes_written),
        ("read", fs.bytes_read),
        ("import", fs.bytes_read),
    ):
        t = job.phase_max(phase)
        if t > 0 and total > 0:
            phase_bw[phase] = total / t / MB
    return IOReport(
        elapsed=job.elapsed,
        bytes_written=fs.bytes_written,
        bytes_read=fs.bytes_read,
        n_requests=fs.n_requests,
        n_opens=fs.n_opens,
        file_sizes={name: fs.lookup(name).size for name in fs.list_files()},
        phase_bandwidth=phase_bw,
    )
