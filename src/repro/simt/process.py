"""Simulated processes backed by OS threads.

The kernel's central invariant: **at most one thread runs at a time** — either
the scheduler (inside :meth:`Simulator.run`) or exactly one process thread.
Control transfer is a pair of :class:`threading.Event` handshakes:

* scheduler → process: the scheduler sets ``proc._resume`` and then blocks on
  the simulator's ``_sched_wake`` event;
* process → scheduler: the process sets ``_sched_wake`` and blocks on its own
  ``_resume`` (:meth:`Process._park`).

Because of this invariant, simulation code can freely mutate shared Python
objects (mailboxes, database tables, file-system state) without locks, and
runs are fully deterministic: ties in the event queue are broken by insertion
sequence number.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simt.simulator import Simulator

__all__ = ["Process", "Killed", "Crashed"]


class Killed(BaseException):
    """Raised inside a process thread to unwind it when the simulation aborts.

    Derives from :class:`BaseException` so that application-level
    ``except Exception`` blocks cannot swallow it.
    """


class Crashed(BaseException):
    """Raised inside a process at a matched fault point to model a crash.

    Like :class:`Killed` this derives from :class:`BaseException`, so
    application-level ``except Exception`` recovery cannot intercept the
    injected death — the process unwinds exactly as if its host failed
    mid-operation, leaving whatever shared state (leases, pins,
    half-published epochs) it had in flight.  Unlike an ordinary raised
    exception it does *not* mark the simulation as errored: peers keep
    running until they stall on the dead process, at which point the
    simulator raises an attributed
    :class:`~repro.errors.SimParticipantLost`.
    """


class Process:
    """A simulated process: a function run on a dedicated thread under the
    simulator's one-runner-at-a-time discipline.

    Application code receives the :class:`Process` as the first argument of
    its function and uses it to interact with virtual time:

    * :meth:`hold` — advance this process's virtual time,
    * :meth:`park` — block until another actor schedules a resume,
    * :attr:`now` — the current virtual time.

    Attributes
    ----------
    name:
        Human-readable name (appears in traces and deadlock reports).
    daemon:
        Daemon processes do not keep the simulation alive; they are killed
        when all non-daemon processes have finished.
    result:
        Return value of the process function once it has finished.
    error:
        The exception the process function raised, if any.
    """

    def __init__(
        self,
        sim: "Simulator",
        fn: Callable[..., Any],
        args: tuple,
        kwargs: dict,
        name: str,
        daemon: bool,
    ) -> None:
        self.sim = sim
        self.name = name
        self.daemon = daemon
        self.alive = True
        self.started = False
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.crashed = False
        self.crash_point: Optional[str] = None
        self.wait_reason: str = "start"
        self._wake_value: Any = None
        self._resume = threading.Event()
        self._thread = threading.Thread(
            target=self._bootstrap,
            args=(fn, args, kwargs),
            name=f"simt:{name}",
            daemon=True,
        )

    # ------------------------------------------------------------------
    # Public API (called from inside the process function)
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self.sim.now

    def hold(self, dt: float) -> None:
        """Advance this process's virtual time by ``dt`` seconds.

        Other runnable processes execute during the hold — this is how
        computation, transfer, and service times are charged.
        """
        if dt < 0:
            raise ValueError(f"cannot hold for negative time: {dt!r}")
        self.sim.schedule_resume(self, delay=dt)
        self._park(reason=f"hold({dt:.3g})")

    def park(self, reason: str = "wait") -> Any:
        """Block until some other actor resumes this process.

        Returns the value passed to :meth:`Simulator.schedule_resume`.
        Low-level primitive used by Signals, Resources, Channels, and the MPI
        matching engine.
        """
        return self._park(reason=reason)

    def fault_point(self, name: str) -> None:
        """Announce a registered fault point (e.g. ``"flip:published"``).

        Protocol code calls this at its crash-interesting milestones.  A
        no-op unless the simulator carries a
        :class:`~repro.simt.simulator.FaultPlan`; a matching plan raises
        :class:`Crashed` here, killing this process mid-protocol.
        """
        self.sim._hit_fault_point(name, self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "done"
        return f"<Process {self.name} {state} at t={self.sim.now:.6g}>"

    # ------------------------------------------------------------------
    # Kernel internals
    # ------------------------------------------------------------------

    def _bootstrap(self, fn: Callable[..., Any], args: tuple, kwargs: dict) -> None:
        """Thread body: wait for the first resume, run ``fn``, sign off."""
        try:
            # Initial handshake: control is NOT with this thread yet, so wait
            # for the scheduler without signalling it.
            self._resume.wait()
            self._resume.clear()
            self.started = True
            if self.sim._aborting:
                raise Killed()
            self.result = fn(self, *args, **kwargs)
        except Killed:
            pass
        except Crashed:
            # An injected fault, not a program error: record the death
            # without flagging the simulation as crashed, so peers run on
            # until they stall on this process (attributed separately).
            self.crashed = True
        except BaseException as exc:  # noqa: BLE001 - reported via sim
            self.error = exc
        finally:
            self.alive = False
            self.sim._on_process_exit(self)
            # Hand control back for the last time; this thread then dies.
            self.sim._signal_scheduler()

    def _park(self, reason: str) -> Any:
        """Yield control to the scheduler and block until resumed."""
        if self._thread is not threading.current_thread():
            raise RuntimeError(
                f"process {self.name!r} parked from foreign thread "
                f"{threading.current_thread().name!r}"
            )
        if self.sim._aborting:
            raise Killed()
        if self.crashed:
            # Crash-unwinding code (``finally`` cleanup) must not block,
            # hold, or rendezvous: the dead process is gone.
            raise Crashed(f"crashed process {self.name!r} cannot park")
        self.wait_reason = reason
        self.sim._signal_scheduler()
        self._resume.wait()
        self._resume.clear()
        if self.sim._aborting:
            raise Killed()
        value, self._wake_value = self._wake_value, None
        return value
