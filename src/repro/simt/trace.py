"""Timestamped annotation recording for simulations.

A :class:`Trace` is a cheap append-only log of ``(time, actor, label, data)``
records.  It is disabled by default (recording costs one branch); benchmarks
and debugging sessions enable it to reconstruct timelines — e.g. when each
rank entered a collective, or when the history-file daemon finished writing.

Collective entries share one record format: a
:class:`CollectiveSignature` stored as the ``data`` of a record labelled
:data:`COLLECTIVE`.  The ``SPMD_VERIFY`` runtime sanitizer
(:mod:`repro.analysis.verifier`) emits and cross-validates these, and
:func:`repro.analysis.report.format_runtime_mismatch` pretty-prints the
same records as lint-style findings, so traces, the verifier, and the
diagnostics all speak one schema.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, List, Optional, Tuple

__all__ = ["COLLECTIVE", "CollectiveSignature", "Trace", "TraceRecord"]

COLLECTIVE = "collective"
"""Trace label under which :class:`CollectiveSignature` records are filed."""


@dataclass(frozen=True)
class CollectiveSignature:
    """One rank's entry into one collective call site.

    Two ranks entering the *same* site carry the same ``(ctx, seq)`` key;
    the SPMD invariant says everything else observable about the call —
    op kind, root, and for the reduce family dtype/count — must then
    agree.  ``site`` is the Python call site (``file.py:NN in func``)
    recorded so mismatch diagnostics can point at both sides' source.
    """

    op: str
    ctx: str
    """Communicator context id, stringified (contexts may be tuples)."""
    seq: int
    """Per-context collective sequence number (the rendezvous slot)."""
    rank: int
    root: Optional[int] = None
    dtype: str = ""
    count: int = -1
    """Payload element count; -1 when the op carries no payload."""
    site: str = ""

    @property
    def key(self) -> Tuple[str, int]:
        """Rendezvous-site identity shared by all participating ranks."""
        return (self.ctx, self.seq)

    def describe(self) -> str:
        """``allreduce(dtype=int, count=4)`` — op plus its checked facts."""
        args = []
        if self.root is not None:
            args.append(f"root={self.root}")
        if self.dtype:
            args.append(f"dtype={self.dtype}")
        if self.count >= 0:
            args.append(f"count={self.count}")
        return f"{self.op}({', '.join(args)})"


@dataclass(frozen=True)
class TraceRecord:
    """One trace annotation."""

    time: float
    actor: str
    label: str
    data: Any = None


@dataclass
class Trace:
    """Append-only event log with optional label filtering.

    Attributes
    ----------
    enabled:
        When False (the default), :meth:`record` is a no-op.
    """

    enabled: bool = False
    records: List[TraceRecord] = field(default_factory=list)

    def record(self, time: float, actor: str, label: str, data: Any = None) -> None:
        """Append a record if tracing is enabled."""
        if self.enabled:
            self.records.append(TraceRecord(time, actor, label, data))

    def by_label(self, label: str) -> List[TraceRecord]:
        """All records whose label matches exactly."""
        return [r for r in self.records if r.label == label]

    def by_actor(self, actor: str) -> List[TraceRecord]:
        """All records from one actor."""
        return [r for r in self.records if r.actor == actor]

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def clear(self) -> None:
        """Drop all records."""
        self.records.clear()

    def last(self, label: Optional[str] = None) -> Optional[TraceRecord]:
        """Most recent record (optionally restricted to one label)."""
        if label is None:
            return self.records[-1] if self.records else None
        hits = self.by_label(label)
        return hits[-1] if hits else None

    def collectives(self) -> List[CollectiveSignature]:
        """All collective signatures recorded (``SPMD_VERIFY`` runs)."""
        return [r.data for r in self.records if r.label == COLLECTIVE]
