"""Timestamped annotation recording for simulations.

A :class:`Trace` is a cheap append-only log of ``(time, actor, label, data)``
records.  It is disabled by default (recording costs one branch); benchmarks
and debugging sessions enable it to reconstruct timelines — e.g. when each
rank entered a collective, or when the history-file daemon finished writing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, List, Optional

__all__ = ["Trace", "TraceRecord"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace annotation."""

    time: float
    actor: str
    label: str
    data: Any = None


@dataclass
class Trace:
    """Append-only event log with optional label filtering.

    Attributes
    ----------
    enabled:
        When False (the default), :meth:`record` is a no-op.
    """

    enabled: bool = False
    records: List[TraceRecord] = field(default_factory=list)

    def record(self, time: float, actor: str, label: str, data: Any = None) -> None:
        """Append a record if tracing is enabled."""
        if self.enabled:
            self.records.append(TraceRecord(time, actor, label, data))

    def by_label(self, label: str) -> List[TraceRecord]:
        """All records whose label matches exactly."""
        return [r for r in self.records if r.label == label]

    def by_actor(self, actor: str) -> List[TraceRecord]:
        """All records from one actor."""
        return [r for r in self.records if r.actor == actor]

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def clear(self) -> None:
        """Drop all records."""
        self.records.clear()

    def last(self, label: Optional[str] = None) -> Optional[TraceRecord]:
        """Most recent record (optionally restricted to one label)."""
        if label is None:
            return self.records[-1] if self.records else None
        hits = self.by_label(label)
        return hits[-1] if hits else None
