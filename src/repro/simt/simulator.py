"""The discrete-event scheduler and virtual clock.

Event-queue entries are ``(time, seq, kind, payload, value)`` tuples ordered
by ``(time, seq)``; ``seq`` is a monotonically increasing counter so
simultaneous events fire in the order they were scheduled, which makes runs
deterministic.  Two event kinds exist:

* ``resume`` — transfer control to a parked :class:`Process` (optionally
  passing it a wake value);
* ``call`` — run a plain callback on the scheduler thread.  Callbacks must
  not block; they are used for timed actions that do not belong to any
  process, such as a message arriving in a mailbox.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import (
    SimDeadlockError,
    SimError,
    SimParticipantLost,
    SimProcessCrashed,
)
from repro.simt.process import Crashed, Process
from repro.simt.trace import Trace

__all__ = ["Simulator", "FaultPlan"]

_RESUME = 0
_CALL = 1


@dataclass
class FaultPlan:
    """Crash one named process at the Nth hit of a registered fault point.

    Install on a simulator (``sim.fault_plan = FaultPlan(...)``, or via
    :func:`repro.mpi.job.mpirun`'s ``fault_plan`` argument) before the
    run.  While a plan is installed, every :meth:`Process.fault_point`
    hit is appended to :attr:`Simulator.fault_log` as
    ``(process name, point name, nth hit of that pair)`` — an
    *observe-only* plan (:meth:`observe`) therefore enumerates a
    workload's complete crash schedule, which is what the fault property
    harness replays case by case.

    ``occurrence`` counts hits of the exact ``(victim, point)`` pair,
    starting at 1, so ``FaultPlan("flip:published", victim="rank0",
    occurrence=2)`` survives the first flip and dies publishing the
    second.
    """

    point: Optional[str]
    """Fault-point name to crash at (None: observe/record only)."""

    victim: str = "rank0"
    """Name of the process to crash (other processes pass through)."""

    occurrence: int = 1
    """Which hit of ``(victim, point)`` is fatal (1-based)."""

    hits: int = field(default=0, compare=False)
    """Matching ``(victim, point)`` hits seen so far (kernel-maintained)."""

    @classmethod
    def observe(cls) -> "FaultPlan":
        """A plan that never fires but enables fault-point recording."""
        return cls(point=None, victim="")

    def matches(self, proc_name: str, point: str, nth: int) -> bool:
        """True when the ``nth`` hit of ``(proc_name, point)`` is fatal."""
        if self.point is None or point != self.point or proc_name != self.victim:
            return False
        self.hits = nth
        return nth == self.occurrence


class Simulator:
    """Discrete-event simulator: virtual clock plus an event queue.

    Typical usage::

        sim = Simulator()
        sim.spawn(rank_fn, arg0, name="rank0")
        sim.spawn(rank_fn, arg1, name="rank1")
        sim.run()                     # returns when all non-daemon procs end
        print(sim.now)                # total virtual time

    The simulator owns a :class:`~repro.simt.trace.Trace` that subsystems may
    use to record timestamped annotations for debugging and benchmarking.
    """

    def __init__(self, trace: Optional[Trace] = None) -> None:
        self.now: float = 0.0
        self.trace = trace if trace is not None else Trace(enabled=False)
        self.deadlock_reporters: List[Callable[[], str]] = []
        """Callbacks consulted when a deadlock is detected; whatever they
        return is appended to the :class:`SimDeadlockError` message (the
        ``SPMD_VERIFY`` sanitizer registers its per-rank pending-op
        report here)."""
        self.fault_plan: Optional[FaultPlan] = None
        """Installed crash schedule (None: fault injection disabled — the
        ``fault_point`` hook is then a two-attribute no-op)."""
        self.fault_log: List[Tuple[str, str, int]] = []
        """Every fault-point hit seen while a plan was installed:
        ``(process name, point, nth hit of that pair)``."""
        self._fault_hits: dict = {}
        self._queue: List[Tuple[float, int, int, Any, Any]] = []
        self._seq = 0
        self._procs: List[Process] = []
        self._running: Optional[Process] = None
        self._aborting = False
        self._crashed: Optional[Process] = None
        self._finished = False
        import threading

        self._sched_wake = threading.Event()

    # ------------------------------------------------------------------
    # Spawning and scheduling
    # ------------------------------------------------------------------

    def spawn(
        self,
        fn: Callable[..., Any],
        *args: Any,
        name: Optional[str] = None,
        daemon: bool = False,
        delay: float = 0.0,
        **kwargs: Any,
    ) -> Process:
        """Create a process running ``fn(proc, *args, **kwargs)``.

        The process starts at virtual time ``now + delay``.  Daemon processes
        are killed when every non-daemon process has finished.
        """
        if self._finished:
            raise SimError("cannot spawn into a finished simulation")
        if name is None:
            name = f"proc{len(self._procs)}"
        proc = Process(self, fn, args, kwargs, name=name, daemon=daemon)
        self._procs.append(proc)
        proc._thread.start()
        self.schedule_resume(proc, delay=delay)
        return proc

    def schedule_resume(self, proc: Process, delay: float = 0.0, value: Any = None) -> None:
        """Schedule ``proc`` to resume at ``now + delay`` with ``value``.

        ``value`` is returned from the process's pending
        :meth:`~repro.simt.process.Process.park` call.
        """
        if delay < 0:
            raise ValueError(f"negative delay: {delay!r}")
        self._push(self.now + delay, _RESUME, proc, value)

    def call_at(self, t: float, fn: Callable[[], None]) -> None:
        """Run ``fn()`` on the scheduler thread at absolute time ``t``.

        ``fn`` must not block; it may schedule further events.
        """
        if t < self.now:
            raise ValueError(f"call_at into the past: {t!r} < now={self.now!r}")
        self._push(t, _CALL, fn, None)

    def call_after(self, delay: float, fn: Callable[[], None]) -> None:
        """Run ``fn()`` on the scheduler thread ``delay`` seconds from now."""
        self.call_at(self.now + delay, fn)

    def _push(self, t: float, kind: int, payload: Any, value: Any) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (t, self._seq, kind, payload, value))

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Run until all non-daemon processes finish (or ``until`` is hit).

        Returns the final virtual time.  Raises
        :class:`~repro.errors.SimProcessCrashed` if any process raised, and
        :class:`~repro.errors.SimDeadlockError` if live processes remain but
        no event can ever wake them.
        """
        if self._finished:
            raise SimError("simulation already finished")
        while True:
            if self._crashed is not None:
                self._drain()
                crashed = self._crashed
                self._finished = True
                raise SimProcessCrashed(
                    f"process {crashed.name!r} raised "
                    f"{type(crashed.error).__name__}: {crashed.error}"
                ) from crashed.error
            live = [p for p in self._procs if p.alive and not p.daemon]
            if not self._queue:
                if live:
                    report = ", ".join(f"{p.name}[{p.wait_reason}]" for p in live)
                    # Reporters read live state (e.g. the verifier's
                    # pending-op map) — consult them before _drain kills
                    # the blocked processes.
                    extra = ""
                    for reporter in self.deadlock_reporters:
                        try:
                            extra += "\n  " + reporter()
                        except Exception:  # pragma: no cover - diagnostics
                            pass
                    crashed = [p for p in self._procs if p.crashed]
                    self._drain()
                    self._finished = True
                    if crashed:
                        # Not a deadlock of the survivors' own making:
                        # they are rendezvousing with fault-killed peers.
                        # Attribute the stall so the sanitizer's report
                        # reads as "participant lost", not "hung".
                        dead = ", ".join(
                            f"{p.name}[{p.crash_point}]" for p in crashed
                        )
                        raise SimParticipantLost(
                            f"{len(crashed)} process(es) lost to injected "
                            f"faults ({dead}); {len(live)} surviving "
                            f"process(es) blocked on them: {report}{extra}"
                        )
                    raise SimDeadlockError(
                        f"no events pending but {len(live)} process(es) "
                        f"blocked: {report}{extra}"
                    )
                break
            if not live and all(
                not (p.alive and not p.daemon) for p in self._procs
            ) and self._only_daemon_events():
                # All real work done; don't let daemons spin forever.
                break
            t, _seq, kind, payload, value = heapq.heappop(self._queue)
            if until is not None and t > until:
                # Leave the event for a later run() call.
                self._push(t, kind, payload, value)
                self.now = until
                return self.now
            self.now = max(self.now, t)
            if kind == _CALL:
                payload()
                continue
            proc: Process = payload
            if not proc.alive:
                continue
            proc._wake_value = value
            self._running = proc
            proc._resume.set()
            self._sched_wake.wait()
            self._sched_wake.clear()
            self._running = None
        self._drain()
        self._finished = True
        return self.now

    def _only_daemon_events(self) -> bool:
        """True if every queued resume targets a daemon process."""
        for _t, _seq, kind, payload, _value in self._queue:
            if kind == _CALL:
                return False
            if not payload.daemon:
                return False
        return True

    def _drain(self) -> None:
        """Kill all still-alive processes so their threads exit cleanly."""
        self._aborting = True
        for proc in self._procs:
            while proc.alive:
                proc._resume.set()
                self._sched_wake.wait()
                self._sched_wake.clear()
        self._queue.clear()

    # ------------------------------------------------------------------
    # Kernel internals (called from process threads)
    # ------------------------------------------------------------------

    def _signal_scheduler(self) -> None:
        self._sched_wake.set()

    def _on_process_exit(self, proc: Process) -> None:
        if proc.error is not None and not self._aborting:
            self._crashed = proc

    def _hit_fault_point(self, name: str, proc: Process) -> None:
        """Record a fault-point hit; crash ``proc`` if the plan says so.

        Called (via :meth:`Process.fault_point`) from the hitting
        process's own thread, so a matching plan can simply raise
        :class:`~repro.simt.process.Crashed` to unwind it in place.
        """
        plan = self.fault_plan
        if plan is None:
            return
        key = (proc.name, name)
        nth = self._fault_hits.get(key, 0) + 1
        self._fault_hits[key] = nth
        self.fault_log.append((proc.name, name, nth))
        if plan.matches(proc.name, name, nth):
            proc.crash_point = f"{name}#{nth}"
            # Flag before raising: ``finally`` blocks unwinding past the
            # crash must behave as dead code — the database and the park
            # primitive both refuse a crashed process, so graceful-exit
            # cleanup (lease releases, reaps) cannot run post-mortem.
            proc.crashed = True
            raise Crashed(
                f"injected fault at {name!r} (hit {nth}) in {proc.name!r}"
            )
