"""Synchronization and queueing primitives for simulated processes.

All primitives follow the same pattern: state mutation is safe without locks
because the kernel guarantees one runner at a time; blocking is implemented
with :meth:`Process.park` and wake-ups with :meth:`Simulator.schedule_resume`.

* :class:`Signal` — broadcast condition: ``fire()`` wakes every waiter.
* :class:`SimEvent` — one-shot future carrying a value; waiting after the
  event is set returns immediately.
* :class:`Resource` — FIFO counting semaphore; models controllers, DB
  connections, or any capacity-limited server.
* :class:`Channel` — FIFO item store with optionally *delayed* delivery,
  the building block for message transports.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from typing import Any, Deque, Iterator, List, Optional

from repro.errors import SimError
from repro.simt.process import Process
from repro.simt.simulator import Simulator

__all__ = ["Signal", "SimEvent", "Resource", "Channel"]


class Signal:
    """Broadcast condition variable.

    ``wait`` blocks the calling process until the next ``fire``; every
    process waiting at fire time is woken (at the current virtual time).
    """

    def __init__(self, sim: Simulator, name: str = "signal") -> None:
        self.sim = sim
        self.name = name
        self._waiters: List[Process] = []

    def wait(self, proc: Process) -> Any:
        """Block ``proc`` until the next :meth:`fire`; returns the fire value."""
        self._waiters.append(proc)
        return proc.park(reason=f"signal:{self.name}")

    def fire(self, value: Any = None) -> int:
        """Wake all current waiters; returns how many were woken."""
        waiters, self._waiters = self._waiters, []
        for w in waiters:
            self.sim.schedule_resume(w, value=value)
        return len(waiters)

    @property
    def n_waiting(self) -> int:
        """Number of processes currently blocked on this signal."""
        return len(self._waiters)


class SimEvent:
    """One-shot future: set once, read many.

    Used for completion notification — nonblocking request completion,
    asynchronous history-file writes, etc.
    """

    def __init__(self, sim: Simulator, name: str = "event") -> None:
        self.sim = sim
        self.name = name
        self.value: Any = None
        self._set = False
        self._waiters: List[Process] = []

    @property
    def is_set(self) -> bool:
        """True once :meth:`set` has been called."""
        return self._set

    def set(self, value: Any = None) -> None:
        """Complete the event, waking all waiters.  Setting twice is an error."""
        if self._set:
            raise SimError(f"SimEvent {self.name!r} set twice")
        self._set = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for w in waiters:
            self.sim.schedule_resume(w, value=value)

    def wait(self, proc: Process) -> Any:
        """Block until set (returns immediately if already set)."""
        if self._set:
            return self.value
        self._waiters.append(proc)
        return proc.park(reason=f"event:{self.name}")


class Resource:
    """FIFO counting semaphore with direct hand-off.

    ``release`` passes the grant straight to the longest-waiting process (the
    count is *not* incremented first), so service order is strictly FIFO —
    important for reproducing queueing at I/O controllers.
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = "resource") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._available = capacity
        self._waitq: Deque[Process] = deque()

    @property
    def available(self) -> int:
        """Grants currently free."""
        return self._available

    @property
    def n_waiting(self) -> int:
        """Processes queued for a grant."""
        return len(self._waitq)

    def acquire(self, proc: Process) -> None:
        """Take one grant, blocking FIFO if none is free."""
        if self._available > 0:
            self._available -= 1
            return
        self._waitq.append(proc)
        proc.park(reason=f"resource:{self.name}")

    def release(self) -> None:
        """Return one grant; hands it directly to the next waiter if any."""
        if self._waitq:
            nxt = self._waitq.popleft()
            self.sim.schedule_resume(nxt)
        else:
            if self._available >= self.capacity:
                raise SimError(f"resource {self.name!r} released above capacity")
            self._available += 1

    @contextmanager
    def request(self, proc: Process) -> Iterator[None]:
        """``with res.request(proc): ...`` — acquire/release scope."""
        self.acquire(proc)
        try:
            yield
        finally:
            self.release()


class Channel:
    """FIFO item queue with timed delivery.

    ``put`` may specify a delivery ``delay``: the item becomes visible to
    getters only after that much virtual time, which models a message in
    flight.  Getters block (FIFO) while the channel is empty.
    """

    def __init__(self, sim: Simulator, name: str = "channel") -> None:
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Process] = deque()

    def put(self, item: Any, delay: float = 0.0) -> None:
        """Deposit ``item``, visible ``delay`` seconds from now."""
        if delay <= 0.0:
            self._deposit(item)
        else:
            self.sim.call_after(delay, lambda: self._deposit(item))

    def _deposit(self, item: Any) -> None:
        if self._getters:
            getter = self._getters.popleft()
            self.sim.schedule_resume(getter, value=(True, item))
        else:
            self._items.append(item)

    def get(self, proc: Process) -> Any:
        """Pop the oldest visible item, blocking if none."""
        if self._items:
            return self._items.popleft()
        self._getters.append(proc)
        ok, item = proc.park(reason=f"channel:{self.name}")
        if not ok:  # pragma: no cover - defensive; only used by future cancel
            raise SimError(f"channel {self.name!r} get cancelled")
        return item

    def try_get(self) -> tuple[bool, Any]:
        """Nonblocking pop: ``(True, item)`` or ``(False, None)``."""
        if self._items:
            return True, self._items.popleft()
        return False, None

    def __len__(self) -> int:
        """Number of items currently visible."""
        return len(self._items)
