"""Discrete-event simulation kernel with thread-backed processes.

``simt`` provides the virtual machine everything else in :mod:`repro` runs on:

* :class:`~repro.simt.simulator.Simulator` — the event loop and virtual clock.
* :class:`~repro.simt.process.Process` — a simulated process.  Each process is
  backed by a real OS thread, but the kernel enforces that **exactly one**
  thread (a process or the scheduler) runs at any instant, so simulations are
  deterministic and shared Python state needs no locking.
* :mod:`~repro.simt.primitives` — Signal (broadcast), SimEvent (one-shot
  future), Resource (FIFO semaphore), Channel (FIFO store with timed delivery).

Processes are plain Python functions whose first argument is their
:class:`Process` handle::

    def worker(proc, n):
        proc.hold(1.5)          # advance virtual time
        return n * 2

    sim = Simulator()
    p = sim.spawn(worker, 21, name="w0")
    sim.run()
    assert p.result == 42 and sim.now == 1.5
"""

from repro.simt.process import Crashed, Killed, Process
from repro.simt.simulator import FaultPlan, Simulator
from repro.simt.primitives import Channel, Resource, Signal, SimEvent
from repro.simt.trace import Trace, TraceRecord

__all__ = [
    "Simulator",
    "FaultPlan",
    "Process",
    "Killed",
    "Crashed",
    "Signal",
    "SimEvent",
    "Resource",
    "Channel",
    "Trace",
    "TraceRecord",
]
