"""The original RT output path: strictly sequential per-process writes.

"In the original application, the write operation is performed
sequentially.  In other words, after seeking the starting position in a
file, processes write their local portion of data one by one."  A token
travels rank 0 → 1 → ... → P−1; each holder seeks and writes its portion
through a single stream — the single-controller bandwidth SDM's collective
writes blow past in Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.rt.driver import RTRunConfig, _even_block
from repro.apps.rt.model import evolve_interface, triangle_field_from_nodes
from repro.core.ring import owned_nodes_of
from repro.mesh.generators import RTProblem
from repro.mpi.job import RankContext
from repro.pfs.file import WR
from repro.pfs.filesystem import FileSystem

__all__ = ["run_rt_original"]


@dataclass
class RTOriginalResult:
    """Per-rank outcome of the original RT run."""

    bytes_written: int
    checksum: float


def run_rt_original(
    ctx: RankContext,
    problem: RTProblem,
    part_vector: np.ndarray,
    config: RTRunConfig = None,
) -> RTOriginalResult:
    """Run the original (sequential-write) RT template on one rank."""
    config = config or RTRunConfig()
    mesh = problem.mesh
    part_vector = np.asarray(part_vector, dtype=np.int64)
    fs: FileSystem = ctx.service("fs")
    comm = ctx.comm

    owned = owned_nodes_of(part_vector, ctx.rank)
    counts = comm.allgather(len(owned))
    node_block_start = int(sum(counts[: ctx.rank]))
    tri_start, tri_count = _even_block(problem.n_triangles, ctx.rank, ctx.size)
    my_triangles = problem.triangle_nodes[tri_start : tri_start + tri_count]

    token_tag = 555
    checksum = 0.0
    bytes_written = 0
    for t in range(config.timesteps):
        time = (t + 1) * config.dt
        amplitudes = evolve_interface(mesh.coords, time)
        node_vals = amplitudes[owned]
        tri_vals = triangle_field_from_nodes(amplitudes, my_triangles)
        ctx.proc.hold(
            ctx.machine.compute.elements(len(owned) + len(tri_vals), 4.0)
        )
        with ctx.phase("write"):
            for name, values, start_elem in (
                ("node_data", node_vals, node_block_start),
                ("triangle_data", tri_vals, tri_start),
            ):
                fname = f"rt-orig/{name}.t{t:06d}"
                if ctx.rank == 0:
                    fs.create(ctx.proc, fname, exist_ok=True)
                else:
                    comm.recv(source=ctx.rank - 1, tag=token_tag)
                handle = fs.open(ctx.proc, fname, WR)
                fs.write_at(ctx.proc, handle, start_elem * 8, values)
                fs.close(ctx.proc, handle)
                if ctx.rank < ctx.size - 1:
                    comm.send(None, dest=ctx.rank + 1, tag=token_tag)
                comm.barrier()
                bytes_written += len(values) * 8
        checksum += float(node_vals.sum()) + float(tri_vals.sum())

    return RTOriginalResult(bytes_written=bytes_written, checksum=checksum)
