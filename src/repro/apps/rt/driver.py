"""SDM-ported Rayleigh–Taylor template (the Figure 7 workload).

Per checkpoint the application writes two datasets:

* ``node_data`` — one double per mesh vertex, written "according to the
  global node number of the partitioned nodes" (irregular map-array view);
* ``triangle_data`` — one double per triangle, "written contiguously"
  (each rank owns a contiguous triangle block).

Level 1 puts each (dataset, step) in its own file; levels 2 and 3 are
identical here (the paper: "levels 2 and 3 are identical in this case",
since the two datasets already split cleanly into files).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.apps.rt.model import evolve_interface, triangle_field_from_nodes
from repro.core.api import SDM
from repro.core.layout import Organization
from repro.core.ring import owned_nodes_of
from repro.dtypes.primitives import DOUBLE
from repro.mesh.generators import RTProblem
from repro.mpi.job import RankContext

__all__ = ["RTRunConfig", "RTRunResult", "run_rt_sdm"]


@dataclass
class RTRunConfig:
    """Knobs of one RT template run."""

    organization: Organization = Organization.LEVEL_2
    timesteps: int = 5
    dt: float = 0.1
    storage_order: str = "canonical"
    """Checkpoint data path ("canonical" or exchange-free "chunked")."""

    reorganize_after: bool = False
    """Convert every chunked checkpoint to canonical order after the
    timestep loop (the deferred exchange, paid once)."""

    reorganize_mode: str = "sync"
    """"sync" pays the exchange on the application ranks; "background"
    queues it (and the follow-up compaction) on the maintenance tier."""

    compact_after: bool = False
    """After reorganization, compact the chunked checkpoint files down
    to their live bytes."""

    io_hints: Optional[dict] = None
    """MPI-IO hints the run's SDM passes on every file open (validated
    against the accepted-hint list at construction)."""

    policy: Optional[str] = None
    """``SDM(policy=...)`` spec: None/"static" keeps every hand-picked
    constant, "adaptive" closes the three self-tuning loops
    (:mod:`repro.core.policy`)."""


@dataclass
class RTRunResult:
    """Per-rank outcome."""

    bytes_written: int
    n_owned_nodes: int
    n_owned_triangles: int
    checksum: float


def _even_block(total: int, rank: int, size: int) -> tuple:
    base, rem = divmod(total, size)
    start = rank * base + min(rank, rem)
    count = base + (1 if rank < rem else 0)
    return start, count


def run_rt_sdm(
    ctx: RankContext,
    problem: RTProblem,
    part_vector: np.ndarray,
    config: RTRunConfig = None,
) -> RTRunResult:
    """Run the SDM-ported RT template on one rank (SPMD function)."""
    config = config or RTRunConfig()
    mesh = problem.mesh
    part_vector = np.asarray(part_vector, dtype=np.int64)

    sdm = SDM(
        ctx, "rt", organization=config.organization,
        problem_size=mesh.n_nodes, num_timesteps=config.timesteps,
        io_hints=config.io_hints,
        storage_order=config.storage_order,
        reorganize_mode=config.reorganize_mode,
        policy=config.policy,
    )
    result = sdm.make_datalist(["node_data", "triangle_data"])
    sdm.associate_attributes(
        [result[0]], data_type=DOUBLE, global_size=mesh.n_nodes
    )
    sdm.associate_attributes(
        [result[1]], data_type=DOUBLE, global_size=problem.n_triangles
    )
    handle = sdm.set_attributes(result)

    owned = owned_nodes_of(part_vector, ctx.rank)
    sdm.data_view(handle, "node_data", owned)
    tri_start, tri_count = _even_block(problem.n_triangles, ctx.rank, ctx.size)
    tri_map = np.arange(tri_start, tri_start + tri_count, dtype=np.int64)
    sdm.data_view(handle, "triangle_data", tri_map)
    my_triangles = problem.triangle_nodes[tri_start : tri_start + tri_count]

    checksum = 0.0
    bytes_written = 0
    for t in range(config.timesteps):
        time = (t + 1) * config.dt
        # Whole-field evaluation is pure; each rank extracts its pieces.
        amplitudes = evolve_interface(mesh.coords, time)
        node_vals = amplitudes[owned]
        tri_vals = triangle_field_from_nodes(amplitudes, my_triangles)
        ctx.proc.hold(
            ctx.machine.compute.elements(len(owned) + len(tri_vals), 4.0)
        )
        with ctx.phase("write"):
            sdm.write(handle, "node_data", t, node_vals)
            sdm.write(handle, "triangle_data", t, tri_vals)
        bytes_written += (len(node_vals) + len(tri_vals)) * 8
        checksum += float(node_vals.sum()) + float(tri_vals.sum())

    if config.reorganize_after and config.storage_order == "chunked":
        with ctx.phase("reorganize"):
            for t in range(config.timesteps):
                sdm.reorganize(handle, "node_data", t)
                sdm.reorganize(handle, "triangle_data", t)
        if config.compact_after:
            files = sdm.chunked_checkpoint_files(
                handle, range(config.timesteps)
            )
            for fname in files:
                sdm.compact(fname, mode=config.reorganize_mode)

    sdm.finalize(handle)
    return RTRunResult(
        bytes_written=bytes_written,
        n_owned_nodes=len(owned),
        n_owned_triangles=tri_count,
        checksum=checksum,
    )
