"""A minimal Rayleigh–Taylor interface model.

The paper's RT code studies thermonuclear flashes; its relevant behaviour
for SDM is purely its *output pattern*: at each checkpoint it writes a node
dataset (vertex field) and a triangle dataset (face field) of fixed byte
ratio.  The model here grows sinusoidal interface perturbations with the
classic RT linear growth rate so the written fields are deterministic,
physical-looking functions of (coordinates, time) — verifiable after read-
back — while the data volumes match the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RTState", "evolve_interface", "triangle_field_from_nodes"]

ATWOOD = 0.5
GRAVITY = 9.81
WAVENUMBERS = ((2.0, 3.0), (5.0, 1.0), (1.0, 7.0))
"""Perturbation modes (kx, ky) seeding the instability."""


@dataclass
class RTState:
    """Interface state: per-node amplitude at the current time."""

    time: float
    node_amplitude: np.ndarray


def _mode_pattern(coords: np.ndarray, kx: float, ky: float) -> np.ndarray:
    return np.sin(kx * coords[:, 0]) * np.cos(ky * coords[:, 1])


def evolve_interface(
    coords: np.ndarray, time: float, *, atwood: float = ATWOOD
) -> np.ndarray:
    """Node amplitudes at ``time``: modes grow as ``exp(sqrt(A g k) t)``.

    Pure function of coordinates and time, so every rank can evaluate its
    own nodes without communication (the real code communicates; SDM's
    measured phases exclude compute either way).
    """
    total = np.zeros(len(coords))
    for kx, ky in WAVENUMBERS:
        k = np.hypot(kx, ky)
        growth = np.sqrt(atwood * GRAVITY * k)
        total += 1e-3 * np.exp(growth * time) * _mode_pattern(coords, kx, ky)
    return total


def triangle_field_from_nodes(
    node_values_global: np.ndarray, triangle_nodes: np.ndarray
) -> np.ndarray:
    """Face field: mean of the three vertex amplitudes per triangle."""
    return node_values_global[triangle_nodes].mean(axis=1)
