"""Rayleigh–Taylor instability application template."""

from repro.apps.rt.model import RTState, evolve_interface
from repro.apps.rt.driver import RTRunConfig, run_rt_sdm
from repro.apps.rt.original import run_rt_original

__all__ = [
    "RTState",
    "evolve_interface",
    "RTRunConfig",
    "run_rt_sdm",
    "run_rt_original",
]
