"""The edge-based compute kernel of the FUN3D template.

A vertex-centered unstructured solver sweeps over edges: each edge computes
a flux from its endpoint states and scatter-adds contributions to both
endpoint nodes.  Contributions to *ghost* nodes (owned elsewhere) are then
shipped to the owner and summed, the standard halo reduction.

The arithmetic here is a stand-in (antisymmetric flux, conservative
scatter); what matters for the reproduction is that it is a real,
deterministic computation whose outputs the I/O tests can verify, with the
paper's exact data-access structure (indirection through edge1/edge2).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.mpi.job import RankContext

__all__ = ["localize", "edge_sweep", "update_ghosts"]


def localize(node_map: np.ndarray, global_ids: np.ndarray) -> np.ndarray:
    """Translate global node ids to local indices within ``node_map``.

    ``node_map`` must be sorted (SDM's maps are) and contain every id.
    """
    idx = np.searchsorted(node_map, global_ids)
    return idx


def edge_sweep(
    e1_local: np.ndarray,
    e2_local: np.ndarray,
    x_edge: np.ndarray,
    y_node: np.ndarray,
    ctx: RankContext = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """One flux sweep: returns nodal accumulations ``(p, q)``.

    ``p`` receives an antisymmetric flux (conservation: contributions to the
    two endpoints cancel), ``q`` a symmetric one.  Vectorized with
    ``np.add.at``; compute time is charged to ``ctx`` if given.
    """
    n_nodes = len(y_node)
    flux = x_edge * (y_node[e1_local] - y_node[e2_local])
    p = np.zeros(n_nodes)
    np.add.at(p, e1_local, flux)
    np.add.at(p, e2_local, -flux)
    sym = x_edge * (y_node[e1_local] + y_node[e2_local])
    q = np.zeros(n_nodes)
    np.add.at(q, e1_local, sym)
    np.add.at(q, e2_local, sym)
    if ctx is not None:
        ctx.proc.hold(ctx.machine.compute.elements(len(x_edge), 8.0))
    return p, q


def update_ghosts(
    ctx: RankContext,
    node_map: np.ndarray,
    part_vector: np.ndarray,
    *fields: np.ndarray,
) -> Tuple[np.ndarray, ...]:
    """Refresh ghost-node *values* from their owners (halo update).

    Note on the paper's distribution: because a ghost edge is replicated on
    **both** sides of a cut, every edge incident to an owned node is local,
    so an edge sweep's accumulations at owned nodes are already complete —
    no sum-reduction is needed (that replication "to minimize communication
    volumes" is exactly the point).  What *is* needed between timesteps is
    the opposite direction: ghost copies of nodal state must be refreshed
    from their owners before the next sweep reads them.

    Implemented as two ``alltoallv`` rounds: ghost-id requests to owners,
    then values back.  Works on any number of fields per call, so several
    state arrays share one exchange.
    """
    comm = ctx.comm
    owner = part_vector[node_map]
    ghost_idx = np.flatnonzero(owner != ctx.rank)
    # Round 1: tell each owner which of its nodes we hold as ghosts.
    requests = [None] * comm.size
    if len(ghost_idx):
        by_owner = owner[ghost_idx]
        order = np.argsort(by_owner, kind="stable")
        ghost_sorted = ghost_idx[order]
        owners_sorted = by_owner[order]
        bounds = np.searchsorted(owners_sorted, np.arange(comm.size + 1))
        for r in range(comm.size):
            lo, hi = bounds[r], bounds[r + 1]
            if lo == hi or r == ctx.rank:
                continue
            requests[r] = node_map[ghost_sorted[lo:hi]]
    incoming = comm.alltoallv(requests)
    # Round 2: serve values for the requested nodes.
    replies = [None] * comm.size
    for src, gids in enumerate(incoming):
        if gids is None:
            continue
        local = localize(node_map, gids)
        replies[src] = [f[local] for f in fields]
    served = comm.alltoallv(replies)
    out = tuple(f.copy() for f in fields)
    for src, entry in enumerate(served):
        if entry is None or requests[src] is None:
            continue
        local = localize(node_map, requests[src])
        for f_out, vals in zip(out, entry):
            f_out[local] = vals
    ctx.proc.hold(
        ctx.machine.compute.elements(max(len(ghost_idx), 1), len(fields) * 2.0)
    )
    return out
