"""The SDM-ported FUN3D template (the flow of Figures 2 and 3).

Phases are timed under the paper's names so Figure 5 can be regenerated:

* ``import``       — reading edges and the eight data arrays,
* ``index_distri`` — partitioning the edges (ring, or history read),
* ``write`` / ``read`` — checkpoint output and read-back (Figure 6).

The checkpoint group mirrors the paper's output: four node-sized datasets
plus one five-times-node-sized dataset (the 4 x 21 MB + 105 MB of Section
4), written every ``checkpoint_every`` steps for ``timesteps`` steps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.apps.fun3d.kernel import edge_sweep, update_ghosts, localize
from repro.core.api import SDM
from repro.core.layout import Organization
from repro.dtypes.primitives import DOUBLE
from repro.mesh.generators import FUN3D_EDGE_ARRAYS, FUN3D_NODE_ARRAYS, Fun3dProblem
from repro.mesh.meshfile import mesh_file_layout
from repro.mpi.job import RankContext

__all__ = ["Fun3dRunConfig", "Fun3dRunResult", "run_fun3d_sdm"]

NODE_DATASETS = ("p", "q", "r", "s")
"""The four node-sized output datasets (the paper's 4 x 21 MB)."""

BIG_DATASET = "res"
BIG_FACTOR = 5
"""The single large dataset is 5x node size (the paper's 105 MB)."""


@dataclass
class Fun3dRunConfig:
    """Knobs of one FUN3D template run."""

    organization: Organization = Organization.LEVEL_2
    timesteps: int = 2
    checkpoint_every: int = 1
    register_history: bool = True
    read_back: bool = False
    """Also read every checkpoint back (the read half of Figure 6)."""

    storage_order: str = "canonical"
    """Checkpoint data path: "canonical" exchanges into global order at
    write time, "chunked" appends distribution order exchange-free."""

    reorganize_after: bool = False
    """Reorganize every chunked checkpoint into canonical order after the
    timestep loop (the deferred exchange, paid once, off the hot path)."""

    reorganize_mode: str = "sync"
    """How ``reorganize_after`` pays the exchange: "sync" runs it
    collectively on the application ranks; "background" enqueues it on
    the maintenance service's per-rank workers, off the critical path."""

    compact_after: bool = False
    """After reorganization, queue a compaction of every chunked
    checkpoint file, reclaiming the dead regions the reorganizations
    left (runs on the maintenance workers, behind the reorganize jobs)."""

    wait_history: bool = False
    """Block (in virtual time) until this rank's history slice is on
    disk before continuing — read-your-writes on the registered history
    instead of busy-checking ``HistoryRegistration.done``."""

    io_hints: Optional[Dict[str, int]] = None
    """MPI-IO hints the run's SDM passes on every file open (validated
    against the accepted-hint list at construction)."""

    policy: Optional[str] = None
    """``SDM(policy=...)`` spec: None/"static" keeps every hand-picked
    constant, "adaptive" closes the three self-tuning loops
    (:mod:`repro.core.policy`)."""

    mesh_file: str = "uns3d.msh"


@dataclass
class Fun3dRunResult:
    """Per-rank outcome (inspected by tests and benchmarks)."""

    used_history: bool
    n_local_edges: int
    n_local_nodes: int
    bytes_written: int
    checksum: float
    read_checksum: Optional[float] = None


def run_fun3d_sdm(
    ctx: RankContext,
    problem: Fun3dProblem,
    part_vector: np.ndarray,
    config: Fun3dRunConfig = None,
) -> Fun3dRunResult:
    """Run the SDM-ported FUN3D template on one rank (SPMD function)."""
    config = config or Fun3dRunConfig()
    mesh = problem.mesh
    layout = mesh_file_layout(
        mesh.n_edges, mesh.n_nodes, list(FUN3D_EDGE_ARRAYS), list(FUN3D_NODE_ARRAYS)
    )
    sdm = SDM(
        ctx, "fun3d", organization=config.organization,
        problem_size=mesh.n_edges, num_timesteps=config.timesteps,
        io_hints=config.io_hints,
        storage_order=config.storage_order,
        reorganize_mode=config.reorganize_mode,
        policy=config.policy,
    )

    # ------------------------------------------------------- Figure 3 ----
    sdm.make_importlist(
        ["edge1", "edge2", *FUN3D_EDGE_ARRAYS, *FUN3D_NODE_ARRAYS],
        file_name=config.mesh_file,
        index_names=["edge1", "edge2"],
    )
    with ctx.phase("import"):
        chunk = sdm.import_index(
            "edge1", "edge2",
            layout.offset("edge1"), layout.offset("edge2"), mesh.n_edges,
        )
    with ctx.phase("index_distri"):
        sdm.partition_table(part_vector)
        local = sdm.partition_index(part_vector, chunk)
    used_history = chunk is None
    # spmdlint: ok(rank-branch) a history hit is a shared metadata decision, so import_index returns None on every rank or on none
    if config.register_history and not used_history:
        registration = sdm.index_registry(local)
        if config.wait_history:
            registration.wait(ctx.proc)

    edge_data: Dict[str, np.ndarray] = {}
    node_data: Dict[str, np.ndarray] = {}
    with ctx.phase("import"):
        for name in FUN3D_EDGE_ARRAYS:
            edge_data[name] = sdm.import_irregular(
                name, layout.offset(name), mesh.n_edges, local.edge_map
            )
        for name in FUN3D_NODE_ARRAYS:
            node_data[name] = sdm.import_irregular(
                name, layout.offset(name), mesh.n_nodes, local.node_map
            )
    sdm.release_importlist()

    # ------------------------------------------------------- Figure 2 ----
    result = sdm.make_datalist([*NODE_DATASETS, BIG_DATASET])
    sdm.associate_attributes(result[:4], data_type=DOUBLE,
                             global_size=mesh.n_nodes)
    sdm.associate_attributes(result[4:], data_type=DOUBLE,
                             global_size=BIG_FACTOR * mesh.n_nodes)
    handle = sdm.set_attributes(result)

    owned = local.owned_nodes
    for name in NODE_DATASETS:
        sdm.data_view(handle, name, owned)
    big_map = (owned[:, None] * BIG_FACTOR + np.arange(BIG_FACTOR)[None, :]).reshape(-1)
    sdm.data_view(handle, BIG_DATASET, big_map)

    e1l = localize(local.node_map, local.edge1)
    e2l = localize(local.node_map, local.edge2)
    x = edge_data[FUN3D_EDGE_ARRAYS[0]]
    y = node_data[FUN3D_NODE_ARRAYS[0]].copy()
    owned_sel = localize(local.node_map, owned)

    checksum = 0.0
    bytes_written = 0
    for t in range(config.timesteps):
        p, q = edge_sweep(e1l, e2l, x, y, ctx)
        p, q = update_ghosts(ctx, local.node_map, part_vector, p, q)
        y = y + 1e-3 * p  # advance the state so steps differ
        if (t + 1) % config.checkpoint_every == 0:
            fields = {
                "p": p[owned_sel],
                "q": q[owned_sel],
                "r": p[owned_sel] - q[owned_sel],
                "s": p[owned_sel] * 0.5,
            }
            with ctx.phase("write"):
                for name in NODE_DATASETS:
                    sdm.write(handle, name, t, fields[name])
                    bytes_written += len(owned) * 8
                big = np.repeat(fields["p"], BIG_FACTOR)
                sdm.write(handle, BIG_DATASET, t, big)
                bytes_written += len(big) * 8
            checksum += float(p[owned_sel].sum())

    if config.reorganize_after:
        with ctx.phase("reorganize"):
            for t in range(config.timesteps):
                if (t + 1) % config.checkpoint_every != 0:
                    continue
                for name in (*NODE_DATASETS, BIG_DATASET):
                    sdm.reorganize(handle, name, t)
        if config.compact_after and config.storage_order == "chunked":
            # Behind the reorganize jobs in queue order, so the pass sees
            # every dead region they leave.
            written = [
                t for t in range(config.timesteps)
                if (t + 1) % config.checkpoint_every == 0
            ]
            for fname in sdm.chunked_checkpoint_files(handle, written):
                sdm.compact(fname, mode=config.reorganize_mode)

    read_checksum = None
    if config.read_back:
        # Reads must not race pending background maintenance on the
        # checkpoint files (a no-op when nothing is queued).
        sdm.drain_maintenance()
        read_checksum = 0.0
        for t in range(config.timesteps):
            if (t + 1) % config.checkpoint_every != 0:
                continue
            with ctx.phase("read"):
                for name in NODE_DATASETS:
                    buf = np.empty(len(owned))
                    sdm.read(handle, name, t, buf)
                    read_checksum += float(buf.sum())
                buf = np.empty(len(owned) * BIG_FACTOR)
                sdm.read(handle, BIG_DATASET, t, buf)
                read_checksum += float(buf.sum())

    sdm.finalize(handle)
    return Fun3dRunResult(
        used_history=used_history,
        n_local_edges=local.n_local_edges,
        n_local_nodes=local.n_local_nodes,
        bytes_written=bytes_written,
        checksum=checksum,
        read_checksum=read_checksum,
    )
