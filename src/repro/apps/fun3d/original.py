"""The "original" FUN3D I/O structure (the paper's baseline).

Without SDM, the application's I/O is what Figure 5 labels *(Original)*:

* **Import** — process 0 alone reads every array from the mesh file (one
  sequential stream) and broadcasts it to everyone.
* **Index distribution** — every rank, holding the full edge list, makes
  *two* passes: one to count its edges (to size the allocation), one to
  store them — the count-then-read pattern SDM's ``realloc`` growth
  replaces.
* **Checkpoint writes** — processes write their portions one by one
  (token-passed sequential writes through a single stream).

Data results are identical to the SDM path; only the costs differ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.apps.fun3d.kernel import edge_sweep, update_ghosts, localize
from repro.core.ring import _EXAMINE_OPS_PER_EDGE, LocalPartition, owned_nodes_of
from repro.mesh.generators import FUN3D_EDGE_ARRAYS, FUN3D_NODE_ARRAYS, Fun3dProblem
from repro.mesh.meshfile import mesh_file_layout
from repro.mpi.job import RankContext
from repro.pfs.file import RD, WR
from repro.pfs.filesystem import FileSystem

__all__ = ["run_fun3d_original", "OriginalRunResult"]


@dataclass
class OriginalRunResult:
    """Per-rank outcome of the original-application run."""

    n_local_edges: int
    n_local_nodes: int
    bytes_written: int
    checksum: float


def _rank0_read_bcast(
    ctx: RankContext, fs: FileSystem, fname: str, offset: int, nbytes: int, dtype
) -> np.ndarray:
    """Process 0 reads a whole array sequentially, then broadcasts it."""
    data = None
    if ctx.rank == 0:
        h = fs.open(ctx.proc, fname, RD)
        data = fs.read_at(ctx.proc, h, offset, nbytes).view(dtype)
        fs.close(ctx.proc, h)
    return ctx.comm.bcast(data, root=0)


def run_fun3d_original(
    ctx: RankContext,
    problem: Fun3dProblem,
    part_vector: np.ndarray,
    timesteps: int = 2,
    checkpoint_every: int = 1,
    mesh_file: str = "uns3d.msh",
) -> OriginalRunResult:
    """Run the original (non-SDM) FUN3D template on one rank."""
    mesh = problem.mesh
    fs: FileSystem = ctx.service("fs")
    layout = mesh_file_layout(
        mesh.n_edges, mesh.n_nodes, list(FUN3D_EDGE_ARRAYS), list(FUN3D_NODE_ARRAYS)
    )
    compute = ctx.machine.compute
    part_vector = np.asarray(part_vector, dtype=np.int64)

    # ----------------------------------------------------------- import --
    with ctx.phase("import"):
        edge1 = _rank0_read_bcast(
            ctx, fs, mesh_file, layout.offset("edge1"), mesh.n_edges * 4, np.int32
        ).astype(np.int64)
        edge2 = _rank0_read_bcast(
            ctx, fs, mesh_file, layout.offset("edge2"), mesh.n_edges * 4, np.int32
        ).astype(np.int64)

    # ----------------------------------------------------- index distri --
    with ctx.phase("index_distri"):
        # Pass 1: count my edges (sizing pass the original needs).
        ctx.proc.hold(compute.elements(mesh.n_edges, _EXAMINE_OPS_PER_EDGE))
        keep = (part_vector[edge1] == ctx.rank) | (part_vector[edge2] == ctx.rank)
        n_mine = int(keep.sum())
        # Pass 2: store them into the exact-size allocation.
        ctx.proc.hold(compute.elements(mesh.n_edges, _EXAMINE_OPS_PER_EDGE))
        edge_map = np.flatnonzero(keep).astype(np.int64)
        le1, le2 = edge1[keep], edge2[keep]
        owned = owned_nodes_of(part_vector, ctx.rank)
        endpoints = (
            np.unique(np.concatenate([le1, le2]))
            if n_mine
            else np.empty(0, dtype=np.int64)
        )
        node_map = np.union1d(owned, endpoints)
        local = LocalPartition(
            edge_map=edge_map, edge1=le1, edge2=le2,
            node_map=node_map, owned_nodes=owned,
        )

    # Import data arrays: rank 0 reads, broadcasts; ranks pick their parts.
    edge_data: Dict[str, np.ndarray] = {}
    node_data: Dict[str, np.ndarray] = {}
    with ctx.phase("import"):
        for name in FUN3D_EDGE_ARRAYS:
            whole = _rank0_read_bcast(
                ctx, fs, mesh_file, layout.offset(name),
                mesh.n_edges * 8, np.float64,
            )
            ctx.proc.hold(compute.elements(len(local.edge_map)))
            edge_data[name] = whole[local.edge_map]
        for name in FUN3D_NODE_ARRAYS:
            whole = _rank0_read_bcast(
                ctx, fs, mesh_file, layout.offset(name),
                mesh.n_nodes * 8, np.float64,
            )
            ctx.proc.hold(compute.elements(len(local.node_map)))
            node_data[name] = whole[local.node_map]

    # ------------------------------------------------------ computation --
    e1l = localize(local.node_map, local.edge1)
    e2l = localize(local.node_map, local.edge2)
    x = edge_data[FUN3D_EDGE_ARRAYS[0]]
    y = node_data[FUN3D_NODE_ARRAYS[0]].copy()
    owned_sel = localize(local.node_map, owned)

    # Node-block offsets for sequential writes: rank r's owned values land
    # as one block, ordered by rank (the original's file layout).
    counts = ctx.comm.allgather(len(owned))
    my_block_start = int(sum(counts[: ctx.rank]))
    total_nodes = int(sum(counts))

    checksum = 0.0
    bytes_written = 0
    token_tag = 777
    for t in range(timesteps):
        p, q = edge_sweep(e1l, e2l, x, y, ctx)
        p, q = update_ghosts(ctx, local.node_map, part_vector, p, q)
        y = y + 1e-3 * p
        if (t + 1) % checkpoint_every == 0:
            fields = [
                ("p", p[owned_sel]), ("q", q[owned_sel]),
                ("r", p[owned_sel] - q[owned_sel]), ("s", p[owned_sel] * 0.5),
                ("res", np.repeat(p[owned_sel], 5)),
            ]
            with ctx.phase("write"):
                for name, values in fields:
                    fname = f"fun3d-orig/{name}.t{t:06d}"
                    elem_start = (
                        my_block_start * (5 if name == "res" else 1)
                    )
                    # Token-passed strictly sequential writes.
                    if ctx.rank == 0:
                        fs.create(ctx.proc, fname, exist_ok=True)
                    else:
                        ctx.comm.recv(source=ctx.rank - 1, tag=token_tag)
                    h = fs.open(ctx.proc, fname, WR)
                    fs.write_at(ctx.proc, h, elem_start * 8, values)
                    fs.close(ctx.proc, h)
                    if ctx.rank < ctx.size - 1:
                        ctx.comm.send(None, dest=ctx.rank + 1, tag=token_tag)
                    ctx.comm.barrier()
                    bytes_written += len(values) * 8
            checksum += float(p[owned_sel].sum())
    del total_nodes
    return OriginalRunResult(
        n_local_edges=local.n_local_edges,
        n_local_nodes=local.n_local_nodes,
        bytes_written=bytes_written,
        checksum=checksum,
    )
