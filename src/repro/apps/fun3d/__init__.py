"""FUN3D-like unstructured CFD application template."""

from repro.apps.fun3d.kernel import edge_sweep, update_ghosts, localize
from repro.apps.fun3d.driver import Fun3dRunConfig, run_fun3d_sdm
from repro.apps.fun3d.original import run_fun3d_original

__all__ = [
    "localize",
    "edge_sweep",
    "update_ghosts",
    "Fun3dRunConfig",
    "run_fun3d_sdm",
    "run_fun3d_original",
]
