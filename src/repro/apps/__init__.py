"""Application templates: the paper's two evaluation workloads.

* :mod:`repro.apps.fun3d` — the tetrahedral vertex-centered unstructured
  CFD template (W. K. Anderson's FUN3D): edge-based flux sweeps over an
  irregular mesh, importing edges + 4 edge arrays + 4 node arrays, writing
  five datasets per checkpoint.  Comes in an SDM-ported version and the
  "original" version (process 0 reads and broadcasts; two-step edge read;
  per-process writes).
* :mod:`repro.apps.rt` — the Rayleigh–Taylor instability template: writes a
  node dataset and a triangle dataset per checkpoint; SDM-ported (collective
  MPI-IO) and original (strictly sequential per-process writes).
"""
