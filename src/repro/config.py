"""Machine cost models for the simulated Origin2000-class testbed.

Every subsystem that charges virtual time (network transfers, disk/controller
transfers, file opens, database queries, per-element compute) reads its cost
parameters from a :class:`MachineModel`.  The model is deliberately small —
latency/bandwidth pairs plus fixed per-operation costs — because the paper's
results depend on the *relative* magnitude of these terms (e.g. file-open cost
vs. transfer time, one controller vs. ten), not on microarchitectural detail.

Profiles
--------

``origin2000()``
    Calibrated so the three evaluation figures of the paper keep their shape:
    aggregate parallel I/O in the low-hundreds of MB/s, single-stream I/O an
    order of magnitude lower, *low* file-open/view costs (the paper's stated
    reason levels 1/2/3 barely differ on the Origin2000).

``high_open_cost()``
    Same machine but with expensive file-open/view/close — the hypothetical
    file system the paper argues level 3 exists for.  Used by the open-cost
    ablation benchmark.

``fast_test()``
    Tiny fixed costs; used by unit tests that only check behavioural
    correctness and event ordering, not performance shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = [
    "NetworkModel",
    "ComputeModel",
    "StorageModel",
    "DatabaseModel",
    "CollectiveIOModel",
    "MachineModel",
    "origin2000",
    "high_open_cost",
    "fast_test",
]

MB = 1024.0 * 1024.0
"""One mebibyte in bytes (used throughout for bandwidth bookkeeping)."""


@dataclass
class NetworkModel:
    """Point-to-point message cost: ``latency + bytes / bandwidth``.

    Collectives are built from point-to-point messages (log-tree algorithms),
    so their cost emerges from this model rather than being parameterized
    separately.
    """

    latency: float = 15e-6
    """Per-message latency in seconds (software + wire)."""

    bandwidth: float = 160.0 * MB
    """Per-link bandwidth in bytes/second."""

    def transfer_time(self, nbytes: float) -> float:
        """Time to move ``nbytes`` over one link, including latency."""
        return self.latency + float(nbytes) / self.bandwidth


@dataclass
class ComputeModel:
    """Per-element costs of the CPU-side work SDM performs."""

    element_op: float = 2.0e-8
    """Seconds per simple per-element operation (compare, copy, hash probe).

    Roughly a 50 M element-ops/s irregular-access rate, in the right range for
    a 250 MHz R10000 chasing pointers.
    """

    memcpy_bandwidth: float = 180.0 * MB
    """Bytes/second for bulk buffer copies (pack/unpack, sieving copies)."""

    def elements(self, n: float, ops_per_element: float = 1.0) -> float:
        """Time to process ``n`` elements at ``ops_per_element`` each."""
        return float(n) * ops_per_element * self.element_op

    def copy_time(self, nbytes: float) -> float:
        """Time to memcpy ``nbytes``."""
        return float(nbytes) / self.memcpy_bandwidth


@dataclass
class StorageModel:
    """Parallel file system cost model (XFS over FC controllers).

    Concurrency is modelled at the *controller* level: the file system can
    serve ``n_controllers`` requests at full stream rate simultaneously;
    further requests queue.  A single sequential writer therefore sees one
    controller's bandwidth, while a 64-rank collective write saturates the
    aggregate — which is precisely the original-vs-SDM gap in Figure 7.
    """

    n_controllers: int = 10
    """Concurrent full-rate I/O streams (paper: 10 FibreChannel controllers)."""

    stream_read_bandwidth: float = 18.0 * MB
    """Bytes/second one request stream achieves for reads.

    Calibrated so aggregate reads land in the paper's Figure 6 range
    (~120–150 MB/s over 10 controllers) while a single sequential stream
    matches the original applications' observed rates."""

    stream_write_bandwidth: float = 12.0 * MB
    """Bytes/second one request stream achieves for writes (buffered XFS).

    Aggregate ~120 MB/s (Figure 6 writes); single stream ~12 MB/s
    (Figure 7's original application)."""

    stripe_size: int = 64 * 1024
    """Round-robin striping unit in bytes."""

    request_overhead: float = 0.8e-3
    """Fixed seconds per I/O request (client syscall + server dispatch)."""

    run_overhead: float = 60e-6
    """Extra seconds per additional noncontiguous run within one request."""

    file_open_cost: float = 1.2e-3
    """Seconds for one process to open a file (namespace lookup, locks)."""

    file_close_cost: float = 0.4e-3
    """Seconds for one process to close a file."""

    file_view_cost: float = 0.9e-3
    """Seconds to install an MPI-IO file view (datatype decode + commit)."""

    metadata_op_cost: float = 1.0e-3
    """Seconds for a namespace metadata operation (create, stat, unlink)."""

    def stream_time(self, nbytes: float, *, write: bool, runs: int = 1) -> float:
        """Service time of one request once it holds a controller."""
        bw = self.stream_write_bandwidth if write else self.stream_read_bandwidth
        extra_runs = max(int(runs) - 1, 0)
        return self.request_overhead + extra_runs * self.run_overhead + float(nbytes) / bw


@dataclass
class DatabaseModel:
    """Metadata database (MySQL in the paper) access costs."""

    connect_cost: float = 30e-3
    """Seconds to establish the connection (charged in SDM_initialize)."""

    query_cost: float = 2.5e-3
    """Fixed seconds per SQL statement (parse + network round trip)."""

    row_cost: float = 20e-6
    """Additional seconds per row returned/affected."""

    def statement_time(self, rows: int = 1) -> float:
        """Time for one statement touching ``rows`` rows."""
        return self.query_cost + max(int(rows), 0) * self.row_cost


@dataclass
class CollectiveIOModel:
    """Tunables of the two-phase collective I/O implementation (ROMIO-style)."""

    cb_buffer_size: int = 4 * 1024 * 1024
    """Collective-buffering buffer size per aggregator, in bytes."""

    cb_nodes: int = 0
    """Number of aggregator ranks; 0 means "choose automatically"
    (min(communicator size, 2 × n_controllers))."""

    ds_buffer_size: int = 512 * 1024
    """Data-sieving buffer size for independent noncontiguous access."""

    ds_threshold_gap: int = 256 * 1024
    """Hole size above which data sieving splits into separate requests."""

    coalesce_gap: int = 0
    """Largest hole (bytes) the read-side run coalescer bridges at the
    *source* rank before a request is issued: holes up to this size are
    read and discarded to save a request (the data-sieving trade, applied
    before the runs ever reach the exchange phase).  0 merges only
    exactly-adjacent runs — always beneficial, never wasteful.  The
    sentinel -1 (``repro.mpiio.runs.ADAPTIVE_GAP``) derives the gap per
    read from that read's own hole distribution."""

    coalesce_waste: float = 0.25
    """Adaptive-gap budget: largest fraction of a read's payload that
    bridged (read-and-discarded) hole bytes may occupy.  Only consulted
    when ``coalesce_gap`` is the adaptive sentinel."""


@dataclass
class MachineModel:
    """Complete cost model of the simulated machine."""

    name: str = "origin2000"
    network: NetworkModel = field(default_factory=NetworkModel)
    compute: ComputeModel = field(default_factory=ComputeModel)
    storage: StorageModel = field(default_factory=StorageModel)
    database: DatabaseModel = field(default_factory=DatabaseModel)
    collective_io: CollectiveIOModel = field(default_factory=CollectiveIOModel)

    def with_storage(self, **kwargs) -> "MachineModel":
        """Return a copy with selected storage parameters replaced."""
        return replace(self, storage=replace(self.storage, **kwargs))

    def with_network(self, **kwargs) -> "MachineModel":
        """Return a copy with selected network parameters replaced."""
        return replace(self, network=replace(self.network, **kwargs))

    def with_collective_io(self, **kwargs) -> "MachineModel":
        """Return a copy with selected collective-I/O parameters replaced."""
        return replace(self, collective_io=replace(self.collective_io, **kwargs))

    def aggregate_read_bandwidth(self) -> float:
        """Peak aggregate read bandwidth in bytes/second."""
        s = self.storage
        return s.n_controllers * s.stream_read_bandwidth

    def aggregate_write_bandwidth(self) -> float:
        """Peak aggregate write bandwidth in bytes/second."""
        s = self.storage
        return s.n_controllers * s.stream_write_bandwidth


def origin2000() -> MachineModel:
    """The paper's testbed: 128-proc SGI Origin2000 + XFS, low open costs."""
    return MachineModel(name="origin2000")


def high_open_cost() -> MachineModel:
    """Origin2000 compute/network but a file system with expensive opens.

    This is the hypothetical target the paper motivates level-3 organization
    with ("if a file system has high file-open and file-close costs ... SDM
    can generate a very small number of files").
    """
    m = origin2000()
    m = m.with_storage(
        file_open_cost=90e-3,
        file_close_cost=30e-3,
        file_view_cost=25e-3,
        metadata_op_cost=40e-3,
    )
    m.name = "high_open_cost"
    return m


def fast_test() -> MachineModel:
    """Cheap uniform costs for behaviour-only unit tests."""
    return MachineModel(
        name="fast_test",
        network=NetworkModel(latency=1e-6, bandwidth=1e9),
        compute=ComputeModel(element_op=1e-9, memcpy_bandwidth=1e10),
        storage=StorageModel(
            n_controllers=4,
            stream_read_bandwidth=1e9,
            stream_write_bandwidth=1e9,
            request_overhead=1e-6,
            run_overhead=1e-7,
            file_open_cost=1e-6,
            file_close_cost=1e-6,
            file_view_cost=1e-6,
            metadata_op_cost=1e-6,
        ),
        database=DatabaseModel(connect_cost=1e-6, query_cost=1e-6, row_cost=1e-8),
    )
