"""SDM — the Scientific Data Manager (the paper's contribution).

The runtime library that fronts MPI-IO and the metadata database for
irregular applications.  Each rank constructs an :class:`SDM` instance
(``SDM_initialize``), describes its datasets (``make_datalist`` /
``set_attributes``), imports and partitions mesh data (``make_importlist`` /
``import_contiguous`` / ``partition_table`` / ``partition_index`` /
``import_irregular``), optionally registers the index distribution in a
*history file* (``index_registry``), and then writes checkpoint results
(``data_view`` / ``write``) under one of three file-organization levels
and one of two storage orders — canonical (global order, exchanged at
write time) or chunked (distribution order, exchange-free, reorganizable
later via ``reorganize``).  A third axis, *maintenance*, moves the
expensive after-work off the application's critical path: background
reorganization, chunked-file compaction, and asynchronous history writes
all run on the per-rank daemon workers of
:class:`~repro.core.maintenance.MaintenanceService` (``reorganize_mode=
"background"``, ``SDM.compact``, ``SDM.drain_maintenance``).

See :mod:`repro.core.api` for the class, :mod:`repro.core.datapath` for
the storage-order strategies, :mod:`repro.core.maintenance` for the
service tier, and :mod:`repro.core.papi` for C-style aliases that mirror
the paper's Figures 2 and 3 line by line.
"""

from repro.core.datapath import (
    CanonicalOrder,
    ChunkedOrder,
    IndexBlockCache,
    StorageOrder,
)
from repro.core.groups import DataGroup, DatasetAttrs, ImportAttrs
from repro.core.layout import CANONICAL, CHUNKED, Organization
from repro.core.api import SDM
from repro.core.maintenance import COMPACT, REORGANIZE, MaintenanceService
from repro.core.services import sdm_services, snapshot_services

__all__ = [
    "SDM",
    "Organization",
    "StorageOrder",
    "CanonicalOrder",
    "ChunkedOrder",
    "IndexBlockCache",
    "MaintenanceService",
    "REORGANIZE",
    "COMPACT",
    "CANONICAL",
    "CHUNKED",
    "DatasetAttrs",
    "ImportAttrs",
    "DataGroup",
    "sdm_services",
    "snapshot_services",
]
