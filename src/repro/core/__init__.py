"""SDM — the Scientific Data Manager (the paper's contribution).

The runtime library that fronts MPI-IO and the metadata database for
irregular applications.  Each rank constructs an :class:`SDM` instance
(``SDM_initialize``), describes its datasets (``make_datalist`` /
``set_attributes``), imports and partitions mesh data (``make_importlist`` /
``import_contiguous`` / ``partition_table`` / ``partition_index`` /
``import_irregular``), optionally registers the index distribution in a
*history file* (``index_registry``), and then writes checkpoint results
(``data_view`` / ``write``) under one of three file-organization levels
and one of two storage orders — canonical (global order, exchanged at
write time) or chunked (distribution order, exchange-free, reorganizable
later via ``reorganize``).

See :mod:`repro.core.api` for the class, :mod:`repro.core.datapath` for
the storage-order strategies, and :mod:`repro.core.papi` for C-style
aliases that mirror the paper's Figures 2 and 3 line by line.
"""

from repro.core.datapath import CanonicalOrder, ChunkedOrder, StorageOrder
from repro.core.groups import DataGroup, DatasetAttrs, ImportAttrs
from repro.core.layout import CANONICAL, CHUNKED, Organization
from repro.core.api import SDM
from repro.core.services import sdm_services, snapshot_services

__all__ = [
    "SDM",
    "Organization",
    "StorageOrder",
    "CanonicalOrder",
    "ChunkedOrder",
    "CANONICAL",
    "CHUNKED",
    "DatasetAttrs",
    "ImportAttrs",
    "DataGroup",
    "sdm_services",
    "snapshot_services",
]
