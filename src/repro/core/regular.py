"""Regular-application data views: block decompositions of dense arrays.

The paper positions SDM as "a high-level unified API for any kind of
application (regular or irregular)" — the regular side (from the authors'
companion SC2000 paper) distributes dense n-dimensional arrays in block
fashion and drives collective I/O through subarray filetypes instead of
map arrays.

:func:`block_decompose` computes each rank's sub-block of a global array
for a process grid; :func:`subarray_view` installs the corresponding
``MPI_Type_create_subarray`` view on a dataset, after which
:meth:`SDM.write` / :meth:`SDM.read` work unchanged (a subarray is just a
particular map array — we lower it to element ids, so permutation handling,
execution-table offsets, and organization levels all apply).

Example — a 2-D field on a 2x2 process grid::

    shape = (128, 128)
    sub, starts = block_decompose(shape, grid=(2, 2), rank=ctx.rank)
    subarray_view(sdm, handle, "field", shape, sub, starts)
    sdm.write(handle, "field", t, my_block.ravel())
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.core.api import SDM
from repro.core.groups import DataGroup
from repro.errors import SDMStateError

__all__ = ["block_decompose", "subarray_element_ids", "subarray_view"]


def block_decompose(
    shape: Sequence[int], grid: Sequence[int], rank: int
) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """Block decomposition of an n-D array over a process grid.

    Returns ``(subshape, starts)`` of ``rank``'s block; remainders spread
    over the leading blocks of each dimension (HPF BLOCK distribution).
    """
    shape = tuple(int(s) for s in shape)
    grid = tuple(int(g) for g in grid)
    if len(shape) != len(grid):
        raise SDMStateError(
            f"array rank {len(shape)} != process-grid rank {len(grid)}"
        )
    nprocs = int(np.prod(grid))
    if not (0 <= rank < nprocs):
        raise SDMStateError(f"rank {rank} outside grid of {nprocs}")
    for s, g in zip(shape, grid):
        if g < 1 or s < g:
            raise SDMStateError(
                f"cannot split dimension of size {s} over {g} processes"
            )
    # Rank -> grid coordinates, C order (last dimension fastest).
    coords = []
    rest = rank
    for g in reversed(grid):
        coords.append(rest % g)
        rest //= g
    coords = tuple(reversed(coords))
    subshape, starts = [], []
    for s, g, c in zip(shape, grid, coords):
        base, rem = divmod(s, g)
        count = base + (1 if c < rem else 0)
        start = c * base + min(c, rem)
        subshape.append(count)
        starts.append(start)
    return tuple(subshape), tuple(starts)


def subarray_element_ids(
    shape: Sequence[int], subshape: Sequence[int], starts: Sequence[int]
) -> np.ndarray:
    """Row-major global element ids of a sub-block (sorted ascending)."""
    shape = tuple(int(s) for s in shape)
    subshape = tuple(int(s) for s in subshape)
    starts = tuple(int(s) for s in starts)
    if not (len(shape) == len(subshape) == len(starts)):
        raise SDMStateError("shape/subshape/starts rank mismatch")
    for full, sub, st in zip(shape, subshape, starts):
        if st < 0 or sub < 0 or st + sub > full:
            raise SDMStateError(
                f"sub-block [{st}, {st + sub}) exceeds dimension {full}"
            )
    strides = np.ones(len(shape), dtype=np.int64)
    for i in range(len(shape) - 2, -1, -1):
        strides[i] = strides[i + 1] * shape[i + 1]
    grids = np.meshgrid(
        *[np.arange(st, st + sub, dtype=np.int64)
          for st, sub in zip(starts, subshape)],
        indexing="ij",
    )
    ids = sum(g * s for g, s in zip(grids, strides))
    return ids.reshape(-1)


def subarray_view(
    sdm: SDM,
    handle: DataGroup,
    name: str,
    shape: Sequence[int],
    subshape: Sequence[int],
    starts: Sequence[int],
) -> None:
    """Install a block (subarray) data view on a dataset.

    The dataset's ``global_size`` must equal ``prod(shape)``.  Buffers
    passed to ``write``/``read`` afterwards are the flattened (C-order)
    sub-block.
    """
    attrs = handle.dataset(name)
    total = int(np.prod([int(s) for s in shape]))
    if attrs.global_size != total:
        raise SDMStateError(
            f"dataset {name!r} has global_size {attrs.global_size}, "
            f"but shape {tuple(shape)} holds {total} elements"
        )
    sdm.data_view(handle, name, subarray_element_ids(shape, subshape, starts))
