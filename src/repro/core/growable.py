"""Growable arrays with capacity doubling — the paper's ``realloc`` trick.

The original FUN3D reads the edge list twice: once to count each rank's
partitioned edges, once to store them.  SDM instead appends into buffers
that double when full, reading the data in a single pass; the paper credits
this for part of the reduced ``index distri.`` cost.  These helpers are that
mechanism (plus an append-count so the cost model can charge for the copies
growth performs).
"""

from __future__ import annotations

import numpy as np

__all__ = ["GrowableArray"]


class GrowableArray:
    """An append-only typed array with doubling capacity."""

    def __init__(self, dtype=np.int64, initial_capacity: int = 1024) -> None:
        if initial_capacity < 1:
            raise ValueError("initial_capacity must be positive")
        self._buf = np.empty(initial_capacity, dtype=dtype)
        self._len = 0
        self.n_grows = 0
        self.bytes_copied = 0

    def __len__(self) -> int:
        return self._len

    @property
    def capacity(self) -> int:
        """Allocated element slots."""
        return len(self._buf)

    def _ensure(self, extra: int) -> None:
        need = self._len + extra
        if need <= len(self._buf):
            return
        new_cap = len(self._buf)
        while new_cap < need:
            new_cap *= 2
        grown = np.empty(new_cap, dtype=self._buf.dtype)
        grown[: self._len] = self._buf[: self._len]
        self.bytes_copied += self._len * self._buf.itemsize
        self.n_grows += 1
        self._buf = grown

    def append(self, value) -> None:
        """Append one element."""
        self._ensure(1)
        self._buf[self._len] = value
        self._len += 1

    def extend(self, values: np.ndarray) -> None:
        """Append a batch of elements."""
        values = np.asarray(values, dtype=self._buf.dtype)
        self._ensure(len(values))
        self._buf[self._len : self._len + len(values)] = values
        self._len += len(values)

    def view(self) -> np.ndarray:
        """Zero-copy view of the current contents."""
        return self._buf[: self._len]

    def array(self) -> np.ndarray:
        """Copy of the current contents."""
        return self._buf[: self._len].copy()
