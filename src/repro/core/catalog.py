"""Run catalog: browsing and reading SDM output without the producing code.

The paper's future-work section plans "to develop SDM further to support
visualization applications" — tools that arrive after a simulation, knowing
nothing but the database, and want the data.  :class:`SDMCatalog` is that
support: it reconstructs everything a reader needs from the metadata tables
alone —

* which runs exist (``run_table``),
* which datasets each run produced, with types and global sizes
  (``access_pattern_table``),
* which timesteps of each dataset were written and where
  (``execution_table``) —

and rehydrates a :class:`~repro.core.groups.DataGroup` so
:meth:`~repro.core.api.SDM.read` works against a past run with no knowledge
of how it organized its files.

Use it from inside a simulated job::

    catalog = SDMCatalog.attach(ctx)
    runs = catalog.runs()
    steps = catalog.timesteps(runid=1, dataset="p")
    data = catalog.read_global(runid=1, dataset="p", timestep=steps[-1])
    catalog.release()          # drop the snapshot pin when done

A catalog attaches with a **snapshot pin** by default: it reads the
metadata epoch current at attach time for its whole lifetime, so
background reorganization and compaction of the producing run's files
can proceed concurrently without ever changing (or corrupting) what the
catalog returns — MVCC isolation, no quiescence contract.  Pass
``snapshot=False`` to always follow the newest published metadata
instead.  See ``docs/concurrency.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.datapath import IndexBlockCache, locate_instance, read_instance
from repro.core.groups import DataGroup, DatasetAttrs, DataView
from repro.dtypes.primitives import Primitive, BYTE, FLOAT32, FLOAT64, INT32, INT64
from repro.errors import SDMUnknownDataset
from repro.metadb.schema import DEFAULT_PIN_TTL, OPEN_EPOCH, SDMTables
from repro.mpi.job import RankContext
from repro.mpiio.consts import MODE_RDONLY
from repro.mpiio.file import File
from repro.mpiio.hints import validate_hints

__all__ = ["RunRecord", "DatasetRecord", "SDMCatalog"]

_TYPE_BY_NAME: Dict[str, Primitive] = {
    t.name: t for t in (BYTE, INT32, INT64, FLOAT32, FLOAT64)
}


@dataclass(frozen=True)
class RunRecord:
    """One application run known to the database."""

    runid: int
    application: str
    dimension: int
    problem_size: int
    num_timesteps: int


@dataclass(frozen=True)
class DatasetRecord:
    """One dataset of a run, as registered in access_pattern_table."""

    runid: int
    name: str
    basic_pattern: str
    data_type: Primitive
    storage_order: str
    global_size: int


def _dataset_from_row(
    runid: int, name: str, pattern: str, type_name: str, order: str, size
) -> DatasetRecord:
    """Build a DatasetRecord from an access_pattern_table row."""
    dtype = _TYPE_BY_NAME.get(type_name, FLOAT64)
    return DatasetRecord(runid, name, pattern, dtype, order, int(size))


class SDMCatalog:
    """Read-only view over a (possibly finished) SDM metadata database."""

    def __init__(self, ctx: RankContext, tables: SDMTables, fs,
                 maintenance=None, io_hints=None,
                 snapshot: bool = True) -> None:
        self.ctx = ctx
        self.tables = tables
        self.fs = fs
        validate_hints(io_hints)
        self.io_hints = dict(io_hints) if io_hints else None
        """MPI-IO hints applied to every catalog read (e.g. a
        ``coalesce_gap`` for viewers scanning sparse subsets of chunked
        runs)."""
        self.index_cache = IndexBlockCache()
        """Rank-local LRU over chunked index-block fetches, so a viewer
        stepping through timesteps (which share blocks) fetches each map
        once.  Old-epoch blocks stay valid under their ``(file, offset,
        version)`` keys; the maintenance registration drops current-epoch
        entries a flip this job runs has superseded."""
        self.maintenance = maintenance
        if maintenance is not None:
            maintenance.register_caches(None, self.index_cache)
        self._pin_id: Optional[int] = None
        self._pinned_epoch: Optional[int] = None
        self._pin_touch_t: float = ctx.proc.now
        self._leak_stats: Dict[str, int] = {"leaked_pins": 0}
        if snapshot:
            # Pin the epoch current at attach: every browse and read below
            # resolves against this snapshot until release(), whatever
            # concurrent maintenance publishes meanwhile.
            pin = None
            if ctx.rank == 0:
                epoch = tables.current_epoch(proc=ctx.proc)
                pin = (
                    tables.create_pin("catalog", epoch, proc=ctx.proc,
                                      now=ctx.proc.now),
                    epoch,
                )
                ctx.proc.fault_point("pin:taken")
            self._pin_id, self._pinned_epoch = ctx.comm.bcast(pin, root=0)

    @classmethod
    def attach(cls, ctx: RankContext, io_hints=None,
               snapshot: bool = True) -> "SDMCatalog":
        """Attach to the job's shared database and file system services.
        Collective; pins the current metadata epoch unless
        ``snapshot=False``."""
        from repro.metadb.schema import SDMTables as _Tables

        tables = _Tables(ctx.service("db"))
        # Database.loads restores persisted index declarations, so a
        # snapshot arrives ready to probe; re-declaring here covers
        # pre-persistence snapshots and hand-seeded databases (idempotent
        # either way).
        tables.declare_indexes()
        return cls(ctx, tables, ctx.service("fs"),
                   maintenance=ctx.services.get("maint"), io_hints=io_hints,
                   snapshot=snapshot)

    def release(self) -> None:
        """Drop the snapshot pin (collective; idempotent).

        Rank 0 releases the pin and opportunistically reaps row versions
        this catalog was the last reader holding live — each file under
        its flip lease, skipped without blocking if a concurrent flip
        holds it (the flip's own reap will finish the job)."""
        if self._pin_id is not None:
            if self.ctx.rank == 0:
                proc = self.ctx.proc
                self.tables.release_pin(self._pin_id, proc=proc)
                for fname in self.tables.files_with_dead_rows(proc=proc):
                    if self.tables.try_acquire_lease(
                        fname, "catalog:reap", proc=proc, now=proc.now
                    ):
                        try:
                            self.tables.reap_file(fname, proc=proc)
                        finally:
                            self.tables.release_lease(
                                fname, "catalog:reap", proc=proc
                            )
            self._pin_id = None
            self._pinned_epoch = None
        # Leak audit: a clean release leaves no catalog pin and no reap
        # lease behind.  Anything still there is a bug in this class (or
        # a crashed peer catalog) worth surfacing through stats().
        leaks = None
        if self.ctx.rank == 0:
            proc = self.ctx.proc
            leaks = sum(
                1 for _, h, _ in self.tables.all_leases(proc=proc)
                if h == "catalog:reap"
            ) + sum(
                1 for _, c, _ in self.tables.all_pins(proc=proc)
                if c == "catalog"
            )
        leaks = self.ctx.comm.bcast(leaks, root=0)
        self._leak_stats["leaked_pins"] += int(leaks)
        self.ctx.comm.barrier()

    def stats(self) -> Dict[str, int]:
        """Leak and recovery counters observed by this catalog (valid
        after :meth:`release`; recovery counters are database-wide)."""
        return {
            **self._leak_stats,
            "leases_stolen": self.tables.n_leases_stolen,
            "flips_rolled_back": self.tables.n_flips_rolled_back,
            "flips_rolled_forward": self.tables.n_flips_rolled_forward,
            "pins_expired": self.tables.n_pins_expired,
        }

    # ------------------------------------------------------------------
    # Browsing
    # ------------------------------------------------------------------

    def runs(self) -> List[RunRecord]:
        """All recorded runs, oldest first (a sorted walk of run_table's
        ordered runid index — no scan, no sort)."""
        rows = self.tables.db.execute(
            "SELECT runid, application, dimension, problem_size, "
            "num_timesteps FROM run_table ORDER BY runid",
            proc=self.ctx.proc,
        )
        return [RunRecord(int(r), a, int(d), int(p), int(n))
                for r, a, d, p, n in rows]

    def datasets(self, runid: int) -> List[DatasetRecord]:
        """Datasets a run registered, in registration order."""
        rows = self.tables.db.execute(
            "SELECT dataset, basic_pattern, data_type, storage_order, "
            "global_size FROM access_pattern_table WHERE runid = ?",
            (runid,),
            proc=self.ctx.proc,
        )
        return [
            _dataset_from_row(runid, name, pattern, type_name, order, size)
            for name, pattern, type_name, order, size in rows
        ]

    def timesteps(self, runid: int, dataset: str) -> List[int]:
        """Timesteps of a dataset with recorded data, ascending.

        Served as a sorted probe of execution_table's ordered
        ``(runid, dataset, timestep)`` index: the equality prefix binds
        the first two columns and the slice comes back already ordered.
        Row versions are filtered to the catalog's snapshot (or to the
        open versions when unpinned), so a concurrent flip never
        double-lists a timestep.
        """
        if self._pinned_epoch is None:
            rows = self.tables.db.execute(
                "SELECT timestep FROM execution_table "
                "WHERE runid = ? AND dataset = ? AND valid_to = ? "
                "ORDER BY timestep",
                (runid, dataset, OPEN_EPOCH),
                proc=self.ctx.proc,
            )
        else:
            rows = self.tables.db.execute(
                "SELECT timestep FROM execution_table "
                "WHERE runid = ? AND dataset = ? "
                "AND valid_from <= ? AND valid_to > ? "
                "ORDER BY timestep",
                (runid, dataset, self._pinned_epoch, self._pinned_epoch),
                proc=self.ctx.proc,
            )
        return sorted({int(r[0]) for r in rows})

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def _dataset_record(self, runid: int, dataset: str) -> DatasetRecord:
        # One composite-index probe on (runid, dataset) rather than
        # fetching the run's whole dataset list.
        rows = self.tables.db.execute(
            "SELECT basic_pattern, data_type, storage_order, global_size "
            "FROM access_pattern_table WHERE runid = ? AND dataset = ?",
            (runid, dataset),
            proc=self.ctx.proc,
        )
        if not rows:
            raise SDMUnknownDataset(
                f"run {runid} has no dataset {dataset!r}"
            )
        return _dataset_from_row(runid, dataset, *rows[0])

    def load_group(self, runid: int) -> DataGroup:
        """Rehydrate a :class:`DataGroup` for a past run from the database.

        Install views with :meth:`repro.core.api.SDM.data_view` and the
        group works with ``SDM.read(..., runid=runid)`` exactly like a
        group created in the producing run.
        """
        group = DataGroup(group_id=0, runid=runid)
        for rec in self.datasets(runid):
            group.datasets[rec.name] = DatasetAttrs(
                name=rec.name,
                data_type=rec.data_type,
                storage_order=rec.storage_order,
                global_size=rec.global_size,
                basic_pattern=rec.basic_pattern,
            )
        return group

    def read_slice(
        self,
        runid: int,
        dataset: str,
        timestep: int,
        map_array: np.ndarray,
    ) -> np.ndarray:
        """Collectively read an arbitrary element subset of a past dataset.

        Every rank of the job must call with its own map array; location
        and layout come entirely from the metadata tables.  Both storage
        orders are served: canonical instances through one indexed view,
        chunked instances assembled from their ``chunk_table`` maps — a
        visualization front end needs no idea how the producing run chose
        to write.
        """
        rec = self._dataset_record(runid, dataset)
        comm = self.ctx.comm  # communicator-relative: works on subgroups too
        if (
            self._pin_id is not None
            and comm.rank == 0
            and self.ctx.proc.now - self._pin_touch_t >= DEFAULT_PIN_TTL / 4
        ):
            # Prove this catalog's client is alive so the abandoned-pin
            # reaper never ages a live snapshot out; throttled so short
            # viewer jobs add zero statements to the read hot path.
            self.tables.touch_pin(
                self._pin_id, self.ctx.proc.now, proc=self.ctx.proc
            )
            self._pin_touch_t = self.ctx.proc.now
        gate = self.maintenance
        if gate is not None and comm.rank == 0:
            gate.begin_read(self.ctx.proc)
        try:
            where, chunks, version = locate_instance(
                comm, self.tables, runid, dataset, timestep,
                proc=self.ctx.proc, epoch=self._pinned_epoch,
            )
            if where is None:
                raise SDMUnknownDataset(
                    f"run {runid} dataset {dataset!r} has no timestep "
                    f"{timestep}"
                )
            view = DataView.from_map(np.asarray(map_array, dtype=np.int64))
            f = File.open(comm, self.fs, where[0], MODE_RDONLY,
                          hints=self.io_hints)
            out = read_instance(comm, f, where, chunks, rec.data_type, view,
                                cache=self.index_cache, version=version)
            f.close()
        finally:
            if gate is not None and comm.rank == 0:
                gate.end_read()
        return out

    def read_global(
        self, runid: int, dataset: str, timestep: int
    ) -> np.ndarray:
        """Collectively read a whole dataset instance; every rank receives
        the full global array (the visualization-front-end pattern)."""
        rec = self._dataset_record(runid, dataset)
        comm = self.ctx.comm
        # Ranks split the read evenly, then allgather.
        n = rec.global_size
        base = n // comm.size
        counts = [base + (1 if r < n % comm.size else 0)
                  for r in range(comm.size)]
        start = sum(counts[: comm.rank])
        mine = np.arange(start, start + counts[comm.rank], dtype=np.int64)
        piece = self.read_slice(runid, dataset, timestep, mine)
        pieces = comm.allgather(piece)
        return np.concatenate(pieces)
