"""History files: persisting an index distribution for later runs.

After a ring distribution, ``SDM_index_registry`` writes every rank's
partitioned edge map (with endpoints) and node map to a *history file* —
asynchronously, on background writer processes, so the application does not
wait — and registers the layout in ``index_table`` / ``index_history_table``.

The background-writer pattern that used to live here is now the general
maintenance tier of :mod:`repro.core.maintenance`: this module only
builds the file layout and the metadata rows, then hands the bulk write
to the job's maintenance service as a rank-local job
(``MaintenanceService.enqueue_local``).  The returned
:class:`HistoryRegistration` exposes both the poll
(:attr:`~HistoryRegistration.done`) and a :meth:`~HistoryRegistration.wait`
that blocks in virtual time until the rank's slice is on disk — the
moment an application needs read-your-writes on its own history.

A later run with the same problem size **and the same process count** skips
the import and the ring entirely: each rank looks up its slice in the
database and reads it back with one contiguous read ("the cost of index
distri. is nothing but reading the history file ... in a contiguous way,
including the database cost to access the metadata").  A run with a
different process count cannot use the file (the paper's stated
limitation) — :func:`try_load_history` simply misses.

History file layout, per rank, at offsets recorded in the database::

    edge_offset: [edge_map | edge1 | edge2]  (3 x edge_count x int32)
    node_offset: [node_map]                  (node_count x int32)

int32 matches the paper's C ``int`` edge indices and is what makes the
history read cheaper than re-running the ring at scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.layout import history_file_name
from repro.core.ring import LocalPartition, owned_nodes_of
from repro.errors import SDMHistoryMismatch
from repro.metadb.schema import HistoryRankRecord, HistoryRecord, SDMTables
from repro.mpi.job import RankContext
from repro.pfs.file import RD, WR
from repro.pfs.filesystem import FileSystem
from repro.simt.primitives import SimEvent
from repro.simt.process import Process

__all__ = ["HistoryRegistration", "register_history_async", "try_load_history"]

_I4 = 4  # bytes per int32 element (the paper stores C ints)


@dataclass
class HistoryRegistration:
    """Handle on an in-flight asynchronous history write."""

    file_name: str
    event: SimEvent
    """Completion future: set when this rank's slice is on disk."""

    @property
    def done(self) -> bool:
        """True once this rank's slice is on disk (in virtual time)."""
        return self.event.is_set

    def wait(self, proc: Process) -> None:
        """Block ``proc`` (in virtual time) until this rank's slice is on
        disk.  Returns immediately if the write already completed — no
        busy-checking required."""
        self.event.wait(proc)


def register_history_async(
    ctx: RankContext,
    tables: SDMTables,
    application: str,
    problem_size: int,
    local: LocalPartition,
    dimension: int = 3,
) -> HistoryRegistration:
    """Write this rank's slice to the history file in the background.

    Collective: offsets are derived from an allgather of per-rank counts.
    Rank 0 creates the file and registers the metadata synchronously (the
    database rows are cheap); the bulk data write is queued on the job's
    maintenance service and lands on that rank's background worker, off
    the application's critical path.  Without a maintenance service in
    the job's services dict the write falls back to a dedicated
    background process (the pre-service behavior).
    """
    fs: FileSystem = ctx.service("fs")
    comm = ctx.comm
    fname = history_file_name(application, problem_size, ctx.size)

    counts = comm.allgather((local.n_local_edges, local.n_local_nodes))
    offsets: List[tuple] = []
    pos = 0
    for ec, nc in counts:
        edge_off = pos
        pos += 3 * ec * _I4
        node_off = pos
        pos += nc * _I4
        offsets.append((edge_off, node_off))

    if ctx.rank == 0:
        fs.create(ctx.proc, fname, exist_ok=True)
        record = HistoryRecord(
            problem_size=problem_size,
            num_procs=ctx.size,
            dimension=dimension,
            file_name=fname,
        )
        ranks = [
            HistoryRankRecord(
                rank=r,
                edge_count=counts[r][0],
                node_count=counts[r][1],
                edge_offset=offsets[r][0],
                node_offset=offsets[r][1],
            )
            for r in range(ctx.size)
        ]
        tables.register_history(record, ranks, proc=ctx.proc)
    comm.barrier()  # the file must exist before writers open it

    edge_off, node_off = offsets[ctx.rank]
    edge_blob = np.concatenate(
        [local.edge_map, local.edge1, local.edge2]
    ).astype(np.int32)
    node_blob = local.node_map.astype(np.int32)

    def writer(proc: Process) -> None:
        handle = fs.open(proc, fname, WR)
        fs.write_at(proc, handle, edge_off, edge_blob)
        fs.write_at(proc, handle, node_off, node_blob)
        fs.close(proc, handle)

    maint = ctx.services.get("maint")
    if maint is not None:
        event = maint.enqueue_local(ctx, writer, label="history")
    else:  # pragma: no cover - legacy services dicts without the tier
        event = SimEvent(ctx.proc.sim, name=f"history-r{ctx.rank}")

        def legacy(proc: Process) -> None:
            writer(proc)
            event.set()

        ctx.proc.sim.spawn(legacy, name=f"history-writer-r{ctx.rank}")
    return HistoryRegistration(file_name=fname, event=event)


def try_load_history(
    ctx: RankContext,
    tables: SDMTables,
    application: str,
    problem_size: int,
    part_vector: np.ndarray,
) -> Optional[LocalPartition]:
    """Load this rank's slice of a registered history, if one exists.

    Rank 0 consults ``index_table`` (database cost) and broadcasts the
    verdict; on a hit every rank fetches its ``index_history_table`` row and
    performs one contiguous read of its slice.  Both lookups are single
    composite-hash probes on ``SDM_INDEXES`` tuples — ``(problem_size,
    num_procs)`` and ``(problem_size, num_procs, rank)`` — so the host-side
    engine work stays flat no matter how many histories have accumulated
    (the simulated database cost is per-row-touched either way).  Returns
    None when no history matches this (problem size, process count) pair.
    """
    record = None
    if ctx.rank == 0:
        record = tables.find_history(problem_size, ctx.size, proc=ctx.proc)
    record = ctx.comm.bcast(record, root=0)
    if record is None:
        return None

    fs: FileSystem = ctx.service("fs")
    row = tables.history_rank(problem_size, ctx.size, ctx.rank, proc=ctx.proc)
    if row is None:
        raise SDMHistoryMismatch(
            f"index_table has {record.file_name!r} but no per-rank row for "
            f"rank {ctx.rank}"
        )
    handle = fs.open(ctx.proc, record.file_name, RD)
    edge_blob = fs.read_at(
        ctx.proc, handle, row.edge_offset, 3 * row.edge_count * _I4
    ).view(np.int32).astype(np.int64)
    node_blob = fs.read_at(
        ctx.proc, handle, row.node_offset, row.node_count * _I4
    ).view(np.int32).astype(np.int64)
    fs.close(ctx.proc, handle)

    ec = row.edge_count
    return LocalPartition(
        edge_map=edge_blob[:ec].copy(),
        edge1=edge_blob[ec : 2 * ec].copy(),
        edge2=edge_blob[2 * ec :].copy(),
        node_map=node_blob.copy(),
        owned_nodes=owned_nodes_of(part_vector, ctx.rank),
    )
