"""Ring-oriented index (edge) distribution — paper Section 3.2.

Each rank starts with the contiguous 1/P chunk of the edge arrays it
imported.  The chunks then travel around a ring: at each of P steps a rank
examines the chunk it currently holds, keeps every edge with at least one
endpoint it owns (ghost edges are therefore replicated on both sides, one
level deep), and passes the chunk on.  After P steps every rank has seen
every edge exactly once.

Kept edges append into :class:`~repro.core.growable.GrowableArray` buffers
(capacity doubling — the single-pass ``realloc`` strategy the paper credits
for beating the original two-pass count-then-read).

Costs charged: per-edge examination (vectorized compute), growth copies
(memcpy), and the ring exchanges (real sendrecv traffic through the MPI
model).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.growable import GrowableArray
from repro.errors import PartitionError
from repro.mpi.job import RankContext

__all__ = ["EdgeChunk", "LocalPartition", "ring_partition_index", "owned_nodes_of"]

_EXAMINE_OPS_PER_EDGE = 24.0
"""Cost model: element-ops charged per examined edge.

Covers the two partition-vector lookups, the keep test, and the list
management / locality misses real partitioning code pays per edge
(~0.5 µs/edge at the Origin2000's irregular-access rate).  Calibrated so
the original's two-pass distribution over 18M edges lands on Figure 5's
``index distri.`` bar."""


@dataclass
class EdgeChunk:
    """A contiguous slice of the global edge arrays (one rank's import)."""

    edge1: np.ndarray
    edge2: np.ndarray
    gid_start: int
    """Global id of the first edge in this chunk."""

    def __len__(self) -> int:
        return len(self.edge1)

    @property
    def gids(self) -> np.ndarray:
        """Global edge ids of this chunk."""
        return np.arange(
            self.gid_start, self.gid_start + len(self.edge1), dtype=np.int64
        )


@dataclass
class LocalPartition:
    """One rank's outcome of the index distribution.

    All maps are sorted by global id.  ``node_map`` contains owned nodes
    plus one level of ghosts (the union of local-edge endpoints with the
    owned set), matching the paper's Figure 1 example.
    """

    edge_map: np.ndarray
    """Global ids of local edges (ghosts included), sorted."""

    edge1: np.ndarray
    """First endpoints aligned with ``edge_map``."""

    edge2: np.ndarray
    """Second endpoints aligned with ``edge_map``."""

    node_map: np.ndarray
    """Owned + ghost node ids, sorted."""

    owned_nodes: np.ndarray
    """Nodes assigned to this rank by the partitioning vector, sorted."""

    @property
    def n_local_edges(self) -> int:
        """Local (owned + ghost) edge count — ``SDM_partition_index_size``."""
        return len(self.edge_map)

    @property
    def n_local_nodes(self) -> int:
        """Local (owned + ghost) node count — ``SDM_partition_data_size``."""
        return len(self.node_map)


def owned_nodes_of(part_vector: np.ndarray, rank: int) -> np.ndarray:
    """Nodes the partitioning vector assigns to ``rank`` (sorted)."""
    return np.flatnonzero(np.asarray(part_vector) == rank).astype(np.int64)


def ring_partition_index(
    ctx: RankContext,
    part_vector: np.ndarray,
    chunk: EdgeChunk,
) -> LocalPartition:
    """Run the ring distribution; returns this rank's local partition."""
    part_vector = np.asarray(part_vector, dtype=np.int64)
    comm = ctx.comm
    rank, size = ctx.rank, ctx.size
    if len(chunk.edge1) != len(chunk.edge2):
        raise PartitionError("edge chunk arrays must have equal length")

    kept_gids = GrowableArray(np.int64)
    kept_e1 = GrowableArray(np.int64)
    kept_e2 = GrowableArray(np.int64)

    # Chunks travel as int32 endpoint arrays only (the file's element type);
    # each chunk is a contiguous global-id range, so its ids are derivable
    # from its owner's start offset — no id array needs to ride the ring.
    e1 = np.ascontiguousarray(chunk.edge1, dtype=np.int32)
    e2 = np.ascontiguousarray(chunk.edge2, dtype=np.int32)
    starts = comm.allgather(chunk.gid_start)
    compute = ctx.machine.compute

    for step in range(size):
        holder = (rank - step) % size  # whose chunk we currently hold
        if len(e1):
            # Examine: keep edges with at least one owned endpoint.
            ctx.proc.hold(compute.elements(len(e1), _EXAMINE_OPS_PER_EDGE))
            e1_64 = e1.astype(np.int64)
            e2_64 = e2.astype(np.int64)
            keep = (part_vector[e1_64] == rank) | (part_vector[e2_64] == rank)
            if keep.any():
                gids = starts[holder] + np.flatnonzero(keep).astype(np.int64)
                before = kept_gids.bytes_copied + kept_e1.bytes_copied + kept_e2.bytes_copied
                kept_gids.extend(gids)
                kept_e1.extend(e1_64[keep])
                kept_e2.extend(e2_64[keep])
                grown = (
                    kept_gids.bytes_copied + kept_e1.bytes_copied + kept_e2.bytes_copied
                ) - before
                if grown:
                    ctx.proc.hold(compute.copy_time(grown))
        if size > 1:
            # Pass the chunk to the next rank on the ring.
            e1, e2 = comm.ring_shift((e1, e2))

    # Sort local edges by global id for monotone file views.
    order = np.argsort(kept_gids.view(), kind="stable")
    edge_map = kept_gids.view()[order].copy()
    le1 = kept_e1.view()[order].copy()
    le2 = kept_e2.view()[order].copy()
    ctx.proc.hold(compute.elements(max(len(edge_map), 1), 2.0))  # sort pass

    owned = owned_nodes_of(part_vector, rank)
    endpoints = np.unique(np.concatenate([le1, le2])) if len(le1) else np.empty(
        0, dtype=np.int64
    )
    node_map = np.union1d(owned, endpoints)
    return LocalPartition(
        edge_map=edge_map,
        edge1=le1,
        edge2=le2,
        node_map=node_map,
        owned_nodes=owned,
    )
