"""C-style aliases mirroring the paper's Figures 2 and 3 line by line.

The pythonic API lives on :class:`repro.core.api.SDM`; this module maps the
paper's exact function names onto it so the quickstart example can be read
side by side with the paper::

    handle = SDM_initialize(ctx, "fun3d")
    result = SDM_make_datalist(handle, 2, ["p", "q"])
    SDM_associate_attributes(handle, 2, result, data_type=DOUBLE, ...)
    group = SDM_set_attributes(handle, 2, result)
    ...
    SDM_write(handle, group, "p", t, p_buf)
    SDM_finalize(handle, group)

The explicit count arguments (``2`` above) exist purely for fidelity with
the C signatures; they are validated against the actual list lengths.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.api import SDM
from repro.core.groups import DataGroup, DatasetAttrs
from repro.core.layout import Organization
from repro.core.ring import EdgeChunk, LocalPartition
from repro.errors import SDMStateError
from repro.mpi.job import RankContext

__all__ = [
    "SDM_initialize",
    "SDM_make_datalist",
    "SDM_associate_attributes",
    "SDM_set_attributes",
    "SDM_make_importlist",
    "SDM_import",
    "SDM_partition_table",
    "SDM_partition_index",
    "SDM_partition_index_size",
    "SDM_partition_data_size",
    "SDM_index_registry",
    "SDM_data_view",
    "SDM_write",
    "SDM_read",
    "SDM_reorganize",
    "SDM_release_importlist",
    "SDM_finalize",
]


def _check_count(n: int, seq: Sequence) -> None:
    if n != len(seq):
        raise SDMStateError(f"count argument {n} != list length {len(seq)}")


def SDM_initialize(
    ctx: RankContext,
    name_of_application: str,
    organization: Organization = Organization.LEVEL_2,
    storage_order: str = "canonical",
) -> SDM:
    """Establish the database connection and create the metadata tables."""
    return SDM(
        ctx, name_of_application, organization=organization,
        storage_order=storage_order,
    )


def SDM_make_datalist(sdm: SDM, n: int, names: Sequence[str]) -> List[DatasetAttrs]:
    """Create attribute records for ``n`` datasets."""
    _check_count(n, names)
    return sdm.make_datalist(names)


def SDM_associate_attributes(
    sdm: SDM, n: int, attrs: Sequence[DatasetAttrs], **shared
) -> None:
    """Apply shared attributes to ``n`` records."""
    _check_count(n, attrs)
    sdm.associate_attributes(attrs, **shared)


def SDM_set_attributes(sdm: SDM, n: int, datalist: Sequence[DatasetAttrs]) -> DataGroup:
    """Store the datalist's metadata; returns the group handle."""
    _check_count(n, datalist)
    return sdm.set_attributes(datalist)


def SDM_make_importlist(
    sdm: SDM, n: int, names: Sequence[str], file_name: str,
    index_names: Sequence[str] = (),
):
    """Describe ``n`` arrays created outside SDM."""
    _check_count(n, names)
    return sdm.make_importlist(names, file_name=file_name, index_names=index_names)


def SDM_import(
    sdm: SDM,
    name: str,
    file_offset: int,
    total_elements: int,
    map_array: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Import one array: contiguously, or irregularly via ``map_array``
    (install the mapping with ``SDM_data_view`` semantics)."""
    if map_array is None:
        return sdm.import_contiguous(name, file_offset, total_elements)
    return sdm.import_irregular(name, file_offset, total_elements, map_array)


def SDM_partition_table(sdm: SDM, partitioning_vector: np.ndarray) -> np.ndarray:
    """Localize the replicated partitioning vector."""
    return sdm.partition_table(partitioning_vector)


def SDM_partition_index(
    sdm: SDM, partitioning_vector: np.ndarray, chunk: Optional[EdgeChunk]
) -> LocalPartition:
    """Distribute the indexes (ring algorithm, or history file if found)."""
    return sdm.partition_index(partitioning_vector, chunk)


def SDM_partition_index_size(sdm: SDM) -> int:
    """Local (owned + ghost) edge count."""
    return sdm.partition_index_size()


def SDM_partition_data_size(sdm: SDM) -> int:
    """Local (owned + ghost) node count."""
    return sdm.partition_data_size()


def SDM_index_registry(sdm: SDM, local: Optional[LocalPartition] = None):
    """Register the index distribution in a history file (asynchronous)."""
    return sdm.index_registry(local)


def SDM_data_view(sdm: SDM, handle: DataGroup, name: str, map_array) -> None:
    """Define the mapping between file and processor memory for a dataset."""
    sdm.data_view(handle, name, map_array)


def SDM_write(sdm: SDM, handle: DataGroup, name: str, timestep: int, buf) -> str:
    """Collectively write one dataset instance."""
    return sdm.write(handle, name, timestep, buf)


def SDM_read(sdm: SDM, handle: DataGroup, name: str, timestep: int, buf) -> np.ndarray:
    """Collectively read one dataset instance back."""
    return sdm.read(handle, name, timestep, buf)


def SDM_reorganize(
    sdm: SDM, handle: DataGroup, name: str, timestep: int
) -> str:
    """Rewrite a chunked instance into canonical (global) element order."""
    return sdm.reorganize(handle, name, timestep)


def SDM_release_importlist(sdm: SDM, n: int = 0) -> None:
    """Free the import structures."""
    sdm.release_importlist()


def SDM_finalize(sdm: SDM, handle: Optional[DataGroup] = None, n: int = 0) -> None:
    """Close files and end the run."""
    sdm.finalize(handle)
