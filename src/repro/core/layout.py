"""File-organization levels and checkpoint file naming (paper Section 3.2).

* **Level 1** — each dataset at each timestep goes to its own file: simple,
  but a file-open + file-view + file-close per dataset per step.
* **Level 2** — one file per dataset; timesteps append.  Fewer files, fewer
  opens; append offsets tracked in ``execution_table``.
* **Level 3** — one file per data *group*; every dataset, every timestep
  appends.  Fewest files; offsets in ``execution_table``.
"""

from __future__ import annotations

import enum

__all__ = ["Organization", "checkpoint_file_name", "history_file_name"]


class Organization(enum.IntEnum):
    """The three file organizations of the paper."""

    LEVEL_1 = 1
    LEVEL_2 = 2
    LEVEL_3 = 3


def checkpoint_file_name(
    application: str,
    group_id: int,
    dataset: str,
    timestep: int,
    organization: Organization,
) -> str:
    """Name of the file a (dataset, timestep) checkpoint lands in."""
    if organization == Organization.LEVEL_1:
        return f"{application}/{dataset}.t{timestep:06d}"
    if organization == Organization.LEVEL_2:
        return f"{application}/{dataset}.dat"
    return f"{application}/group{group_id}.dat"


def history_file_name(application: str, problem_size: int, nprocs: int) -> str:
    """Name of the index-distribution history file for a problem size and
    process count (one history per (size, P) pair, as in the paper)."""
    return f"{application}/history.S{problem_size}.P{nprocs}.idx"
