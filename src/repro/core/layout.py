"""Checkpoint layout: organization levels × storage orders × maintenance.

Three independent axes decide where checkpoint bytes land and who keeps
them healthy (paper Section 3.2, the storage-order extension of
:mod:`repro.core.datapath`, and the maintenance tier of
:mod:`repro.core.maintenance`):

**File organization** — how many files the output is packed into:

* **Level 1** — each dataset at each timestep goes to its own file: simple,
  but a file-open + file-view + file-close per dataset per step.
* **Level 2** — one file per dataset; timesteps append.  Fewer files, fewer
  opens; append offsets tracked in ``execution_table``.
* **Level 3** — one file per data *group*; every dataset, every timestep
  appends.  Fewest files; offsets in ``execution_table``.

**Storage order** — how the bytes of one dataset instance are arranged
*inside* its file:

* **canonical** (:data:`CANONICAL`) — element ``i`` of the global array sits
  at byte ``base + i * esize``: ranks scatter through irregular file views
  and the two-phase collective exchange assembles global order at write
  time.  Reads are a single strided/indexed view — the fast read path.
* **chunked** (:data:`CHUNKED`) — each rank appends its local block *in the
  order it is distributed*: a sorted int64 index block followed by the data
  block, with no interprocess data exchange at all.  Chunk locations and
  global-index ranges go to ``chunk_table``; reads assemble from the chunk
  maps, and ``SDM.reorganize`` rewrites an instance into canonical order
  (one exchange, amortized over every later read).

**Maintenance** — *when* the expensive after-work runs:

* **sync** — ``SDM.reorganize`` / ``SDM.compact`` pay the deferred
  exchange or the compaction pass collectively on the application ranks,
  on the critical path.
* **background** — the same work is *enqueued*: every rank appends the
  job (same program order everywhere) to the per-rank daemon workers of
  the job's :class:`~repro.core.maintenance.MaintenanceService`, and the
  application moves on.  The queue lifecycle is: **enqueue** (rank 0
  records the job in the metadata database's ``maintenance_table``; the
  row *is* the pending work) → **execute** (the workers run the job
  collectively over a job-unique communicator context and atomically
  flip the metadata, so readers transparently serve whichever
  representation is current) → **complete** (rank 0 deletes the row).
  A job enqueued but never executed — a ``deferred``-mode service, a
  snapshot taken mid-backlog — survives in ``maintenance_table`` and is
  adopted and executed by the next job's service at attach time.
  ``SDM.drain_maintenance`` blocks until this rank's queue is empty, the
  read-your-maintenance barrier.

Chunked instances get distinct file names (the ``.chunked`` infix below) so
a packed level-2/3 file never interleaves the two representations; the
authoritative marker remains the metadata — an instance with ``chunk_table``
rows is chunked, one without is canonical.  Reorganizing an instance out
of a packed chunked file leaves a dead region behind: topmost regions are
reclaimed by the retreating append cursor, interior ones are recorded in
``extent_table`` until a compaction job slides the live chunks down and
truncates the file.
"""

from __future__ import annotations

import enum

__all__ = [
    "Organization",
    "CANONICAL",
    "CHUNKED",
    "STORAGE_ORDERS",
    "checkpoint_file_name",
    "is_chunked_name",
    "history_file_name",
]


class Organization(enum.IntEnum):
    """The three file organizations of the paper."""

    LEVEL_1 = 1
    LEVEL_2 = 2
    LEVEL_3 = 3


CANONICAL = "canonical"
"""Storage order: global element order, assembled at write time."""

CHUNKED = "chunked"
"""Storage order: per-rank blocks in distribution order, exchange-free."""

STORAGE_ORDERS = (CANONICAL, CHUNKED)


def checkpoint_file_name(
    application: str,
    group_id: int,
    dataset: str,
    timestep: int,
    organization: Organization,
    storage_order: str = CANONICAL,
) -> str:
    """Name of the file a (dataset, timestep) checkpoint lands in.

    Canonical names are unchanged from the paper's three levels; chunked
    instances land in a sibling file with a ``.chunked`` infix.
    """
    infix = "" if storage_order == CANONICAL else f".{storage_order}"
    if organization == Organization.LEVEL_1:
        return f"{application}/{dataset}.t{timestep:06d}{infix}"
    if organization == Organization.LEVEL_2:
        return f"{application}/{dataset}{infix}.dat"
    return f"{application}/group{group_id}{infix}.dat"


def is_chunked_name(file_name: str) -> bool:
    """Whether a checkpoint file name carries the chunked infix.

    Chunked instances only ever live in ``.chunked``-infixed files and
    canonical ones never do, so readers can skip the ``chunk_table``
    lookup entirely for canonical names.  A false positive (a dataset
    whose *name* contains ".chunked") merely costs the lookup — the
    metadata stays authoritative.
    """
    return f".{CHUNKED}" in file_name


def history_file_name(application: str, problem_size: int, nprocs: int) -> str:
    """Name of the index-distribution history file for a problem size and
    process count (one history per (size, P) pair, as in the paper)."""
    return f"{application}/history.S{problem_size}.P{nprocs}.idx"
