"""The SDM runtime class — the paper's user-facing API.

One :class:`SDM` instance per rank fronts everything: the metadata database
(through :class:`~repro.metadb.schema.SDMTables`), the parallel file system
(through :class:`~repro.mpiio.file.File`), the ring index distribution,
history files, and the pluggable storage-order data path
(:mod:`repro.core.datapath`).  Method names are pythonic;
:mod:`repro.core.papi` provides ``SDM_*`` aliases matching the paper's
figures symbol for symbol.

Typical write-side flow (Figure 2), now parameterized by storage order::

    sdm = SDM(ctx, "fun3d", organization=Organization.LEVEL_2,
              storage_order="chunked")        # or "canonical" (default)
    result = sdm.make_datalist(["p", "q"])
    for a in result:
        a.data_type = DOUBLE
        a.global_size = total_nodes
    handle = sdm.set_attributes(result)
    sdm.data_view(handle, "p", vector)       # map array from the partition
    sdm.data_view(handle, "q", vector)
    for t in range(max_step):
        ...compute p, q...
        sdm.write(handle, "p", t, p_buf)     # chunked: exchange-free append
        sdm.write(handle, "q", t, q_buf)
    sdm.reorganize(handle, "p", max_step - 1)   # optional: canonical order
    sdm.finalize(handle)

Under ``storage_order="canonical"`` every write runs the two-phase exchange
and the file holds global element order (the paper's Figure 2 exactly).
Under ``"chunked"`` each rank appends its block in distribution order and
records a chunk map; :meth:`SDM.read` serves either representation
transparently, and :meth:`SDM.reorganize` converts an instance to canonical
order after the fact.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.datapath import (
    ChunkedOrder,
    FileHandleCache,
    IndexBlockCache,
    StorageOrder,
    compact_chunked_file,
    locate_instance,
    read_instance,
    reorganize as _reorganize,
    resolve_storage_order,
)
from repro.core.groups import DataGroup, DatasetAttrs, DataView, ImportAttrs
from repro.core.history import (
    HistoryRegistration,
    register_history_async,
    try_load_history,
)
from repro.core.layout import (
    CHUNKED,
    Organization,
    checkpoint_file_name,
    is_chunked_name,
)
from repro.core.policy import PolicyConfig
from repro.core.ring import EdgeChunk, LocalPartition, owned_nodes_of, ring_partition_index
from repro.dtypes.constructors import IndexedBlock
from repro.dtypes.primitives import DOUBLE, INT, Primitive
from repro.errors import SDMLeaseConflict, SDMStateError, SDMUnknownDataset
from repro.metadb.schema import DEFAULT_PIN_TTL, SDMTables
from repro.mpi.job import RankContext
from repro.mpiio.consts import MODE_RDONLY
from repro.mpiio.file import File
from repro.mpiio.hints import validate_hints
from repro.mpiio.runs import ADAPTIVE_GAP

__all__ = ["SDM"]


class SDM:
    """Per-rank Scientific Data Manager instance (``SDM_initialize``)."""

    def __init__(
        self,
        ctx: RankContext,
        application: str,
        organization: Organization = Organization.LEVEL_2,
        dimension: int = 3,
        problem_size: int = 0,
        num_timesteps: int = 0,
        io_hints: Optional[Dict[str, int]] = None,
        storage_order: Union[str, StorageOrder] = "canonical",
        reorganize_mode: str = "sync",
        snapshot: bool = False,
        policy: Union[None, str, PolicyConfig] = None,
    ) -> None:
        self.ctx = ctx
        self.comm = ctx.comm
        self.application = application
        self.organization = Organization(organization)
        self.storage_order = resolve_storage_order(storage_order)
        """Write-side data path: ``CanonicalOrder`` assembles global order
        at write time; ``ChunkedOrder`` appends distribution order and
        defers the exchange.  Reads are transparent either way."""
        if reorganize_mode not in ("sync", "background"):
            raise SDMStateError(
                f"unknown reorganize_mode {reorganize_mode!r} "
                "(expected 'sync' or 'background')"
            )
        self.reorganize_mode = reorganize_mode
        """Default :meth:`reorganize` behavior: ``"sync"`` runs the
        deferred exchange collectively on the calling ranks;
        ``"background"`` enqueues it on the maintenance service and
        returns immediately (readers transparently serve whichever
        representation is current)."""
        self.index_cache = IndexBlockCache()
        """Rank-local LRU over chunked index-block fetches: checkpoint
        loops share blocks across timesteps, so warm chunked reads move
        data bytes only."""
        validate_hints(io_hints)
        self.io_hints = dict(io_hints) if io_hints else None
        """MPI-IO hints SDM passes on every file open (the paper: SDM uses
        "the ability to pass hints to the implementation about access
        patterns, file-striping parameters, and so forth")."""
        self.policy = PolicyConfig.resolve(policy)
        """Per-loop policy modes (:mod:`repro.core.policy`): planner
        calibration, adaptive ``coalesce_gap``, self-driving maintenance.
        Defaults to all-static — the pre-policy behavior, byte for
        byte."""
        if self.policy.coalesce != "static" and (
            self.io_hints is None or "coalesce_gap" not in self.io_hints
        ):
            # The adaptive-gap loop is carried by the hint sentinel: every
            # coalescing read derives its own gap.  An explicit
            # coalesce_gap hint wins over the policy default.
            self.io_hints = dict(self.io_hints or {})
            self.io_hints["coalesce_gap"] = ADAPTIVE_GAP
        self.fs = ctx.service("fs")
        self.db = ctx.service("db")
        self.tables = SDMTables(self.db)
        self.planner_calibration = None
        """This client's view of the database's planner calibration (the
        job-shared :class:`~repro.core.policy.PlannerCalibration`), or
        None under a static planner policy."""
        if self.policy.planner != "static":
            # The database is one job-shared service; the first adaptive
            # client installs the calibration, later ones adopt it, so
            # every rank's statements feed one EWMA.
            if self.db.planner_calibration is None:
                self.db.planner_calibration = (
                    self.policy.make_planner_calibration()
                )
            self.planner_calibration = self.db.planner_calibration
        # Establish the database connection; rank 0 creates the six tables
        # and allocates the run id.
        self.db.connect(ctx.proc)
        runid = None
        if ctx.rank == 0:
            self.tables.create_all(proc=ctx.proc)
            runid = self.tables.next_runid(proc=ctx.proc)
            self.tables.insert_run(
                runid, application, dimension, problem_size, num_timesteps,
                proc=ctx.proc,
            )
        self.runid: int = self.comm.bcast(runid, root=0)
        self.lease_holder = f"sdm:{application}:r{self.runid}"
        """Flip-lease identity for this client's metadata publishes
        (distinct per run, so overlapping flips fail fast instead of
        silently overwriting each other)."""
        self._pin_id: Optional[int] = None
        self._pinned_epoch: Optional[int] = None
        if snapshot:
            # Pin the epoch current at initialization: every read resolves
            # against this snapshot until finalize (or a flip this client
            # publishes itself advances it), no matter what background
            # maintenance reorganizes or compacts meanwhile.
            pin = None
            if ctx.rank == 0:
                epoch = self.tables.current_epoch(proc=ctx.proc)
                pin = (
                    self.tables.create_pin(
                        self.lease_holder, epoch, proc=ctx.proc,
                        now=ctx.proc.now,
                    ),
                    epoch,
                )
                ctx.proc.fault_point("pin:taken")
            self._pin_id, self._pinned_epoch = self.comm.bcast(pin, root=0)
        self._pin_touch_t: float = ctx.proc.now
        """Virtual time of the last pin touch (read-path refreshes are
        throttled to every PIN_TTL/4, so a small sim issues zero touch
        statements while a long-lived reader still never ages out)."""
        self._leak_stats: Dict[str, int] = {"leaked_leases": 0,
                                            "leaked_pins": 0}
        self._groups: Dict[int, DataGroup] = {}
        self._next_group = 1
        self._files = FileHandleCache(self.comm, self.fs, hints=self.io_hints)
        self._importlist: "OrderedDict[str, ImportAttrs]" = OrderedDict()
        self._local: Optional[LocalPartition] = None
        self._problem_size = problem_size
        self._part_vector: Optional[np.ndarray] = None
        self._history_available = False
        self.maintenance = ctx.services.get("maint")
        """The job's background maintenance service (None in bespoke
        services dicts without the tier)."""
        self._maint_policy = self.policy.make_maintenance_policy()
        """Per-rank self-driving maintenance triggers (replicated state;
        see :class:`~repro.core.policy.MaintenancePolicy`), or None under
        a static maintenance policy."""
        if self.maintenance is not None:
            self.maintenance.attach(ctx)
            if self._maint_policy is not None:
                # Workers consult the policy's rate limiter before heavy
                # I/O (job-shared service: one policy instance suffices).
                self.maintenance.policy = self._maint_policy
            self.maintenance.register_caches(
                self.storage_order
                if isinstance(self.storage_order, ChunkedOrder) else None,
                self.index_cache,
            )
        self.comm.barrier()

    # ------------------------------------------------------------------
    # Datalists and groups (Figure 2, setup)
    # ------------------------------------------------------------------

    def make_datalist(self, names: Sequence[str]) -> List[DatasetAttrs]:
        """Create attribute records for the named datasets
        (``SDM_make_datalist``)."""
        if len(set(names)) != len(names):
            raise SDMStateError(f"duplicate dataset names: {names!r}")
        return [DatasetAttrs(name=n) for n in names]

    def associate_attributes(
        self,
        attrs: Sequence[DatasetAttrs],
        data_type: Optional[Primitive] = None,
        global_size: Optional[int] = None,
        storage_order: Optional[str] = None,
    ) -> None:
        """Apply shared attributes to several records
        (``SDM_associate_attributes``)."""
        for a in attrs:
            if data_type is not None:
                a.data_type = data_type
            if global_size is not None:
                a.global_size = global_size
            if storage_order is not None:
                a.storage_order = storage_order

    def set_attributes(self, datalist: Sequence[DatasetAttrs]) -> DataGroup:
        """Freeze a datalist into a data group and store its metadata
        (``SDM_set_attributes``).  Collective."""
        for a in datalist:
            if a.global_size <= 0:
                raise SDMStateError(
                    f"dataset {a.name!r} has no global_size; "
                    "set attributes before set_attributes()"
                )
        group = DataGroup(group_id=self._next_group, runid=self.runid)
        self._next_group += 1
        for a in datalist:
            group.datasets[a.name] = a
        if self.ctx.rank == 0:
            for a in datalist:
                self.tables.register_dataset(
                    self.runid, a.name, a.data_type.name, a.storage_order,
                    a.global_size, a.basic_pattern, proc=self.ctx.proc,
                )
        self.comm.barrier()
        self._groups[group.group_id] = group
        return group

    # ------------------------------------------------------------------
    # Imports and partitioning (Figure 3)
    # ------------------------------------------------------------------

    def make_importlist(
        self,
        names: Sequence[str],
        file_name: str,
        index_names: Sequence[str] = (),
    ) -> List[ImportAttrs]:
        """Describe arrays created outside SDM (``SDM_make_importlist``)."""
        out = []
        for n in names:
            attrs = ImportAttrs(
                name=n,
                file_name=file_name,
                file_content="INDEX" if n in index_names else "DATA",
                data_type=INT if n in index_names else DOUBLE,
            )
            self._importlist[n] = attrs
            out.append(attrs)
        return out

    def _import_attrs(self, name: str) -> ImportAttrs:
        try:
            return self._importlist[name]
        except KeyError:
            raise SDMUnknownDataset(
                f"{name!r} is not in the import list"
            ) from None

    def import_index(
        self,
        edge1_name: str,
        edge2_name: str,
        edge1_offset: int,
        edge2_offset: int,
        total_edges: int,
    ) -> Optional[EdgeChunk]:
        """Import the indirection arrays (``SDM_import`` on INDEX content).

        First consults the database for a history file matching this
        problem size and process count; on a hit, returns ``None`` — the
        edges need not be imported at all, and the subsequent
        :meth:`partition_index` reads the history instead.
        """
        self._problem_size = total_edges
        # Per the paper, "the SDM_import first accesses the index table ...
        # to see whether a history file exists with this problem size"; the
        # actual slice read happens later, in partition_index.
        record = None
        if self.ctx.rank == 0:
            record = self.tables.find_history(
                total_edges, self.ctx.size, proc=self.ctx.proc
            )
        record = self.comm.bcast(record, root=0)
        if record is not None:
            self._history_available = True
            return None
        self._history_available = False
        a1 = self._import_attrs(edge1_name)
        e1 = self.import_contiguous(edge1_name, edge1_offset, total_edges)
        e2 = self.import_contiguous(edge2_name, edge2_offset, total_edges)
        counts = _even_split(total_edges, self.ctx.size)
        gid_start = int(np.sum(counts[: self.ctx.rank]))
        del a1
        return EdgeChunk(edge1=e1.astype(np.int64), edge2=e2.astype(np.int64),
                         gid_start=gid_start)

    def import_contiguous(
        self, name: str, file_offset: int, total_elements: int
    ) -> np.ndarray:
        """Import this rank's even share of a contiguous array
        (``SDM_import`` without a data view installed).

        "The total domain (file length) is equally divided among processes,
        and the data in the domain is contiguously imported."
        """
        attrs = self._import_attrs(name)
        dtype = attrs.data_type
        counts = _even_split(total_elements, self.ctx.size)
        start = int(np.sum(counts[: self.ctx.rank]))
        count = int(counts[self.ctx.rank])
        f = self._open_cached(attrs.file_name, MODE_RDONLY)
        f.set_view(disp=file_offset, etype=dtype)
        buf = np.empty(count, dtype=dtype.numpy_dtype)
        f.read_at_all(start, buf)
        if self.ctx.rank == 0:
            self.tables.register_import(
                self.runid, name, attrs.file_name, dtype.name,
                attrs.storage_order, attrs.partition, attrs.file_content,
                file_offset, total_elements, proc=self.ctx.proc,
            )
        return buf

    def import_irregular(
        self,
        name: str,
        file_offset: int,
        total_elements: int,
        map_array: np.ndarray,
    ) -> np.ndarray:
        """Import an array irregularly distributed by a map array
        (``SDM_data_view`` + ``SDM_import``): one collective MPI-IO read
        through an indexed file view."""
        attrs = self._import_attrs(name)
        dtype = attrs.data_type
        view = DataView.from_map(map_array)
        f = self._open_cached(attrs.file_name, MODE_RDONLY)
        f.set_view(
            disp=file_offset,
            etype=dtype,
            filetype=IndexedBlock(1, view.map_sorted, dtype),
        )
        buf = np.empty(view.local_count, dtype=dtype.numpy_dtype)
        f.read_at_all(0, buf)
        if self.ctx.rank == 0:
            self.tables.register_import(
                self.runid, name, attrs.file_name, dtype.name,
                attrs.storage_order, attrs.partition, attrs.file_content,
                file_offset, total_elements, proc=self.ctx.proc,
            )
        return view.to_user_order(buf)

    def release_importlist(self) -> None:
        """Free import structures (``SDM_release_importlist``)."""
        self._importlist.clear()

    # -- partitioning ------------------------------------------------------

    def partition_table(self, partitioning_vector: np.ndarray) -> np.ndarray:
        """Localize the replicated partitioning vector
        (``SDM_partition_table``): returns this rank's owned nodes."""
        self._part_vector = np.asarray(partitioning_vector, dtype=np.int64)
        self.ctx.proc.hold(
            self.ctx.machine.compute.elements(len(self._part_vector))
        )
        return owned_nodes_of(self._part_vector, self.ctx.rank)

    def partition_index(
        self,
        partitioning_vector: np.ndarray,
        chunk: Optional[EdgeChunk],
    ) -> LocalPartition:
        """Distribute the edges (``SDM_partition_index``).

        With a registered history (``chunk is None`` after
        :meth:`import_index` found one), reads the already-partitioned edges
        contiguously; otherwise runs the ring algorithm on the imported
        chunk.
        """
        if self._part_vector is None:
            self.partition_table(partitioning_vector)
        if chunk is None:
            if not self._history_available:
                raise SDMStateError(
                    "partition_index called without an edge chunk and "
                    "without a history file"
                )
            local = try_load_history(
                self.ctx, self.tables, self.application,
                self._problem_size, self._part_vector,
            )
            if local is None:
                raise SDMStateError(
                    "history disappeared between import_index and "
                    "partition_index"
                )
        else:
            local = ring_partition_index(self.ctx, self._part_vector, chunk)
        self._local = local
        return local

    def partition_index_size(self) -> int:
        """Local edge count (``SDM_partition_index_size``)."""
        self._require_local()
        return self._local.n_local_edges

    def partition_data_size(self) -> int:
        """Local node count (``SDM_partition_data_size``)."""
        self._require_local()
        return self._local.n_local_nodes

    def index_registry(
        self, local: Optional[LocalPartition] = None
    ) -> HistoryRegistration:
        """Persist the index distribution to a history file
        (``SDM_index_registry``, optional).  The data write is asynchronous."""
        if local is None:
            self._require_local()
            local = self._local
        return register_history_async(
            self.ctx, self.tables, self.application, self._problem_size, local
        )

    def _require_local(self) -> None:
        if self._local is None:
            raise SDMStateError("no index distribution yet; call partition_index")

    # ------------------------------------------------------------------
    # Data views and checkpoint I/O (Figure 2, loop)
    # ------------------------------------------------------------------

    def data_view(
        self, handle: DataGroup, name: str, map_array: np.ndarray
    ) -> None:
        """Install the data mapping for a dataset (``SDM_data_view``)."""
        handle.dataset(name)
        handle.views[name] = DataView.from_map(map_array)

    def write(
        self, handle: DataGroup, name: str, timestep: int, buf: np.ndarray
    ) -> str:
        """Write one dataset instance collectively (``SDM_write``).

        Returns the file name written to.  The mapping installed by
        :meth:`data_view` locates local values in the global array; the
        configured :attr:`storage_order` decides how they land on disk —
        canonical (global order, two-phase exchange) or chunked
        (distribution order, exchange-free).  Under levels 2/3 the
        instance appends at an offset fetched from (and recorded in)
        ``execution_table`` by process 0.
        """
        attrs = handle.dataset(name)
        view = handle.view(name)
        if len(buf) != view.local_count:
            raise SDMStateError(
                f"buffer for {name!r} has {len(buf)} elements, "
                f"view expects {view.local_count}"
            )
        fname = self.storage_order.write(
            self, handle, attrs, view, name, timestep, buf
        )
        self._maybe_autocompact(fname)
        return fname

    def read(
        self,
        handle: DataGroup,
        name: str,
        timestep: int,
        buf: np.ndarray,
        runid: Optional[int] = None,
    ) -> np.ndarray:
        """Read back one dataset instance collectively (``SDM_read``).

        The location comes from ``execution_table``; the installed data
        view gathers this rank's elements.  Both storage orders are served
        transparently: canonical instances through one indexed file view,
        chunked instances assembled from their ``chunk_table`` maps.

        Under a ``snapshot=True`` SDM the location resolves against the
        pinned epoch, so a concurrent background reorganization or
        compaction can never change what this call returns.  Unpinned
        reads see the newest published metadata; either way the read is
        registered with the maintenance read gate (rank 0 of the reading
        communicator, covering the whole collective) so an in-place
        compaction slide can never move bytes out from under it.
        """
        attrs = handle.dataset(name)
        view = handle.view(name)
        rid = self.runid if runid is None else runid
        if (
            self._pin_id is not None
            and self.ctx.rank == 0
            and self.ctx.proc.now - self._pin_touch_t >= DEFAULT_PIN_TTL / 4
        ):
            # Prove this snapshot's client is alive so the abandoned-pin
            # reaper never ages a live pin out; throttled so short jobs
            # add zero statements to the read hot path.
            self.tables.touch_pin(
                self._pin_id, self.ctx.proc.now, proc=self.ctx.proc
            )
            self._pin_touch_t = self.ctx.proc.now
        gate = self.maintenance
        if gate is not None and self.ctx.rank == 0:
            gate.begin_read(self.ctx.proc)
        try:
            where, chunks, version = locate_instance(
                self.comm, self.tables, rid, name, timestep,
                proc=self.ctx.proc, epoch=self._pinned_epoch,
            )
            if where is None:
                raise SDMUnknownDataset(
                    f"no execution record for run {rid} dataset {name!r} "
                    f"timestep {timestep}"
                )
            fname = where[0]
            f = self._open_cached(fname, MODE_RDONLY)
            buf[:] = read_instance(
                self.comm, f, where, chunks, attrs.data_type, view,
                cache=self.index_cache, version=version,
            )
        finally:
            if gate is not None and self.ctx.rank == 0:
                gate.end_read()
        if (
            chunks
            and self._maint_policy is not None
            and self.maintenance is not None
            and self._pinned_epoch is None
        ):
            # Promotion loop: the instance is still serving chunked.  The
            # per-rank read counters are replicated (every rank counts the
            # same collective reads in the same order), so the Nth read
            # fires on all ranks together and the enqueue below is a
            # uniform collective.
            if self._maint_policy.note_chunked_read((rid, name, timestep)):
                self.reorganize(
                    handle, name, timestep, runid=rid, mode="background"
                )
        if self.organization == Organization.LEVEL_1:
            self._close_cached(fname)
        return buf

    def reorganize(
        self,
        handle: DataGroup,
        name: str,
        timestep: int,
        runid: Optional[int] = None,
        mode: Optional[str] = None,
    ) -> str:
        """Rewrite a chunked instance into canonical order
        (``SDM_reorganize``).  A no-op for instances already canonical.
        Returns the file holding (or, in background mode, currently
        holding) the instance.

        ``mode`` (default: the constructor's :attr:`reorganize_mode`)
        selects who pays the deferred exchange:

        * ``"sync"`` — collective; runs it on the calling ranks now, so
          every later :meth:`read` takes the canonical fast path;
        * ``"background"`` — enqueue it on the maintenance service's
          per-rank workers (call on every rank, same order) and return
          immediately.  The workers perform the same exchange and
          atomically repoint ``execution_table`` off the application's
          critical path; reads transparently serve whichever
          representation is current, and :meth:`drain_maintenance`
          blocks until the flip is visible.
        """
        mode = self.reorganize_mode if mode is None else mode
        if mode == "sync":
            out = self._sync_flip(
                lambda: _reorganize(self, handle, name, timestep, runid=runid)
            )
            # The exchange leaves the instance's old chunks dead in the
            # .chunked file; give the fragmentation watcher a look.
            self._maybe_autocompact(
                self.checkpoint_file(handle, name, timestep,
                                     storage_order=CHUNKED)
            )
            return out
        if mode != "background":
            raise SDMStateError(
                f"unknown reorganize mode {mode!r} "
                "(expected 'sync' or 'background')"
            )
        if self.maintenance is None:
            raise SDMStateError(
                "background reorganization needs the maintenance service; "
                "this job's services dict has no 'maint' entry"
            )
        from repro.core.maintenance import REORGANIZE

        attrs = handle.dataset(name)
        rid = self.runid if runid is None else runid
        # One cheap metadata probe keeps already-canonical instances (and
        # their file names) out of the worker queue — the same no-op fast
        # path the sync call takes, minus the exchange machinery.
        where, chunks, _version = locate_instance(
            self.comm, self.tables, rid, name, timestep, proc=self.ctx.proc
        )
        if where is None:
            raise SDMUnknownDataset(
                f"no execution record for run {rid} dataset {name!r} "
                f"timestep {timestep}"
            )
        if not chunks:
            return where[0]
        self.maintenance.enqueue(
            self.ctx, REORGANIZE,
            application=self.application,
            organization=int(self.organization),
            group_id=handle.group_id,
            runid=rid,
            dataset=name,
            timestep=timestep,
            data_type=attrs.data_type.name,
            global_size=attrs.global_size,
        )
        # Until the background flip lands, the instance still serves from
        # its chunked file.
        return where[0]

    def compact(self, file_name: str, mode: Optional[str] = None) -> str:
        """Pack a ``.chunked`` checkpoint file down to its live bytes
        (reclaiming the dead extents reorganization left behind).

        ``mode`` follows :meth:`reorganize`: ``"sync"`` runs the pass
        collectively now; ``"background"`` (or the constructor default)
        enqueues it behind any earlier maintenance jobs — in particular
        behind background reorganizations of the same file, whose dead
        regions it then reclaims.  No quiescence is required of readers:
        the pass takes the file's flip lease (a concurrent flip of the
        same file raises :class:`~repro.errors.SDMLeaseConflict`), and
        either packs in place behind the read gate (no snapshots pinned)
        or copies live chunks beyond the append cursor and publishes a
        new epoch, leaving every pinned byte untouched (see
        ``docs/concurrency.md``).  Returns ``file_name``.
        """
        mode = self.reorganize_mode if mode is None else mode
        if mode == "sync":
            self._sync_flip(lambda: compact_chunked_file(self, file_name))
            return file_name
        if mode != "background":
            raise SDMStateError(
                f"unknown compaction mode {mode!r} "
                "(expected 'sync' or 'background')"
            )
        if self.maintenance is None:
            raise SDMStateError(
                "background compaction needs the maintenance service; "
                "this job's services dict has no 'maint' entry"
            )
        from repro.core.maintenance import COMPACT

        self.maintenance.enqueue(
            self.ctx, COMPACT,
            application=self.application,
            organization=int(self.organization),
            file_name=file_name,
        )
        return file_name

    def _sync_flip(self, flip):
        """Run a synchronous metadata flip, riding out this job's own
        background maintenance.

        A flip lease conflict unwinds before any mutation (both flip
        entry points acquire the lease first) and raises symmetrically on
        every rank, so when the holder may be this job's background tier
        — e.g. a policy-enqueued compaction of the same file — every rank
        drains its maintenance queue together and retries once.  A
        conflict with a genuinely concurrent *client* survives the drain
        and re-raises: the fail-fast lost-update protection stands.
        """
        try:
            return flip()
        except SDMLeaseConflict:
            if self.maintenance is None:
                raise
            self.drain_maintenance()
            return flip()

    def _maybe_autocompact(self, file_name: str) -> None:
        """Fragmentation loop: one observation of a chunked file's
        dead-byte ratio at a collective entry point (write, sync
        reorganize).

        Rank 0 probes ``extent_table`` free bytes against the file size
        and runs the hysteresis trigger; every rank receives the decision
        by broadcast before acting, so the background enqueue below stays
        a uniform collective no matter which rank's counters say what.
        Collective in shape — call uniformly on every rank.
        """
        pol = self._maint_policy
        if pol is None or self.maintenance is None:
            return
        if not is_chunked_name(file_name):
            return
        fire = None
        if self.ctx.rank == 0:
            free = self.tables.free_bytes_in(file_name, proc=self.ctx.proc)
            size = (
                self.fs.lookup(file_name).size
                if self.fs.exists(file_name) else 0
            )
            fire = pol.fragmentation_trigger(file_name, free, size)
        if self.comm.bcast(fire, root=0):
            self.compact(file_name, mode="background")

    def checkpoint_file(
        self,
        handle: DataGroup,
        name: str,
        timestep: int,
        storage_order: Optional[str] = None,
    ) -> str:
        """File name a (dataset, timestep) instance lands in under this
        SDM's organization (defaults to the configured storage order)."""
        order = (
            self.storage_order.name if storage_order is None else storage_order
        )
        return checkpoint_file_name(
            self.application, handle.group_id, name, timestep,
            self.organization, storage_order=order,
        )

    def chunked_checkpoint_files(
        self, handle: DataGroup, timesteps: Sequence[int]
    ) -> List[str]:
        """Distinct ``.chunked`` files the group's datasets land in over
        the given timesteps — the compaction work-list after a batch of
        reorganizations (under level 2/3 many instances share one file)."""
        seen: List[str] = []
        for name in handle.datasets:
            for t in timesteps:
                fname = self.checkpoint_file(handle, name, t,
                                             storage_order=CHUNKED)
                if fname not in seen:
                    seen.append(fname)
        return seen

    def drain_maintenance(self) -> None:
        """Block (in virtual time) until every maintenance job this rank
        enqueued has executed — reorganizations flipped, compactions
        packed, history slices on disk.  A no-op without the service or
        under a deferred-mode service (whose backlog runs in a later
        job)."""
        if self.maintenance is not None:
            self.maintenance.drain(self.ctx.rank, self.ctx.proc)

    def invalidate_chunked_caches(self, file_name: str) -> None:
        """Datapath host hook: a reorganization or compaction this rank
        ran may have freed or moved the file's bytes — drop every
        registered cache's entries for it (this SDM's write and read
        caches, plus any other SDM or catalog caches registered with the
        maintenance service)."""
        if self.maintenance is not None:
            self.maintenance.invalidate_chunked_caches(file_name)
            return
        if isinstance(self.storage_order, ChunkedOrder):
            self.storage_order.drop_file_cache(file_name)
        self.index_cache.drop_file(file_name)

    def invalidate_chunked_range(self, file_name: str, lo: int, hi: int) -> None:
        """Datapath host hook: a first-fit write this rank ran is recycling
        ``[lo, hi)`` of a dead extent — drop every registered cache's
        entries overlapping it (fresh rows publish at version 0, so a
        block cached at a recycled offset by *any* client of the job
        would otherwise collide with the new instance's keys)."""
        if self.maintenance is not None:
            self.maintenance.invalidate_chunked_range(file_name, lo, hi)
            return
        if isinstance(self.storage_order, ChunkedOrder):
            self.storage_order.drop_range_cache(file_name, lo, hi)
        self.index_cache.drop_range(file_name, lo, hi)

    def advance_snapshot(self, epoch: int) -> None:
        """Datapath publisher hook: this client just flipped metadata to
        ``epoch`` — move its own snapshot pin forward so it reads its own
        writes.  A no-op for unpinned clients.  Called uniformly on every
        rank (after the flip's epoch broadcast); only rank 0 touches the
        database."""
        if self._pin_id is None or epoch <= self._pinned_epoch:
            return
        if self.ctx.rank == 0:
            self.tables.advance_pin(self._pin_id, epoch, proc=self.ctx.proc)
        self._pinned_epoch = epoch

    def finalize(self, handle: Optional[DataGroup] = None) -> None:
        """Close cached files and end the run (``SDM_finalize``).  Collective.

        A ``snapshot=True`` SDM releases its pin here and opportunistically
        reaps any row versions it was the last reader holding live (each
        file under its flip lease, skipped if a concurrent flip holds it).

        The shutdown leak audit then counts whatever this client still
        holds in lease/pin rows — anything left is a bug in the caller's
        release discipline (or a crash path the maintenance reaper will
        clean up next job) and is surfaced through :meth:`stats` as
        ``leaked_leases`` / ``leaked_pins`` on every rank."""
        self._files.close_all()
        if handle is not None:
            handle.finalized = True
        if self._pin_id is not None:
            if self.ctx.rank == 0:
                proc = self.ctx.proc
                self.tables.release_pin(self._pin_id, proc=proc)
                holder = f"{self.lease_holder}:reap"
                for fname in self.tables.files_with_dead_rows(proc=proc):
                    if self.tables.try_acquire_lease(
                        fname, holder, proc=proc, now=proc.now,
                    ):
                        try:
                            self.tables.reap_file(fname, proc=proc)
                        finally:
                            self.tables.release_lease(fname, holder, proc=proc)
            self._pin_id = None
            self._pinned_epoch = None
        leaks = None
        if self.ctx.rank == 0:
            proc = self.ctx.proc
            mine = {self.lease_holder, f"{self.lease_holder}:reap"}
            leaks = (
                sum(1 for _f, h, _b in self.tables.all_leases(proc=proc)
                    if h in mine),
                sum(1 for _p, c, _e in self.tables.all_pins(proc=proc)
                    if c == self.lease_holder),
            )
        leaks = self.comm.bcast(leaks, root=0)
        self._leak_stats["leaked_leases"] += leaks[0]
        self._leak_stats["leaked_pins"] += leaks[1]
        self.comm.barrier()

    def stats(self) -> Dict[str, int]:
        """Robustness counters for this client (uniform across ranks
        after :meth:`finalize`): shutdown leak audit plus the shared
        tables' recovery totals."""
        return {
            **self._leak_stats,
            "leases_stolen": self.tables.n_leases_stolen,
            "flips_rolled_back": self.tables.n_flips_rolled_back,
            "flips_rolled_forward": self.tables.n_flips_rolled_forward,
            "pins_expired": self.tables.n_pins_expired,
        }

    # ------------------------------------------------------------------
    # File-handle cache (shared with the maintenance workers)
    # ------------------------------------------------------------------

    def _open_cached(self, name: str, amode: int) -> File:
        """Get or collectively open a file (identical call sequence on all
        ranks keeps the cache coherent across the job)."""
        return self._files.open(name, amode)

    def _close_cached(self, name: str) -> None:
        self._files.close(name)


def _even_split(total: int, parts: int) -> np.ndarray:
    """Even division with the remainder spread over the first ranks."""
    base = total // parts
    counts = np.full(parts, base, dtype=np.int64)
    counts[: total % parts] += 1
    return counts
