"""The self-tuning policy tier: feedback loops over the system's counters.

Every tunable the reproduction exposes was, until this module, a static
number: the metadb planner weighed hash buckets against ordered slices
with hard-coded cost constants, the ``coalesce_gap`` MPI-IO hint was one
global byte count, and maintenance (compaction, reorganization) ran only
when the application asked.  Yet the system already *measures* everything
those choices depend on — per-statement planner timings, the run/hole
distribution of every coalesced read, ``extent_table`` free bytes,
per-instance read counts, and the file system's controller queue depths.
This module closes those loops:

* :class:`PlannerCalibration` — learns the planner's per-candidate cost
  constants from observed statement timings (EWMA), so
  :class:`~repro.metadb.engine.Database` picks the access path that is
  actually cheaper on this workload instead of the one a hard-coded
  2.0x ratio says should be.
* **Adaptive ``coalesce_gap``** — the sentinel :data:`ADAPTIVE_GAP`
  (``coalesce_gap = -1``) makes every read derive its gap from its own
  hole distribution (:func:`repro.mpiio.runs.adaptive_gap`): bridge the
  largest holes it can while the wasted (read-and-discarded) bytes stay
  under ``coalesce_waste`` of the payload.  The choice is a pure
  function of the rank's own run list — each rank coalesces only the
  runs it ships into the collective — so SPMD safety is untouched.
* :class:`MaintenancePolicy` — watches fragmentation and read counts at
  SDM's collective entry points and enqueues background maintenance by
  itself: compaction when a file's free-byte ratio crosses a high-water
  mark (with hysteresis so one crossing enqueues one job), promotion of
  a chunked instance to background reorganization after it has been
  read ``promote_reads`` times, and an exponential-backoff rate limiter
  workers call before heavy I/O so background jobs yield to foreground
  traffic (:meth:`repro.pfs.filesystem.FileSystem.queue_depth`).

Freezing a policy for reproducibility
-------------------------------------

Adaptive runs are observation-driven, so two runs over different data
may tune differently.  To reproduce a tuned configuration exactly,
freeze it: :meth:`PlannerCalibration.snapshot` returns the learned
constants as a plain dict, and ``PlannerCalibration.from_snapshot``
rebuilds a *frozen* calibration (observations ignored, no exploration)
that plans identically forever.  The adaptive gap needs no freezing —
it is deterministic per read — and :class:`MaintenancePolicy` triggers
are deterministic functions of the (replicated) operation sequence.
See ``docs/tuning.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.mpiio.runs import ADAPTIVE_GAP

__all__ = [
    "STATIC",
    "ADAPTIVE",
    "ADAPTIVE_GAP",
    "PlannerCalibration",
    "MaintenancePolicy",
    "PolicyConfig",
]

STATIC = "static"
"""Policy mode: keep every hand-picked constant (the pre-policy behavior)."""

ADAPTIVE = "adaptive"
"""Policy mode: close the feedback loop from the observed counters."""

assert ADAPTIVE_GAP == -1  # re-exported here as the policy tier's name for it


class PlannerCalibration:
    """Learned per-candidate cost constants for the metadb planner.

    The planner compares a hash-bucket walk (``probe_cost + n``) against
    an ordered-index slice (``probe_cost + slice_row_cost * n``).  The
    static ``slice_row_cost = 2.0`` encodes "a slice candidate costs
    twice a bucket candidate" — an assumption, not a measurement.  This
    class measures: :meth:`~repro.metadb.engine.Database._match_rowids`
    reports ``(path kind, candidates examined, seconds)`` for every
    index-served statement, and an EWMA per path kind estimates the true
    per-candidate cost.  :attr:`slice_row_cost` is then the observed
    slice/hash ratio (clamped), and plan choice adapts to the workload.

    Small observations (fewer than ``min_rows`` candidates) are ignored:
    their timings are dominated by fixed overhead and timer noise, and
    plan choice between tiny candidate sets barely matters anyway.

    **Exploration.**  A calibration that has never executed a slice can
    never learn its cost.  While the losing side of a contested choice
    (both paths available) has fewer than ``explore_obs`` accepted
    observations, :meth:`decide` picks it anyway — results stay
    scan-identical because every candidate is still verified against the
    full WHERE — and stops once both paths are known, so a converged
    calibration plans deterministically.
    """

    def __init__(
        self,
        alpha: float = 0.2,
        min_rows: int = 32,
        explore_obs: int = 24,
        clamp: Tuple[float, float] = (0.25, 8.0),
        frozen: bool = False,
    ) -> None:
        self.alpha = alpha
        self.min_rows = min_rows
        self.explore_obs = explore_obs
        self.clamp = clamp
        self.frozen = frozen
        self.probe_cost = 1.0
        """Flat probe/bisect cost in candidate-row units (not calibrated
        from timings — it is far below one ``min_rows`` observation's
        resolution — but part of the snapshot so a frozen policy carries
        the complete cost model)."""
        self._per_row: Dict[str, float] = {}
        self._n_obs: Dict[str, int] = {"hash": 0, "slice": 0, "scan": 0}
        self._frozen_ratio: Optional[float] = None
        self.n_explored = 0
        """Contested choices flipped to feed the starved path."""

    # -- observation ---------------------------------------------------

    def observe(self, kind: str, rows: int, seconds: float) -> None:
        """Fold one statement's ``(path, candidates, seconds)`` into the
        per-row EWMAs.  No-op when frozen or below ``min_rows``."""
        if self.frozen or rows < self.min_rows or seconds <= 0.0:
            return
        per_row = seconds / rows
        prev = self._per_row.get(kind)
        self._per_row[kind] = (
            per_row if prev is None
            else prev + self.alpha * (per_row - prev)
        )
        self._n_obs[kind] = self._n_obs.get(kind, 0) + 1

    def observations(self, kind: str) -> int:
        """Accepted observations of one path kind."""
        return self._n_obs.get(kind, 0)

    # -- the learned constants -----------------------------------------

    @property
    def slice_row_cost(self) -> float:
        """Observed slice/hash per-candidate cost ratio (clamped), or the
        static default 2.0 until both paths have been measured."""
        if self._frozen_ratio is not None:
            return self._frozen_ratio
        hash_cost = self._per_row.get("hash")
        slice_cost = self._per_row.get("slice")
        if hash_cost is None or slice_cost is None or hash_cost <= 0.0:
            return 2.0
        lo, hi = self.clamp
        return min(max(slice_cost / hash_cost, lo), hi)

    @property
    def converged(self) -> bool:
        """True once both contested paths have ``explore_obs`` accepted
        observations — exploration has stopped and plans are stable."""
        return (
            self._frozen_ratio is not None
            or (
                self._n_obs.get("hash", 0) >= self.explore_obs
                and self._n_obs.get("slice", 0) >= self.explore_obs
            )
        )

    def decide(self, pick_slice: bool) -> bool:
        """Final word on a contested hash-vs-slice choice.

        Flips the cost model's pick while the losing path is starved of
        observations (see class docstring); otherwise returns it as-is.
        """
        if self.frozen:
            return pick_slice
        starved = "hash" if pick_slice else "slice"
        if self._n_obs.get(starved, 0) < self.explore_obs:
            self.n_explored += 1
            return not pick_slice
        return pick_slice

    # -- freezing ------------------------------------------------------

    def snapshot(self) -> Dict[str, float]:
        """The learned constants as a plain dict (commit it next to a
        bench to reproduce a tuned run exactly)."""
        return {
            "probe_cost": self.probe_cost,
            "slice_row_cost": self.slice_row_cost,
        }

    @classmethod
    def from_snapshot(cls, snap: Dict[str, float]) -> "PlannerCalibration":
        """A frozen calibration planning with snapshotted constants."""
        cal = cls(frozen=True)
        cal.probe_cost = float(snap["probe_cost"])
        cal._frozen_ratio = float(snap["slice_row_cost"])
        return cal

    def freeze(self) -> None:
        """Stop observing and exploring; keep the current constants."""
        self._frozen_ratio = self.slice_row_cost
        self.frozen = True


class MaintenancePolicy:
    """Self-driving triggers for the background maintenance tier.

    One instance per :class:`~repro.core.api.SDM` (per rank).  The two
    trigger families have different replication contracts:

    * :meth:`note_chunked_read` state is **replicated**: every rank calls
      it for the same collective reads in the same order, so the counters
      — and the single promotion decision per instance — agree everywhere
      without communication.
    * :meth:`fragmentation_trigger` state lives only on rank 0 (free
      bytes come from a rank-0 database probe); the caller broadcasts the
      boolean before acting, so the other ranks' instances never consult
      theirs.

    :meth:`throttle` is rank-local backoff for maintenance workers and
    keeps no cross-rank state at all.
    """

    def __init__(
        self,
        promote_reads: int = 3,
        compact_hiwater: float = 0.40,
        compact_lowater: float = 0.15,
        throttle_depth: int = 1,
        throttle_hold: float = 2e-3,
        throttle_max_holds: int = 6,
    ) -> None:
        if not 0.0 <= compact_lowater < compact_hiwater:
            raise ValueError(
                "compaction hysteresis needs 0 <= lowater < hiwater, got "
                f"{compact_lowater} / {compact_hiwater}"
            )
        self.promote_reads = promote_reads
        self.compact_hiwater = compact_hiwater
        self.compact_lowater = compact_lowater
        self.throttle_depth = throttle_depth
        self.throttle_hold = throttle_hold
        self.throttle_max_holds = throttle_max_holds
        self._read_counts: Dict[tuple, int] = {}
        self._promoted: set = set()
        self._disarmed: set = set()
        self.n_promotions = 0
        self.n_compactions = 0
        self.n_throttle_holds = 0

    # -- read-count promotion ------------------------------------------

    def note_chunked_read(self, key: tuple) -> bool:
        """Count one collective read of a still-chunked instance.

        Returns True exactly once — when the count reaches
        ``promote_reads`` — telling the caller to enqueue the background
        reorganization.  Call uniformly on every rank (the counters are
        replicated state).
        """
        if key in self._promoted:
            return False
        count = self._read_counts.get(key, 0) + 1
        self._read_counts[key] = count
        if count >= self.promote_reads:
            self._promoted.add(key)
            self.n_promotions += 1
            return True
        return False

    # -- fragmentation hysteresis --------------------------------------

    def fragmentation_trigger(
        self, file_name: str, free_bytes: int, file_size: int
    ) -> bool:
        """One observation of a file's dead-byte ratio; True means
        "enqueue a compaction now".

        Hysteresis: a file that fired stays disarmed — repeated
        observations above the high-water mark enqueue nothing more —
        until an observation at or below the low-water mark (the enqueued
        compaction reclaimed the space) re-arms it.
        """
        if file_size <= 0:
            return False
        ratio = free_bytes / file_size
        if file_name in self._disarmed:
            if ratio <= self.compact_lowater:
                self._disarmed.discard(file_name)
            return False
        if ratio >= self.compact_hiwater:
            self._disarmed.add(file_name)
            self.n_compactions += 1
            return True
        return False

    # -- worker rate limiting ------------------------------------------

    def throttle(self, fs, proc) -> int:
        """Back a maintenance worker off while foreground I/O is queued.

        Polls ``fs.queue_depth()`` (processes waiting at the controller
        queues); while it is at least ``throttle_depth``, holds the
        worker for exponentially growing slices of virtual time —
        ``throttle_hold * 2^i`` — up to ``throttle_max_holds`` holds, so
        a saturated foreground phase delays background jobs instead of
        contending with them, but can never starve them out entirely.
        Returns the number of holds taken.
        """
        holds = 0
        while (
            holds < self.throttle_max_holds
            and fs.queue_depth() >= self.throttle_depth
        ):
            proc.hold(self.throttle_hold * (2 ** holds))
            holds += 1
        self.n_throttle_holds += holds
        return holds


@dataclass
class PolicyConfig:
    """Per-loop policy modes plus their tuning knobs.

    ``SDM(policy=...)`` accepts ``None`` / ``"static"`` (everything
    hand-picked, the pre-policy behavior), ``"adaptive"`` (all three
    loops closed), or an explicit instance mixing modes per loop.
    """

    planner: str = STATIC
    coalesce: str = STATIC
    maintenance: str = STATIC
    planner_snapshot: Optional[Dict[str, float]] = None
    """When set (with ``planner=ADAPTIVE``), plan with these frozen
    constants instead of learning — the reproducibility path."""
    promote_reads: int = 3
    compact_hiwater: float = 0.40
    compact_lowater: float = 0.15
    throttle_depth: int = 1
    throttle_hold: float = 2e-3
    throttle_max_holds: int = 6
    _modes: Tuple[str, ...] = field(
        default=(STATIC, ADAPTIVE), init=False, repr=False
    )

    def __post_init__(self) -> None:
        for name in ("planner", "coalesce", "maintenance"):
            mode = getattr(self, name)
            if mode not in self._modes:
                raise ValueError(
                    f"unknown {name} policy mode {mode!r} "
                    f"(expected {STATIC!r} or {ADAPTIVE!r})"
                )

    @classmethod
    def resolve(cls, spec) -> "PolicyConfig":
        """Normalize the ``SDM(policy=...)`` argument."""
        if spec is None or spec == STATIC:
            return cls()
        if spec == ADAPTIVE:
            return cls(planner=ADAPTIVE, coalesce=ADAPTIVE,
                       maintenance=ADAPTIVE)
        if isinstance(spec, cls):
            return spec
        raise ValueError(
            f"unknown policy spec {spec!r} (expected None, {STATIC!r}, "
            f"{ADAPTIVE!r}, or a PolicyConfig)"
        )

    def make_planner_calibration(self) -> Optional[PlannerCalibration]:
        """The planner loop's calibrator, or None under static mode."""
        if self.planner != ADAPTIVE:
            return None
        if self.planner_snapshot is not None:
            return PlannerCalibration.from_snapshot(self.planner_snapshot)
        return PlannerCalibration()

    def make_maintenance_policy(self) -> Optional[MaintenancePolicy]:
        """The maintenance loop's trigger state, or None under static."""
        if self.maintenance != ADAPTIVE:
            return None
        return MaintenancePolicy(
            promote_reads=self.promote_reads,
            compact_hiwater=self.compact_hiwater,
            compact_lowater=self.compact_lowater,
            throttle_depth=self.throttle_depth,
            throttle_hold=self.throttle_hold,
            throttle_max_holds=self.throttle_max_holds,
        )
