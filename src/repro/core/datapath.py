"""Pluggable storage orders: the write/read data path behind ``SDM``.

The paper's key observation for irregular applications is that the runtime
may write each rank's data *in the order it is distributed* and defer
assembling global order until somebody needs it.  This module turns that
into a strategy layer:

* :class:`CanonicalOrder` — the classic path: every write scatters through
  an irregular file view and the two-phase collective exchange builds
  global element order on disk immediately.  Writes pay the exchange;
  reads are cheap.
* :class:`ChunkedOrder` — the write-optimized path: every rank appends its
  local block as-is (a sorted int64 index block, then the data block) with
  *independent* I/O — no interprocess data exchange whatsoever.  Each
  chunk's location and global-index range is recorded in the metadata
  database's ``chunk_table``.

Reads are transparent across both: :func:`locate_instance` returns the
``execution_table`` row plus any chunk maps, and :func:`read_instance`
either takes the canonical fast path or runs the chunked read pipeline:

1. **resolve** — :func:`_chunk_positions` turns the wanted global indices
   into absolute file byte positions against all chunk maps at once:
   arithmetic chunks (constant-stride maps, ``index_offset ==
   data_offset``) are pure arithmetic, and every *indexed* chunk's block
   is fetched in **one** batched (cache-aware) request; candidates from
   all chunks merge in a single stable sort whose last-per-gid survivor
   reproduces the two-phase overlap rule (highest writing rank wins) —
   no per-chunk rescan of the wanted array;
2. **coalesce** — the unique positions collapse into maximal contiguous
   byte runs (:func:`repro.mpiio.runs.coalesce_positions`, one
   ``np.diff``), with holes up to the ``coalesce_gap`` MPI-IO hint
   bridged (read-and-discard, the data-sieving trade), so the collective
   read ships O(chunks) runs instead of O(elements);
3. **gather** — one collective ``read_runs_at_all`` fetches the coalesced
   runs and a vectorized scatter puts each element's bytes back in view
   order.

:func:`reorganize` converts a chunked instance into canonical order —
reading the chunk maps, performing the deferred exchange exactly once,
and publishing the repointed ``execution_table`` row as a new epoch
(closing the chunked row versions) — so the write-time savings need not
be paid back on every subsequent read.

Layout of one chunked instance in its file (per rank, back to back in rank
order at the instance's base offset)::

    [ gid index block: num_elements x int64 ][ data block: num_elements x esize ]

with two index-block elisions that keep the steady-state write volume equal
to the data volume:

* an **arithmetic** chunk (the map is a constant-stride progression —
  contiguous ranges, round-robin/block-cyclic interleavings) stores no
  index block at all: it is marked by ``index_offset == data_offset`` and
  its stride recorded as the chunk row's ``gid_step``, so positions are
  computed, never fetched (the dense case is ``gid_step == 1``);
* a rank whose map is unchanged since its previous chunk in the same file
  **shares** that chunk's index block (``index_offset`` points backward),
  so a checkpoint loop writes each rank's map once, then data only.

Shared blocks are never clobbered: an instance's bytes are only reclaimed
once no ``execution_table`` row references the file region above them, and
any chunk row referencing an index block sits at a higher offset than the
block itself, keeping ``max_offset_in_file`` — the append cursor — above it
for as long as the reference lives.

Overlapping chunks (ghost-inclusive map arrays) resolve to the highest
writing rank, matching the two-phase exchange's overlap rule.

Maintenance hooks (PR 4) and concurrency (PR 7)
-----------------------------------------------

Three additions let the background maintenance layer
(:mod:`repro.core.maintenance`) keep chunked files healthy off the
application's critical path:

* :class:`IndexBlockCache` — a rank-local LRU over :func:`_chunk_index`
  fetches.  Checkpoint loops share index blocks across timesteps
  (reference-not-copy), so a warm cache turns steady-state chunked reads
  into data-only I/O.  Entries are keyed by the owning execution row's
  version (``valid_from``), so a flip's relocated blocks get fresh keys
  and a pinned snapshot's old keys stay valid for as long as its epoch
  lives.
* :func:`execute_reorganize` — the execute half of :func:`reorganize`,
  parameterized by a *host* instead of a full ``SDM`` so a maintenance
  worker can run the deferred exchange on a background process.
* :func:`compact_chunked_file` — packs a ``.chunked`` file's live chunks
  (two-phase read-then-write, so any overlap is safe) and publishes the
  rewritten chunk maps as a new epoch.

Metadata flips are MVCC publishes (see ``docs/concurrency.md``): the
writer takes the file's flip lease (:func:`acquire_file_lease` — a
concurrent flip raises :class:`~repro.errors.SDMLeaseConflict` instead
of losing an update), allocates a new epoch, inserts successor row
versions, closes the old ones, and reaps whatever no snapshot pin can
still see (``SDMTables.reap_file`` — which is also where the PR-4
``extent_table`` bookkeeping now happens: an interior region whose dead
rows are reaped becomes a free extent; a topmost one retreats the append
cursor).  Readers that pinned an epoch keep resolving against their
snapshot's row versions and byte regions — no quiescence contract is
needed for reorganization or deferred compaction.

A *host* is anything with the execution context these collectives need —
``comm``, ``ctx`` (``.rank``/``.proc``), ``tables``, ``fs``,
``organization``, ``application``, an optional ``index_cache``, the
``_open_cached``/``_close_cached`` file cache, and
``invalidate_chunked_caches(file_name)``.  :class:`~repro.core.api.SDM`
satisfies it for the synchronous paths; the maintenance worker builds a
lightweight equivalent.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.groups import DataGroup, DatasetAttrs, DataView
from repro.core.layout import (
    CANONICAL,
    CHUNKED,
    Organization,
    checkpoint_file_name,
    is_chunked_name,
)
from repro.dtypes.constructors import IndexedBlock
from repro.dtypes.primitives import Primitive, primitive_by_name
from repro.errors import SDMLeaseConflict, SDMStateError, SDMUnknownDataset
from repro.metadb.schema import ChunkRecord, SDMTables
from repro.mpi.communicator import Communicator
from repro.mpiio import runs
from repro.mpiio.consts import MODE_CREATE, MODE_RDONLY, MODE_RDWR
from repro.mpiio.file import File

__all__ = [
    "StorageOrder",
    "CanonicalOrder",
    "ChunkedOrder",
    "FileHandleCache",
    "IndexBlockCache",
    "resolve_storage_order",
    "resolve_chunk_positions",
    "locate_instance",
    "read_instance",
    "reorganize",
    "execute_reorganize",
    "compact_chunked_file",
    "acquire_file_lease",
    "release_file_lease",
]

CHUNK_INDEX_BYTES = 8
"""Bytes per entry of a chunk's global-index block (int64)."""

ExecutionRow = Tuple[str, int, int]
"""(file_name, file_offset, nbytes) from ``execution_table``."""


def set_instance_view(f: File, base: int, dtype: Primitive,
                      gids: np.ndarray) -> None:
    """Install the irregular view of one canonical instance: element ``g``
    of the global array at ``base + g * esize``.  An empty map gets a dense
    view (a filetype needs positive size) — the rank still participates in
    the collective with zero bytes."""
    if len(gids) == 0:
        f.set_view(disp=base, etype=dtype)
        return
    f.set_view(disp=base, etype=dtype, filetype=IndexedBlock(1, gids, dtype))


def _next_append_base(sdm, fname: str) -> int:
    """Next append offset in a checkpoint file (0 under level 1, else the
    end-of-file probe through ``execution_table``, broadcast from rank 0)."""
    if sdm.organization == Organization.LEVEL_1:
        return 0
    base = 0
    if sdm.ctx.rank == 0:
        base = sdm.tables.max_offset_in_file(fname, proc=sdm.ctx.proc)
    return sdm.comm.bcast(base, root=0)


class IndexBlockCache:
    """Rank-local LRU cache of chunked index blocks.

    Assembling a chunked read fetches every overlapping chunk's index
    block from the file — as many bytes as the data itself for irregular
    maps.  Checkpoint loops reference the same blocks across timesteps
    (the write side's reference-not-copy sharing), so a small per-rank
    cache of hot blocks removes those fetches from every warm read.

    Cached blocks are stored as private read-only copies and handed out
    with ``writeable=False``: a caller mutating a block it fetched (or the
    array it inserted) cannot silently corrupt what later reads resolve
    their positions against.

    Entries are keyed by ``(file_name, index_offset, version)`` where
    ``version`` is the owning execution row's ``valid_from`` epoch.  A
    flip that relocates blocks publishes new row versions, so its readers
    look up fresh keys and can never be served a stale block — while a
    reader pinned on an old epoch keeps hitting its own still-valid
    entries.  Checkpoint loops share blocks across timesteps at the same
    version (fresh appends are all version 0), preserving the warm-read
    fast path.  Entries are additionally dropped

    * when the append cursor retreats to or below the block
      (:meth:`drop_from`, the write path's endangered-region rule), and
    * when reorganization or compaction reclaims the file
      (:meth:`drop_file`, via the maintenance service's registered
      caches) — now belt-and-braces for the read path, but still load-
      bearing for the write side's reference cache.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise SDMStateError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._blocks: "OrderedDict[Tuple[str, int, int], np.ndarray]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._blocks)

    def get(
        self, file_name: str, offset: int, count: int, version: int = 0
    ) -> Optional[np.ndarray]:
        """The cached gid block at ``(file_name, offset, version)``, or
        None.

        The returned array is read-only.  A length mismatch (a different
        block landed at a recycled offset) is treated as a miss; the
        fetch that follows replaces the entry.
        """
        key = (file_name, offset, version)
        gids = self._blocks.get(key)
        if gids is None or len(gids) != count:
            self.misses += 1
            return None
        self._blocks.move_to_end(key)
        self.hits += 1
        return gids

    def contains(
        self, file_name: str, offset: int, count: int, version: int = 0
    ) -> bool:
        """Non-counting peek: would :meth:`get` hit?  Does not touch the
        hit/miss counters or the LRU order — the collective resolution
        gate asks this before deciding whether any rank needs the block
        exchange at all."""
        gids = self._blocks.get((file_name, offset, version))
        return gids is not None and len(gids) == count

    def put(
        self, file_name: str, offset: int, gids: np.ndarray, version: int = 0
    ) -> np.ndarray:
        """Remember a fetched block (evicts LRU beyond capacity).

        The cache keeps a private read-only copy — later mutation of the
        caller's array cannot reach it — and returns that copy, which is
        what :meth:`get` will serve.
        """
        gids = np.asarray(gids)
        if gids.flags.writeable:
            gids = gids.copy()
        gids.setflags(write=False)
        key = (file_name, offset, version)
        self._blocks[key] = gids
        self._blocks.move_to_end(key)
        if len(self._blocks) > self.capacity:
            self._blocks.popitem(last=False)
        return gids

    def drop_file(self, file_name: str) -> None:
        """Forget every block of one file."""
        for k in [k for k in self._blocks if k[0] == file_name]:
            del self._blocks[k]

    def drop_from(self, file_name: str, base: int) -> None:
        """Forget blocks whose bytes extend above ``base`` — the append
        cursor retreated there, so anything above may be rewritten."""
        for k in [
            k for k, g in self._blocks.items()
            if k[0] == file_name and k[1] + len(g) * CHUNK_INDEX_BYTES > base
        ]:
            del self._blocks[k]

    def drop_range(self, file_name: str, lo: int, hi: int) -> None:
        """Forget blocks overlapping the byte range ``[lo, hi)`` — a
        first-fit write is landing inside a previously-dead region, so a
        block cached at a recycled ``(file, offset, version)`` key could
        otherwise survive with stale bytes (fresh appends all publish at
        version 0, so the version axis alone cannot disambiguate)."""
        for k in [
            k for k, g in self._blocks.items()
            if k[0] == file_name and k[1] < hi
            and k[1] + len(g) * CHUNK_INDEX_BYTES > lo
        ]:
            del self._blocks[k]


class FileHandleCache:
    """Collective file-handle cache every datapath host carries.

    Identical open/close call sequences on all ranks of ``comm`` keep the
    cache coherent across the job — the invariant ``SDM`` always relied
    on, now shared with the maintenance workers so both sync and
    background paths open files the same way (``hints`` included).

    Cached handles are *refcounted*: every :meth:`open` of a key takes a
    reference and every :meth:`close` of the name drops one, with the
    underlying collective close deferred until the last reference goes —
    so one client's eager close (the LEVEL_1 per-read discipline) cannot
    yank a handle from under another client's in-flight coalesced read.
    Identical call sequences across ranks keep the counts symmetric.
    """

    def __init__(self, comm, fs, hints=None) -> None:
        self.comm = comm
        self.fs = fs
        self.hints = hints
        self._files: Dict[Tuple[str, int], File] = {}
        self._refs: Dict[Tuple[str, int], int] = {}

    def open(self, name: str, amode: int) -> File:
        """Get or collectively open a file (one reference per call)."""
        key = (name, amode)
        f = self._files.get(key)
        if f is None or f.closed:
            f = File.open(self.comm, self.fs, name, amode, hints=self.hints)
            self._files[key] = f
            self._refs[key] = 0
        self._refs[key] = self._refs.get(key, 0) + 1
        return f

    def close(self, name: str) -> None:
        """Drop one reference per cached handle on ``name``, collectively
        closing each handle whose last reference this was."""
        for key in list(self._files):
            if key[0] == name:
                self._refs[key] = self._refs.get(key, 1) - 1
                if self._refs[key] <= 0:
                    f = self._files.pop(key)
                    del self._refs[key]
                    if not f.closed:
                        f.close()

    def close_all(self) -> None:
        """Collectively close everything regardless of references, in
        sorted key order (symmetric across ranks)."""
        for key in sorted(self._files):
            f = self._files.pop(key)
            self._refs.pop(key, None)
            if not f.closed:
                f.close()


class StorageOrder:
    """Strategy for arranging one dataset instance's bytes in its file.

    Implementations are stateless; they operate on the calling
    :class:`~repro.core.api.SDM` instance (files, tables, communicator).
    """

    name: str = ""

    def write(
        self,
        sdm,
        handle: DataGroup,
        attrs: DatasetAttrs,
        view: DataView,
        name: str,
        timestep: int,
        buf: np.ndarray,
    ) -> str:
        """Write one instance collectively; returns the file name."""
        raise NotImplementedError

    def file_name(self, sdm, handle: DataGroup, name: str, timestep: int) -> str:
        """Checkpoint file this strategy writes the instance to."""
        return checkpoint_file_name(
            sdm.application, handle.group_id, name, timestep,
            sdm.organization, storage_order=self.name,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<StorageOrder {self.name}>"


class CanonicalOrder(StorageOrder):
    """Global element order on disk; the exchange happens at write time."""

    name = CANONICAL

    def write(self, sdm, handle, attrs, view, name, timestep, buf):
        fname = self.file_name(sdm, handle, name, timestep)
        base = _next_append_base(sdm, fname)
        f = sdm._open_cached(fname, MODE_CREATE | MODE_RDWR)
        set_instance_view(f, base, attrs.data_type, view.map_sorted)
        data = view.to_file_order(
            np.asarray(buf, dtype=attrs.data_type.numpy_dtype)
        )
        f.write_at_all(0, data)
        if sdm.ctx.rank == 0:
            sdm.tables.record_execution(
                sdm.runid, name, timestep, fname, base, attrs.global_bytes(),
                proc=sdm.ctx.proc,
            )
            _fault(sdm.ctx.proc, "write:recorded")
        if sdm.organization == Organization.LEVEL_1:
            sdm._close_cached(fname)
        return fname


class ChunkedOrder(StorageOrder):
    """Distribution order on disk; the exchange is deferred to reads (or a
    one-time :func:`reorganize`).

    Each rank independently appends its chunk at an offset derived from an
    exscan of local byte counts — only scalar metadata crosses ranks; the
    transport's ``alltoallv`` counters stay untouched (tests assert exactly
    that).  The index block is elided when the map is an arithmetic
    progression (``gid_step`` recorded in the chunk row), and shared with
    the rank's previous chunk when the map is unchanged — the
    checkpoint-loop steady state writes data bytes only.
    """

    name = CHUNKED

    def __init__(self) -> None:
        # (fname, group_id, dataset) -> (gids, index_offset, index_end) of
        # this rank's last written index block, for reference-not-copy.
        self._index_cache: dict = {}

    def _drop_endangered(self, fname: str, base: int) -> None:
        """Forget cached index blocks the append cursor has retreated past.

        A base below a cached block's end means reorganization reclaimed
        the file region holding it: bytes from ``base`` on may be
        overwritten by this or any later append (any dataset of the file),
        so every such entry is stale the moment the retreat is observed —
        before a later write sees the cursor back above the block and
        wrongly reuses it.
        """
        for k in [
            k for k, (_g, _off, end) in self._index_cache.items()
            if k[0] == fname and end > base
        ]:
            del self._index_cache[k]

    def drop_file_cache(self, fname: str) -> None:
        """Forget every cached index block of one file (reorganization
        may retreat its append cursor)."""
        for k in [k for k in self._index_cache if k[0] == fname]:
            del self._index_cache[k]

    def drop_range_cache(self, fname: str, lo: int, hi: int) -> None:
        """Forget cached index blocks overlapping ``[lo, hi)`` — a
        first-fit write is about to overwrite that previously-dead region,
        so a cached block inside it must never be shared again."""
        for k in [
            k for k, (_g, off, end) in self._index_cache.items()
            if k[0] == fname and off < hi and end > lo
        ]:
            del self._index_cache[k]

    def _shared_index(self, key, gids, base) -> Optional[int]:
        """Offset of a reusable earlier index block, or None.

        Reuse requires the block to lie below this instance's base: the
        new chunk row then protects it from append-cursor reclamation for
        as long as the row lives (see the module docstring).
        """
        cached = self._index_cache.get(key)
        if cached is None:
            return None
        prev_gids, offset, end = cached
        if end <= base and np.array_equal(prev_gids, gids):
            return offset
        return None

    def write(self, sdm, handle, attrs, view, name, timestep, buf):
        dtype = attrs.data_type
        count = view.local_count
        gids = view.map_sorted.astype(np.int64, copy=False)
        data = view.to_file_order(np.asarray(buf, dtype=dtype.numpy_dtype))
        steps = np.diff(gids)
        if count > 1 and bool((steps == 0).any()):
            # The canonical path rejects duplicate map entries through its
            # file view; match it rather than write an ambiguous chunk.
            raise SDMStateError(
                f"map array for {name!r} holds duplicate global indices"
            )
        # Constant-stride maps (contiguous blocks, round-robin/block-cyclic
        # interleavings) need no index block: positions are arithmetic.
        # ``step == 0`` means the map is genuinely irregular.
        if count > 1:
            step = int(steps[0]) if bool((steps == steps[0]).all()) else 0
        else:
            step = 1  # empty or single-element: trivially arithmetic
        arithmetic = step > 0

        fname = self.file_name(sdm, handle, name, timestep)
        base = _next_append_base(sdm, fname)
        read_cache = getattr(sdm, "index_cache", None)
        # First-fit extent reuse: place the instance into a free extent
        # (reap's dead-region bookkeeping) instead of growing the file,
        # when one fits.  Sized for the worst case — every non-arithmetic
        # rank writing its own index block — because whether a rank can
        # share an earlier block is only knowable after placement, and a
        # reuse write disables sharing anyway (below).  Placement is part
        # of the normal write: rows still publish at valid_from=0 under
        # no lease, and reap records extents only below the min-pin floor,
        # so the region is invisible to every snapshot by construction.
        reused = False
        total_need = 0
        if sdm.organization != Organization.LEVEL_1:
            local_need = count * dtype.size
            if count and not arithmetic:
                local_need += count * CHUNK_INDEX_BYTES
            total_need = sdm.comm.allreduce(local_need)
            place = None
            if total_need and sdm.ctx.rank == 0:
                place = sdm.tables.allocate_extent(
                    fname, total_need, proc=sdm.ctx.proc
                )
            place = sdm.comm.bcast(place, root=0)
            if place is not None:
                base, reused = place, True
        if reused:
            # A write landing *inside* a previously-dead region: cached
            # blocks overlapping it are stale the moment the bytes land —
            # fresh rows publish at version 0, so the MVCC cache key alone
            # cannot tell recycled bytes from old ones.  The invalidation
            # goes through the maintenance registry when present: a pinned
            # catalog that read the old version (and whose release-time
            # reap recorded this very extent) holds the same recycled
            # keys in its own cache.
            invalidate = getattr(sdm, "invalidate_chunked_range", None)
            if invalidate is not None:
                invalidate(fname, base, base + total_need)
            else:
                self.drop_range_cache(fname, base, base + total_need)
                if read_cache is not None:
                    read_cache.drop_range(fname, base, base + total_need)
        else:
            self._drop_endangered(fname, base)
            # The read-side block cache obeys the same retreat rule: bytes
            # from ``base`` up may be rewritten by this or a later append.
            if read_cache is not None:
                read_cache.drop_from(fname, base)
        # Under level 1 every instance gets its own file, so an index
        # block can never be shared — don't grow the cache with map
        # copies that cannot hit.  A reuse write neither consumes nor
        # publishes shared blocks: sharing's safety argument (the
        # referencing row holds the append cursor above the block) only
        # holds when every referencing row was appended at the cursor.
        sharable = sdm.organization != Organization.LEVEL_1 and not reused
        key = (fname, handle.group_id, name)
        shared = (
            self._shared_index(key, gids, base)
            if sharable and not arithmetic else None
        )
        write_index = count > 0 and not arithmetic and shared is None
        local_bytes = count * dtype.size
        if write_index:
            local_bytes += count * CHUNK_INDEX_BYTES
        start = sdm.comm.exscan(local_bytes)
        chunk_off = base + (0 if start is None else int(start))

        f = sdm._open_cached(fname, MODE_CREATE | MODE_RDWR)
        if count:
            parts = [np.ascontiguousarray(data).view(np.uint8)]
            if write_index:
                parts.insert(0, np.ascontiguousarray(gids).view(np.uint8))
            blob = np.concatenate(parts) if len(parts) > 1 else parts[0]
            f.write_runs(
                np.array([chunk_off], dtype=np.int64),
                np.array([len(blob)], dtype=np.int64),
                blob,
            )
        if write_index:
            index_offset = chunk_off
            data_offset = chunk_off + count * CHUNK_INDEX_BYTES
            if sharable:
                self._index_cache[key] = (gids.copy(), index_offset, data_offset)
        elif shared is not None:
            index_offset, data_offset = shared, chunk_off
        else:  # arithmetic (or empty): no index block anywhere
            index_offset = data_offset = chunk_off
        record = ChunkRecord(
            rank=sdm.ctx.rank,
            gid_min=view.gid_min,
            gid_max=view.gid_max,
            num_elements=count,
            index_offset=index_offset,
            data_offset=data_offset,
            gid_step=step if arithmetic else 1,
        )
        payloads = sdm.comm.gather((record, local_bytes), root=0)
        if sdm.ctx.rank == 0:
            total = sum(nbytes for _, nbytes in payloads)
            sdm.tables.record_execution(
                sdm.runid, name, timestep, fname, base, total,
                proc=sdm.ctx.proc,
            )
            sdm.tables.record_chunks(
                sdm.runid, name, timestep,
                [rec for rec, _ in payloads], proc=sdm.ctx.proc,
            )
            _fault(sdm.ctx.proc, "write:recorded")
        # Readers must not race ahead of rank 0's metadata inserts.
        sdm.comm.barrier()
        if sdm.organization == Organization.LEVEL_1:
            sdm._close_cached(fname)
        return fname


_ORDERS = {CANONICAL: CanonicalOrder, CHUNKED: ChunkedOrder}


def resolve_storage_order(spec) -> StorageOrder:
    """Coerce a strategy instance or name ("canonical"/"chunked")."""
    if isinstance(spec, StorageOrder):
        return spec
    try:
        return _ORDERS[str(spec).lower()]()
    except KeyError:
        raise SDMStateError(
            f"unknown storage order {spec!r} "
            f"(expected one of {sorted(_ORDERS)})"
        ) from None


# ---------------------------------------------------------------------------
# Reading (transparent across storage orders)
# ---------------------------------------------------------------------------


def locate_instance(
    comm: Communicator,
    tables: SDMTables,
    runid: int,
    dataset: str,
    timestep: int,
    proc=None,
    epoch: Optional[int] = None,
) -> Tuple[Optional[ExecutionRow], List[ChunkRecord], int]:
    """Metadata of one written instance, broadcast from rank 0's lookup:
    the ``execution_table`` row (None if never written), its chunk maps
    (empty for a canonical instance), and the matched row's version
    (``valid_from`` — the index-block cache key component).

    ``epoch=None`` resolves current visibility (open row versions — still
    one metadata probe for a canonical instance); a pinned reader passes
    its snapshot epoch.  Chunk maps are always resolved at the matched
    execution row's own version, which keeps the pair consistent even
    inside another client's publish window."""
    info = None
    if comm.rank == 0:
        row = tables.lookup_execution_version(
            runid, dataset, timestep, epoch=epoch, proc=proc
        )
        where: Optional[ExecutionRow] = None
        chunks: List[ChunkRecord] = []
        version = 0
        if row is not None:
            where = (row[0], row[1], row[2])
            version = row[3]
            # Canonical file names never hold chunked instances, so the
            # canonical read path stays a single metadata probe.
            if is_chunked_name(where[0]):
                chunks = tables.chunks_for(
                    runid, dataset, timestep, proc=proc, at=version
                )
        info = (where, chunks, version)
    return comm.bcast(info, root=0)


def read_instance(
    comm: Communicator,
    f: File,
    where: ExecutionRow,
    chunks: Sequence[ChunkRecord],
    dtype: Primitive,
    view: DataView,
    cache: Optional[IndexBlockCache] = None,
    version: int = 0,
) -> np.ndarray:
    """Collectively read this rank's view of one instance (either
    representation); returns the elements in the view's user order.
    ``cache``, when given, serves repeat index-block fetches of chunked
    instances without touching the file; ``version`` (the located
    execution row's ``valid_from``) scopes its keys to the snapshot the
    chunk maps came from."""
    if chunks:
        return _assemble_chunked(comm, f, chunks, dtype, view, cache, version)
    _fname, base, _nbytes = where
    set_instance_view(f, base, dtype, view.map_sorted)
    out = np.empty(view.local_count, dtype=dtype.numpy_dtype)
    f.read_at_all(0, out)
    return view.to_user_order(out)


def _chunk_index(
    f: File, ch: ChunkRecord, cache: Optional[IndexBlockCache] = None,
    version: int = 0,
) -> np.ndarray:
    """A chunk's sorted gid index block (arithmetic chunks are the
    progression of their gid range and store none).  A cache hit skips the
    file read entirely — the warm-read fast path."""
    if ch.index_offset == ch.data_offset:
        return np.arange(
            ch.gid_min, ch.gid_max + 1, max(ch.gid_step, 1), dtype=np.int64
        )
    blocks = _chunk_indexes(f, [ch], cache, version)
    return blocks[(ch.index_offset, ch.num_elements)]


def _chunk_indexes(
    f: File,
    chunks: Sequence[ChunkRecord],
    cache: Optional[IndexBlockCache] = None,
    version: int = 0,
    preloaded: Optional[Dict[Tuple[int, int], np.ndarray]] = None,
) -> Dict[Tuple[int, int], np.ndarray]:
    """Index blocks of several chunks, fetched in one batched request.

    Returns ``{(index_offset, num_elements): gids}`` for every chunk that
    stores a real block (arithmetic chunks are skipped).  Blocks already
    in ``preloaded`` (the collective resolution's dealt blocks) and cache
    hits are resolved first; every remaining miss lands in a single
    batched :func:`_fetch_index_blocks` read.
    """
    out: Dict[Tuple[int, int], np.ndarray] = {}
    rest: List[Tuple[int, int]] = []
    for ch in chunks:
        if ch.index_offset == ch.data_offset:
            continue
        key = (ch.index_offset, ch.num_elements)
        if key in out:
            continue
        if preloaded is not None and key in preloaded:
            out[key] = preloaded[key]
            continue
        rest.append(key)
    out.update(_fetch_index_blocks(f, rest, cache, version))
    return out


def _fetch_index_blocks(
    f: File,
    keys: Sequence[Tuple[int, int]],
    cache: Optional[IndexBlockCache] = None,
    version: int = 0,
) -> Dict[Tuple[int, int], np.ndarray]:
    """Index blocks by ``(index_offset, num_elements)`` key.

    Cache hits are resolved first; every miss lands in a single
    ``read_runs`` call (tagged ``kind="index"`` for the traffic split)
    whose runs are zero-gap coalesced — adjacent blocks (back-to-back
    writer ranks) become one streaming transfer instead of a serial
    chain of per-chunk requests.
    """
    out: Dict[Tuple[int, int], np.ndarray] = {}
    need: List[Tuple[int, int]] = []
    for key in keys:
        if key in out or key in need:
            continue
        if cache is not None:
            gids = cache.get(f.name, key[0], key[1], version)
            if gids is not None:
                out[key] = gids
                continue
        need.append(key)
    if not need:
        return out
    need.sort()
    offs = np.array([o for o, _ in need], dtype=np.int64)
    lens = np.array([n * CHUNK_INDEX_BYTES for _, n in need], dtype=np.int64)
    coff, clen, owner = runs.coalesce_runs(offs, lens)
    blob = np.empty(int(clen.sum()), dtype=np.uint8)
    f.read_runs(coff, clen, blob, kind="index")
    raw = runs.extract_runs(blob, coff, clen, offs, lens, owner)
    for key, part in zip(need, np.split(raw, np.cumsum(lens)[:-1])):
        gids = part.view(np.int64)
        if cache is not None:
            gids = cache.put(f.name, key[0], gids, version)
        out[key] = gids
    return out


def _chunk_positions(
    f: File, chunks: Sequence[ChunkRecord], dtype: Primitive,
    wanted: np.ndarray, cache: Optional[IndexBlockCache] = None,
    version: int = 0,
    preloaded: Optional[Dict[Tuple[int, int], np.ndarray]] = None,
) -> np.ndarray:
    """Absolute file byte position of each wanted global index, resolved
    against the chunk maps (-1 where no chunk holds it).

    Arithmetic chunks resolve by pure arithmetic; indexed chunks' blocks
    arrive via one batched :func:`_chunk_indexes` fetch.  Candidate
    ``(gid, position)`` pairs from every overlapping chunk are gathered in
    ascending writer rank and merged with one stable sort whose
    last-per-gid survivor wins — exactly the two-phase exchange's overlap
    rule (highest writing rank wins) without a per-chunk rescan of the
    wanted array.
    """
    pos = np.full(len(wanted), -1, dtype=np.int64)
    if len(wanted) == 0:
        return pos
    lo, hi = int(wanted[0]), int(wanted[-1])
    esize = dtype.size
    live = [
        ch for ch in sorted(chunks, key=lambda c: c.rank)
        if ch.num_elements and ch.gid_max >= lo and ch.gid_min <= hi
    ]
    if not live:
        return pos
    blocks = _chunk_indexes(f, live, cache, version, preloaded)
    cand_gid: List[np.ndarray] = []
    cand_pos: List[np.ndarray] = []
    for ch in live:  # ascending rank: later candidates override earlier
        if ch.index_offset == ch.data_offset:
            step = max(ch.gid_step, 1)
            sel = (wanted >= ch.gid_min) & (wanted <= ch.gid_max)
            if step > 1:
                sel &= (wanted - ch.gid_min) % step == 0
            g = wanted[sel]
            p = ch.data_offset + ((g - ch.gid_min) // step) * esize
        else:
            cidx = blocks[(ch.index_offset, ch.num_elements)]
            a = int(np.searchsorted(cidx, lo))
            b = int(np.searchsorted(cidx, hi, side="right"))
            if b - a <= len(wanted):
                # Bulk read: the chunk's in-range slice is the smaller
                # side — contribute it wholesale.
                g = cidx[a:b]
                p = ch.data_offset + np.arange(a, b, dtype=np.int64) * esize
            else:
                # Sparse read (catalog viewers): probing wanted into the
                # block bounds candidates by O(wanted), not O(chunk).
                j = np.searchsorted(cidx, wanted)
                inb = j < len(cidx)
                m = np.zeros(len(wanted), dtype=bool)
                m[inb] = cidx[j[inb]] == wanted[inb]
                g = wanted[m]
                p = ch.data_offset + j[m] * esize
        cand_gid.append(g)
        cand_pos.append(p)
    gid = np.concatenate(cand_gid)
    gpos = np.concatenate(cand_pos)
    if len(gid) == 0:
        return pos
    order = np.argsort(gid, kind="stable")  # ties keep rank order
    gid, gpos = gid[order], gpos[order]
    last = np.r_[gid[1:] != gid[:-1], True]
    gid, gpos = gid[last], gpos[last]
    j = np.searchsorted(gid, wanted)
    inb = j < len(gid)
    hit = np.zeros(len(wanted), dtype=bool)
    hit[inb] = gid[j[inb]] == wanted[inb]
    pos[hit] = gpos[j[hit]]
    return pos


def resolve_chunk_positions(
    comm: Communicator,
    f: File,
    chunks: Sequence[ChunkRecord],
    dtype: Primitive,
    wanted: np.ndarray,
    cache: Optional[IndexBlockCache] = None,
    version: int = 0,
) -> np.ndarray:
    """Collective position resolution: :func:`_chunk_positions` with the
    index blocks dealt across ranks instead of fetched P times.

    On a cold read of a non-arithmetic instance every rank used to fetch
    every overlapping index block itself, so cold index traffic scaled
    with rank count.  Here the instance's indexed blocks are *dealt* over
    the ranks by a deterministic block→rank map (sorted block keys,
    position modulo ``comm.size`` — pure uniform chunk metadata, so every
    rank derives the same owners), each rank routes the block keys its
    cache cannot serve to their owners, every owner fetches its requested
    blocks exactly once (one batched ``kind="index"`` read), and the
    blocks travel back over the same :meth:`alltoallv` transport the
    two-phase exchange uses.  Received blocks land in the requester's
    :class:`IndexBlockCache`, so the warm path is *exactly* the old one:
    subsequent reads resolve locally with no exchange at all — an
    allreduce of the ranks' miss counts skips the dealing round entirely
    when every rank is warm (its result is uniform, so the collective
    structure stays SPMD).

    Must be called by every rank of ``comm`` (a rank with an empty
    ``wanted`` participates with empty requests).  The returned positions
    are byte-identical to a purely local :func:`_chunk_positions` — the
    dealt blocks are the same bytes the local path would have fetched.
    """
    indexed = sorted({
        (ch.index_offset, ch.num_elements)
        for ch in chunks
        if ch.num_elements and ch.index_offset != ch.data_offset
    })
    if comm.size == 1 or not indexed:
        return _chunk_positions(f, chunks, dtype, wanted, cache, version)
    # Blocks this rank's own resolution will touch (overlapping its
    # wanted range) that its cache cannot serve.
    missing: List[Tuple[int, int]] = []
    if len(wanted):
        lo, hi = int(wanted[0]), int(wanted[-1])
        for ch in chunks:
            if (
                ch.num_elements and ch.index_offset != ch.data_offset
                and ch.gid_max >= lo and ch.gid_min <= hi
            ):
                key = (ch.index_offset, ch.num_elements)
                if key in missing:
                    continue
                if cache is not None and cache.contains(
                    f.name, key[0], key[1], version
                ):
                    continue
                missing.append(key)
    preloaded = None
    if comm.allreduce(len(missing)) > 0:
        preloaded = _deal_index_blocks(
            comm, f, indexed, sorted(missing), cache, version
        )
    return _chunk_positions(f, chunks, dtype, wanted, cache, version,
                            preloaded)


def _deal_index_blocks(
    comm: Communicator,
    f: File,
    all_keys: Sequence[Tuple[int, int]],
    missing: Sequence[Tuple[int, int]],
    cache: Optional[IndexBlockCache],
    version: int,
) -> Dict[Tuple[int, int], np.ndarray]:
    """The exchange half of :func:`resolve_chunk_positions`: route each
    missing block key to its owner rank, owners fetch their requested
    blocks once, and the blocks come back keyed for local resolution."""
    owner = {key: i % comm.size for i, key in enumerate(all_keys)}
    sends: List[Optional[List[Tuple[int, int]]]] = [None] * comm.size
    for key in missing:
        dest = owner[key]
        if sends[dest] is None:
            sends[dest] = []
        sends[dest].append(key)
    recv = comm.alltoallv(sends)
    requested = sorted({
        tuple(key) for req in recv if req for key in req
    })
    blocks = _fetch_index_blocks(f, requested, cache, version)
    replies = [
        [blocks[tuple(key)] for key in req] if req else None
        for req in recv
    ]
    back = comm.alltoallv(replies)
    got: Dict[Tuple[int, int], np.ndarray] = {}
    for dest, req in enumerate(sends):
        if not req:
            continue
        for key, gids in zip(req, back[dest]):
            if cache is not None:
                gids = cache.put(f.name, key[0], gids, version)
            got[key] = gids
    return got


def _assemble_chunked(
    comm: Communicator,
    f: File,
    chunks: Sequence[ChunkRecord],
    dtype: Primitive,
    view: DataView,
    cache: Optional[IndexBlockCache] = None,
    version: int = 0,
) -> np.ndarray:
    """Gather this rank's wanted elements out of a chunked instance.

    The chunk maps give each element's file position; the positions
    coalesce into maximal contiguous byte runs (holes up to the file's
    ``coalesce_gap`` hint bridged) so the one collective read carries
    O(chunks) runs, not O(elements); a vectorized scatter puts the bytes
    back on their elements.  Elements no chunk wrote read as 0 — the
    bytes a canonical read of an unwritten region would return."""
    esize = dtype.size
    wanted = view.map_sorted
    pos = resolve_chunk_positions(comm, f, chunks, dtype, wanted, cache,
                                  version)
    present = pos >= 0
    upos = np.unique(pos[present])
    gap = runs.resolve_gap_positions(
        f.hints.coalesce_gap, upos, esize,
        waste_fraction=f.hints.coalesce_waste,
        max_gap=f.hints.ds_threshold_gap,
    )
    coff, clen, owner = runs.coalesce_positions(upos, esize, gap)
    blob = f.read_runs_at_all(coff, clen)
    raw = runs.gather_elements(blob, coff, clen, upos, esize, owner)
    elems = raw.view(dtype.numpy_dtype)
    out = np.zeros(len(wanted), dtype=dtype.numpy_dtype)
    out[present] = elems[np.searchsorted(upos, pos[present])]
    return view.to_user_order(out)


# ---------------------------------------------------------------------------
# Flip leases (one writer per file; concurrent flips fail fast)
# ---------------------------------------------------------------------------


def _fault(proc, name: str) -> None:
    """Announce a registered fault point (no-op without a process or a
    :class:`~repro.simt.simulator.FaultPlan`)."""
    if proc is not None:
        proc.fault_point(name)


def acquire_file_lease(
    comm: Communicator,
    tables: SDMTables,
    file_name: str,
    holder: str,
    proc=None,
) -> None:
    """Collectively take the exclusive flip lease on one file.

    Rank 0 runs the insert-then-verify protocol and broadcasts the
    outcome; on conflict *every* rank raises
    :class:`~repro.errors.SDMLeaseConflict` symmetrically, so the failed
    flip unwinds as one collective error instead of a hung job — the
    fail-fast replacement for the silent lost-update overlap of two
    concurrent metadata flips.

    A lease whose holder is dead (prior database incarnation, or
    heartbeat a full TTL stale at the caller's virtual now) is not a
    conflict: rank 0 recovers whatever the dead holder left mid-flip and
    steals the row (see :meth:`SDMTables.try_acquire_lease`).
    """
    ok = True
    if comm.rank == 0:
        ok = tables.try_acquire_lease(
            file_name, holder, proc=proc,
            now=None if proc is None else proc.now,
        )
        if ok:
            _fault(proc, "lease:acquired")
    ok = comm.bcast(ok, root=0)
    if not ok:
        raise SDMLeaseConflict(
            f"{file_name!r} is being flipped by another client "
            f"(lease requested by {holder!r})"
        )


def release_file_lease(
    comm: Communicator,
    tables: SDMTables,
    file_name: str,
    holder: str,
    proc=None,
) -> None:
    """Drop the flip lease (rank 0 only; call after the flip's final
    barrier — no collective inside)."""
    if comm.rank == 0:
        tables.release_lease(file_name, holder, proc=proc)


def _lease_holder_id(host) -> str:
    """A host's lease-holder identity (distinct across concurrent
    clients: the application tag plus the host's own discriminator)."""
    return getattr(host, "lease_holder", None) or f"sdm:{host.application}"


# ---------------------------------------------------------------------------
# Reorganization (chunked -> canonical, the deferred exchange)
# ---------------------------------------------------------------------------


def reorganize(
    sdm, handle: DataGroup, name: str, timestep: int,
    runid: Optional[int] = None,
) -> str:
    """Rewrite a chunked instance into canonical order, synchronously.

    The enqueue half — resolving the dataset's type and global size from
    the live :class:`~repro.core.groups.DataGroup` — feeding the execute
    half directly on the calling ranks.  ``SDM.reorganize`` in background
    mode records the same parameters in ``maintenance_table`` instead and
    lets the maintenance workers run :func:`execute_reorganize` later.
    """
    attrs = handle.dataset(name)
    rid = sdm.runid if runid is None else runid
    return execute_reorganize(
        sdm, handle.group_id, name, timestep, attrs.data_type,
        attrs.global_size, rid,
    )


def execute_reorganize(
    host, group_id: int, dataset: str, timestep: int,
    dtype: Primitive, global_size: int, runid: int,
) -> str:
    """The execute half: rewrite a chunked instance into canonical order.
    Collective over ``host.comm`` (the application ranks for a synchronous
    call, the maintenance workers for a background job).

    Chunks are dealt round-robin to ranks; each rank reads its chunks
    back contiguously (independent I/O) and one collective write performs
    the exchange the chunked write skipped.  The flip is an MVCC publish
    under the chunked file's lease: rank 0 allocates a new epoch, closes
    the chunk-map versions, inserts the repointed ``execution_table``
    successor (closing the chunked row — count-checked, so a concurrent
    repoint fails fast), and reaps whatever no snapshot pin can still
    see.  A reader pinned on an older epoch keeps resolving the chunked
    representation; an overlapping flip of the same file raises
    :class:`~repro.errors.SDMLeaseConflict`.  Already canonical
    instances are a no-op (no lease taken).

    The stale chunked blob is not erased.  Once its rows are reaped, a
    topmost region retreats the append cursor and the next chunked write
    reclaims the space; an interior region is recorded in
    ``extent_table`` as a dead extent for :func:`compact_chunked_file`
    to reclaim.
    """
    comm = host.comm
    proc = host.ctx.proc
    where, chunks, version = locate_instance(
        comm, host.tables, runid, dataset, timestep, proc=proc
    )
    if where is None:
        raise SDMUnknownDataset(
            f"no execution record for run {runid} dataset {dataset!r} "
            f"timestep {timestep}"
        )
    old_fname = where[0]
    if not chunks:
        return old_fname
    holder = _lease_holder_id(host)
    acquire_file_lease(comm, host.tables, old_fname, holder, proc=proc)

    # -- gather phase: read my share of the chunks back, in writer order --
    cache = getattr(host, "index_cache", None)
    mine = [
        ch for i, ch in enumerate(sorted(chunks, key=lambda c: c.rank))
        if i % comm.size == comm.rank and ch.num_elements
    ]
    src = host._open_cached(old_fname, MODE_RDONLY)
    # One batched request fetches every index block this rank needs ...
    blocks = _chunk_indexes(src, mine, cache, version)
    gid_parts: List[np.ndarray] = [
        _chunk_index(src, ch, cache, version)
        if ch.index_offset == ch.data_offset
        else blocks[(ch.index_offset, ch.num_elements)]
        for ch in mine
    ]
    val_parts: List[np.ndarray] = []
    if mine:
        # ... and one coalesced request streams all their data blocks
        # (adjacent chunks merge; holes up to the hint are bridged).
        offs = np.array([ch.data_offset for ch in mine], dtype=np.int64)
        lens = np.array(
            [ch.num_elements * dtype.size for ch in mine], dtype=np.int64
        )
        by_off = np.argsort(offs, kind="stable")
        soffs, slens = offs[by_off], lens[by_off]
        gap = runs.resolve_gap(
            src.hints.coalesce_gap, soffs, slens,
            waste_fraction=src.hints.coalesce_waste,
            max_gap=src.hints.ds_threshold_gap,
        )
        coff, clen, owner = runs.coalesce_runs(soffs, slens, gap)
        blob = np.empty(int(clen.sum()), dtype=np.uint8)
        src.read_runs(coff, clen, blob)
        raw = runs.extract_runs(blob, coff, clen, soffs, slens, owner)
        pieces = np.split(raw, np.cumsum(slens)[:-1])
        val_parts = [np.empty(0, dtype=dtype.numpy_dtype)] * len(mine)
        for k, i in enumerate(by_off):
            val_parts[int(i)] = pieces[k].view(dtype.numpy_dtype)
    if gid_parts:
        gids = np.concatenate(gid_parts)
        vals = np.concatenate(val_parts)
        order = np.argsort(gids, kind="stable")
        gids, vals = gids[order], vals[order]
        # Overlaps among my chunks: keep the last (highest writer rank).
        last = np.r_[gids[1:] != gids[:-1], True]
        gids, vals = gids[last], vals[last]
    else:
        gids = np.empty(0, dtype=np.int64)
        vals = np.empty(0, dtype=dtype.numpy_dtype)

    # -- exchange phase: the one collective write builds global order ----
    new_fname = checkpoint_file_name(
        host.application, group_id, dataset, timestep, host.organization,
        storage_order=CANONICAL,
    )
    base = _next_append_base(host, new_fname)
    dst = host._open_cached(new_fname, MODE_CREATE | MODE_RDWR)
    set_instance_view(dst, base, dtype, gids)
    dst.write_at_all(0, vals)

    # -- publish the flip: intent, successors, commit, reap --------------
    epoch = 0
    if comm.rank == 0:
        # Fence + liveness: prove the lease is still ours before
        # touching metadata (a presumed-dead holder whose lease was
        # stolen dies here instead of publishing over the thief's flip).
        host.tables.heartbeat_lease(old_fname, holder, proc.now, proc=proc)
        epoch = host.tables.begin_flip(old_fname, proc=proc)
        _fault(proc, "flip:intent")
        host.tables.close_chunks(runid, dataset, timestep, epoch, proc=proc)
        host.tables.update_execution(
            runid, dataset, timestep, old_fname, new_fname, base,
            global_size * dtype.size, epoch, proc=proc,
        )
        # The commit point: a crash before this line rolls the flip
        # back (recovery reopens the chunked version); after it, forward.
        host.tables.commit_flip(old_fname, epoch, proc=proc)
        _fault(proc, "flip:published")
        # Reap whatever no pin can still see; with nothing pinned this
        # deletes the closed versions immediately and performs the
        # free-extent / cursor-retreat bookkeeping for the vacated
        # region.  Pinned snapshots keep the rows (and bytes) alive.
        host.tables.reap_file(old_fname, proc=proc)
    # A publisher with a snapshot pin reads its own writes: advance it
    # past the epoch just published (uniform host attribute, so the
    # bcast below is symmetric across ranks).
    epoch = comm.bcast(epoch, root=0)
    advance = getattr(host, "advance_snapshot", None)
    if advance is not None:
        advance(epoch)
    # The chunked file's append cursor may retreat now; cached index
    # blocks in it are no longer trustworthy for the write-side
    # reference cache (read-side keys are version-scoped already).
    host.invalidate_chunked_caches(old_fname)
    comm.barrier()
    release_file_lease(comm, host.tables, old_fname, holder, proc=proc)
    if host.organization == Organization.LEVEL_1:
        host._close_cached(old_fname)
        host._close_cached(new_fname)
    return new_fname


# ---------------------------------------------------------------------------
# Compaction (slide live chunks down over dead extents)
# ---------------------------------------------------------------------------


def _compaction_plan(host, file_name: str, start: int = 0) -> Dict:
    """Rank 0's host-side plan for packing one chunked file.

    Walks the file's live (open-version) instances in base-offset order
    and lays their chunks back to back from ``start``: ``moves`` are
    ``(src, nbytes, dst)`` byte copies, ``new_chunks`` /
    ``exec_updates`` the successor metadata versions.  Index-block
    sharing is preserved — the first chunk to reference a block relocates
    it and later references point at the new offset — and a shared block
    stranded in a dead region (its writing instance was reorganized away)
    is materialized from its old bytes, so the packed region is always
    self-contained.

    ``start=0`` is the quiesced in-place slide; a deferred compaction
    under live pins passes the current append cursor so every copy lands
    beyond the bytes any snapshot can still reference.
    """
    tables = host.tables
    proc = host.ctx.proc
    moves: List[Tuple[int, int, int]] = []
    new_chunks: List[Tuple[int, str, int, List[ChunkRecord]]] = []
    exec_updates: List[Tuple[int, int, int, str, int, int]] = []
    block_map: Dict[int, Tuple[int, int]] = {}
    esize_of: Dict[Tuple[int, str], int] = {}
    cursor = start
    for runid, dataset, timestep, _base, _nbytes, vfrom in (
        tables.open_execution_versions(file_name, proc=proc)
    ):
        key = (runid, dataset)
        esize = esize_of.get(key)
        if esize is None:
            type_name = tables.dataset_type_name(runid, dataset, proc=proc)
            if type_name is None:
                raise SDMUnknownDataset(
                    f"dataset {dataset!r} of run {runid} has no "
                    "access_pattern_table row; cannot size its chunks"
                )
            esize = primitive_by_name(type_name).size
            esize_of[key] = esize
        new_base = cursor
        recs: List[ChunkRecord] = []
        for ch in tables.chunks_for(runid, dataset, timestep, proc=proc,
                                    at=vfrom):
            if ch.num_elements == 0:
                recs.append(ChunkRecord(
                    ch.rank, ch.gid_min, ch.gid_max, 0, cursor, cursor,
                    ch.gid_step,
                ))
                continue
            dbytes = ch.num_elements * esize
            if ch.index_offset == ch.data_offset:  # dense: data block only
                if ch.data_offset != cursor:
                    moves.append((ch.data_offset, dbytes, cursor))
                recs.append(ChunkRecord(
                    ch.rank, ch.gid_min, ch.gid_max, ch.num_elements,
                    cursor, cursor, ch.gid_step,
                ))
                cursor += dbytes
                continue
            ibytes = ch.num_elements * CHUNK_INDEX_BYTES
            shared = block_map.get(ch.index_offset)
            if shared is not None and shared[1] == ibytes:
                new_index = shared[0]
            else:
                new_index = cursor
                if ch.index_offset != cursor:
                    moves.append((ch.index_offset, ibytes, cursor))
                block_map[ch.index_offset] = (cursor, ibytes)
                cursor += ibytes
            if ch.data_offset != cursor:
                moves.append((ch.data_offset, dbytes, cursor))
            recs.append(ChunkRecord(
                ch.rank, ch.gid_min, ch.gid_max, ch.num_elements,
                new_index, cursor, ch.gid_step,
            ))
            cursor += dbytes
        new_chunks.append((runid, dataset, timestep, recs))
        exec_updates.append(
            (new_base, cursor - new_base, runid, dataset, timestep, vfrom)
        )
    return {
        "moves": moves,
        "new_chunks": new_chunks,
        "exec_updates": exec_updates,
        "new_size": cursor,
    }


def compact_chunked_file(host, file_name: str) -> Dict:
    """Pack a ``.chunked`` file's live chunks.  Collective over
    ``host.comm``; returns ``{"before", "after", "moved_bytes"}``.

    Compaction runs under the file's flip lease and picks one of two
    plans on rank 0:

    * **Quiesced in-place slide** — when nothing is pinned and (after an
      opportunistic reap under the lease) no dead row versions remain,
      live chunks slide down over the dead extents from offset 0, the
      free extents are cleared, and the file truncates to its live size.
      Byte moves are dealt round-robin to ranks in two barrier-separated
      phases — every rank *reads* its moves' source bytes before any
      rank *writes* a destination — so arbitrary overlap between old and
      new layouts is safe.  Because a slide rewrites bytes a concurrent
      *current* reader could be resolving, a background host additionally
      drains in-flight reads through its ``read_gate`` for exactly this
      phase; no quiescence is asked of the application.
    * **Deferred copy-up** — while snapshots are pinned, live chunks are
      *copied* beyond the append cursor instead: every pinned byte stays
      where the pinned metadata says it is, readers on old epochs never
      notice, and a later quiesced pass (after the last unpin reaps the
      old versions) finishes the reclamation.

    Either way the rewritten chunk maps and rebased execution rows are
    published as one new epoch (successors inserted, old versions closed
    count-checked), and two overlapping compactions of the same file
    fail fast with :class:`~repro.errors.SDMLeaseConflict`.
    """
    comm = host.comm
    proc = host.ctx.proc
    holder = _lease_holder_id(host)
    acquire_file_lease(comm, host.tables, file_name, holder, proc=proc)
    gate = getattr(host, "read_gate", None)
    plan = None
    exclusive = False
    try:
        if comm.rank == 0 and host.fs.exists(file_name):
            # Opportunistic reap under the lease: with nothing pinned
            # this clears any backlog of dead versions so the in-place
            # slide's extent map is complete.
            host.tables.reap_file(file_name, proc=proc)
            quiesced = (
                host.tables.pin_count(proc=proc) == 0
                and not host.tables.dead_executions_in_file(
                    file_name, proc=proc)
            )
            start = 0 if quiesced else host.tables.max_offset_in_file(
                file_name, proc=proc)
            plan = _compaction_plan(host, file_name, start=start)
            plan["quiesced"] = quiesced
            plan["before"] = host.fs.lookup(file_name).size
            # Journal the flip intent BEFORE any byte moves: the
            # quiesced in-place slide overwrites old live locations, so
            # rollback is only sound while nothing has moved.  A crash
            # from here to commit_flip rolls back to untouched
            # metadata; the unjournaled window between the first moved
            # byte and the commit has no registered fault point (the
            # deferred copy-up path, which never overwrites live bytes,
            # is crash-safe throughout).
            plan["epoch"] = host.tables.begin_flip(file_name, proc=proc)
            _fault(proc, "flip:intent")
            if quiesced and gate is not None:
                # Block new reads and drain in-flight ones before any
                # rank's bcast receipt lets it overwrite live bytes.
                gate.acquire_exclusive(proc)
                exclusive = True
        plan = comm.bcast(plan, root=0)
        if plan is None:  # unknown file: nothing to compact, nothing to flip
            return {"before": 0, "after": 0, "moved_bytes": 0}
        return _compact_with_plan(host, file_name, plan)
    finally:
        if exclusive:
            gate.release_exclusive()
        release_file_lease(comm, host.tables, file_name, holder, proc=proc)


def _compact_with_plan(host, file_name: str, plan: Dict) -> Dict:
    """Execute a broadcast compaction plan: move bytes, publish the new
    epoch, reap/truncate per the plan's quiesced flag."""
    comm = host.comm
    proc = host.ctx.proc
    moves = plan["moves"]
    if moves:
        f = host._open_cached(file_name, MODE_RDWR)
        mine = sorted(moves[comm.rank:: comm.size])
        parts: List[np.ndarray] = []
        if mine:
            src = np.array([m[0] for m in mine], dtype=np.int64)
            lens = np.array([m[1] for m in mine], dtype=np.int64)
            # Coalesced gather: abutting sources stream as one run, holes
            # up to the hint are read and discarded.
            gap = runs.resolve_gap(
                f.hints.coalesce_gap, src, lens,
                waste_fraction=f.hints.coalesce_waste,
                max_gap=f.hints.ds_threshold_gap,
            )
            coff, clen, owner = runs.coalesce_runs(src, lens, gap)
            blob = np.empty(int(clen.sum()), dtype=np.uint8)
            f.read_runs(coff, clen, blob)
            raw = runs.extract_runs(blob, coff, clen, src, lens, owner)
            parts = np.split(raw, np.cumsum(lens)[:-1])
        comm.barrier()  # every source byte is in memory before any write
        if mine:
            order = sorted(range(len(mine)), key=lambda i: mine[i][2])
            dst = np.array([mine[i][2] for i in order], dtype=np.int64)
            dlens = np.array([mine[i][1] for i in order], dtype=np.int64)
            # Zero-gap coalescing only: writes must not touch hole bytes,
            # but packed destinations abut, so most moves fuse into a few
            # streaming writes (lossless: disjoint runs, sum preserved).
            woff, wlen, _owner = runs.coalesce_runs(dst, dlens)
            f.write_runs(woff, wlen,
                         np.concatenate([parts[i] for i in order]))
        comm.barrier()  # every block is in place before the metadata flip

    epoch = 0
    if comm.rank == 0:
        # Publish under the epoch whose intent the plan phase journaled
        # (before any byte moved): insert every successor version
        # (chunk maps first, then the rebased execution rows — a reader
        # landing on a new execution row must already find its chunks),
        # close the old versions count-checked, then commit.
        epoch = plan["epoch"]
        host.tables.heartbeat_lease(
            file_name, _lease_holder_id(host), proc.now, proc=proc
        )
        for runid, dataset, timestep, recs in plan["new_chunks"]:
            host.tables.record_chunks(
                runid, dataset, timestep, recs, proc=proc, valid_from=epoch,
            )
        host.tables.update_execution_offsets(
            plan["exec_updates"], file_name, epoch, proc=proc
        )
        for runid, dataset, timestep, _recs in plan["new_chunks"]:
            host.tables.close_chunks(
                runid, dataset, timestep, epoch, proc=proc
            )
        host.tables.commit_flip(file_name, epoch, proc=proc)
        _fault(proc, "flip:published")
        if plan["quiesced"]:
            # Nothing pinned: the closed versions reap immediately, the
            # extent map zeroes, and the file truncates to live bytes.
            host.tables.reap_file(file_name, proc=proc,
                                  record_extents=False)
            host.tables.clear_extents(file_name, proc=proc)
            host.fs.truncate(proc, file_name, plan["new_size"])
        else:
            # Deferred: pinned snapshots still reference the old bytes.
            # Reap what the floor allows; the rest waits for the last
            # unpin (extent bookkeeping happens at that reap).
            host.tables.reap_file(file_name, proc=proc)
    # A publisher with a snapshot pin reads its own writes.
    epoch = comm.bcast(epoch, root=0)
    advance = getattr(host, "advance_snapshot", None)
    if advance is not None:
        advance(epoch)
    # Write-side reference cache: blocks of the *current* version moved.
    host.invalidate_chunked_caches(file_name)
    comm.barrier()  # job complete: bytes and metadata consistent everywhere
    if host.organization == Organization.LEVEL_1:
        host._close_cached(file_name)
    return {
        "before": plan.get("before", 0),
        "after": plan["new_size"],
        "moved_bytes": sum(n for _s, n, _d in moves),
    }
