"""Pluggable storage orders: the write/read data path behind ``SDM``.

The paper's key observation for irregular applications is that the runtime
may write each rank's data *in the order it is distributed* and defer
assembling global order until somebody needs it.  This module turns that
into a strategy layer:

* :class:`CanonicalOrder` — the classic path: every write scatters through
  an irregular file view and the two-phase collective exchange builds
  global element order on disk immediately.  Writes pay the exchange;
  reads are cheap.
* :class:`ChunkedOrder` — the write-optimized path: every rank appends its
  local block as-is (a sorted int64 index block, then the data block) with
  *independent* I/O — no interprocess data exchange whatsoever.  Each
  chunk's location and global-index range is recorded in the metadata
  database's ``chunk_table``.

Reads are transparent across both: :func:`locate_instance` returns the
``execution_table`` row plus any chunk maps, and :func:`read_instance`
either takes the canonical fast path or assembles the requested elements
from the chunk maps.  :func:`reorganize` converts a chunked instance into
canonical order — reading the chunk maps, performing the deferred exchange
exactly once, and atomically repointing ``execution_table`` while dropping
the ``chunk_table`` rows — so the write-time savings need not be paid back
on every subsequent read.

Layout of one chunked instance in its file (per rank, back to back in rank
order at the instance's base offset)::

    [ gid index block: num_elements x int64 ][ data block: num_elements x esize ]

with two index-block elisions that keep the steady-state write volume equal
to the data volume:

* a **dense** chunk (the map is a contiguous gid range) stores no index
  block at all — marked by ``index_offset == data_offset``;
* a rank whose map is unchanged since its previous chunk in the same file
  **shares** that chunk's index block (``index_offset`` points backward),
  so a checkpoint loop writes each rank's map once, then data only.

Shared blocks are never clobbered: an instance's bytes are only reclaimed
once no ``execution_table`` row references the file region above them, and
any chunk row referencing an index block sits at a higher offset than the
block itself, keeping ``max_offset_in_file`` — the append cursor — above it
for as long as the reference lives.

Overlapping chunks (ghost-inclusive map arrays) resolve to the highest
writing rank, matching the two-phase exchange's overlap rule.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.groups import DataGroup, DatasetAttrs, DataView
from repro.core.layout import (
    CANONICAL,
    CHUNKED,
    Organization,
    checkpoint_file_name,
    is_chunked_name,
)
from repro.dtypes.constructors import IndexedBlock
from repro.dtypes.primitives import Primitive
from repro.errors import SDMStateError, SDMUnknownDataset
from repro.metadb.schema import ChunkRecord, SDMTables
from repro.mpi.communicator import Communicator
from repro.mpiio.consts import MODE_CREATE, MODE_RDONLY, MODE_RDWR
from repro.mpiio.file import File

__all__ = [
    "StorageOrder",
    "CanonicalOrder",
    "ChunkedOrder",
    "resolve_storage_order",
    "locate_instance",
    "read_instance",
    "reorganize",
]

CHUNK_INDEX_BYTES = 8
"""Bytes per entry of a chunk's global-index block (int64)."""

ExecutionRow = Tuple[str, int, int]
"""(file_name, file_offset, nbytes) from ``execution_table``."""


def set_instance_view(f: File, base: int, dtype: Primitive,
                      gids: np.ndarray) -> None:
    """Install the irregular view of one canonical instance: element ``g``
    of the global array at ``base + g * esize``.  An empty map gets a dense
    view (a filetype needs positive size) — the rank still participates in
    the collective with zero bytes."""
    if len(gids) == 0:
        f.set_view(disp=base, etype=dtype)
        return
    f.set_view(disp=base, etype=dtype, filetype=IndexedBlock(1, gids, dtype))


def _next_append_base(sdm, fname: str) -> int:
    """Next append offset in a checkpoint file (0 under level 1, else the
    end-of-file probe through ``execution_table``, broadcast from rank 0)."""
    if sdm.organization == Organization.LEVEL_1:
        return 0
    base = 0
    if sdm.ctx.rank == 0:
        base = sdm.tables.max_offset_in_file(fname, proc=sdm.ctx.proc)
    return sdm.comm.bcast(base, root=0)


class StorageOrder:
    """Strategy for arranging one dataset instance's bytes in its file.

    Implementations are stateless; they operate on the calling
    :class:`~repro.core.api.SDM` instance (files, tables, communicator).
    """

    name: str = ""

    def write(
        self,
        sdm,
        handle: DataGroup,
        attrs: DatasetAttrs,
        view: DataView,
        name: str,
        timestep: int,
        buf: np.ndarray,
    ) -> str:
        """Write one instance collectively; returns the file name."""
        raise NotImplementedError

    def file_name(self, sdm, handle: DataGroup, name: str, timestep: int) -> str:
        """Checkpoint file this strategy writes the instance to."""
        return checkpoint_file_name(
            sdm.application, handle.group_id, name, timestep,
            sdm.organization, storage_order=self.name,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<StorageOrder {self.name}>"


class CanonicalOrder(StorageOrder):
    """Global element order on disk; the exchange happens at write time."""

    name = CANONICAL

    def write(self, sdm, handle, attrs, view, name, timestep, buf):
        fname = self.file_name(sdm, handle, name, timestep)
        base = _next_append_base(sdm, fname)
        f = sdm._open_cached(fname, MODE_CREATE | MODE_RDWR)
        set_instance_view(f, base, attrs.data_type, view.map_sorted)
        data = view.to_file_order(
            np.asarray(buf, dtype=attrs.data_type.numpy_dtype)
        )
        f.write_at_all(0, data)
        if sdm.ctx.rank == 0:
            sdm.tables.record_execution(
                sdm.runid, name, timestep, fname, base, attrs.global_bytes(),
                proc=sdm.ctx.proc,
            )
        if sdm.organization == Organization.LEVEL_1:
            sdm._close_cached(fname)
        return fname


class ChunkedOrder(StorageOrder):
    """Distribution order on disk; the exchange is deferred to reads (or a
    one-time :func:`reorganize`).

    Each rank independently appends its chunk at an offset derived from an
    exscan of local byte counts — only scalar metadata crosses ranks; the
    transport's ``alltoallv`` counters stay untouched (tests assert exactly
    that).  The index block is elided when the map is a dense gid range,
    and shared with the rank's previous chunk when the map is unchanged —
    the checkpoint-loop steady state writes data bytes only.
    """

    name = CHUNKED

    def __init__(self) -> None:
        # (fname, group_id, dataset) -> (gids, index_offset, index_end) of
        # this rank's last written index block, for reference-not-copy.
        self._index_cache: dict = {}

    def _drop_endangered(self, fname: str, base: int) -> None:
        """Forget cached index blocks the append cursor has retreated past.

        A base below a cached block's end means reorganization reclaimed
        the file region holding it: bytes from ``base`` on may be
        overwritten by this or any later append (any dataset of the file),
        so every such entry is stale the moment the retreat is observed —
        before a later write sees the cursor back above the block and
        wrongly reuses it.
        """
        for k in [
            k for k, (_g, _off, end) in self._index_cache.items()
            if k[0] == fname and end > base
        ]:
            del self._index_cache[k]

    def drop_file_cache(self, fname: str) -> None:
        """Forget every cached index block of one file (reorganization
        may retreat its append cursor)."""
        for k in [k for k in self._index_cache if k[0] == fname]:
            del self._index_cache[k]

    def _shared_index(self, key, gids, base) -> Optional[int]:
        """Offset of a reusable earlier index block, or None.

        Reuse requires the block to lie below this instance's base: the
        new chunk row then protects it from append-cursor reclamation for
        as long as the row lives (see the module docstring).
        """
        cached = self._index_cache.get(key)
        if cached is None:
            return None
        prev_gids, offset, end = cached
        if end <= base and np.array_equal(prev_gids, gids):
            return offset
        return None

    def write(self, sdm, handle, attrs, view, name, timestep, buf):
        dtype = attrs.data_type
        count = view.local_count
        gids = view.map_sorted.astype(np.int64, copy=False)
        data = view.to_file_order(np.asarray(buf, dtype=dtype.numpy_dtype))
        steps = np.diff(gids)
        if count > 1 and bool((steps == 0).any()):
            # The canonical path rejects duplicate map entries through its
            # file view; match it rather than write an ambiguous chunk.
            raise SDMStateError(
                f"map array for {name!r} holds duplicate global indices"
            )
        dense = count > 0 and bool((steps == 1).all())

        fname = self.file_name(sdm, handle, name, timestep)
        base = _next_append_base(sdm, fname)
        self._drop_endangered(fname, base)
        # Under level 1 every instance gets its own file, so an index
        # block can never be shared — don't grow the cache with map
        # copies that cannot hit.
        sharable = sdm.organization != Organization.LEVEL_1
        key = (fname, handle.group_id, name)
        shared = (
            self._shared_index(key, gids, base)
            if sharable and not dense else None
        )
        write_index = count > 0 and not dense and shared is None
        local_bytes = count * dtype.size
        if write_index:
            local_bytes += count * CHUNK_INDEX_BYTES
        start = sdm.comm.exscan(local_bytes)
        chunk_off = base + (0 if start is None else int(start))

        f = sdm._open_cached(fname, MODE_CREATE | MODE_RDWR)
        if count:
            parts = [np.ascontiguousarray(data).view(np.uint8)]
            if write_index:
                parts.insert(0, np.ascontiguousarray(gids).view(np.uint8))
            blob = np.concatenate(parts) if len(parts) > 1 else parts[0]
            f.write_runs(
                np.array([chunk_off], dtype=np.int64),
                np.array([len(blob)], dtype=np.int64),
                blob,
            )
        if write_index:
            index_offset = chunk_off
            data_offset = chunk_off + count * CHUNK_INDEX_BYTES
            if sharable:
                self._index_cache[key] = (gids.copy(), index_offset, data_offset)
        elif shared is not None:
            index_offset, data_offset = shared, chunk_off
        else:  # dense (or empty): no index block anywhere
            index_offset = data_offset = chunk_off
        record = ChunkRecord(
            rank=sdm.ctx.rank,
            gid_min=view.gid_min,
            gid_max=view.gid_max,
            num_elements=count,
            index_offset=index_offset,
            data_offset=data_offset,
        )
        payloads = sdm.comm.gather((record, local_bytes), root=0)
        if sdm.ctx.rank == 0:
            total = sum(nbytes for _, nbytes in payloads)
            sdm.tables.record_execution(
                sdm.runid, name, timestep, fname, base, total,
                proc=sdm.ctx.proc,
            )
            sdm.tables.record_chunks(
                sdm.runid, name, timestep,
                [rec for rec, _ in payloads], proc=sdm.ctx.proc,
            )
        # Readers must not race ahead of rank 0's metadata inserts.
        sdm.comm.barrier()
        if sdm.organization == Organization.LEVEL_1:
            sdm._close_cached(fname)
        return fname


_ORDERS = {CANONICAL: CanonicalOrder, CHUNKED: ChunkedOrder}


def resolve_storage_order(spec) -> StorageOrder:
    """Coerce a strategy instance or name ("canonical"/"chunked")."""
    if isinstance(spec, StorageOrder):
        return spec
    try:
        return _ORDERS[str(spec).lower()]()
    except KeyError:
        raise SDMStateError(
            f"unknown storage order {spec!r} "
            f"(expected one of {sorted(_ORDERS)})"
        ) from None


# ---------------------------------------------------------------------------
# Reading (transparent across storage orders)
# ---------------------------------------------------------------------------


def locate_instance(
    comm: Communicator,
    tables: SDMTables,
    runid: int,
    dataset: str,
    timestep: int,
    proc=None,
) -> Tuple[Optional[ExecutionRow], List[ChunkRecord]]:
    """Metadata of one written instance, broadcast from rank 0's lookup:
    the ``execution_table`` row (None if never written) and its chunk maps
    (empty for a canonical instance)."""
    info = None
    if comm.rank == 0:
        where = tables.lookup_execution(runid, dataset, timestep, proc=proc)
        chunks: List[ChunkRecord] = []
        # Canonical file names never hold chunked instances, so the
        # canonical read path stays a single metadata probe.
        if where is not None and is_chunked_name(where[0]):
            chunks = tables.chunks_for(runid, dataset, timestep, proc=proc)
        info = (where, chunks)
    return comm.bcast(info, root=0)


def read_instance(
    comm: Communicator,
    f: File,
    where: ExecutionRow,
    chunks: Sequence[ChunkRecord],
    dtype: Primitive,
    view: DataView,
) -> np.ndarray:
    """Collectively read this rank's view of one instance (either
    representation); returns the elements in the view's user order."""
    if chunks:
        return _assemble_chunked(comm, f, chunks, dtype, view)
    _fname, base, _nbytes = where
    set_instance_view(f, base, dtype, view.map_sorted)
    out = np.empty(view.local_count, dtype=dtype.numpy_dtype)
    f.read_at_all(0, out)
    return view.to_user_order(out)


def _chunk_index(f: File, ch: ChunkRecord) -> np.ndarray:
    """A chunk's sorted gid index block (dense chunks are the arange of
    their gid range and store none)."""
    if ch.index_offset == ch.data_offset:
        return np.arange(ch.gid_min, ch.gid_max + 1, dtype=np.int64)
    raw = np.empty(ch.num_elements * CHUNK_INDEX_BYTES, dtype=np.uint8)
    f.read_runs(
        np.array([ch.index_offset], dtype=np.int64),
        np.array([len(raw)], dtype=np.int64),
        raw,
    )
    return raw.view(np.int64)


def _chunk_positions(
    f: File, chunks: Sequence[ChunkRecord], dtype: Primitive,
    wanted: np.ndarray,
) -> np.ndarray:
    """Absolute file byte position of each wanted global index, resolved
    against the chunk maps (-1 where no chunk holds it).

    Walks chunks in ascending writer rank and lets later chunks override,
    so ghost overlaps resolve exactly as the two-phase exchange would
    (highest writing rank wins).  Only index blocks of range-overlapping
    chunks are read — independent reads; the simulator charges them.
    """
    pos = np.full(len(wanted), -1, dtype=np.int64)
    if len(wanted) == 0:
        return pos
    lo, hi = int(wanted[0]), int(wanted[-1])
    esize = dtype.size
    for ch in sorted(chunks, key=lambda c: c.rank):
        if ch.num_elements == 0 or ch.gid_max < lo or ch.gid_min > hi:
            continue
        if ch.index_offset == ch.data_offset:
            # Dense chunk: positions are arithmetic, no index block.
            hit = (wanted >= ch.gid_min) & (wanted <= ch.gid_max)
            pos[hit] = ch.data_offset + (wanted[hit] - ch.gid_min) * esize
            continue
        cidx = _chunk_index(f, ch)
        j = np.searchsorted(cidx, wanted)
        hit = np.zeros(len(wanted), dtype=bool)
        inb = j < len(cidx)
        hit[inb] = cidx[j[inb]] == wanted[inb]
        pos[hit] = ch.data_offset + j[hit] * esize
    return pos


def _assemble_chunked(
    comm: Communicator,
    f: File,
    chunks: Sequence[ChunkRecord],
    dtype: Primitive,
    view: DataView,
) -> np.ndarray:
    """Gather this rank's wanted elements out of a chunked instance: chunk
    maps give each element's file position, one collective read fetches the
    (deduplicated, sorted) positions.  Elements no chunk wrote read as 0 —
    the bytes a canonical read of an unwritten region would return."""
    esize = dtype.size
    wanted = view.map_sorted
    pos = _chunk_positions(f, chunks, dtype, wanted)
    present = pos >= 0
    upos = np.unique(pos[present])
    raw = f.read_runs_at_all(upos, np.full(len(upos), esize, dtype=np.int64))
    elems = raw.view(dtype.numpy_dtype)
    out = np.zeros(len(wanted), dtype=dtype.numpy_dtype)
    out[present] = elems[np.searchsorted(upos, pos[present])]
    return view.to_user_order(out)


# ---------------------------------------------------------------------------
# Reorganization (chunked -> canonical, the deferred exchange)
# ---------------------------------------------------------------------------


def reorganize(
    sdm, handle: DataGroup, name: str, timestep: int,
    runid: Optional[int] = None,
) -> str:
    """Rewrite a chunked instance into canonical order.  Collective.

    Chunks are dealt round-robin to ranks; each rank reads its chunks
    back contiguously (independent I/O) and one collective write performs
    the exchange the chunked write skipped.  Rank 0 then repoints the
    ``execution_table`` row at the canonical file and drops the
    ``chunk_table`` rows — the two statements that atomically flip the
    instance's representation for every subsequent reader.  Already
    canonical instances are a no-op.

    The stale chunked blob is not erased; once its execution row moves
    away, ``max_offset_in_file`` stops accounting for it and the next
    chunked write to that file reclaims the space.
    """
    attrs = handle.dataset(name)
    dtype = attrs.data_type
    rid = sdm.runid if runid is None else runid
    comm = sdm.comm
    where, chunks = locate_instance(
        comm, sdm.tables, rid, name, timestep, proc=sdm.ctx.proc
    )
    if where is None:
        raise SDMUnknownDataset(
            f"no execution record for run {rid} dataset {name!r} "
            f"timestep {timestep}"
        )
    old_fname = where[0]
    if not chunks:
        return old_fname

    # -- gather phase: read my share of the chunks back, in writer order --
    mine = [
        ch for i, ch in enumerate(sorted(chunks, key=lambda c: c.rank))
        if i % comm.size == comm.rank and ch.num_elements
    ]
    src = sdm._open_cached(old_fname, MODE_RDONLY)
    gid_parts: List[np.ndarray] = []
    val_parts: List[np.ndarray] = []
    for ch in mine:
        gid_parts.append(_chunk_index(src, ch))
        raw = np.empty(ch.num_elements * dtype.size, dtype=np.uint8)
        src.read_runs(
            np.array([ch.data_offset], dtype=np.int64),
            np.array([len(raw)], dtype=np.int64),
            raw,
        )
        val_parts.append(raw.view(dtype.numpy_dtype))
    if gid_parts:
        gids = np.concatenate(gid_parts)
        vals = np.concatenate(val_parts)
        order = np.argsort(gids, kind="stable")
        gids, vals = gids[order], vals[order]
        # Overlaps among my chunks: keep the last (highest writer rank).
        last = np.r_[gids[1:] != gids[:-1], True]
        gids, vals = gids[last], vals[last]
    else:
        gids = np.empty(0, dtype=np.int64)
        vals = np.empty(0, dtype=dtype.numpy_dtype)

    # -- exchange phase: the one collective write builds global order ----
    new_fname = checkpoint_file_name(
        sdm.application, handle.group_id, name, timestep, sdm.organization,
        storage_order=CANONICAL,
    )
    base = _next_append_base(sdm, new_fname)
    dst = sdm._open_cached(new_fname, MODE_CREATE | MODE_RDWR)
    set_instance_view(dst, base, dtype, gids)
    dst.write_at_all(0, vals)

    # -- flip the metadata: repoint the row, drop the chunk maps ---------
    if comm.rank == 0:
        sdm.tables.update_execution(
            rid, name, timestep, new_fname, base, attrs.global_bytes(),
            proc=sdm.ctx.proc,
        )
        sdm.tables.delete_chunks(rid, name, timestep, proc=sdm.ctx.proc)
    # The chunked file's append cursor may retreat now; cached index
    # blocks in it are no longer trustworthy.
    if isinstance(sdm.storage_order, ChunkedOrder):
        sdm.storage_order.drop_file_cache(old_fname)
    comm.barrier()
    if sdm.organization == Organization.LEVEL_1:
        sdm._close_cached(old_fname)
        sdm._close_cached(new_fname)
    return new_fname
