"""The background maintenance service: SDM's persistent worker tier.

The paper keeps expensive data management off the application's critical
path ("history files are written asynchronously, on background writer
processes"); DataFed-style systems generalize that into a persistent
service tier that reorganizes and repairs ingested data behind the
ingest path.  This module is that tier for the reproduction: one
:class:`MaintenanceService` per job (created by
:func:`repro.core.services.sdm_services`, so it outlives every
``SDM.finalize`` within the job) runs a per-rank daemon worker — a
:class:`~repro.simt.process.Process` per rank, spawned lazily and kept
alive exactly as long as its queue has work — that executes three job
kinds:

* **reorganize** — the deferred chunked→canonical exchange
  (:func:`repro.core.datapath.execute_reorganize`), run collectively
  across the workers with the same atomic ``execution_table`` repointing
  as the synchronous call, so readers transparently serve whichever
  representation is current at any instant;
* **compact** — pack a ``.chunked`` file down over its ``extent_table``
  dead regions (:func:`repro.core.datapath.compact_chunked_file`);
* **reap** — garbage-collect a file's superseded row versions once the
  snapshot pins that held them drain (``SDMTables.reap_file``);
* **local** — a rank-private callable with no collectives (the history
  writer of :mod:`repro.core.history`, now a thin client of this layer).

Workers take the same per-file flip leases the synchronous calls do
(they run :func:`~repro.core.datapath.execute_reorganize` /
:func:`~repro.core.datapath.compact_chunked_file`, which acquire them),
so a background flip racing a foreground one is a fail-fast
``SDMLeaseConflict``, never a lost update.

The service also carries the job's **read gate**: hosts register
in-flight reads (``begin_read``/``end_read``, rank-0-scoped per
collective read) and the *quiesced in-place* compaction path — the only
operation that rewrites bytes a current reader may be resolving — takes
``acquire_exclusive`` for exactly its slide-and-flip phase.  Deferred
(pinned-snapshot) compaction copies beyond the cursor and needs no
exclusion at all; see ``docs/concurrency.md``.

Queue lifecycle
---------------

``SDM.reorganize(..., mode="background")`` / ``SDM.compact`` enqueue on
every rank in the same program order (the calls are collective in shape,
asynchronous in effect): the first rank to enqueue a given logical job
assigns its id and records it in the metadata database's
``maintenance_table``; every rank appends it to its own worker queue.
Workers drain their queues in order — each persistent job builds a fresh
:class:`~repro.mpi.communicator.Communicator` over the job-unique
context id ``("maint", jobid)``, so worker lifecycles (exit on empty
queue, respawn on new work) can never misalign a collective — and rank
0 deletes the queue row when the job completes.  Because the workers are
ordinary non-daemon processes, the simulator will not end a job while
maintenance work is pending; work enqueued with a ``deferred``-mode
service is *not* executed, so its rows survive into the services
snapshot, and the next job's service adopts and executes them at attach
time — the cross-run half of the DataFed pattern, riding the same
snapshot machinery as the history files.

Cache maintenance
-----------------

``SDM`` instances register their chunked-write reference caches and
read-side :class:`~repro.core.datapath.IndexBlockCache` instances with
the service; background reorganization and compaction invalidate every
registered cache for the touched file, so application-side caches can
never serve bytes a background job moved.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.config import MachineModel
from repro.core.datapath import (
    ChunkedOrder,
    FileHandleCache,
    IndexBlockCache,
    acquire_file_lease,
    compact_chunked_file,
    execute_reorganize,
    release_file_lease,
)
from repro.core.layout import Organization
from repro.dtypes.primitives import primitive_by_name
from repro.errors import SDMStateError
from repro.metadb.engine import Database
from repro.metadb.schema import DEFAULT_PIN_TTL, MaintenanceRecord, SDMTables
from repro.mpi.communicator import Communicator
from repro.mpi.job import RankContext
from repro.pfs.filesystem import FileSystem
from repro.simt.primitives import Signal, SimEvent
from repro.simt.process import Process
from repro.simt.simulator import Simulator

__all__ = ["MaintenanceService", "REORGANIZE", "COMPACT", "REAP"]

REORGANIZE = "reorganize"
"""Job kind: run the deferred chunked→canonical exchange."""

COMPACT = "compact"
"""Job kind: pack a chunked file down over its dead extents."""

REAP = "reap"
"""Job kind: garbage-collect a file's drained superseded row versions."""

_EAGER = "eager"
_DEFERRED = "deferred"


@dataclass
class _LocalJob:
    """A rank-private unit of work (no collectives, no queue row)."""

    fn: Callable[[Process], Any]
    event: SimEvent
    label: str = "local"


@dataclass
class _WorkerCtx:
    """The slice of a :class:`~repro.mpi.job.RankContext` the datapath
    host protocol needs on a worker process."""

    rank: int
    proc: Process


class _WorkerHost:
    """Datapath host bound to one maintenance worker and one job.

    Mirrors the attributes :class:`~repro.core.api.SDM` exposes to
    :mod:`repro.core.datapath` — a communicator over the job-unique
    context, the shared tables/fs, the job's application and organization
    — plus a per-job file cache the worker closes when the job ends.
    """

    def __init__(
        self,
        service: "MaintenanceService",
        rank: int,
        proc: Process,
        job: MaintenanceRecord,
    ) -> None:
        self._service = service
        self.comm = Communicator(
            service._transport, rank, proc, ctx_id=("maint", job.jobid)
        )
        self.ctx = _WorkerCtx(rank=rank, proc=proc)
        self.tables = service.tables
        self.fs = service.fs
        self.application = job.application
        self.organization = Organization(job.organization)
        self.index_cache: Optional[IndexBlockCache] = None
        # Per-job flip-lease identity (distinct from every SDM client and
        # from other jobs, so overlapping flips fail fast) and the job-wide
        # read gate quiesced in-place compaction excludes against.
        self.lease_holder = f"maint:{job.jobid}"
        self.read_gate = service
        # Jobs carry no MPI-IO hints (the enqueuer's SDM may be gone by
        # execution time); workers open with the defaults.
        self._files = FileHandleCache(self.comm, service.fs)

    def _open_cached(self, name: str, amode: int) -> File:
        return self._files.open(name, amode)

    def _close_cached(self, name: str) -> None:
        self._files.close(name)

    def close_all(self) -> None:
        """Collectively close every file this job opened (identical open
        sequences on all workers keep the close order symmetric)."""
        self._files.close_all()

    def invalidate_chunked_caches(self, file_name: str) -> None:
        """A background job moved or freed this file's bytes: drop every
        application-registered cache entry for it."""
        self._service.invalidate_chunked_caches(file_name)

    def invalidate_chunked_range(self, file_name: str, lo: int, hi: int) -> None:
        """A first-fit write recycled ``[lo, hi)`` of this file: drop every
        application-registered cache entry overlapping it."""
        self._service.invalidate_chunked_range(file_name, lo, hi)


class MaintenanceService:
    """Per-job background maintenance: queues, workers, persistent state.

    Created by the services factory next to the file system and the
    database (``ctx.service("maint")``); one instance serves every rank
    of a job and survives ``SDM.finalize``.  ``mode`` is ``"eager"``
    (default: enqueued and adopted jobs run on background workers within
    the job) or ``"deferred"`` (jobs are recorded in ``maintenance_table``
    only — they ride the services snapshot to a later job, which executes
    them at attach time).
    """

    def __init__(
        self,
        sim: Simulator,
        machine: MachineModel,
        fs: FileSystem,
        db: Database,
        mode: str = _EAGER,
    ) -> None:
        if mode not in (_EAGER, _DEFERRED):
            raise SDMStateError(
                f"unknown maintenance mode {mode!r} "
                f"(expected {_EAGER!r} or {_DEFERRED!r})"
            )
        self.sim = sim
        self.machine = machine
        self.fs = fs
        self.db = db
        self.mode = mode
        self.tables = SDMTables(db)
        self._transport = None
        self._nprocs = 0
        self._queues: List[Deque[Any]] = []
        self._workers: List[Optional[Process]] = []
        self._idle: List[Signal] = []
        self._jobs_log: List[MaintenanceRecord] = []
        self._enqueued_count: List[int] = []
        self._next_jobid: Optional[int] = None
        self._write_caches: List[ChunkedOrder] = []
        self._read_caches: List[IndexBlockCache] = []
        # Read gate: in-flight collective reads vs in-place compaction.
        self._reads_in_flight = 0
        self._compacting = False
        self._gate = Signal(sim, name="maint-read-gate")
        # Counters for benchmarks and tests.
        self.n_enqueued = 0
        self.n_adopted = 0
        self.n_executed = 0
        self.bytes_reclaimed = 0
        self.n_leases_recovered = 0
        """Dead prior-incarnation leases resolved and released at attach."""
        self.n_intents_resolved = 0
        """Orphaned flip intents (no surviving lease) resolved at attach."""
        self.policy = None
        """Optional :class:`~repro.core.policy.MaintenancePolicy` whose
        rate limiter workers consult before heavy I/O (attached by an
        adaptive-policy SDM; None keeps the pre-policy behavior: jobs
        contend with foreground traffic immediately)."""

    # ------------------------------------------------------------------
    # Binding and registration
    # ------------------------------------------------------------------

    @property
    def attached(self) -> bool:
        """True once some rank's SDM has bound the service to its job."""
        return self._transport is not None

    def attach(self, ctx: RankContext) -> None:
        """Bind the service to the job (idempotent; every SDM calls it).

        The first attach sizes the per-rank queues from the job's
        transport, runs crash recovery over whatever a dead previous
        job's clients left behind (:meth:`_recover`: stale leases with
        their interrupted flips, orphaned flip intents, abandoned pins),
        reads any pending ``maintenance_table`` rows left by a previous
        job (the snapshot-surviving backlog), and — in eager mode —
        enqueues them on every rank's worker.
        """
        if self._transport is not None:
            return
        self._transport = ctx.comm.transport
        self._nprocs = self._transport.size
        self._queues = [deque() for _ in range(self._nprocs)]
        self._workers = [None] * self._nprocs
        self._idle = [
            Signal(self.sim, name=f"maint-idle-r{r}")
            for r in range(self._nprocs)
        ]
        self._enqueued_count = [0] * self._nprocs
        self._recover(ctx.proc)
        pending = self.tables.pending_maintenance(proc=ctx.proc)
        self._next_jobid = self.tables.next_maintenance_jobid(proc=ctx.proc)
        if self.mode == _EAGER:
            for job in pending:
                self.n_adopted += 1
                for rank in range(self._nprocs):
                    self._queues[rank].append(job)
            for rank in range(self._nprocs):
                if self._queues[rank]:
                    self._ensure_worker(rank)

    def _recover(self, proc: Process) -> None:
        """Attach-time crash recovery (first attach of a fresh job).

        Anything in the lease/pin tables stamped with an earlier database
        incarnation belongs to a client that died with its job — the only
        way state reaches this job is the dump/restore snapshot, so the
        boot check is deterministic, no clock heuristics.  For each stale
        lease the interrupted flip is resolved exactly one way
        (:meth:`SDMTables.recover_file`: intent ⇒ roll back, committed ⇒
        finish the reap) before the lease is released.  Flip intents that
        lost their lease entirely (an exception path released the lease
        mid-flip) are resolved the same way; live same-incarnation flips
        always hold their lease and are never touched.  Finally the
        abandoned-pin reaper clears prior-incarnation pins.
        """
        tables = self.tables
        for fname, holder, boot in tables.all_leases(proc=proc):
            if boot < self.db.boot_id:
                tables.recover_file(fname, proc=proc)
                tables.release_lease(fname, holder, proc=proc)
                self.n_leases_recovered += 1
        for fname in tables.files_with_flip_intents(proc=proc):
            if tables.lease_holder(fname, proc=proc) is None:
                tables.recover_file(fname, proc=proc)
                self.n_intents_resolved += 1
        self.reap_abandoned_pins(proc)

    def reap_abandoned_pins(
        self,
        proc: Process,
        now: Optional[float] = None,
        timeout: float = DEFAULT_PIN_TTL,
    ) -> int:
        """Release snapshot pins whose clients are presumed dead (prior
        incarnation, or untouched past ``timeout``), then reap what they
        were holding live — each file under its flip lease, skipped if a
        concurrent flip holds it (that flip's own post-commit reap covers
        it).  Per-file reap watermarks advance as a side effect, so the
        epoch log truncates once the leaked pins are gone.  Returns the
        number of pins released.
        """
        tables = self.tables
        t = proc.now if now is None else now
        expired = tables.expired_pins(t, timeout, proc=proc)
        for pin_id, _client, _epoch in expired:
            tables.release_pin(pin_id, proc=proc)
            tables.n_pins_expired += 1
        if expired:
            holder = "maint:reaper"
            for fname in tables.files_with_dead_rows(proc=proc):
                if tables.try_acquire_lease(
                    fname, holder, proc=proc, now=t,
                ):
                    try:
                        tables.reap_file(fname, proc=proc)
                    finally:
                        tables.release_lease(fname, holder, proc=proc)
        return len(expired)

    def stats(self) -> Dict[str, int]:
        """Service counters (work executed plus crash-recovery totals;
        the pins-expired total lives on the shared tables so acquire-path
        steals and the attach sweep feed one number)."""
        return {
            "enqueued": self.n_enqueued,
            "adopted": self.n_adopted,
            "executed": self.n_executed,
            "bytes_reclaimed": self.bytes_reclaimed,
            "leases_recovered": self.n_leases_recovered,
            "intents_resolved": self.n_intents_resolved,
            "leases_stolen": self.tables.n_leases_stolen,
            "flips_rolled_back": self.tables.n_flips_rolled_back,
            "flips_rolled_forward": self.tables.n_flips_rolled_forward,
            "pins_expired": self.tables.n_pins_expired,
        }

    def register_caches(
        self,
        write_cache: Optional[ChunkedOrder],
        read_cache: Optional[IndexBlockCache],
    ) -> None:
        """Register an SDM's chunked caches for background invalidation."""
        if write_cache is not None:
            self._write_caches.append(write_cache)
        if read_cache is not None:
            self._read_caches.append(read_cache)

    def invalidate_chunked_caches(self, file_name: str) -> None:
        """Drop every registered cache's entries for one file (a
        background job retreated its cursor or moved its blocks)."""
        for cache in self._write_caches:
            cache.drop_file_cache(file_name)
        for cache in self._read_caches:
            cache.drop_file(file_name)

    def invalidate_chunked_range(self, file_name: str, lo: int, hi: int) -> None:
        """Drop every registered cache's entries overlapping ``[lo, hi)``
        of one file — a first-fit write is recycling a dead extent there,
        and fresh rows publish at version 0, so a block another client
        cached at a recycled ``(file, offset, 0)`` key (e.g. a pinned
        catalog that read the old version before its release-time reap
        recorded the extent) would otherwise survive with stale bytes."""
        for cache in self._write_caches:
            cache.drop_range_cache(file_name, lo, hi)
        for cache in self._read_caches:
            cache.drop_range(file_name, lo, hi)

    # ------------------------------------------------------------------
    # Read gate
    # ------------------------------------------------------------------
    #
    # MVCC snapshots make metadata flips invisible to in-flight readers,
    # but the *quiesced* compaction path moves live bytes in place — the
    # one operation where a reader that already resolved its chunk list
    # could race the slide.  The gate is rank-0-scoped: collective reads
    # end with a terminal alltoallv, so rank 0's return happens-after
    # every rank's file I/O, and one admission per collective read (on
    # the reading communicator's rank 0) covers the whole operation.

    def begin_read(self, proc: Process) -> None:
        """Admit one collective read (call on the reading comm's rank 0,
        *before* the locate broadcast).  Blocks while an in-place
        compaction holds the gate."""
        while self._compacting:
            self._gate.wait(proc)
        self._reads_in_flight += 1

    def end_read(self) -> None:
        """Retire one collective read (rank 0, after the data lands)."""
        self._reads_in_flight -= 1
        self._gate.fire()

    def acquire_exclusive(self, proc: Process) -> None:
        """Close the gate for an in-place slide: block new reads, then
        wait for the in-flight ones to drain (worker rank 0 only, before
        the compaction plan broadcast)."""
        while self._compacting:
            self._gate.wait(proc)
        self._compacting = True
        while self._reads_in_flight:
            self._gate.wait(proc)

    def release_exclusive(self) -> None:
        """Reopen the gate (worker rank 0, after the flip's barrier)."""
        self._compacting = False
        self._gate.fire()

    # ------------------------------------------------------------------
    # Enqueueing
    # ------------------------------------------------------------------

    def enqueue(
        self,
        ctx: RankContext,
        kind: str,
        *,
        application: str = "",
        organization: int = int(Organization.LEVEL_2),
        group_id: int = 0,
        runid: int = 0,
        dataset: str = "",
        timestep: int = 0,
        file_name: str = "",
        data_type: str = "FLOAT64",
        global_size: int = 0,
    ) -> MaintenanceRecord:
        """Queue one persistent job.  Call on *every* rank, in the same
        program order (collective in shape, asynchronous in effect).

        The first rank to reach a given enqueue assigns the job id; rank
        0 additionally records the queue row (charged to its process).
        Returns the job record immediately — the work happens on the
        background workers (eager mode) or in a later job (deferred).
        """
        self.attach(ctx)
        rank = ctx.rank
        index = self._enqueued_count[rank]
        self._enqueued_count[rank] += 1
        params = MaintenanceRecord(
            jobid=0,  # placeholder: the first enqueuer's id wins
            kind=kind,
            application=application,
            organization=int(organization),
            group_id=group_id,
            runid=runid,
            dataset=dataset,
            timestep=timestep,
            file_name=file_name,
            data_type=data_type,
            global_size=global_size,
        )
        if index == len(self._jobs_log):
            job = replace(params, jobid=self._next_jobid)
            self._next_jobid += 1
            self._jobs_log.append(job)
            self.n_enqueued += 1
        else:
            job = self._jobs_log[index]
            if replace(job, jobid=0) != params:
                raise SDMStateError(
                    f"rank {rank} enqueued {kind!r} job {params!r} where "
                    f"rank(s) before it enqueued {job!r}: maintenance "
                    "enqueues must follow the same program order with the "
                    "same parameters on every rank"
                )
        if rank == 0:
            self.tables.record_maintenance(job, proc=ctx.proc)
            # Crash window of the orphan-adoption contract: the queue
            # row exists but no worker has been spawned for it yet — a
            # death here leaves the row for the next job's attach.
            ctx.proc.fault_point("maint:enqueued")
        if self.mode == _EAGER:
            self._queues[rank].append(job)
            self._ensure_worker(rank)
        return job

    def enqueue_local(
        self, ctx: RankContext, fn: Callable[[Process], Any],
        label: str = "local",
    ) -> SimEvent:
        """Queue a rank-private callable on this rank's worker.

        No queue row, no collectives — the generalized history-writer
        pattern.  Returns a :class:`~repro.simt.primitives.SimEvent` set
        (with ``fn``'s return value) when the work completes.
        """
        self.attach(ctx)
        event = SimEvent(self.sim, name=f"maint-{label}-r{ctx.rank}")
        if self.mode == _DEFERRED:
            # Nothing will run this job; complete it synchronously so
            # callers blocking on the event cannot hang.
            event.set(fn(ctx.proc))
            return event
        self._queues[ctx.rank].append(_LocalJob(fn=fn, event=event, label=label))
        self._ensure_worker(ctx.rank)
        return event

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------

    def pending_count(self, rank: int) -> int:
        """Jobs still queued for one rank's worker."""
        return len(self._queues[rank]) if self._queues else 0

    def drain(self, rank: int, proc: Process) -> None:
        """Block (in virtual time) until this rank's queue is empty and
        its worker has exited — every previously enqueued job's effects,
        metadata flips included, are then visible.  Returns immediately
        for a deferred-mode service (nothing will run)."""
        if self.mode == _DEFERRED or not self._queues:
            return
        while self._queues[rank] or self._worker_alive(rank):
            self._idle[rank].wait(proc)

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------

    def _worker_alive(self, rank: int) -> bool:
        w = self._workers[rank]
        return w is not None and w.alive

    def _ensure_worker(self, rank: int) -> None:
        if not self._worker_alive(rank):
            self._workers[rank] = self.sim.spawn(
                self._worker_main, rank, name=f"maint-w{rank}"
            )

    def _worker_main(self, proc: Process, rank: int) -> None:
        """Daemon body: drain the queue in order, then exit.

        Exiting on empty (instead of parking) keeps an idle service from
        pinning the simulation; new work respawns the worker.  Collective
        jobs rendezvous across ranks through their job-unique
        communicator context, so respawns can never misalign them.
        """
        queue = self._queues[rank]
        while queue:
            job = queue.popleft()
            self._execute(proc, rank, job)
        self._idle[rank].fire()

    def _execute(self, proc: Process, rank: int, job: Any) -> None:
        if isinstance(job, _LocalJob):
            job.event.set(job.fn(proc))
            self.n_executed += 1
            return
        if self.policy is not None:
            # Rank-local exponential backoff while foreground I/O queues
            # at the controllers — no collectives, so skewed ranks never
            # deadlock; the job itself still runs to completion.
            self.policy.throttle(self.fs, proc)
        host = _WorkerHost(self, rank, proc, job)
        try:
            if job.kind == REORGANIZE:
                execute_reorganize(
                    host, job.group_id, job.dataset, job.timestep,
                    primitive_by_name(job.data_type), job.global_size,
                    job.runid,
                )
            elif job.kind == COMPACT:
                stats = compact_chunked_file(host, job.file_name)
                if rank == 0:
                    self.bytes_reclaimed += max(
                        stats["before"] - stats["after"], 0
                    )
            elif job.kind == REAP:
                acquire_file_lease(
                    host.comm, self.tables, job.file_name,
                    host.lease_holder, proc=proc,
                )
                try:
                    if rank == 0:
                        # Leak sweep first: pins abandoned past their
                        # timeout stop protecting versions before this
                        # file's reap computes what is still held live.
                        self.reap_abandoned_pins(proc)
                        self.tables.reap_file(job.file_name, proc=proc)
                finally:
                    # spmdlint: ok(comm-mismatch) _WorkerHost is this rank's facade over the one job-wide maintenance context; every worker's host shares it
                    host.comm.barrier()
                    release_file_lease(
                        host.comm, self.tables, job.file_name,
                        host.lease_holder, proc=proc,
                    )
            else:
                raise SDMStateError(
                    f"unknown maintenance job kind {job.kind!r}"
                )
        finally:
            # spmdlint: ok(comm-mismatch) _WorkerHost is this rank's facade over the one job-wide maintenance context; every worker's host shares it
            host.close_all()
        if rank == 0:
            self.tables.delete_maintenance(job.jobid, proc=proc)
        self.n_executed += 1
