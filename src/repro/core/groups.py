"""Dataset attributes, data groups, and import lists.

The paper groups output datasets that share type and global size into a
*data group* "to experiment different ways of organizing data in files";
imports (arrays created outside SDM) get their own list with file offsets
and content kinds (INDEX vs DATA).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.dtypes.primitives import DOUBLE, Primitive
from repro.errors import SDMStateError, SDMUnknownDataset

__all__ = ["DatasetAttrs", "ImportAttrs", "DataGroup", "DataView"]


@dataclass
class DatasetAttrs:
    """Attributes of one output dataset (access_pattern_table row)."""

    name: str
    data_type: Primitive = DOUBLE
    storage_order: str = "ROW_MAJOR"
    global_size: int = 0
    """Global element count (the file holds this many elements per step)."""
    basic_pattern: str = "IRREGULAR"

    def element_bytes(self) -> int:
        """Bytes per element."""
        return self.data_type.size

    def global_bytes(self) -> int:
        """Bytes of one full timestep instance of this dataset."""
        return self.global_size * self.data_type.size


@dataclass
class ImportAttrs:
    """Attributes of one imported (externally created) array."""

    name: str
    data_type: Primitive = DOUBLE
    file_name: str = ""
    file_content: str = "DATA"  # "INDEX" for indirection arrays
    storage_order: str = "ROW_MAJOR"
    partition: str = "DISTRIBUTED"


@dataclass
class DataView:
    """An installed data mapping for one dataset (from ``SDM_data_view``).

    File views need monotone displacements, so the map array is sorted once
    here; ``perm`` reorders user data into sorted-map order and ``inv``
    restores it.  For SDM's own maps (built sorted) both are identity.
    """

    map_sorted: np.ndarray
    perm: Optional[np.ndarray]
    local_count: int

    @property
    def gid_min(self) -> int:
        """Smallest global index mapped (0 for an empty view — the empty
        range convention ``gid_min > gid_max`` used by chunk maps)."""
        return int(self.map_sorted[0]) if self.local_count else 0

    @property
    def gid_max(self) -> int:
        """Largest global index mapped (-1 for an empty view)."""
        return int(self.map_sorted[-1]) if self.local_count else -1

    @classmethod
    def from_map(cls, map_array: np.ndarray) -> "DataView":
        m = np.asarray(map_array, dtype=np.int64)
        if m.ndim != 1:
            raise SDMStateError("map array must be 1-D")
        if len(m) > 1 and (np.diff(m) > 0).all():
            return cls(map_sorted=m, perm=None, local_count=len(m))
        perm = np.argsort(m, kind="stable")
        return cls(map_sorted=m[perm], perm=perm, local_count=len(m))

    def to_file_order(self, buf: np.ndarray) -> np.ndarray:
        """User-order data -> sorted (file) order."""
        return buf if self.perm is None else buf[self.perm]

    def to_user_order(self, data: np.ndarray) -> np.ndarray:
        """Sorted (file) order -> user order."""
        if self.perm is None:
            return data
        out = np.empty_like(data)
        out[self.perm] = data
        return out


@dataclass
class DataGroup:
    """A handle over a group of datasets sharing organization and run id."""

    group_id: int
    runid: int
    datasets: "OrderedDict[str, DatasetAttrs]" = field(default_factory=OrderedDict)
    views: Dict[str, DataView] = field(default_factory=dict)
    finalized: bool = False

    def dataset(self, name: str) -> DatasetAttrs:
        """Attributes of a member dataset."""
        try:
            return self.datasets[name]
        except KeyError:
            raise SDMUnknownDataset(
                f"dataset {name!r} not in group {self.group_id}"
            ) from None

    def view(self, name: str) -> DataView:
        """The installed data view of a dataset."""
        self.dataset(name)
        try:
            return self.views[name]
        except KeyError:
            raise SDMStateError(
                f"no data view installed for dataset {name!r}; "
                "call data_view first"
            ) from None
