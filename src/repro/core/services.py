"""Shared services for SDM jobs, with cross-job persistence.

An SDM job needs three machine-wide services: the parallel file system,
the metadata database, and the background maintenance tier
(:class:`~repro.core.maintenance.MaintenanceService` — the per-rank
daemon workers that run reorganization, compaction, and asynchronous
history writes off the application's critical path).  :func:`sdm_services`
builds the ``services`` factory :func:`repro.mpi.mpirun` expects;
:func:`snapshot_services` captures files and database after a job so a
*subsequent* job can start from that state — which is how the
history-file experiments model "subsequent runs" of an application
(files and MySQL outlive any single mpirun).  The maintenance service
itself is per-job, but its pending-work queue lives in the database's
``maintenance_table``, so a backlog recorded by a ``deferred``-mode
service rides the snapshot and is adopted by the next job's service.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.config import MachineModel
from repro.metadb.engine import Database
from repro.mpi.job import JobResult
from repro.pfs.file import PFSFile
from repro.pfs.filesystem import FileSystem
from repro.pfs.striping import StripeLayout
from repro.simt.simulator import Simulator

__all__ = ["ServicesSnapshot", "sdm_services", "snapshot_services"]


@dataclass
class ServicesSnapshot:
    """Persistent state carried between jobs: files + database contents."""

    files: Dict[str, np.ndarray]
    db_dump: str

    @property
    def total_file_bytes(self) -> int:
        """Bytes across all snapshotted files."""
        return sum(len(v) for v in self.files.values())


def snapshot_services(job: JobResult) -> ServicesSnapshot:
    """Capture a finished job's file system and database contents."""
    fs: FileSystem = job.services["fs"]
    db: Database = job.services["db"]
    files = {
        name: fs.lookup(name).store.read(0, fs.lookup(name).size)
        for name in fs.list_files()
    }
    return ServicesSnapshot(files=files, db_dump=db.dump())


def sdm_services(
    seed_from: Optional[ServicesSnapshot] = None,
    maintenance_mode: str = "eager",
    maintenance: bool = True,
):
    """Build the ``services`` factory for an SDM job.

    The factory creates a fresh :class:`FileSystem` and :class:`Database`
    attached to the job's simulator, plus the job's
    :class:`~repro.core.maintenance.MaintenanceService`; with ``seed_from``
    the file and database contents start from a previous job's snapshot
    (host-side restore, no virtual time) — including any maintenance
    backlog recorded in ``maintenance_table``, which the new service
    adopts and executes.  ``maintenance_mode="deferred"`` records
    enqueued jobs without running them (they ride the next snapshot
    instead), which is how tests model a job that ends mid-backlog.
    ``maintenance=False`` omits the service entirely, so no attach-time
    recovery sweep runs — crash-recovery tests use it to force the lazy
    path, where the first ``acquire_file_lease`` after a crash finds the
    dead holder's lease, recovers the file, and steals the lease.
    """

    def factory(sim: Simulator, machine: MachineModel):
        from repro.core.maintenance import MaintenanceService

        fs = FileSystem(sim, machine)
        if seed_from is not None:
            layout = StripeLayout(
                stripe_size=machine.storage.stripe_size,
                n_controllers=machine.storage.n_controllers,
            )
            for name, data in seed_from.files.items():
                f = PFSFile(name, layout, ctime=sim.now)
                f.store.write(0, data)
                fs._files[name] = f
        if seed_from is not None:
            db = Database.loads(seed_from.db_dump)
            db.sim = sim
            db.machine = machine
            from repro.simt.primitives import Resource

            db._server = Resource(sim, capacity=4, name="metadb-server")
        else:
            db = Database(sim, machine)
        if not maintenance:
            return {"fs": fs, "db": db}
        maint = MaintenanceService(sim, machine, fs, db, mode=maintenance_mode)
        return {"fs": fs, "db": db, "maint": maint}

    return factory
