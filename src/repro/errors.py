"""Exception hierarchy for the :mod:`repro` package.

Every subsystem raises exceptions derived from :class:`ReproError` so callers
can catch at whatever granularity they need: a single subsystem
(``except MetaDBError``), or everything from this package
(``except ReproError``).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


# ---------------------------------------------------------------------------
# Simulation kernel
# ---------------------------------------------------------------------------

class SimError(ReproError):
    """Base class for discrete-event simulation errors."""


class SimDeadlockError(SimError):
    """Raised when the simulator runs out of events while processes still block.

    This is the simulated analogue of an MPI deadlock: e.g. two ranks both
    posting a blocking receive with no matching send in flight.
    """


class SimProcessCrashed(SimError):
    """Raised by :meth:`Simulator.run` when a simulated process raised.

    The original traceback is chained as ``__cause__``.
    """


class SimParticipantLost(SimDeadlockError):
    """An injected fault killed a process its peers were rendezvousing with.

    Raised by :meth:`Simulator.run` in place of the generic
    :class:`SimDeadlockError` when the stall is *attributable*: at least
    one process was crashed by the simulator's
    :class:`~repro.simt.simulator.FaultPlan`, so the survivors are not
    deadlocked by their own collective pattern — they are waiting on a
    dead peer.  The message names the crashed processes and the fault
    points they died at, alongside the usual blocked-process report.
    """


# ---------------------------------------------------------------------------
# MPI layer
# ---------------------------------------------------------------------------

class MPIError(ReproError):
    """Base class for errors in the simulated MPI layer."""


class MPITruncationError(MPIError):
    """A receive buffer was too small for the matched message."""


class MPIInvalidRank(MPIError):
    """A rank argument was outside ``[0, size)`` (and not a wildcard)."""


class MPICollectiveMismatch(MPIError):
    """Ranks disagreed on the parameters of a collective operation."""


class SPMDVerificationError(MPICollectiveMismatch):
    """The ``SPMD_VERIFY`` runtime sanitizer detected divergence.

    Raised when ranks' collective signatures disagree at a rendezvous
    site (op kind, root, or reduce-family dtype/count) or when the
    per-context collective sequences differ at job end.  The message
    carries both ranks' call sites.
    """


# ---------------------------------------------------------------------------
# Datatypes
# ---------------------------------------------------------------------------

class DatatypeError(ReproError):
    """Invalid construction or use of a derived datatype."""


# ---------------------------------------------------------------------------
# Parallel file system / MPI-IO
# ---------------------------------------------------------------------------

class PFSError(ReproError):
    """Base class for parallel-file-system errors."""


class FileNotFound(PFSError):
    """Named file does not exist in the PFS namespace."""


class FileExists(PFSError):
    """Exclusive create requested but the file already exists."""


class InvalidFileHandle(PFSError):
    """Operation on a closed or invalid file handle."""


class MPIIOError(PFSError):
    """Errors specific to the MPI-IO layer (views, modes, collective calls)."""


class AccessModeError(MPIIOError):
    """File opened without the access mode required by the operation."""


# ---------------------------------------------------------------------------
# Metadata database
# ---------------------------------------------------------------------------

class MetaDBError(ReproError):
    """Base class for metadata-database errors."""


class SQLSyntaxError(MetaDBError):
    """The mini-SQL parser rejected a statement."""


class SQLTypeError(MetaDBError):
    """A value did not match the declared column type."""


class TableNotFound(MetaDBError):
    """Statement referenced a table that does not exist."""


class TableExists(MetaDBError):
    """CREATE TABLE on a name that already exists."""


class ColumnNotFound(MetaDBError):
    """Statement referenced a column that does not exist."""


# ---------------------------------------------------------------------------
# Partitioning / meshes
# ---------------------------------------------------------------------------

class PartitionError(ReproError):
    """Invalid partitioning request or malformed partitioning vector."""


class MeshError(ReproError):
    """Malformed mesh or mesh-file error."""


# ---------------------------------------------------------------------------
# SDM core
# ---------------------------------------------------------------------------

class SDMError(ReproError):
    """Base class for errors raised by the SDM runtime itself."""


class SDMStateError(SDMError):
    """SDM API call sequence violated (e.g. write before set_attributes)."""


class SDMLeaseConflict(SDMStateError):
    """Two writers tried to flip the same file's metadata concurrently.

    Raised fail-fast by ``acquire_file_lease`` when a reorganize or
    compaction finds another client's lease on the file, instead of
    letting the second flip silently overwrite the first (lost update).
    """


class SDMUnknownDataset(SDMError):
    """A dataset name was not found in the active datalist/importlist."""


class SDMHistoryMismatch(SDMError):
    """A history file exists but cannot be used (different nprocs, etc.)."""
