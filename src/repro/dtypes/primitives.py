"""Primitive datatypes and their numpy correspondence."""

from __future__ import annotations

import numpy as np

from repro.dtypes.base import Datatype
from repro.errors import DatatypeError

__all__ = [
    "Primitive",
    "BYTE",
    "INT32",
    "INT64",
    "FLOAT32",
    "FLOAT64",
    "INT",
    "DOUBLE",
    "from_numpy_dtype",
    "primitive_by_name",
]


class Primitive(Datatype):
    """A named elementary type of fixed width."""

    def __init__(self, name: str, numpy_dtype: np.dtype) -> None:
        self.name = name
        self.numpy_dtype = np.dtype(numpy_dtype)
        self._size = self.numpy_dtype.itemsize
        self._extent = self._size

    def runs(self):
        return (
            np.zeros(1, dtype=np.int64),
            np.full(1, self._size, dtype=np.int64),
        )

    def __repr__(self) -> str:
        return f"<Primitive {self.name}>"


BYTE = Primitive("BYTE", np.uint8)
INT32 = Primitive("INT32", np.int32)
INT64 = Primitive("INT64", np.int64)
FLOAT32 = Primitive("FLOAT32", np.float32)
FLOAT64 = Primitive("FLOAT64", np.float64)

INT = INT32
"""C ``int`` on the simulated platform (the paper's edge indices)."""

DOUBLE = FLOAT64
"""C ``double`` (the paper's field data)."""

_BY_NUMPY = {
    p.numpy_dtype: p for p in (BYTE, INT32, INT64, FLOAT32, FLOAT64)
}

_BY_NAME = {p.name: p for p in (BYTE, INT32, INT64, FLOAT32, FLOAT64)}


def primitive_by_name(name: str) -> Primitive:
    """Primitive by its registered name (e.g. ``"FLOAT64"``) — the inverse
    of the names the metadata tables store."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise DatatypeError(f"no primitive datatype named {name!r}") from None


def from_numpy_dtype(dtype) -> Primitive:
    """Primitive corresponding to a numpy dtype (raises for unsupported)."""
    dt = np.dtype(dtype)
    try:
        return _BY_NUMPY[dt]
    except KeyError:
        raise DatatypeError(f"no primitive datatype for numpy dtype {dt!r}") from None
