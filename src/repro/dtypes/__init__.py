"""MPI derived datatypes: describing noncontiguous data layouts.

SDM's irregular I/O rests on MPI derived datatypes: a *map array* (which
global element belongs to this rank) becomes an indexed filetype, which
becomes an MPI-IO file view, which collective I/O then optimizes.  This
package implements the datatype algebra:

* primitives (:data:`INT32`, :data:`FLOAT64`, ...) mapping to numpy dtypes;
* constructors — :class:`Contiguous`, :class:`Vector`, :class:`Hvector`,
  :class:`Indexed`, :class:`IndexedBlock`, :class:`Hindexed`,
  :class:`Struct`, :class:`Subarray` — composable to arbitrary depth;
* :func:`flatten` — lowering any datatype to vectorized ``(offsets,
  lengths)`` byte runs with adjacent-run merging (the form the I/O layer
  consumes);
* :func:`pack` / :func:`unpack` — gather/scatter between a typed layout and
  a contiguous buffer.

Example — every 4th double out of a file, as rank ``r`` of 4 would view it::

    ft = Vector(count=10, blocklength=1, stride=4, base=FLOAT64)
    offsets, lengths = flatten(ft)        # [0, 32, 64, ...], [8, 8, 8, ...]
"""

from repro.dtypes.base import Datatype
from repro.dtypes.primitives import (
    BYTE,
    FLOAT32,
    FLOAT64,
    INT32,
    INT64,
    DOUBLE,
    INT,
    Primitive,
    from_numpy_dtype,
)
from repro.dtypes.constructors import (
    Contiguous,
    Hindexed,
    Hvector,
    Indexed,
    IndexedBlock,
    Struct,
    Subarray,
    Vector,
)
from repro.dtypes.flatten import flatten, merge_runs
from repro.dtypes.pack import pack, unpack

__all__ = [
    "Datatype",
    "Primitive",
    "BYTE",
    "INT32",
    "INT64",
    "FLOAT32",
    "FLOAT64",
    "INT",
    "DOUBLE",
    "from_numpy_dtype",
    "Contiguous",
    "Vector",
    "Hvector",
    "Indexed",
    "IndexedBlock",
    "Hindexed",
    "Struct",
    "Subarray",
    "flatten",
    "merge_runs",
    "pack",
    "unpack",
]
