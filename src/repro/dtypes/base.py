"""Datatype base class: size, extent, and byte-run decomposition."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import DatatypeError

__all__ = ["Datatype", "Runs"]

Runs = Tuple[np.ndarray, np.ndarray]
"""A run list: (byte offsets, byte lengths), both int64 arrays of equal shape."""


class Datatype:
    """Abstract MPI-style datatype.

    Concrete types expose:

    * :attr:`size` — number of *data* bytes one instance describes;
    * :attr:`extent` — the span it occupies, holes included (tiling stride);
    * :meth:`runs` — the byte runs of one instance relative to its origin,
      in typemap order (not merged, not sorted).

    Types are immutable; ``commit()`` exists for MPI API fidelity and
    returns ``self``.
    """

    _size: int
    _extent: int

    @property
    def size(self) -> int:
        """Data bytes per instance (excludes holes)."""
        return self._size

    @property
    def extent(self) -> int:
        """Span per instance, holes included; consecutive instances tile at
        this stride."""
        return self._extent

    def runs(self) -> Runs:
        """Byte runs ``(offsets, lengths)`` of one instance, typemap order."""
        raise NotImplementedError

    def commit(self) -> "Datatype":
        """MPI fidelity no-op."""
        return self

    def with_extent(self, extent: int) -> "Datatype":
        """Return a copy resized to a new extent (``MPI_Type_create_resized``)."""
        from repro.dtypes.constructors import Resized

        return Resized(self, extent)

    # Helpers shared by constructors -----------------------------------

    @staticmethod
    def _check_count(name: str, value: int) -> int:
        if not isinstance(value, (int, np.integer)) or value < 0:
            raise DatatypeError(f"{name} must be a non-negative int, got {value!r}")
        return int(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} size={self.size} extent={self.extent}>"
