"""Pack/unpack: gather a typed layout into contiguous bytes and back.

These are the memory-side analogues of what a file view does on the file
side.  Both operate on ``numpy.uint8`` buffers; runs are copied slice-wise
(views, no temporaries beyond the output).
"""

from __future__ import annotations

import numpy as np

from repro.dtypes.base import Datatype
from repro.dtypes.flatten import flatten
from repro.errors import DatatypeError

__all__ = ["pack", "unpack"]


def _as_bytes(buf) -> np.ndarray:
    arr = np.asarray(buf)
    return arr.view(np.uint8).reshape(-1) if arr.dtype != np.uint8 else arr.reshape(-1)


def pack(buf, dtype: Datatype, count: int = 1, offset: int = 0) -> np.ndarray:
    """Gather ``count`` instances of ``dtype`` from ``buf`` into fresh
    contiguous bytes (length ``count * dtype.size``)."""
    src = _as_bytes(buf)
    offsets, lengths = flatten(dtype, offset=offset, count=count)
    total = int(lengths.sum())
    if len(offsets) and int(offsets[-1] + lengths[-1]) > len(src):
        raise DatatypeError(
            f"pack source too small: need {int(offsets[-1] + lengths[-1])} bytes, "
            f"have {len(src)}"
        )
    out = np.empty(total, dtype=np.uint8)
    pos = 0
    for off, ln in zip(offsets.tolist(), lengths.tolist()):
        out[pos : pos + ln] = src[off : off + ln]
        pos += ln
    return out


def unpack(data, buf, dtype: Datatype, count: int = 1, offset: int = 0) -> None:
    """Scatter contiguous ``data`` into ``buf`` laid out as ``count``
    instances of ``dtype``; inverse of :func:`pack`."""
    src = _as_bytes(data)
    dst = _as_bytes(buf)
    offsets, lengths = flatten(dtype, offset=offset, count=count)
    total = int(lengths.sum())
    if total != len(src):
        raise DatatypeError(
            f"unpack data size {len(src)} != typed size {total}"
        )
    if len(offsets) and int(offsets[-1] + lengths[-1]) > len(dst):
        raise DatatypeError(
            f"unpack target too small: need {int(offsets[-1] + lengths[-1])} bytes, "
            f"have {len(dst)}"
        )
    pos = 0
    for off, ln in zip(offsets.tolist(), lengths.tolist()):
        dst[off : off + ln] = src[pos : pos + ln]
        pos += ln
