"""Lowering datatypes to merged byte-run lists.

The I/O layer consumes every datatype as a pair of int64 arrays
``(offsets, lengths)``.  :func:`flatten` produces that form for ``count``
consecutive instances of a type starting at a byte offset, and
:func:`merge_runs` coalesces abutting runs (an indexed type built from a
sorted map array with contiguous stretches collapses to few large runs —
exactly the optimization MPI-IO implementations perform when decoding
filetypes).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.dtypes.base import Datatype, Runs
from repro.errors import DatatypeError

__all__ = ["flatten", "merge_runs"]


def merge_runs(offsets: np.ndarray, lengths: np.ndarray) -> Runs:
    """Coalesce runs where one ends exactly where the next begins.

    Merging is *sequential* (typemap order is preserved; no sorting), and
    zero-length runs are dropped.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    keep = lengths > 0
    if not keep.all():
        offsets, lengths = offsets[keep], lengths[keep]
    n = len(offsets)
    if n == 0:
        return offsets, lengths
    starts = np.empty(n, dtype=bool)
    starts[0] = True
    np.not_equal(offsets[1:], offsets[:-1] + lengths[:-1], out=starts[1:])
    if starts.all():
        return offsets, lengths
    group = np.cumsum(starts) - 1
    out_off = offsets[starts]
    out_len = np.bincount(group, weights=lengths).astype(np.int64)
    return out_off, out_len


def flatten(dtype: Datatype, offset: int = 0, count: int = 1) -> Runs:
    """Byte runs of ``count`` tiled instances of ``dtype`` at ``offset``.

    Instance ``i`` occupies runs displaced by ``offset + i * extent``.
    The result is merged (:func:`merge_runs`) but kept in typemap order.
    """
    if count < 0:
        raise DatatypeError(f"negative count: {count}")
    base_off, base_len = dtype.runs()
    if count == 0 or len(base_off) == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    if count == 1:
        return merge_runs(base_off + offset, base_len)
    tile_starts = offset + np.arange(count, dtype=np.int64) * dtype.extent
    n_runs = len(base_off)
    offsets = (tile_starts[:, None] + base_off[None, :]).reshape(count * n_runs)
    lengths = np.broadcast_to(base_len, (count, n_runs)).reshape(count * n_runs)
    return merge_runs(offsets, lengths.astype(np.int64, copy=True))
