"""Derived-datatype constructors (the MPI ``Type_create_*`` family).

All constructors validate eagerly and precompute their byte runs as numpy
arrays, so :func:`repro.dtypes.flatten.flatten` on a million-block indexed
type is a vectorized operation, not a Python loop — this is the hot path of
every irregular file view SDM builds from a map array.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.dtypes.base import Datatype, Runs
from repro.errors import DatatypeError

__all__ = [
    "Contiguous",
    "Vector",
    "Hvector",
    "Indexed",
    "IndexedBlock",
    "Hindexed",
    "Struct",
    "Subarray",
    "Resized",
]


def _tile(base_runs: Runs, starts_bytes: np.ndarray) -> Runs:
    """Replicate base runs at each byte start (vectorized outer sum)."""
    off, ln = base_runs
    n_starts, n_runs = len(starts_bytes), len(off)
    offsets = (starts_bytes[:, None] + off[None, :]).reshape(n_starts * n_runs)
    lengths = np.broadcast_to(ln, (n_starts, n_runs)).reshape(n_starts * n_runs)
    return offsets.astype(np.int64, copy=False), lengths.astype(np.int64, copy=True)


def _block_runs(base: Datatype, blocklength: int, starts_bytes: np.ndarray) -> Runs:
    """Runs of `blocklength` consecutive base instances at each start."""
    if blocklength == 0 or len(starts_bytes) == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    base_off, base_len = base.runs()
    if len(base_off) == 1 and base_len[0] == base.extent:
        # Dense base: a block of `blocklength` instances is one solid run.
        offsets = starts_bytes.astype(np.int64, copy=True)
        lengths = np.full(len(starts_bytes), blocklength * base.extent, dtype=np.int64)
        return offsets, lengths
    # Sparse base: expand each instance within each block.
    instance_starts = (
        starts_bytes[:, None] + (np.arange(blocklength) * base.extent)[None, :]
    ).reshape(-1)
    return _tile((base_off, base_len), instance_starts)


class Contiguous(Datatype):
    """``count`` consecutive instances of ``base``."""

    def __init__(self, count: int, base: Datatype) -> None:
        self.count = self._check_count("count", count)
        self.base = base
        self._size = self.count * base.size
        self._extent = self.count * base.extent

    def runs(self) -> Runs:
        starts = np.arange(self.count, dtype=np.int64) * self.base.extent
        return _block_runs(self.base, 1, starts)


class Vector(Datatype):
    """``count`` blocks of ``blocklength`` bases, strided by ``stride`` bases.

    The canonical round-robin view: rank r of P sees ``Vector(n, 1, P)``
    offset by ``r`` elements.
    """

    def __init__(self, count: int, blocklength: int, stride: int, base: Datatype) -> None:
        self.count = self._check_count("count", count)
        self.blocklength = self._check_count("blocklength", blocklength)
        if stride < blocklength and count > 1:
            raise DatatypeError(
                f"vector stride {stride} overlaps blocklength {blocklength}"
            )
        self.stride = int(stride)
        self.base = base
        self._size = self.count * self.blocklength * base.size
        last = (self.count - 1) * self.stride + self.blocklength if self.count else 0
        self._extent = last * base.extent

    def runs(self) -> Runs:
        starts = (
            np.arange(self.count, dtype=np.int64) * self.stride * self.base.extent
        )
        return _block_runs(self.base, self.blocklength, starts)


class Hvector(Datatype):
    """Like :class:`Vector` but the stride is given in bytes."""

    def __init__(self, count: int, blocklength: int, stride_bytes: int, base: Datatype) -> None:
        self.count = self._check_count("count", count)
        self.blocklength = self._check_count("blocklength", blocklength)
        self.stride_bytes = int(stride_bytes)
        block_bytes = blocklength * base.extent
        if self.stride_bytes < block_bytes and count > 1:
            raise DatatypeError(
                f"hvector stride {stride_bytes}B overlaps block of {block_bytes}B"
            )
        self.base = base
        self._size = self.count * self.blocklength * base.size
        self._extent = (
            (self.count - 1) * self.stride_bytes + block_bytes if self.count else 0
        )

    def runs(self) -> Runs:
        starts = np.arange(self.count, dtype=np.int64) * self.stride_bytes
        return _block_runs(self.base, self.blocklength, starts)


class Indexed(Datatype):
    """Blocks of varying length at varying displacements (in base extents)."""

    def __init__(
        self,
        blocklengths: Sequence[int],
        displacements: Sequence[int],
        base: Datatype,
    ) -> None:
        bl = np.asarray(blocklengths, dtype=np.int64)
        disp = np.asarray(displacements, dtype=np.int64)
        if bl.shape != disp.shape or bl.ndim != 1:
            raise DatatypeError(
                f"blocklengths {bl.shape} and displacements {disp.shape} must be "
                "equal-length 1-D sequences"
            )
        if len(bl) and bl.min() < 0:
            raise DatatypeError("negative blocklength")
        if len(disp) and disp.min() < 0:
            raise DatatypeError("negative displacement")
        self.blocklengths = bl
        self.displacements = disp
        self.base = base
        self._size = int(bl.sum()) * base.size
        self._extent = (
            int((disp + bl).max()) * base.extent if len(bl) else 0
        )

    def runs(self) -> Runs:
        base = self.base
        base_off, base_len = base.runs()
        if len(base_off) == 1 and base_len[0] == base.extent:
            offsets = self.displacements * base.extent
            lengths = self.blocklengths * base.extent
            keep = lengths > 0
            return offsets[keep].astype(np.int64), lengths[keep].astype(np.int64)
        # Sparse base: expand block by block (rare; bounded use).
        parts_off, parts_len = [], []
        for bl, disp in zip(self.blocklengths, self.displacements):
            o, l = _block_runs(base, int(bl), np.array([disp * base.extent], dtype=np.int64))
            parts_off.append(o)
            parts_len.append(l)
        if not parts_off:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        return np.concatenate(parts_off), np.concatenate(parts_len)


class IndexedBlock(Datatype):
    """Uniform-blocklength indexed type — the *map array* datatype.

    ``IndexedBlock(displacements=map_array, blocklength=1, base=DOUBLE)``
    is exactly how SDM turns a map array into a filetype.
    """

    def __init__(
        self, blocklength: int, displacements: Sequence[int], base: Datatype
    ) -> None:
        self.blocklength = self._check_count("blocklength", blocklength)
        disp = np.asarray(displacements, dtype=np.int64)
        if disp.ndim != 1:
            raise DatatypeError("displacements must be 1-D")
        if len(disp) and disp.min() < 0:
            raise DatatypeError("negative displacement")
        self.displacements = disp
        self.base = base
        self._size = len(disp) * self.blocklength * base.size
        self._extent = (
            (int(disp.max()) + self.blocklength) * base.extent if len(disp) else 0
        )

    def runs(self) -> Runs:
        starts = self.displacements * self.base.extent
        return _block_runs(self.base, self.blocklength, starts)


class Hindexed(Datatype):
    """Indexed with displacements in bytes."""

    def __init__(
        self,
        blocklengths: Sequence[int],
        displacements_bytes: Sequence[int],
        base: Datatype,
    ) -> None:
        bl = np.asarray(blocklengths, dtype=np.int64)
        disp = np.asarray(displacements_bytes, dtype=np.int64)
        if bl.shape != disp.shape or bl.ndim != 1:
            raise DatatypeError("blocklengths/displacements shape mismatch")
        if len(bl) and (bl.min() < 0 or disp.min() < 0):
            raise DatatypeError("negative blocklength or displacement")
        self.blocklengths = bl
        self.displacements_bytes = disp
        self.base = base
        self._size = int(bl.sum()) * base.size
        self._extent = (
            int((disp + bl * base.extent).max()) if len(bl) else 0
        )

    def runs(self) -> Runs:
        parts_off, parts_len = [], []
        base_off, base_len = self.base.runs()
        dense = len(base_off) == 1 and base_len[0] == self.base.extent
        if dense:
            keep = self.blocklengths > 0
            return (
                self.displacements_bytes[keep].astype(np.int64, copy=True),
                (self.blocklengths[keep] * self.base.extent).astype(np.int64),
            )
        for bl, disp in zip(self.blocklengths, self.displacements_bytes):
            o, l = _block_runs(self.base, int(bl), np.array([disp], dtype=np.int64))
            parts_off.append(o)
            parts_len.append(l)
        if not parts_off:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        return np.concatenate(parts_off), np.concatenate(parts_len)


class Struct(Datatype):
    """Heterogeneous blocks: per-block base type and byte displacement."""

    def __init__(
        self,
        blocklengths: Sequence[int],
        displacements_bytes: Sequence[int],
        types: Sequence[Datatype],
    ) -> None:
        if not (len(blocklengths) == len(displacements_bytes) == len(types)):
            raise DatatypeError("struct argument lists must have equal length")
        self.blocklengths = [self._check_count("blocklength", b) for b in blocklengths]
        self.displacements_bytes = [int(d) for d in displacements_bytes]
        if any(d < 0 for d in self.displacements_bytes):
            raise DatatypeError("negative displacement")
        self.types = list(types)
        self._size = sum(b * t.size for b, t in zip(self.blocklengths, self.types))
        self._extent = max(
            (d + b * t.extent for d, b, t in
             zip(self.displacements_bytes, self.blocklengths, self.types)),
            default=0,
        )

    def runs(self) -> Runs:
        parts_off, parts_len = [], []
        for bl, disp, typ in zip(
            self.blocklengths, self.displacements_bytes, self.types
        ):
            o, l = _block_runs(typ, bl, np.array([disp], dtype=np.int64))
            parts_off.append(o)
            parts_len.append(l)
        if not parts_off:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        return np.concatenate(parts_off), np.concatenate(parts_len)


class Subarray(Datatype):
    """An n-dimensional C-order subarray of a larger array.

    The regular-application workhorse (``MPI_Type_create_subarray``): the
    extent is the *full* array, the data is the sub-block, so tiling a file
    with this type gives each rank its block of a global array.
    """

    def __init__(
        self,
        shape: Sequence[int],
        subshape: Sequence[int],
        starts: Sequence[int],
        base: Datatype,
    ) -> None:
        self.shape = [self._check_count("shape", s) for s in shape]
        self.subshape = [self._check_count("subshape", s) for s in subshape]
        self.starts = [self._check_count("starts", s) for s in starts]
        if not (len(self.shape) == len(self.subshape) == len(self.starts)):
            raise DatatypeError("shape/subshape/starts rank mismatch")
        for full, sub, st in zip(self.shape, self.subshape, self.starts):
            if st + sub > full:
                raise DatatypeError(
                    f"subarray [{st}, {st + sub}) exceeds dimension of size {full}"
                )
        self.base = base
        nelem_sub = int(np.prod(self.subshape)) if self.subshape else 1
        nelem_full = int(np.prod(self.shape)) if self.shape else 1
        self._size = nelem_sub * base.size
        self._extent = nelem_full * base.extent

    def runs(self) -> Runs:
        if not self.shape:
            return self.base.runs()
        # Rows along the last dimension are contiguous; enumerate the outer
        # index grid vectorized.
        outer_shape = self.subshape[:-1]
        row_len = self.subshape[-1]
        if row_len == 0 or any(s == 0 for s in outer_shape):
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        strides = np.ones(len(self.shape), dtype=np.int64)
        for i in range(len(self.shape) - 2, -1, -1):
            strides[i] = strides[i + 1] * self.shape[i + 1]
        grids = np.meshgrid(
            *[np.arange(st, st + sub, dtype=np.int64)
              for st, sub in zip(self.starts[:-1], outer_shape)],
            indexing="ij",
        ) if outer_shape else []
        base_elem = self.starts[-1]
        flat = np.full(1, 0, dtype=np.int64)
        if grids:
            flat = sum(g * s for g, s in zip(grids, strides[:-1])).reshape(-1)
        starts_elems = flat + base_elem
        starts_bytes = starts_elems * self.base.extent
        return _block_runs(self.base, row_len, np.sort(starts_bytes))


class Resized(Datatype):
    """A datatype with its extent overridden (``MPI_Type_create_resized``)."""

    def __init__(self, base: Datatype, extent: int) -> None:
        if extent < 0:
            raise DatatypeError(f"negative extent: {extent}")
        self.base = base
        self._size = base.size
        self._extent = int(extent)

    def runs(self) -> Runs:
        return self.base.runs()
