"""Ablation: history-file reuse across process counts.

The paper: a history file "cannot be used if the program is run on a
different number of processes from when the file was created", and the
efficient pattern is "to create it in advance for the various numbers of
processes of interest".  This bench pre-creates histories for 16 and 64
ranks, then measures:

* matching process counts hit their history (index distribution collapses),
* a mismatched count (32) falls back to the full ring distribution.
"""

import pytest

from repro.bench.harness import ResultTable, scaled_machine
from repro.bench.figures import PAPER, _fun3d_services, _fun3d_setup
from repro.apps.fun3d.driver import Fun3dRunConfig, run_fun3d_sdm
from repro.config import origin2000
from repro.core import snapshot_services
from repro.mpi import mpirun
from repro.partition import Graph, multilevel_kway

CELLS = 12


def run_history_matrix():
    problem, _ = _fun3d_setup(CELLS, 16)
    g = Graph.from_edges(
        problem.mesh.n_nodes, problem.mesh.edge1, problem.mesh.edge2
    )
    scale = PAPER["fun3d_edges"] / problem.mesh.n_edges
    machine = scaled_machine(origin2000(), scale)
    cfg = Fun3dRunConfig(timesteps=1, checkpoint_every=2, register_history=True)
    table = ResultTable(
        f"Ablation (history) - reuse across process counts (scale x{scale:.0f})"
    )

    # Pre-create histories for 16 and 64 ranks (sharing one namespace).
    snap = None
    cold = {}
    for p in (16, 64):
        part = multilevel_kway(g, p, seed=1)
        job = mpirun(
            lambda ctx: run_fun3d_sdm(ctx, problem, part, cfg), p,
            machine=machine, services=_fun3d_services(problem, seed_from=snap),
        )
        assert all(not r.used_history for r in job.values)
        cold[p] = job.phase_max("index_distri")
        snap = snapshot_services(job)
        table.add("ablation-history", f"create/P{p}", "index_distri",
                  cold[p], "s", note="ring distribution, history registered")

    # Re-run each count: matching histories hit; 32 ranks miss.
    for p, expect_hit in ((16, True), (64, True), (32, False)):
        part = multilevel_kway(g, p, seed=1)
        job = mpirun(
            lambda ctx: run_fun3d_sdm(ctx, problem, part, cfg), p,
            machine=machine, services=_fun3d_services(problem, seed_from=snap),
        )
        hit = all(r.used_history for r in job.values)
        assert hit == expect_hit, (p, hit)
        table.add(
            "ablation-history", f"rerun/P{p}", "index_distri",
            job.phase_max("index_distri"), "s",
            note="history hit" if hit else "history MISS -> ring fallback",
        )
        if expect_hit:
            assert job.phase_max("index_distri") < 0.5 * cold[p]
    return table


@pytest.mark.benchmark(group="ablation-history")
def test_history_reuse_matrix(benchmark, report):
    table = benchmark.pedantic(run_history_matrix, rounds=1, iterations=1)
    report(table)
