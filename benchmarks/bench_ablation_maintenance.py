"""Ablation: the maintenance tier — background vs critical-path upkeep.

Three claims of the maintenance service layer, measured on the
origin2000 machine model:

* **Background reorganization** removes the deferred chunked→canonical
  exchange from the application's critical path: the per-rank cost of
  ``SDM.reorganize(..., mode="background")`` is the enqueue metadata
  only, while the exchange runs on the maintenance workers after the
  ranks move on (the simulator still completes it — the flip is
  verified).  Acceptance: >= 80% of the synchronous reorganize phase
  disappears from the critical path.
* **Index-block caching** closes the chunked-read penalty: a cold
  chunked read fetches every overlapping chunk's index block (as many
  bytes as the data for irregular maps); a warm read serves them from
  the rank-local LRU, because checkpoint loops share blocks across
  timesteps.  Acceptance: the warm read closes >= 50% of the
  cold-chunked vs canonical read gap tracked in ``BENCH_datapath.json``.
* **Compaction** bounds chunked-file growth: reorganizing interior
  instances leaves dead extents (``extent_table``); one compaction pass
  slides the live chunks down and truncates the file to exactly its
  live bytes, with recorded free bytes at zero.

Every cell pins ``policy="static"`` so the self-tuning tier (benched on
its own in ``bench_ablation_policy.py``) cannot drift these baselines.

Set ``MAINTENANCE_BENCH_JSON=<path>`` (the Makefile's
``bench-maintenance`` target points it at ``BENCH_maintenance.json``) to
emit the matrix as JSON for cross-PR tracking.
"""

import json
import os
from dataclasses import asdict

import numpy as np
import pytest

from repro.bench.harness import ResultTable
from repro.config import origin2000
from repro.core import SDM, Organization, sdm_services
from repro.core.layout import CANONICAL, CHUNKED
from repro.dtypes import DOUBLE
from repro.metadb.schema import SDMTables
from repro.mpi import mpirun

RANK_COUNTS = (4, 8)
GLOBAL_ELEMENTS = 500_000
"""4 MB of doubles per instance — bandwidth-dominated on the model."""
TIMESTEPS = 4


def _setup(sdm, n):
    result = sdm.make_datalist(["d"])
    sdm.associate_attributes(result, data_type=DOUBLE, global_size=n)
    return sdm.set_attributes(result)


def _round_robin(ctx, n):
    return np.arange(ctx.rank, n, ctx.size, dtype=np.int64)


def _irregular(ctx, n, seed=7):
    """Deliberately non-arithmetic maps (a seeded permutation dealt round-
    robin): constant-stride maps are arithmetic chunks that store no index
    block at all, which would make the index-cache ablation vacuous."""
    perm = np.random.default_rng(seed).permutation(n).astype(np.int64)
    return perm[ctx.rank :: ctx.size]


# ---------------------------------------------------------------------------
# 1. sync vs background reorganization
# ---------------------------------------------------------------------------


def run_reorganize_case(nprocs, mode):
    """Chunked checkpoint loop + reorganize-all under one mode; returns
    critical-path phase seconds and the final read-back."""

    def program(ctx):
        sdm = SDM(ctx, "bench", organization=Organization.LEVEL_2,
                  storage_order=CHUNKED, policy="static")
        handle = _setup(sdm, GLOBAL_ELEMENTS)
        mine = _round_robin(ctx, GLOBAL_ELEMENTS)
        sdm.data_view(handle, "d", mine)
        for t in range(TIMESTEPS):
            with ctx.phase("write"):
                sdm.write(handle, "d", t, mine * 1.0 + t)
        with ctx.phase("reorganize"):
            for t in range(TIMESTEPS):
                sdm.reorganize(handle, "d", t, mode=mode)
        # Reads happen after the backlog lands either way; the phase
        # above captured what sat on the application's critical path.
        sdm.drain_maintenance()
        back = np.empty(len(mine))
        with ctx.phase("read"):
            sdm.read(handle, "d", TIMESTEPS - 1, back)
        sdm.finalize(handle)
        return back

    job = mpirun(program, nprocs, machine=origin2000(),
                 services=sdm_services())
    tables = SDMTables(job.services["db"])
    assert tables.chunks_for(1, "d", 0) == []  # the flip really happened
    assert tables.pending_maintenance() == []
    merged = np.empty(GLOBAL_ELEMENTS)
    for rank, back in enumerate(job.values):
        merged[rank::nprocs] = back
    return {
        "reorganize": job.phase_max("reorganize"),
        "read": job.phase_max("read"),
        "elapsed": job.elapsed,
    }, merged


# ---------------------------------------------------------------------------
# 2. cold vs warm chunked-read index cache
# ---------------------------------------------------------------------------


def run_read_case(nprocs, order):
    """Write TIMESTEPS instances; read one cold, then one warm (chunked
    instances share index blocks across timesteps).  Irregular maps: this
    ablation measures the index-block cache, so the chunks must actually
    store index blocks."""

    def program(ctx):
        sdm = SDM(ctx, "bench", organization=Organization.LEVEL_2,
                  storage_order=order, policy="static")
        handle = _setup(sdm, GLOBAL_ELEMENTS)
        mine = _irregular(ctx, GLOBAL_ELEMENTS)
        sdm.data_view(handle, "d", mine)
        for t in range(TIMESTEPS):
            sdm.write(handle, "d", t, mine * 1.0 + t)
        back = np.empty(len(mine))
        with ctx.phase("read_cold"):
            sdm.read(handle, "d", 1, back)
        with ctx.phase("read_warm"):
            sdm.read(handle, "d", 2, back)
        sdm.finalize(handle)
        return mine, back

    job = mpirun(program, nprocs, machine=origin2000(),
                 services=sdm_services())
    merged = np.empty(GLOBAL_ELEMENTS)
    for _rank, (mine, back) in enumerate(job.values):
        merged[mine] = back
    return {
        "read_cold": job.phase_max("read_cold"),
        "read_warm": job.phase_max("read_warm"),
    }, merged


# ---------------------------------------------------------------------------
# 3. compaction
# ---------------------------------------------------------------------------


def run_compaction_case(nprocs):
    """Reorganize the interior timesteps (dead extents below a live
    top), compact, and report sizes."""

    def program(ctx):
        sdm = SDM(ctx, "bench", organization=Organization.LEVEL_2,
                  storage_order=CHUNKED, policy="static")
        handle = _setup(sdm, GLOBAL_ELEMENTS)
        mine = _round_robin(ctx, GLOBAL_ELEMENTS)
        sdm.data_view(handle, "d", mine)
        for t in range(TIMESTEPS):
            sdm.write(handle, "d", t, mine * 1.0 + t)
        fname = sdm.checkpoint_file(handle, "d", 0, storage_order=CHUNKED)
        for t in range(TIMESTEPS - 1):  # keep the topmost instance live
            sdm.reorganize(handle, "d", t, mode="sync")
        sizes = None
        if ctx.rank == 0:
            fs = ctx.service("fs")
            sizes = (fs.lookup(fname).size,
                     sdm.tables.free_bytes_in(fname, proc=ctx.proc))
        with ctx.phase("compact"):
            sdm.compact(fname, mode="sync")
        back = np.empty(len(mine))
        sdm.read(handle, "d", TIMESTEPS - 1, back)
        sdm.finalize(handle)
        return sizes, back, fname

    job = mpirun(program, nprocs, machine=origin2000(),
                 services=sdm_services())
    sizes = next(s for s, _, _ in job.values if s is not None)
    fname = job.values[0][2]
    tables = SDMTables(job.services["db"])
    fs = job.services["fs"]
    live = sum(r[4] for r in tables.executions_in_file(fname))
    merged = np.empty(GLOBAL_ELEMENTS)
    for rank, (_s, back, _f) in enumerate(job.values):
        merged[rank::nprocs] = back
    np.testing.assert_array_equal(
        merged, np.arange(GLOBAL_ELEMENTS) * 1.0 + TIMESTEPS - 1
    )
    return {
        "size_before": sizes[0],
        "free_before": sizes[1],
        "size_after": fs.lookup(fname).size,
        "free_after": tables.free_bytes_in(fname),
        "live_bytes": live,
        "compact_time": job.phase_max("compact"),
    }


def run_matrix():
    table = ResultTable(
        "Ablation (maintenance) - background upkeep vs the critical path"
    )
    cells = {}
    for nprocs in RANK_COUNTS:
        sync, sync_data = run_reorganize_case(nprocs, "sync")
        background, bg_data = run_reorganize_case(nprocs, "background")
        np.testing.assert_array_equal(sync_data, bg_data)
        chunked, chunked_data = run_read_case(nprocs, CHUNKED)
        canonical, canonical_data = run_read_case(nprocs, CANONICAL)
        np.testing.assert_array_equal(chunked_data, canonical_data)
        compaction = run_compaction_case(nprocs)
        gap = chunked["read_cold"] - canonical["read_cold"]
        closed = chunked["read_cold"] - chunked["read_warm"]
        cells[nprocs] = {
            "reorganize_sync": sync["reorganize"],
            "reorganize_background": background["reorganize"],
            "critical_path_removed": 1.0 - (
                background["reorganize"] / sync["reorganize"]
            ),
            "read_chunked_cold": chunked["read_cold"],
            "read_chunked_warm": chunked["read_warm"],
            "read_canonical": canonical["read_cold"],
            "cache_gap_closed": closed / gap if gap > 0 else float("inf"),
            **compaction,
        }
        for config, value in (
            (f"reorganize-sync/{nprocs}p", sync["reorganize"]),
            (f"reorganize-background/{nprocs}p", background["reorganize"]),
            (f"read-chunked-cold/{nprocs}p", chunked["read_cold"]),
            (f"read-chunked-warm/{nprocs}p", chunked["read_warm"]),
            (f"read-canonical/{nprocs}p", canonical["read_cold"]),
            (f"compact/{nprocs}p", compaction["compact_time"]),
        ):
            table.add("ablation-maintenance", config, "virtual-time",
                      value, "s")
        table.add(
            "ablation-maintenance", f"critical-path-removed/{nprocs}p",
            "fraction", cells[nprocs]["critical_path_removed"], "x",
        )
        table.add(
            "ablation-maintenance", f"cache-gap-closed/{nprocs}p",
            "fraction", min(cells[nprocs]["cache_gap_closed"], 9.99), "x",
        )
        table.add(
            "ablation-maintenance", f"compaction-reclaimed/{nprocs}p",
            "bytes", compaction["size_before"] - compaction["size_after"],
            "B",
        )
    return table, cells


def _emit_json(table, cells):
    """Write the matrix to $MAINTENANCE_BENCH_JSON for cross-PR tracking."""
    path = os.environ.get("MAINTENANCE_BENCH_JSON")
    if not path:
        return
    doc = {
        "benchmark": "ablation-maintenance",
        "global_elements": GLOBAL_ELEMENTS,
        "timesteps": TIMESTEPS,
        "rank_counts": list(RANK_COUNTS),
        "rows": [asdict(row) for row in table.rows],
        "cells": {
            str(n): {k: round(float(v), 6) for k, v in by_key.items()}
            for n, by_key in cells.items()
        },
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")


@pytest.mark.benchmark(group="ablation-maintenance")
def test_maintenance_moves_upkeep_off_the_critical_path(benchmark, report):
    table, cells = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    report(table)
    _emit_json(table, cells)
    for nprocs in RANK_COUNTS:
        cell = cells[nprocs]
        # (a) background reorganize removes >= 80% of the reorganization
        # time from the application's critical path.
        assert cell["critical_path_removed"] >= 0.80, cell
        # (b) the warm index cache closes >= 50% of the chunked-vs-
        # canonical read gap.
        assert cell["cache_gap_closed"] >= 0.50, cell
        # (c) compaction shrinks the file to exactly its live bytes and
        # zeroes the recorded free extents.
        assert cell["size_after"] == cell["live_bytes"] < cell["size_before"], cell
        assert cell["free_after"] == 0 and cell["free_before"] > 0, cell
    benchmark.extra_info["critical_path_removed_4p"] = round(
        cells[4]["critical_path_removed"], 3
    )
    benchmark.extra_info["cache_gap_closed_4p"] = round(
        cells[4]["cache_gap_closed"], 2
    )
