"""Ablation: collective-buffering buffer size — "there is an optimal".

The paper observes RT bandwidth falling from 32 to 64 processes because
per-process buffers shrink, concluding "clearly, there is an optimal buffer
size that shows the best I/O performance".  This bench sweeps the
``cb_buffer_size`` hint across two orders of magnitude on the Figure 7
workload and reports the bandwidth curve: small buffers pay per-request
overheads, huge buffers serialize on too few requests in flight.
"""

import pytest

from repro.apps.rt.driver import RTRunConfig, run_rt_sdm
from repro.bench.harness import ResultTable, scaled_machine
from repro.bench.figures import PAPER
from repro.config import origin2000
from repro.core import Organization, sdm_services
from repro.mesh import rt_like_problem
from repro.mpi import mpirun
from repro.partition import Graph, multilevel_kway

MB = 1024.0 * 1024.0
NPROCS = 32
CELLS = 12

# Paper-equivalent buffer sizes swept (bytes, before dilation).
SWEEP = (16 * 1024, 64 * 1024, 512 * 1024, 4 * 1024 * 1024,
         32 * 1024 * 1024)


def run_buffer_sweep():
    problem = rt_like_problem(CELLS)
    g = Graph.from_edges(
        problem.mesh.n_nodes, problem.mesh.edge1, problem.mesh.edge2
    )
    part = multilevel_kway(g, NPROCS, seed=1)
    scale = PAPER["rt_nodes"] / problem.mesh.n_nodes
    base = scaled_machine(origin2000(), scale)
    table = ResultTable(
        f"Ablation (buffer size) - RT write bandwidth vs cb_buffer_size "
        f"(P={NPROCS}, scale x{scale:.0f})"
    )
    curve = {}
    for cb in SWEEP:
        machine = base.with_collective_io(
            cb_buffer_size=max(int(cb / scale), 16)
        )

        def program(ctx):
            return run_rt_sdm(
                ctx, problem, part,
                RTRunConfig(organization=Organization.LEVEL_2, timesteps=3),
            )

        job = mpirun(program, NPROCS, machine=machine, services=sdm_services())
        total = sum(r.bytes_written for r in job.values)
        bw = total * scale / job.phase_max("write") / MB
        curve[cb] = bw
        table.add(
            "ablation-buffer", f"cb={cb // 1024}KB", "write", bw, "MB/s",
            note="paper-equivalent buffer size",
        )
    return table, curve


@pytest.mark.benchmark(group="ablation-buffer")
def test_buffer_size_has_an_optimum(benchmark, report):
    table, curve = benchmark.pedantic(run_buffer_sweep, rounds=1, iterations=1)
    report(table)
    sizes = sorted(curve)
    values = [curve[s] for s in sizes]
    best = max(values)
    # Tiny buffers pay per-request overhead: clearly bad.  (The sweep's
    # small end is limited by the dilation floor of one element per batch,
    # so "clearly" is ~15-30%, not an order of magnitude.)
    assert values[0] < 0.85 * best
    # The curve has a knee: beyond the optimum, growing the buffer further
    # buys (essentially) nothing — the "optimal buffer size" of the paper.
    assert abs(values[-1] - values[-2]) / best < 0.05
    assert values[-1] <= best + 1e-9
    benchmark.extra_info["curve_MBps"] = {
        f"{s // 1024}KB": round(v, 1) for s, v in curve.items()
    }
