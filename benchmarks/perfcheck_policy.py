"""Guard the committed policy benchmark against self-tuning regressions.

``make perfcheck`` (also run at the end of ``make bench``) loads
``BENCH_policy.json`` — the matrix ``make bench-policy`` regenerates and
commits — and fails if the policy tier has stopped paying for itself:

* **adaptive win** — on each case (planner / gap / maintenance) the
  adaptive policy's recorded ``win_vs_best_static`` must stay at least
  ``ADAPTIVE_WIN_MIN`` (default 1.0x): self-tuning may never lose to
  the best hand-picked static setting of the knob it replaces.
* **default win** — at least one case's ``win_vs_default`` must exceed
  ``ADAPTIVE_DEFAULT_WIN_MIN`` (default 1.05x): the tier must beat the
  shipped defaults somewhere, or it is dead weight.

Thresholds are overridable through the environment for experiments::

    ADAPTIVE_WIN_MIN=0.95 python benchmarks/perfcheck_policy.py
"""

import json
import os
import sys

DEFAULT_JSON = "BENCH_policy.json"
CASES = ("planner", "gap", "maintenance")


def check(path: str) -> int:
    win_min = float(os.environ.get("ADAPTIVE_WIN_MIN", "1.0"))
    default_min = float(os.environ.get("ADAPTIVE_DEFAULT_WIN_MIN", "1.05"))
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"perfcheck: cannot load {path}: {exc}", file=sys.stderr)
        return 2
    cases = doc.get("cases", {})
    failures = []
    best_default_win = 0.0
    for name in CASES:
        case = cases.get(name)
        if case is None:
            failures.append(f"no {name} case in {path} "
                            "(regenerate with make bench-policy)")
            continue
        win = case["win_vs_best_static"]
        status = "ok" if win >= win_min else "FAIL"
        print(f"perfcheck: adaptive-win/{name} = {win:.3f}x "
              f"(min {win_min:.2f}x) {status}")
        if win < win_min:
            failures.append(
                f"adaptive-win/{name} = {win:.3f}x below {win_min:.2f}x "
                "(the adaptive policy lost to a static setting)"
            )
        best_default_win = max(best_default_win, case["win_vs_default"])
    status = "ok" if best_default_win > default_min else "FAIL"
    print(f"perfcheck: adaptive-win-vs-default (best case) = "
          f"{best_default_win:.3f}x (min >{default_min:.2f}x) {status}")
    if best_default_win <= default_min:
        failures.append(
            f"best win_vs_default = {best_default_win:.3f}x does not exceed "
            f"{default_min:.2f}x (self-tuning no longer beats the shipped "
            "defaults anywhere)"
        )
    if failures:
        for f in failures:
            print(f"perfcheck: FAIL: {f}", file=sys.stderr)
        return 1
    print("perfcheck: all policy guards hold")
    return 0


if __name__ == "__main__":
    sys.exit(check(sys.argv[1] if len(sys.argv) > 1 else DEFAULT_JSON))
