"""Ablation: metadata query path — full scan vs secondary-index probes.

The paper charges "the database cost to access the metadata" to every SDM
operation, so the metadata path must not grow with the amount of metadata
accumulated.  The seed engine re-parsed every statement and evaluated the
WHERE expression against every row; the query pipeline adds a statement
cache and per-column hash indexes with an equality planner.  This bench
isolates both choices on the hottest SDM statement shape (the
``execution_table`` point lookup behind every ``SDM.read``):

* ``scan``  — no indexes declared: every SELECT walks the whole table,
* ``index`` — ``SDM_INDEXES``-style hash indexes probe candidate rowids,

at 100 / 1 000 / 10 000 rows, plus a parse ablation (statement cache
cleared before each execute vs warm) at the largest size.  Real
wall-clock throughput: the engine itself is the system under test.
"""

import random
from time import perf_counter

import pytest

from repro.bench.harness import ResultTable
from repro.metadb import Database

SIZES = (100, 1_000, 10_000)
N_STATEMENTS = 300

_LOOKUP = (
    "SELECT file_name, file_offset, nbytes FROM execution_table "
    "WHERE runid = ? AND dataset = ? AND timestep = ?"
)


def _params_for(i):
    return (i % 50, f"d{i % 4}", i)


def _build(n_rows, indexed):
    db = Database()
    db.execute(
        "CREATE TABLE execution_table ("
        "runid INTEGER, dataset TEXT, timestep INTEGER, "
        "file_name TEXT, file_offset INTEGER, nbytes INTEGER)"
    )
    for i in range(n_rows):
        runid, dataset, timestep = _params_for(i)
        db.execute(
            "INSERT INTO execution_table VALUES (?, ?, ?, ?, ?, ?)",
            (runid, dataset, timestep, f"grp{i % 8}.L3", i * 100, 100),
        )
    if indexed:
        db.create_index("execution_table", "runid")
        db.create_index("execution_table", "timestep")
    return db


def _throughput(db, n_rows, warm_cache=True):
    """Statements/second over random point lookups (every one a hit)."""
    rng = random.Random(7)
    targets = [rng.randrange(n_rows) for _ in range(N_STATEMENTS)]
    t0 = perf_counter()
    for i in targets:
        if not warm_cache:
            db._stmt_cache.clear()
        rows = db.execute(_LOOKUP, _params_for(i))
        assert rows, "benchmark lookups must hit"
    return N_STATEMENTS / (perf_counter() - t0)


def run_matrix():
    table = ResultTable(
        "Ablation (metadb) - full scan vs secondary-index equality probes"
    )
    speedups = {}
    for n in SIZES:
        scan_db = _build(n, indexed=False)
        index_db = _build(n, indexed=True)
        scan = _throughput(scan_db, n)
        probe = _throughput(index_db, n)
        assert scan_db.n_index_probes == 0 and index_db.n_full_scans == 0
        speedups[n] = probe / scan
        table.add("ablation-metadb", f"scan/{n}rows", "throughput", scan, "stmt/s")
        table.add("ablation-metadb", f"index/{n}rows", "throughput", probe, "stmt/s")
        table.add("ablation-metadb", f"index-vs-scan/{n}rows", "speedup",
                  speedups[n], "x")

    # Parse ablation at the largest size: cold (seed behavior, one parse
    # per statement) vs warm statement cache.
    index_db = _build(SIZES[-1], indexed=True)
    cold = _throughput(index_db, SIZES[-1], warm_cache=False)
    warm = _throughput(index_db, SIZES[-1], warm_cache=True)
    table.add("ablation-metadb", "parse-per-stmt", "throughput", cold, "stmt/s")
    table.add("ablation-metadb", "stmt-cache", "throughput", warm, "stmt/s")
    table.add("ablation-metadb", "cache-vs-parse", "speedup", warm / cold, "x")
    return table, speedups, warm / cold


@pytest.mark.benchmark(group="ablation-metadb")
def test_index_probes_beat_full_scan(benchmark, report):
    table, speedups, cache_gain = benchmark.pedantic(
        run_matrix, rounds=1, iterations=1
    )
    report(table)
    # Index probes win everywhere and by >= 5x once the table is big; the
    # gap widens with table size (probes are O(1), scans are O(rows)).
    assert all(s > 1.0 for s in speedups.values())
    assert speedups[10_000] >= 5.0
    assert speedups[10_000] > speedups[100]
    # Caching the parsed statement is itself a measurable win.
    assert cache_gain > 1.2
    benchmark.extra_info["speedup_10k"] = round(speedups[10_000], 1)
    benchmark.extra_info["cache_gain"] = round(cache_gain, 2)
