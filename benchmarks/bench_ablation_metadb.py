"""Ablation: metadata query path — scan vs hash vs ordered vs composite.

The paper charges "the database cost to access the metadata" to every SDM
operation, so the metadata path must not grow with the amount of metadata
accumulated.  This bench isolates the index generations on the two
hottest SDM statement shapes:

* the ``execution_table`` point lookup behind every ``SDM.read``
  (``WHERE runid = ? AND dataset = ? AND timestep = ?``):

  - ``scan``      — no indexes: every SELECT walks the whole table,
  - ``hash``      — PR-1-style single-column hash indexes (smallest
    bucket wins, residual conjuncts filtered),
  - ``composite`` — one composite hash probe on the full column triple;

* the end-of-file probe behind every packed append
  (``WHERE file_name = ? ORDER BY file_offset DESC LIMIT 1``):

  - ``scan``    — filter plus sort,
  - ``ordered`` — one bisect into an ordered ``(file_name, file_offset)``
    index;

at 100 / 1 000 / 10 000 rows, plus a parse ablation (statement cache
cleared before each execute vs warm) at the largest size.  Real
wall-clock throughput: the engine itself is the system under test.

Set ``METADB_BENCH_JSON=<path>`` (the Makefile's ``bench-metadb`` target
points it at ``BENCH_metadb.json``) to also emit the rows as JSON, so the
scan/hash/ordered/composite perf trajectory is tracked across PRs.
"""

import json
import os
import random
from dataclasses import asdict
from time import perf_counter

import pytest

from repro.bench.harness import ResultTable
from repro.metadb import Database
from repro.metadb import engine

SIZES = (100, 1_000, 10_000)
N_STATEMENTS = 300

# Mirrors the production canonical read: the MVCC open-version sentinel
# rides the same single statement as a fourth equality conjunct.
_OPEN_EPOCH = 2**62

_LOOKUP = (
    "SELECT file_name, file_offset, nbytes FROM execution_table "
    "WHERE runid = ? AND dataset = ? AND timestep = ? AND valid_to = ?"
)

_EOF_PROBE = (
    "SELECT file_offset, nbytes FROM execution_table WHERE file_name = ? "
    "ORDER BY file_offset DESC LIMIT 1"
)

_INDEX_SETS = {
    "scan": (),
    "hash": ((("runid",), "hash"), (("timestep",), "hash")),
    "composite": ((("runid", "dataset", "timestep"), "hash"),),
    "ordered": ((("file_name", "file_offset"), "ordered"),),
}


def _params_for(i):
    return (i % 50, f"d{i % 4}", i, _OPEN_EPOCH)


def _file_for(i):
    return f"grp{i % 8}.L3"


def _eof_params_for(i):
    return (_file_for(i),)


def _build(n_rows, indexes):
    db = Database()
    db.execute(
        "CREATE TABLE execution_table ("
        "runid INTEGER, dataset TEXT, timestep INTEGER, "
        "file_name TEXT, file_offset INTEGER, nbytes INTEGER, "
        "valid_from INTEGER, valid_to INTEGER)"
    )
    for i in range(n_rows):
        runid, dataset, timestep, _open = _params_for(i)
        db.execute(
            "INSERT INTO execution_table VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            (runid, dataset, timestep, _file_for(i), i * 100, 100,
             0, _OPEN_EPOCH),
        )
    for columns, kind in _INDEX_SETS[indexes]:
        db.create_index("execution_table", columns, kind)
    return db


def _throughput(db, n_rows, sql, params_for, warm_cache=True):
    """Statements/second over random lookups (every one a hit)."""
    rng = random.Random(7)
    targets = [rng.randrange(n_rows) for _ in range(N_STATEMENTS)]
    t0 = perf_counter()
    for i in targets:
        if not warm_cache:
            # The seed behavior parsed every statement: clear both the
            # per-database LRU and the process-global parse cache behind it.
            db._stmt_cache.clear()
            engine.clear_global_statement_cache()
        rows = db.execute(sql, params_for(i))
        assert rows, "benchmark lookups must hit"
    return N_STATEMENTS / (perf_counter() - t0)


def run_matrix():
    table = ResultTable(
        "Ablation (metadb) - scan vs hash vs ordered vs composite indexes"
    )
    speedups = {}
    for n in SIZES:
        # Point lookup: full scan vs single-column hash vs composite hash.
        scan = _throughput(_build(n, "scan"), n, _LOOKUP, _params_for)
        hash_db = _build(n, "hash")
        single = _throughput(hash_db, n, _LOOKUP, _params_for)
        composite_db = _build(n, "composite")
        composite = _throughput(composite_db, n, _LOOKUP, _params_for)
        assert hash_db.n_full_scans == composite_db.n_full_scans == 0
        # End-of-file probe: filter-and-sort vs one ordered-index bisect.
        eof_scan = _throughput(_build(n, "scan"), n, _EOF_PROBE, _eof_params_for)
        ordered_db = _build(n, "ordered")
        eof_ordered = _throughput(ordered_db, n, _EOF_PROBE, _eof_params_for)
        assert ordered_db.n_sorted_probes == N_STATEMENTS
        assert ordered_db.n_full_scans == 0

        speedups[n] = {
            "hash": single / scan,
            "composite": composite / scan,
            "ordered": eof_ordered / eof_scan,
        }
        for config, value in (
            (f"lookup-scan/{n}rows", scan),
            (f"lookup-hash/{n}rows", single),
            (f"lookup-composite/{n}rows", composite),
            (f"eof-scan/{n}rows", eof_scan),
            (f"eof-ordered/{n}rows", eof_ordered),
        ):
            table.add("ablation-metadb", config, "throughput", value, "stmt/s")
        for kind, value in speedups[n].items():
            table.add(
                "ablation-metadb", f"{kind}-vs-scan/{n}rows", "speedup",
                value, "x",
            )

    # Parse ablation at the largest size: cold (seed behavior, one parse
    # per statement) vs warm statement cache.
    index_db = _build(SIZES[-1], "composite")
    cold = _throughput(index_db, SIZES[-1], _LOOKUP, _params_for, warm_cache=False)
    warm = _throughput(index_db, SIZES[-1], _LOOKUP, _params_for, warm_cache=True)
    table.add("ablation-metadb", "parse-per-stmt", "throughput", cold, "stmt/s")
    table.add("ablation-metadb", "stmt-cache", "throughput", warm, "stmt/s")
    table.add("ablation-metadb", "cache-vs-parse", "speedup", warm / cold, "x")
    return table, speedups, warm / cold


def _emit_json(table, speedups, cache_gain):
    """Write the matrix to $METADB_BENCH_JSON for cross-PR tracking."""
    path = os.environ.get("METADB_BENCH_JSON")
    if not path:
        return
    doc = {
        "benchmark": "ablation-metadb",
        "n_statements": N_STATEMENTS,
        "sizes": list(SIZES),
        "rows": [asdict(row) for row in table.rows],
        "speedups": {
            str(n): {k: round(v, 2) for k, v in by_kind.items()}
            for n, by_kind in speedups.items()
        },
        "cache_gain": round(cache_gain, 2),
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")


@pytest.mark.benchmark(group="ablation-metadb")
def test_index_probes_beat_full_scan(benchmark, report):
    table, speedups, cache_gain = benchmark.pedantic(
        run_matrix, rounds=1, iterations=1
    )
    report(table)
    _emit_json(table, speedups, cache_gain)
    # Every index kind wins everywhere; the gap widens with table size
    # (probes are O(1)/O(log rows), scans are O(rows)) and by 10k rows the
    # composite point lookup and the ordered end-of-file probe are both
    # >= 50x faster than the scan they replace.
    for by_kind in speedups.values():
        assert all(s > 1.0 for s in by_kind.values())
    assert speedups[10_000]["composite"] >= 50.0
    assert speedups[10_000]["ordered"] >= 50.0
    assert speedups[10_000]["composite"] > speedups[100]["composite"]
    # Caching the parsed statement is itself a measurable win.
    assert cache_gain > 1.2
    benchmark.extra_info["composite_speedup_10k"] = round(
        speedups[10_000]["composite"], 1
    )
    benchmark.extra_info["ordered_speedup_10k"] = round(
        speedups[10_000]["ordered"], 1
    )
    benchmark.extra_info["cache_gain"] = round(cache_gain, 2)
