"""Guard the committed datapath benchmark against read-path regressions.

``make perfcheck`` (also run at the end of ``make bench``) loads
``BENCH_datapath.json`` — the matrix ``make bench-datapath`` regenerates
and commits — and fails if either invariant of the run-coalescing read
path has regressed:

* **read gap** — the cold chunked read must stay within ``READ_GAP_MAX``
  (default 1.3x) of the canonical read at 4 and 8 ranks.  Before the
  coalescer this ratio sat at 3.5-5.6x.
* **run count** — the collective read of a chunked instance must submit
  O(chunks) byte runs, not O(elements): the recorded
  ``read_runs_chunked`` must stay under ``READ_RUNS_MAX`` (default
  10,000 — the workload reads 1,000,000 elements).

Thresholds are overridable through the environment for experiments::

    READ_GAP_MAX=1.5 READ_RUNS_MAX=500 python benchmarks/perfcheck_datapath.py
"""

import json
import os
import sys

DEFAULT_JSON = "BENCH_datapath.json"
GAP_RANKS = (4, 8)


def check(path: str) -> int:
    gap_max = float(os.environ.get("READ_GAP_MAX", "1.3"))
    runs_max = int(os.environ.get("READ_RUNS_MAX", "10000"))
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"perfcheck: cannot load {path}: {exc}", file=sys.stderr)
        return 2
    cells = doc.get("cells", {})
    failures = []
    for nprocs in GAP_RANKS:
        cell = cells.get(str(nprocs))
        if cell is None:
            failures.append(f"no cell for {nprocs}p in {path}")
            continue
        gap = cell.get("read_gap")
        if gap is None:
            gap = cell["read_chunked"] / cell["read_canonical"]
        status = "ok" if gap <= gap_max else "FAIL"
        print(f"perfcheck: read-gap/{nprocs}p = {gap:.3f}x "
              f"(max {gap_max:.2f}x) {status}")
        if gap > gap_max:
            failures.append(
                f"read-gap/{nprocs}p = {gap:.3f}x exceeds {gap_max:.2f}x"
            )
        runs = cell.get("read_runs_chunked")
        if runs is None:
            failures.append(f"no read_runs_chunked cell for {nprocs}p "
                            "(regenerate with make bench-datapath)")
            continue
        status = "ok" if runs <= runs_max else "FAIL"
        print(f"perfcheck: read-runs-chunked/{nprocs}p = {int(runs)} "
              f"(max {runs_max}) {status}")
        if runs > runs_max:
            failures.append(
                f"read-runs-chunked/{nprocs}p = {int(runs)} exceeds "
                f"{runs_max} (run coalescing regressed to per-element?)"
            )
    if failures:
        for f in failures:
            print(f"perfcheck: FAIL: {f}", file=sys.stderr)
        return 1
    print("perfcheck: all datapath read-path guards hold")
    return 0


if __name__ == "__main__":
    sys.exit(check(sys.argv[1] if len(sys.argv) > 1 else DEFAULT_JSON))
