"""Guard the committed datapath benchmark against datapath regressions.

``make perfcheck`` (also run at the end of ``make bench``) loads
``BENCH_datapath.json`` — the matrix ``make bench-datapath`` regenerates
and commits — and fails if any invariant of the datapath has regressed:

* **read gap** — the cold chunked read must stay within ``READ_GAP_MAX``
  (default 1.3x) of the canonical read at 4-32 ranks.  Before the
  coalescer this ratio sat at 3.5-5.6x.
* **run count** — the collective read of a chunked instance must submit
  O(chunks) byte runs, not O(elements): the recorded
  ``read_runs_chunked`` must stay under ``READ_RUNS_MAX`` (default
  10,000 — the workload reads 1,000,000 elements).
* **index bytes** — collective index resolution must keep a cold read's
  job-wide index traffic within ``INDEX_BYTES_MAX`` (default 1.1x) of
  the index size at 4-32 ranks; per-rank resolution reads P copies.
* **file growth** — first-fit extent reuse must hold the churned
  chunked file within ``FILE_GROWTH_MAX`` (default 1.25x) of its live
  bytes; append-only placement grows it ~(T/W)x.

Thresholds are overridable through the environment for experiments::

    READ_GAP_MAX=1.5 READ_RUNS_MAX=500 python benchmarks/perfcheck_datapath.py
"""

import json
import os
import sys

DEFAULT_JSON = "BENCH_datapath.json"
GAP_RANKS = (4, 8, 16, 32)


def check(path: str) -> int:
    gap_max = float(os.environ.get("READ_GAP_MAX", "1.3"))
    runs_max = int(os.environ.get("READ_RUNS_MAX", "10000"))
    index_max = float(os.environ.get("INDEX_BYTES_MAX", "1.1"))
    growth_max = float(os.environ.get("FILE_GROWTH_MAX", "1.25"))
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"perfcheck: cannot load {path}: {exc}", file=sys.stderr)
        return 2
    cells = doc.get("cells", {})
    failures = []
    for nprocs in GAP_RANKS:
        cell = cells.get(str(nprocs))
        if cell is None:
            failures.append(f"no cell for {nprocs}p in {path}")
            continue
        gap = cell.get("read_gap")
        if gap is None:
            gap = cell["read_chunked"] / cell["read_canonical"]
        status = "ok" if gap <= gap_max else "FAIL"
        print(f"perfcheck: read-gap/{nprocs}p = {gap:.3f}x "
              f"(max {gap_max:.2f}x) {status}")
        if gap > gap_max:
            failures.append(
                f"read-gap/{nprocs}p = {gap:.3f}x exceeds {gap_max:.2f}x"
            )
        runs = cell.get("read_runs_chunked")
        if runs is None:
            failures.append(f"no read_runs_chunked cell for {nprocs}p "
                            "(regenerate with make bench-datapath)")
            continue
        status = "ok" if runs <= runs_max else "FAIL"
        print(f"perfcheck: read-runs-chunked/{nprocs}p = {int(runs)} "
              f"(max {runs_max}) {status}")
        if runs > runs_max:
            failures.append(
                f"read-runs-chunked/{nprocs}p = {int(runs)} exceeds "
                f"{runs_max} (run coalescing regressed to per-element?)"
            )
    index_cells = doc.get("index_cells", {})
    for nprocs in GAP_RANKS:
        cell = index_cells.get(str(nprocs))
        if cell is None:
            failures.append(f"no index cell for {nprocs}p in {path} "
                            "(regenerate with make bench-datapath)")
            continue
        ratio = cell["index_bytes_ratio"]
        status = "ok" if ratio <= index_max else "FAIL"
        print(f"perfcheck: index-bytes-ratio/{nprocs}p = {ratio:.3f}x "
              f"(max {index_max:.2f}x) {status}")
        if ratio > index_max:
            failures.append(
                f"index-bytes-ratio/{nprocs}p = {ratio:.3f}x exceeds "
                f"{index_max:.2f}x (collective resolution regressed to "
                "per-rank index fetches?)"
            )
    churn = doc.get("churn")
    if churn is None:
        failures.append(f"no churn cell in {path} "
                        "(regenerate with make bench-datapath)")
    else:
        ratio = churn["file_growth_ratio"]
        status = "ok" if ratio <= growth_max else "FAIL"
        print(f"perfcheck: file-growth-ratio = {ratio:.3f}x "
              f"(max {growth_max:.2f}x) {status}")
        if ratio > growth_max:
            failures.append(
                f"file-growth-ratio = {ratio:.3f}x exceeds "
                f"{growth_max:.2f}x (first-fit extent reuse regressed to "
                "append-only placement?)"
            )
    if failures:
        for f in failures:
            print(f"perfcheck: FAIL: {f}", file=sys.stderr)
        return 1
    print("perfcheck: all datapath guards hold")
    return 0


if __name__ == "__main__":
    sys.exit(check(sys.argv[1] if len(sys.argv) > 1 else DEFAULT_JSON))
