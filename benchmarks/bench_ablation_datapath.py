"""Ablation: storage-order data path — chunked vs canonical writes.

The storage-order layer's claim: writing each rank's data in distribution
order (chunked, independent I/O, no interprocess exchange) beats writing
canonical global order (two-phase exchange on every write), and the
deferred exchange can be paid once, later, via ``SDM.reorganize``.

Each cell runs the same irregular checkpoint workload — a round-robin map
array, the worst interleaving for collective writes — on the origin2000
machine model at 2/4/8 ranks and reports simulated (virtual) seconds on
the critical path:

* ``write/canonical``   — two-phase exchange per write,
* ``write/chunked``     — exchange-free appends,
* ``reorganize``        — one-time conversion of every chunked instance,
* ``read/canonical`` and ``read/chunked`` — the read price of each
  representation (chunked reads assemble from chunk maps).

Reads must return byte-identical arrays either way — the bench asserts it
— and chunked writes must win from 4 ranks up.

Set ``DATAPATH_BENCH_JSON=<path>`` (the Makefile's ``bench-datapath``
target points it at ``BENCH_datapath.json``) to emit the matrix as JSON
for cross-PR tracking.
"""

import json
import os
from dataclasses import asdict

import numpy as np
import pytest

from repro.bench.harness import ResultTable
from repro.config import origin2000
from repro.core import SDM, Organization, sdm_services
from repro.core.layout import CANONICAL, CHUNKED
from repro.dtypes import DOUBLE
from repro.mpi import mpirun

RANK_COUNTS = (2, 4, 8)
GLOBAL_ELEMENTS = 1_000_000
"""8 MB of doubles per instance — the scale of the paper's FUN3D datasets
(21–105 MB), large enough that bandwidth, not request latency, decides."""
TIMESTEPS = 5


def run_case(nprocs, order, reorganize):
    """One simulated checkpoint run; returns critical-path phase seconds
    and the concatenated read-back of the final timestep."""

    def program(ctx):
        sdm = SDM(
            ctx, "bench", organization=Organization.LEVEL_2,
            storage_order=order,
        )
        result = sdm.make_datalist(["d"])
        sdm.associate_attributes(
            result, data_type=DOUBLE, global_size=GLOBAL_ELEMENTS
        )
        handle = sdm.set_attributes(result)
        # Round-robin distribution: the worst interleaving for a
        # canonical (global-order) write, the common case for irregular
        # partitions.
        mine = np.arange(ctx.rank, GLOBAL_ELEMENTS, ctx.size, dtype=np.int64)
        sdm.data_view(handle, "d", mine)
        for t in range(TIMESTEPS):
            with ctx.phase("write"):
                sdm.write(handle, "d", t, mine * 1.0 + t)
        if reorganize:
            for t in range(TIMESTEPS):
                with ctx.phase("reorganize"):
                    sdm.reorganize(handle, "d", t)
        back = np.empty(len(mine))
        with ctx.phase("read"):
            sdm.read(handle, "d", TIMESTEPS - 1, back)
        sdm.finalize(handle)
        return back

    job = mpirun(program, nprocs, machine=origin2000(),
                 services=sdm_services())
    merged = np.empty(GLOBAL_ELEMENTS)
    for rank, back in enumerate(job.values):
        merged[rank::nprocs] = back
    return {
        "write": job.phase_max("write"),
        "reorganize": job.phase_max("reorganize"),
        "read": job.phase_max("read"),
    }, merged


def run_matrix():
    table = ResultTable(
        "Ablation (datapath) - chunked vs canonical storage order"
    )
    cells = {}
    for nprocs in RANK_COUNTS:
        canonical, canonical_data = run_case(nprocs, CANONICAL, False)
        chunked, chunked_data = run_case(nprocs, CHUNKED, False)
        reorg, reorg_data = run_case(nprocs, CHUNKED, True)
        # Identical bytes back regardless of on-disk representation.
        np.testing.assert_array_equal(canonical_data, chunked_data)
        np.testing.assert_array_equal(canonical_data, reorg_data)
        cells[nprocs] = {
            "write_canonical": canonical["write"],
            "write_chunked": chunked["write"],
            "write_speedup": canonical["write"] / chunked["write"],
            "reorganize": reorg["reorganize"],
            "read_canonical": canonical["read"],
            "read_chunked": chunked["read"],
        }
        for config, value in (
            (f"write-canonical/{nprocs}p", canonical["write"]),
            (f"write-chunked/{nprocs}p", chunked["write"]),
            (f"reorganize/{nprocs}p", reorg["reorganize"]),
            (f"read-canonical/{nprocs}p", canonical["read"]),
            (f"read-chunked/{nprocs}p", chunked["read"]),
        ):
            table.add("ablation-datapath", config, "virtual-time", value, "s")
        table.add(
            "ablation-datapath", f"chunked-write-speedup/{nprocs}p",
            "speedup", cells[nprocs]["write_speedup"], "x",
        )
    return table, cells


def _emit_json(table, cells):
    """Write the matrix to $DATAPATH_BENCH_JSON for cross-PR tracking."""
    path = os.environ.get("DATAPATH_BENCH_JSON")
    if not path:
        return
    doc = {
        "benchmark": "ablation-datapath",
        "global_elements": GLOBAL_ELEMENTS,
        "timesteps": TIMESTEPS,
        "rank_counts": list(RANK_COUNTS),
        "rows": [asdict(row) for row in table.rows],
        "cells": {
            str(n): {k: round(v, 6) for k, v in by_key.items()}
            for n, by_key in cells.items()
        },
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")


@pytest.mark.benchmark(group="ablation-datapath")
def test_chunked_writes_beat_canonical(benchmark, report):
    table, cells = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    report(table)
    _emit_json(table, cells)
    # The exchange-free write path must win from 4 ranks up (the
    # acceptance bar).  At 2 ranks the once-per-view index blocks can
    # offset the small exchange, so no claim is made there.
    for nprocs in RANK_COUNTS:
        if nprocs >= 4:
            assert cells[nprocs]["write_speedup"] > 1.0, cells[nprocs]
    # Reorganization is the deferred exchange: one conversion should not
    # dwarf the write savings — it stays within an order of magnitude of
    # a full canonical write phase.
    for nprocs in RANK_COUNTS:
        assert cells[nprocs]["reorganize"] < 10 * cells[nprocs]["write_canonical"]
    benchmark.extra_info["write_speedup_4p"] = round(
        cells[4]["write_speedup"], 2
    )
    benchmark.extra_info["write_speedup_8p"] = round(
        cells[8]["write_speedup"], 2
    )
