"""Ablation: storage-order data path — chunked vs canonical writes.

The storage-order layer's claim: writing each rank's data in distribution
order (chunked, independent I/O, no interprocess exchange) beats writing
canonical global order (two-phase exchange on every write), and the
deferred exchange can be paid once, later, via ``SDM.reorganize``.

Each cell runs the same irregular checkpoint workload — a round-robin map
array, the worst interleaving for collective writes — on the origin2000
machine model at 2/4/8 ranks and reports simulated (virtual) seconds on
the critical path:

* ``write/canonical``   — two-phase exchange per write,
* ``write/chunked``     — exchange-free appends,
* ``reorganize``        — one-time conversion of every chunked instance,
* ``read/canonical`` and ``read/chunked`` — the read price of each
  representation (chunked reads resolve positions from the chunk maps,
  coalesce them into maximal byte runs, and gather collectively),
* ``read-gap``          — cold chunked/canonical read ratio (the number
  ``make perfcheck`` guards),
* ``read-runs``         — byte runs submitted to the I/O layer during
  each read: the coalescer must keep the chunked read at O(chunks), not
  O(elements).

Reads must return byte-identical arrays either way — the bench asserts it
— chunked writes must win from 4 ranks up, and the cold chunked read must
stay within 1.3x of canonical from 4 ranks up.

Two satellite cases pin the other datapath claims:

* **index case** (fully indexed permutation maps, 4-32 ranks) — a cold
  collective read must fetch each chunk index block exactly once, so the
  job-wide ``index_bytes_read`` delta stays within ``1.1x`` of the index
  size (per-rank resolution would read ``P`` copies);
* **churn case** (sliding-window write/reorganize) — first-fit extent
  reuse must hold the shared chunked file at ``(W+1)/W`` of its live
  bytes in steady state instead of growing without bound.

Every cell pins ``policy="static"`` so the self-tuning tier (benched on
its own in ``bench_ablation_policy.py``) cannot drift these baselines.

Set ``DATAPATH_BENCH_JSON=<path>`` (the Makefile's ``bench-datapath``
target points it at ``BENCH_datapath.json``) to emit the matrix as JSON
for cross-PR tracking.
"""

import json
import os
from dataclasses import asdict

import numpy as np
import pytest

from repro.bench.harness import ResultTable
from repro.config import origin2000
from repro.core import SDM, Organization, sdm_services
from repro.core.layout import CANONICAL, CHUNKED
from repro.dtypes import DOUBLE
from repro.metadb.schema import SDMTables
from repro.mpi import mpirun

RANK_COUNTS = (2, 4, 8, 16, 32)
GLOBAL_ELEMENTS = 1_000_000
"""8 MB of doubles per instance — the scale of the paper's FUN3D datasets
(21–105 MB), large enough that bandwidth, not request latency, decides."""
TIMESTEPS = 5

INDEX_RANKS = (4, 8, 16, 32)
INDEX_ELEMENTS = 256_000
"""Permutation-split instance for the index-traffic case: every chunk is
indexed, so the index is exactly ``INDEX_ELEMENTS * 8`` bytes."""

CHURN_RANKS = 8
CHURN_ELEMENTS = 200_000
CHURN_WINDOW = 5
CHURN_TIMESTEPS = 15
"""Sliding-window churn: keep the last ``CHURN_WINDOW`` timesteps
chunked, reorganize (and thereby reap) everything older."""


def permutation_maps(nprocs, n, seed):
    """Equal-count random partition of ``range(n)``: every rank's map is
    a sorted random subset, so every chunk carries a real index block."""
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n)
    share = n // nprocs
    return [
        np.sort(perm[r * share:(r + 1) * share]).astype(np.int64)
        for r in range(nprocs)
    ]


def run_case(nprocs, order, reorganize):
    """One simulated checkpoint run; returns critical-path phase seconds
    (plus job-wide I/O counters for the cold read) and the concatenated
    read-back of the final timestep."""

    def program(ctx):
        sdm = SDM(
            ctx, "bench", organization=Organization.LEVEL_2,
            storage_order=order, policy="static",
        )
        result = sdm.make_datalist(["d"])
        sdm.associate_attributes(
            result, data_type=DOUBLE, global_size=GLOBAL_ELEMENTS
        )
        handle = sdm.set_attributes(result)
        # Round-robin distribution: the worst interleaving for a
        # canonical (global-order) write, the common case for irregular
        # partitions.
        mine = np.arange(ctx.rank, GLOBAL_ELEMENTS, ctx.size, dtype=np.int64)
        sdm.data_view(handle, "d", mine)
        for t in range(TIMESTEPS):
            with ctx.phase("write"):
                sdm.write(handle, "d", t, mine * 1.0 + t)
        if reorganize:
            for t in range(TIMESTEPS):
                with ctx.phase("reorganize"):
                    sdm.reorganize(handle, "d", t)
        back = np.empty(len(mine))
        # Barrier-delimit the read so the job-wide fs counters isolate it:
        # the barrier after the snapshot guarantees every rank records
        # "before" before any rank's read touches the counters, and the
        # one after the read closes the window.
        fs = ctx.service("fs")
        before = fs.stats()
        ctx.comm.barrier()
        with ctx.phase("read"):
            sdm.read(handle, "d", TIMESTEPS - 1, back)
        ctx.comm.barrier()
        after = fs.stats()
        counters = {
            "read_runs_submitted": after["runs_submitted"] - before["runs_submitted"],
            "read_runs_serviced": after["runs_serviced"] - before["runs_serviced"],
            "read_requests": after["n_requests"] - before["n_requests"],
            "read_index_bytes": after["index_bytes_read"] - before["index_bytes_read"],
            "read_data_bytes": after["data_bytes_read"] - before["data_bytes_read"],
        }
        sdm.finalize(handle)
        return back, counters

    job = mpirun(program, nprocs, machine=origin2000(),
                 services=sdm_services())
    merged = np.empty(GLOBAL_ELEMENTS)
    for rank, (back, _c) in enumerate(job.values):
        merged[rank::nprocs] = back
    return {
        "write": job.phase_max("write"),
        "reorganize": job.phase_max("reorganize"),
        "read": job.phase_max("read"),
        **job.values[0][1],
    }, merged


def run_index_case(nprocs):
    """Cold collective read of a fully indexed instance: how many index
    bytes does resolution pull off disk, job-wide?  Returns the cell."""
    maps = permutation_maps(nprocs, INDEX_ELEMENTS, seed=1234)

    def program(ctx):
        sdm = SDM(
            ctx, "benchidx", organization=Organization.LEVEL_2,
            storage_order=CHUNKED, policy="static",
        )
        result = sdm.make_datalist(["d"])
        sdm.associate_attributes(
            result, data_type=DOUBLE, global_size=INDEX_ELEMENTS
        )
        handle = sdm.set_attributes(result)
        mine = maps[ctx.rank]
        sdm.data_view(handle, "d", mine)
        fname = sdm.write(handle, "d", 0, mine * 1.0)
        # Make the read genuinely cold: drop every warm index-block copy
        # the write left behind, then barrier-delimit the measurement so
        # the job-wide counter window contains exactly this read.
        sdm.invalidate_chunked_caches(fname)
        fs = ctx.service("fs")
        before = fs.stats()
        ctx.comm.barrier()
        back = np.empty(len(mine))
        with ctx.phase("read"):
            sdm.read(handle, "d", 0, back)
        ctx.comm.barrier()
        delta = fs.stats()["index_bytes_read"] - before["index_bytes_read"]
        sdm.finalize(handle)
        return back, delta

    job = mpirun(program, nprocs, machine=origin2000(),
                 services=sdm_services())
    for rank, (back, _d) in enumerate(job.values):
        np.testing.assert_allclose(back, maps[rank] * 1.0)
    index_bytes = INDEX_ELEMENTS * 8
    cold_bytes = job.values[0][1]
    return {
        "index_bytes_total": index_bytes,
        "index_bytes_cold_read": int(cold_bytes),
        "index_bytes_ratio": cold_bytes / index_bytes,
        "read": job.phase_max("read"),
    }


def run_churn_case(nprocs):
    """Sliding-window churn on one shared chunked file: write timestep
    ``t``, reorganize (flip + reap) timestep ``t - W``.  With first-fit
    extent reuse the file plateaus at ``W + 1`` instance regions; without
    it every write appends and the file grows ~3x the live bytes by the
    end.  Returns the cell."""
    maps = [
        permutation_maps(nprocs, CHURN_ELEMENTS, seed=100 + t)
        for t in range(CHURN_TIMESTEPS)
    ]

    def program(ctx):
        sdm = SDM(
            ctx, "benchchurn", organization=Organization.LEVEL_2,
            storage_order=CHUNKED, policy="static",
        )
        result = sdm.make_datalist(["d"])
        sdm.associate_attributes(
            result, data_type=DOUBLE, global_size=CHURN_ELEMENTS
        )
        handle = sdm.set_attributes(result)
        for t in range(CHURN_TIMESTEPS):
            mine = maps[t][ctx.rank]
            sdm.data_view(handle, "d", mine)
            with ctx.phase("churn-write"):
                sdm.write(handle, "d", t, mine * 1.0 + t)
            if t >= CHURN_WINDOW:
                with ctx.phase("churn-reorganize"):
                    sdm.reorganize(handle, "d", t - CHURN_WINDOW)
        # The newest in-window instance must read back through whatever
        # recycled extents it landed in.
        t = CHURN_TIMESTEPS - 1
        mine = maps[t][ctx.rank]
        sdm.data_view(handle, "d", mine)
        back = np.empty(len(mine))
        sdm.read(handle, "d", t, back)
        sdm.finalize(handle)
        return back

    job = mpirun(program, nprocs, machine=origin2000(),
                 services=sdm_services())
    t = CHURN_TIMESTEPS - 1
    for rank, back in enumerate(job.values):
        np.testing.assert_allclose(back, maps[t][rank] * 1.0 + t)
    tables = SDMTables(job.services["db"])
    fname = "benchchurn/d.chunked.dat"
    file_size = job.services["fs"].lookup(fname).size
    live_bytes = sum(
        nbytes for *_rest, nbytes in tables.executions_in_file(fname)
    )
    return {
        "file_size": int(file_size),
        "live_bytes": int(live_bytes),
        "file_growth_ratio": file_size / live_bytes,
        "write": job.phase_max("churn-write"),
        "reorganize": job.phase_max("churn-reorganize"),
    }


def run_matrix():
    table = ResultTable(
        "Ablation (datapath) - chunked vs canonical storage order"
    )
    cells = {}
    for nprocs in RANK_COUNTS:
        canonical, canonical_data = run_case(nprocs, CANONICAL, False)
        chunked, chunked_data = run_case(nprocs, CHUNKED, False)
        reorg, reorg_data = run_case(nprocs, CHUNKED, True)
        # Identical bytes back regardless of on-disk representation.
        np.testing.assert_array_equal(canonical_data, chunked_data)
        np.testing.assert_array_equal(canonical_data, reorg_data)
        cells[nprocs] = {
            "write_canonical": canonical["write"],
            "write_chunked": chunked["write"],
            "write_speedup": canonical["write"] / chunked["write"],
            "reorganize": reorg["reorganize"],
            "read_canonical": canonical["read"],
            "read_chunked": chunked["read"],
            "read_gap": chunked["read"] / canonical["read"],
            "read_runs_chunked": chunked["read_runs_submitted"],
            "read_runs_canonical": canonical["read_runs_submitted"],
            "read_requests_chunked": chunked["read_requests"],
            "read_requests_canonical": canonical["read_requests"],
            "read_index_bytes_chunked": chunked["read_index_bytes"],
            "read_data_bytes_chunked": chunked["read_data_bytes"],
            "read_index_bytes_canonical": canonical["read_index_bytes"],
            "read_data_bytes_canonical": canonical["read_data_bytes"],
        }
        for config, value in (
            (f"write-canonical/{nprocs}p", canonical["write"]),
            (f"write-chunked/{nprocs}p", chunked["write"]),
            (f"reorganize/{nprocs}p", reorg["reorganize"]),
            (f"read-canonical/{nprocs}p", canonical["read"]),
            (f"read-chunked/{nprocs}p", chunked["read"]),
        ):
            table.add("ablation-datapath", config, "virtual-time", value, "s")
        table.add(
            "ablation-datapath", f"chunked-write-speedup/{nprocs}p",
            "speedup", cells[nprocs]["write_speedup"], "x",
        )
        table.add(
            "ablation-datapath", f"read-gap/{nprocs}p",
            "ratio", cells[nprocs]["read_gap"], "x",
        )
        table.add(
            "ablation-datapath", f"read-runs-chunked/{nprocs}p",
            "runs-submitted", float(chunked["read_runs_submitted"]), "runs",
        )
        table.add(
            "ablation-datapath", f"read-runs-canonical/{nprocs}p",
            "runs-submitted", float(canonical["read_runs_submitted"]), "runs",
        )
        table.add(
            "ablation-datapath", f"read-index-bytes-chunked/{nprocs}p",
            "bytes", float(chunked["read_index_bytes"]), "B",
        )
        table.add(
            "ablation-datapath", f"read-data-bytes-chunked/{nprocs}p",
            "bytes", float(chunked["read_data_bytes"]), "B",
        )
    index_cells = {}
    for nprocs in INDEX_RANKS:
        index_cells[nprocs] = run_index_case(nprocs)
        table.add(
            "ablation-datapath", f"index-bytes-ratio/{nprocs}p",
            "ratio", index_cells[nprocs]["index_bytes_ratio"], "x",
        )
    churn = run_churn_case(CHURN_RANKS)
    table.add(
        "ablation-datapath", f"file-growth-ratio/{CHURN_RANKS}p",
        "ratio", churn["file_growth_ratio"], "x",
    )
    return table, cells, index_cells, churn


def _emit_json(table, cells, index_cells, churn):
    """Write the matrix to $DATAPATH_BENCH_JSON for cross-PR tracking."""
    path = os.environ.get("DATAPATH_BENCH_JSON")
    if not path:
        return
    doc = {
        "benchmark": "ablation-datapath",
        "global_elements": GLOBAL_ELEMENTS,
        "timesteps": TIMESTEPS,
        "rank_counts": list(RANK_COUNTS),
        "rows": [asdict(row) for row in table.rows],
        "cells": {
            str(n): {k: round(v, 6) for k, v in by_key.items()}
            for n, by_key in cells.items()
        },
        "index_cells": {
            str(n): {k: round(v, 6) for k, v in by_key.items()}
            for n, by_key in index_cells.items()
        },
        "churn": {k: round(v, 6) for k, v in churn.items()},
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")


@pytest.mark.benchmark(group="ablation-datapath")
def test_chunked_writes_beat_canonical(benchmark, report):
    table, cells, index_cells, churn = benchmark.pedantic(
        run_matrix, rounds=1, iterations=1
    )
    report(table)
    _emit_json(table, cells, index_cells, churn)
    # The exchange-free write path must win from 4 ranks up (the
    # acceptance bar).  At 2 ranks the once-per-view index blocks can
    # offset the small exchange, so no claim is made there.
    for nprocs in RANK_COUNTS:
        if nprocs >= 4:
            assert cells[nprocs]["write_speedup"] > 1.0, cells[nprocs]
    # Reorganization is the deferred exchange: one conversion should not
    # dwarf the write savings — it stays within an order of magnitude of
    # a full canonical write phase.
    for nprocs in RANK_COUNTS:
        assert cells[nprocs]["reorganize"] < 10 * cells[nprocs]["write_canonical"]
    for nprocs in RANK_COUNTS:
        # The coalescer's request-count collapse: a chunked read submits
        # O(chunks) byte runs, not O(elements) — the canonical read's
        # per-element view runs are the contrast.
        assert cells[nprocs]["read_runs_chunked"] <= 64 * nprocs, cells[nprocs]
        if nprocs >= 4:
            # The read-gap acceptance bar (enforced against the committed
            # JSON by `make perfcheck`).
            assert cells[nprocs]["read_gap"] <= 1.3, cells[nprocs]
    # Collective resolution: a cold read pulls each index block off disk
    # exactly once job-wide — per-rank resolution would read P copies.
    for nprocs in INDEX_RANKS:
        assert index_cells[nprocs]["index_bytes_ratio"] <= 1.1, (
            index_cells[nprocs]
        )
    # First-fit reuse: the churned file plateaus near (W+1)/W of its live
    # bytes instead of growing ~(T/W)x under append-only placement.
    assert churn["file_growth_ratio"] <= 1.25, churn
    benchmark.extra_info["write_speedup_4p"] = round(
        cells[4]["write_speedup"], 2
    )
    benchmark.extra_info["write_speedup_8p"] = round(
        cells[8]["write_speedup"], 2
    )
    benchmark.extra_info["read_gap_4p"] = round(cells[4]["read_gap"], 2)
    benchmark.extra_info["read_gap_8p"] = round(cells[8]["read_gap"], 2)
    benchmark.extra_info["read_gap_32p"] = round(cells[32]["read_gap"], 2)
    benchmark.extra_info["index_bytes_ratio_32p"] = round(
        index_cells[32]["index_bytes_ratio"], 3
    )
    benchmark.extra_info["file_growth_ratio"] = round(
        churn["file_growth_ratio"], 3
    )
