"""Ablation: storage-order data path — chunked vs canonical writes.

The storage-order layer's claim: writing each rank's data in distribution
order (chunked, independent I/O, no interprocess exchange) beats writing
canonical global order (two-phase exchange on every write), and the
deferred exchange can be paid once, later, via ``SDM.reorganize``.

Each cell runs the same irregular checkpoint workload — a round-robin map
array, the worst interleaving for collective writes — on the origin2000
machine model at 2/4/8 ranks and reports simulated (virtual) seconds on
the critical path:

* ``write/canonical``   — two-phase exchange per write,
* ``write/chunked``     — exchange-free appends,
* ``reorganize``        — one-time conversion of every chunked instance,
* ``read/canonical`` and ``read/chunked`` — the read price of each
  representation (chunked reads resolve positions from the chunk maps,
  coalesce them into maximal byte runs, and gather collectively),
* ``read-gap``          — cold chunked/canonical read ratio (the number
  ``make perfcheck`` guards),
* ``read-runs``         — byte runs submitted to the I/O layer during
  each read: the coalescer must keep the chunked read at O(chunks), not
  O(elements).

Reads must return byte-identical arrays either way — the bench asserts it
— chunked writes must win from 4 ranks up, and the cold chunked read must
stay within 1.3x of canonical at 4 and 8 ranks.

Set ``DATAPATH_BENCH_JSON=<path>`` (the Makefile's ``bench-datapath``
target points it at ``BENCH_datapath.json``) to emit the matrix as JSON
for cross-PR tracking.
"""

import json
import os
from dataclasses import asdict

import numpy as np
import pytest

from repro.bench.harness import ResultTable
from repro.config import origin2000
from repro.core import SDM, Organization, sdm_services
from repro.core.layout import CANONICAL, CHUNKED
from repro.dtypes import DOUBLE
from repro.mpi import mpirun

RANK_COUNTS = (2, 4, 8)
GLOBAL_ELEMENTS = 1_000_000
"""8 MB of doubles per instance — the scale of the paper's FUN3D datasets
(21–105 MB), large enough that bandwidth, not request latency, decides."""
TIMESTEPS = 5


def run_case(nprocs, order, reorganize):
    """One simulated checkpoint run; returns critical-path phase seconds
    (plus job-wide I/O counters for the cold read) and the concatenated
    read-back of the final timestep."""

    def program(ctx):
        sdm = SDM(
            ctx, "bench", organization=Organization.LEVEL_2,
            storage_order=order,
        )
        result = sdm.make_datalist(["d"])
        sdm.associate_attributes(
            result, data_type=DOUBLE, global_size=GLOBAL_ELEMENTS
        )
        handle = sdm.set_attributes(result)
        # Round-robin distribution: the worst interleaving for a
        # canonical (global-order) write, the common case for irregular
        # partitions.
        mine = np.arange(ctx.rank, GLOBAL_ELEMENTS, ctx.size, dtype=np.int64)
        sdm.data_view(handle, "d", mine)
        for t in range(TIMESTEPS):
            with ctx.phase("write"):
                sdm.write(handle, "d", t, mine * 1.0 + t)
        if reorganize:
            for t in range(TIMESTEPS):
                with ctx.phase("reorganize"):
                    sdm.reorganize(handle, "d", t)
        back = np.empty(len(mine))
        # Barrier-delimit the read so the job-wide fs counters isolate it:
        # the barrier after the snapshot guarantees every rank records
        # "before" before any rank's read touches the counters, and the
        # one after the read closes the window.
        fs = ctx.service("fs")
        before = (fs.runs_submitted, fs.runs_serviced, fs.n_requests)
        ctx.comm.barrier()
        with ctx.phase("read"):
            sdm.read(handle, "d", TIMESTEPS - 1, back)
        ctx.comm.barrier()
        counters = {
            "read_runs_submitted": fs.runs_submitted - before[0],
            "read_runs_serviced": fs.runs_serviced - before[1],
            "read_requests": fs.n_requests - before[2],
        }
        sdm.finalize(handle)
        return back, counters

    job = mpirun(program, nprocs, machine=origin2000(),
                 services=sdm_services())
    merged = np.empty(GLOBAL_ELEMENTS)
    for rank, (back, _c) in enumerate(job.values):
        merged[rank::nprocs] = back
    return {
        "write": job.phase_max("write"),
        "reorganize": job.phase_max("reorganize"),
        "read": job.phase_max("read"),
        **job.values[0][1],
    }, merged


def run_matrix():
    table = ResultTable(
        "Ablation (datapath) - chunked vs canonical storage order"
    )
    cells = {}
    for nprocs in RANK_COUNTS:
        canonical, canonical_data = run_case(nprocs, CANONICAL, False)
        chunked, chunked_data = run_case(nprocs, CHUNKED, False)
        reorg, reorg_data = run_case(nprocs, CHUNKED, True)
        # Identical bytes back regardless of on-disk representation.
        np.testing.assert_array_equal(canonical_data, chunked_data)
        np.testing.assert_array_equal(canonical_data, reorg_data)
        cells[nprocs] = {
            "write_canonical": canonical["write"],
            "write_chunked": chunked["write"],
            "write_speedup": canonical["write"] / chunked["write"],
            "reorganize": reorg["reorganize"],
            "read_canonical": canonical["read"],
            "read_chunked": chunked["read"],
            "read_gap": chunked["read"] / canonical["read"],
            "read_runs_chunked": chunked["read_runs_submitted"],
            "read_runs_canonical": canonical["read_runs_submitted"],
            "read_requests_chunked": chunked["read_requests"],
            "read_requests_canonical": canonical["read_requests"],
        }
        for config, value in (
            (f"write-canonical/{nprocs}p", canonical["write"]),
            (f"write-chunked/{nprocs}p", chunked["write"]),
            (f"reorganize/{nprocs}p", reorg["reorganize"]),
            (f"read-canonical/{nprocs}p", canonical["read"]),
            (f"read-chunked/{nprocs}p", chunked["read"]),
        ):
            table.add("ablation-datapath", config, "virtual-time", value, "s")
        table.add(
            "ablation-datapath", f"chunked-write-speedup/{nprocs}p",
            "speedup", cells[nprocs]["write_speedup"], "x",
        )
        table.add(
            "ablation-datapath", f"read-gap/{nprocs}p",
            "ratio", cells[nprocs]["read_gap"], "x",
        )
        table.add(
            "ablation-datapath", f"read-runs-chunked/{nprocs}p",
            "runs-submitted", float(chunked["read_runs_submitted"]), "runs",
        )
        table.add(
            "ablation-datapath", f"read-runs-canonical/{nprocs}p",
            "runs-submitted", float(canonical["read_runs_submitted"]), "runs",
        )
    return table, cells


def _emit_json(table, cells):
    """Write the matrix to $DATAPATH_BENCH_JSON for cross-PR tracking."""
    path = os.environ.get("DATAPATH_BENCH_JSON")
    if not path:
        return
    doc = {
        "benchmark": "ablation-datapath",
        "global_elements": GLOBAL_ELEMENTS,
        "timesteps": TIMESTEPS,
        "rank_counts": list(RANK_COUNTS),
        "rows": [asdict(row) for row in table.rows],
        "cells": {
            str(n): {k: round(v, 6) for k, v in by_key.items()}
            for n, by_key in cells.items()
        },
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")


@pytest.mark.benchmark(group="ablation-datapath")
def test_chunked_writes_beat_canonical(benchmark, report):
    table, cells = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    report(table)
    _emit_json(table, cells)
    # The exchange-free write path must win from 4 ranks up (the
    # acceptance bar).  At 2 ranks the once-per-view index blocks can
    # offset the small exchange, so no claim is made there.
    for nprocs in RANK_COUNTS:
        if nprocs >= 4:
            assert cells[nprocs]["write_speedup"] > 1.0, cells[nprocs]
    # Reorganization is the deferred exchange: one conversion should not
    # dwarf the write savings — it stays within an order of magnitude of
    # a full canonical write phase.
    for nprocs in RANK_COUNTS:
        assert cells[nprocs]["reorganize"] < 10 * cells[nprocs]["write_canonical"]
    for nprocs in RANK_COUNTS:
        # The coalescer's request-count collapse: a chunked read submits
        # O(chunks) byte runs, not O(elements) — the canonical read's
        # per-element view runs are the contrast.
        assert cells[nprocs]["read_runs_chunked"] <= 64 * nprocs, cells[nprocs]
        if nprocs >= 4:
            # The read-gap acceptance bar (enforced against the committed
            # JSON by `make perfcheck`).
            assert cells[nprocs]["read_gap"] <= 1.3, cells[nprocs]
    benchmark.extra_info["write_speedup_4p"] = round(
        cells[4]["write_speedup"], 2
    )
    benchmark.extra_info["write_speedup_8p"] = round(
        cells[8]["write_speedup"], 2
    )
    benchmark.extra_info["read_gap_4p"] = round(cells[4]["read_gap"], 2)
    benchmark.extra_info["read_gap_8p"] = round(cells[8]["read_gap"], 2)
