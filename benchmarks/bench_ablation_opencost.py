"""Ablation: file-open/view cost sensitivity of the organization levels.

The paper argues level 3 exists for file systems where opens are expensive:
"if a file system has high file-open and file-close costs, and an
application generates a high file-view cost, ... SDM can generate a very
small number of files."  On the Origin2000 the levels barely differ
(Figure 6); this ablation reruns Figure 6 on the ``high_open_cost`` machine
profile and shows the gap opening up.
"""

import pytest

from repro.bench.figures import run_fig6
from repro.config import high_open_cost, origin2000

NPROCS = 32
CELLS = 12


@pytest.mark.benchmark(group="ablation-opencost")
def test_level3_wins_big_when_opens_are_expensive(benchmark, report):
    def run_both():
        cheap = run_fig6(nprocs=NPROCS, cells=CELLS, machine=origin2000())
        cheap.title = "Ablation (open cost) - baseline Origin2000 opens"
        costly = run_fig6(nprocs=NPROCS, cells=CELLS, machine=high_open_cost())
        costly.title = "Ablation (open cost) - expensive opens/views"
        for row in cheap.rows + costly.rows:
            row.experiment = "ablation-opencost"
            row.paper_value = None
            row.note = "fig6 workload under two open-cost profiles"
        return cheap, costly

    cheap, costly = benchmark.pedantic(run_both, rounds=1, iterations=1)
    report(cheap)
    report(costly)

    gap_cheap = cheap.value("level3", "write") / cheap.value("level1", "write")
    gap_costly = costly.value("level3", "write") / costly.value("level1", "write")
    # On the Origin2000 the levels are close...
    assert gap_cheap < 1.25
    # ...with expensive opens, level 3's few files win big.
    assert gap_costly > 1.5
    assert gap_costly > 1.5 * gap_cheap

    benchmark.extra_info["L3_over_L1_cheap_opens"] = round(gap_cheap, 2)
    benchmark.extra_info["L3_over_L1_costly_opens"] = round(gap_costly, 2)
