"""Figure 7: RT write bandwidth — original vs SDM, 32 vs 64 processes.

Regenerates the six bars and asserts the paper's findings:

* porting to SDM raises write bandwidth several-fold over the original's
  strictly sequential writes;
* level 1 vs level 2/3 barely matters (low open costs);
* going from 32 to 64 processes *reduces* bandwidth (smaller per-process
  buffers -> more per-request overhead) — "clearly, there is an optimal
  buffer size".
"""

import pytest

from repro.bench.figures import run_fig7

CELLS = 16


@pytest.mark.benchmark(group="fig7")
def test_fig7_rt_bandwidth(benchmark, report):
    table = benchmark.pedantic(
        run_fig7, kwargs=dict(proc_counts=(32, 64), cells=CELLS),
        rounds=1, iterations=1,
    )
    report(table)

    def bw(config, p):
        return table.value(f"{config}/P{p}", "write")

    for p in (32, 64):
        # SDM beats the original by the paper's kind of factor (>4x).
        assert bw("level1", p) > 4.0 * bw("original", p)
        assert bw("level23", p) > 4.0 * bw("original", p)
        # Organization barely matters here.
        assert abs(bw("level23", p) - bw("level1", p)) / bw("level1", p) < 0.15
    # More processes, smaller buffers, lower bandwidth.
    assert bw("level1", 64) < bw("level1", 32)
    assert bw("level23", 64) < bw("level23", 32)
    # The original sits in the paper's ~10-15 MB/s band.
    assert 5.0 < bw("original", 32) < 25.0
    assert 5.0 < bw("original", 64) < 25.0

    benchmark.extra_info["original_P32_MBps"] = round(bw("original", 32), 1)
    benchmark.extra_info["sdm_L1_P32_MBps"] = round(bw("level1", 32), 1)
    benchmark.extra_info["sdm_L1_P64_MBps"] = round(bw("level1", 64), 1)
