"""Figure 5: FUN3D import + index-distribution times, three configurations.

Regenerates the paper's stacked bars — (Original) / SDM (Without History) /
SDM (With History), each split into ``index distri.`` and ``import`` — at a
ratio-preserving scale on 64 simulated ranks, and asserts the paper's
qualitative findings:

* the original (rank-0 I/O + broadcast, two-pass edge read) is the slowest;
* SDM's parallel import beats the original's by a wide margin;
* the history file cuts both the index distribution (contiguous read
  replaces ring communication + examination) and the import (edges need
  not be read at all).
"""

import pytest

from repro.bench.figures import run_fig5

NPROCS = 64
CELLS = 16


@pytest.mark.benchmark(group="fig5")
def test_fig5_partition_and_import(benchmark, report):
    table = benchmark.pedantic(
        run_fig5, kwargs=dict(nprocs=NPROCS, cells=CELLS), rounds=1, iterations=1
    )
    report(table)

    orig_total = table.value("original", "total")
    cold_total = table.value("sdm_no_history", "total")
    warm_total = table.value("sdm_with_history", "total")

    # Orderings of the paper's bars.
    assert warm_total < cold_total < orig_total
    # SDM import (parallel MPI-IO) crushes rank-0 + broadcast.
    assert table.value("sdm_no_history", "import") < 0.5 * table.value(
        "original", "import"
    )
    # History removes the edge read: import drops further.
    assert table.value("sdm_with_history", "import") < table.value(
        "sdm_no_history", "import"
    )
    # Single-pass realloc (+ ring) beats the original's two passes.
    assert table.value("sdm_no_history", "index_distri") < table.value(
        "original", "index_distri"
    )
    # History turns index distribution into a contiguous read.
    assert table.value("sdm_with_history", "index_distri") < 0.5 * table.value(
        "sdm_no_history", "index_distri"
    )

    benchmark.extra_info["original_total_s"] = round(orig_total, 3)
    benchmark.extra_info["sdm_no_history_total_s"] = round(cold_total, 3)
    benchmark.extra_info["sdm_with_history_total_s"] = round(warm_total, 3)
