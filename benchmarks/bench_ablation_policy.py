"""Ablation: the self-tuning policy tier vs every static setting.

Each of the three feedback loops :mod:`repro.core.policy` closes is
benched against a grid of static settings of the knob it replaces.  The
acceptance bar (enforced against the committed ``BENCH_policy.json`` by
``benchmarks/perfcheck_policy.py``): the adaptive policy must be at
least as good as the *best* static setting on its own case, and beat the
*default* static setting by more than 5% on at least one case.  A static
number can win one regime; the point of the tier is that no static
number wins them all.

* **planner** — a mixed query workload where both a hash bucket and an
  ordered slice can serve every WHERE, sized so the static cost model's
  2.0x slice-penalty picks the wrong path on one family and a
  slice-friendly 0.5x picks wrong on the other.  The calibrated planner
  measures both paths (exploration), learns the true per-candidate
  ratio, and converges to the right pick on each family.  Metric: total
  ``n_rows_examined`` (deterministic — plan choice is exactly what it
  counts).
* **gap** — a two-phase read workload: phase A's views leave small
  (~320 B) holes worth bridging, phase B's leave 8 KiB holes that cost
  more to read-and-discard than the run overhead they save.  No static
  ``coalesce_gap`` wins both phases; the adaptive sentinel derives each
  read's gap from its own hole distribution.  Metric: critical-path
  virtual seconds of the two read phases.
* **maintenance** — a chunked instance (block-shuffled irregular write
  maps) read cold over and over through contiguous foreign views — the
  successive-analysis-jobs pattern, so every read pays the chunk index
  resolution (index blocks as large as the data) a canonical instance
  simply does not have.  The static tier stays chunked forever; the
  adaptive tier promotes the instance to background reorganization
  after ``promote_reads`` reads and the remaining reads run at
  canonical speed.  Metric: critical-path virtual seconds of the read
  loop.

Set ``POLICY_BENCH_JSON=<path>`` (the Makefile's ``bench-policy``
target points it at ``BENCH_policy.json``) to emit the matrix as JSON
for cross-PR tracking.
"""

import json
import os
from dataclasses import asdict

import numpy as np
import pytest

from repro.bench.harness import ResultTable
from repro.config import origin2000
from repro.core import SDM, Organization, sdm_services
from repro.core.layout import CANONICAL, CHUNKED
from repro.core.policy import PlannerCalibration
from repro.dtypes import DOUBLE
from repro.metadb import Database
from repro.mpi import mpirun
from repro.mpiio.runs import ADAPTIVE_GAP

# ---------------------------------------------------------------------------
# 1. planner calibration
# ---------------------------------------------------------------------------

PLANNER_GRID = (0.5, 2.0, 8.0)
PLANNER_DEFAULT = 2.0
PLANNER_QUERIES = 600
"""Interleaved queries, half per family — long enough that the
calibration's bounded exploration phase (24 observations per path)
amortizes to noise."""

# Family A: hash bucket 380 rows, ordered slice 200 rows.  The true
# per-candidate costs are near-equal (both paths verify every candidate
# against the same WHERE), so the slice is genuinely cheaper — but the
# static 2.0x penalty prices it at 400 and picks the hash.
_A_BOTH, _A_HASH_ONLY = 200, 180
# Family B: hash bucket 180 rows, ordered slice 300 rows.  The hash is
# genuinely cheaper — but a slice-friendly static 0.5x prices the slice
# at 150 and picks it.
_B_BOTH, _B_SLICE_ONLY = 180, 120
_GROUPS = 4


def _build_planner_db():
    db = Database()
    db.execute("CREATE TABLE t (a TEXT, b TEXT, v INTEGER)")
    filler = iter(range(10**9))

    def insert(a, b):
        db.execute("INSERT INTO t VALUES (?, ?, ?)", (a, b, next(filler)))

    for g in range(_GROUPS):
        for _ in range(_A_BOTH):
            insert(f"A{g}", f"a{g}")
        for _ in range(_A_HASH_ONLY):
            insert(f"A{g}", f"fill{next(filler)}")
        for _ in range(_B_BOTH):
            insert(f"B{g}", f"b{g}")
        for _ in range(_B_SLICE_ONLY):
            insert(f"fill{next(filler)}", f"b{g}")
    db.create_index("t", ("a",), "hash")
    db.create_index("t", ("b",), "ordered")
    return db


def _planner_workload(db):
    """Run the interleaved two-family workload; returns rows examined."""
    before = db.n_rows_examined
    sql = "SELECT v FROM t WHERE a = ? AND b = ?"
    for i in range(PLANNER_QUERIES // 2):
        g = i % _GROUPS
        rows = db.execute(sql, (f"A{g}", f"a{g}"))
        assert len(rows) == _A_BOTH
        rows = db.execute(sql, (f"B{g}", f"b{g}"))
        assert len(rows) == _B_BOTH
    return db.n_rows_examined - before


def run_planner_case():
    cells = {"static": {}, }
    for cost in PLANNER_GRID:
        db = _build_planner_db()
        db.slice_row_cost = cost
        cells["static"][str(cost)] = _planner_workload(db)
    db = _build_planner_db()
    cal = PlannerCalibration()
    db.planner_calibration = cal
    cells["adaptive"] = _planner_workload(db)
    cells["learned_slice_row_cost"] = round(cal.slice_row_cost, 3)
    cells["converged"] = cal.converged
    cells["best_static"] = min(cells["static"].values())
    cells["default_static"] = cells["static"][str(PLANNER_DEFAULT)]
    # Rows examined: lower is better, so the win is static/adaptive.
    cells["win_vs_best_static"] = cells["best_static"] / cells["adaptive"]
    cells["win_vs_default"] = cells["default_static"] / cells["adaptive"]
    return cells


# ---------------------------------------------------------------------------
# 2. adaptive coalesce_gap
# ---------------------------------------------------------------------------

GAP_GRID = (0, 64, 8192, 262144)
GAP_DEFAULT = 0
GAP_RANKS = 4
_RUNS_PER_RANK = 256
_BLOCK = 200            # elements per wanted block (1600 B)
_HOLE_A = 40            # elements per phase-A hole (320 B — worth bridging)
_HOLE_B = 1024          # elements per phase-B hole (8 KiB — not worth it)


def _holey_view(rank, nprocs, n, block, hole):
    """``_RUNS_PER_RANK`` wanted blocks inside this rank's even region,
    each separated by ``hole`` unwanted elements."""
    region = n // nprocs
    base = rank * region
    starts = base + np.arange(_RUNS_PER_RANK) * (block + hole)
    return (starts[:, None] + np.arange(block)[None, :]).reshape(-1)


def run_gap_case():
    n_a = GAP_RANKS * _RUNS_PER_RANK * (_BLOCK + _HOLE_A)
    n_b = GAP_RANKS * _RUNS_PER_RANK * (_BLOCK + _HOLE_B)

    def run_cell(hints, policy):
        def program(ctx):
            sdm = SDM(ctx, "benchgap", organization=Organization.LEVEL_2,
                      storage_order=CANONICAL, io_hints=hints, policy=policy)
            result = sdm.make_datalist(["small_holes", "large_holes"])
            sdm.associate_attributes(result[:1], data_type=DOUBLE,
                                     global_size=n_a)
            sdm.associate_attributes(result[1:], data_type=DOUBLE,
                                     global_size=n_b)
            handle = sdm.set_attributes(result)
            out = []
            for name, n, hole, phase in (
                ("small_holes", n_a, _HOLE_A, "read-small-holes"),
                ("large_holes", n_b, _HOLE_B, "read-large-holes"),
            ):
                # Write the whole region (holes included) contiguously;
                # only the holey read views are measured.
                region = n // ctx.size
                full = np.arange(ctx.rank * region, (ctx.rank + 1) * region,
                                 dtype=np.int64)
                sdm.data_view(handle, name, full)
                sdm.write(handle, name, 0, full * 1.5 + 0.25)
                wanted = _holey_view(ctx.rank, ctx.size, n, _BLOCK, hole)
                sdm.data_view(handle, name, wanted)
                back = np.empty(len(wanted))
                with ctx.phase(phase):
                    sdm.read(handle, name, 0, back)
                np.testing.assert_allclose(back, wanted * 1.5 + 0.25)
                out.append(back[0])
            sdm.finalize(handle)
            return out

        job = mpirun(program, GAP_RANKS, machine=origin2000(),
                     services=sdm_services())
        small = job.phase_max("read-small-holes")
        large = job.phase_max("read-large-holes")
        return {"read_small": small, "read_large": large,
                "read_total": small + large}

    cells = {"static": {}}
    for gap in GAP_GRID:
        cells["static"][str(gap)] = run_cell({"coalesce_gap": gap}, "static")
    adaptive = run_cell(None, "adaptive")
    cells["adaptive"] = adaptive
    cells["best_static"] = min(
        c["read_total"] for c in cells["static"].values()
    )
    cells["default_static"] = cells["static"][str(GAP_DEFAULT)]["read_total"]
    cells["win_vs_best_static"] = (
        cells["best_static"] / adaptive["read_total"]
    )
    cells["win_vs_default"] = (
        cells["default_static"] / adaptive["read_total"]
    )
    return cells


# ---------------------------------------------------------------------------
# 3. self-driving maintenance (read-count promotion)
# ---------------------------------------------------------------------------

MAINT_RANKS = 4
MAINT_ELEMENTS = 131_072
_SHUFFLE_BLOCK = 8
MAINT_READS = 8
_THINK_TIME = 0.05
"""Virtual seconds of compute between reads — the window background
promotion needs to land off the critical path."""


def _block_shuffled_maps(nprocs, n, seed=11):
    """Irregular write maps: each rank owns a random set of
    ``_SHUFFLE_BLOCK``-element blocks (whole blocks, so the gid set is
    genuinely non-arithmetic and every chunk stores a real index block).
    Chunked order scatters every contiguous foreign view across all
    chunks — the read pattern that pays index resolution on every cold
    read."""
    rng = np.random.default_rng(seed)
    blocks = rng.permutation(n // _SHUFFLE_BLOCK)
    return [
        (
            blocks[r::nprocs][:, None] * _SHUFFLE_BLOCK
            + np.arange(_SHUFFLE_BLOCK)[None, :]
        ).reshape(-1)
        for r in range(nprocs)
    ]


def run_maintenance_case():
    maps = _block_shuffled_maps(MAINT_RANKS, MAINT_ELEMENTS)

    def run_cell(policy):
        def program(ctx):
            sdm = SDM(ctx, "benchpol", organization=Organization.LEVEL_2,
                      storage_order=CHUNKED, reorganize_mode="background",
                      policy=policy)
            result = sdm.make_datalist(["d"])
            sdm.associate_attributes(result, data_type=DOUBLE,
                                     global_size=MAINT_ELEMENTS)
            handle = sdm.set_attributes(result)
            mine = maps[ctx.rank]
            sdm.data_view(handle, "d", mine)
            sdm.write(handle, "d", 0, mine * 0.5 + 1.0)
            fname = sdm.checkpoint_file(handle, "d", 0,
                                        storage_order=CHUNKED)
            # The hot read path: a contiguous foreign share, read cold
            # every round (each round models a fresh analysis job, so
            # the warm index-block cache cannot hide the chunked
            # instance's resolution traffic).
            region = MAINT_ELEMENTS // ctx.size
            share = np.arange(ctx.rank * region, (ctx.rank + 1) * region,
                              dtype=np.int64)
            sdm.data_view(handle, "d", share)
            back = np.empty(len(share))
            for _ in range(MAINT_READS):
                sdm.invalidate_chunked_caches(fname)
                with ctx.phase("read-loop"):
                    sdm.read(handle, "d", 0, back)
                np.testing.assert_allclose(back, share * 0.5 + 1.0)
                ctx.proc.hold(_THINK_TIME)
            sdm.drain_maintenance()
            pol = sdm._maint_policy
            n_promotions = 0 if pol is None else pol.n_promotions
            sdm.finalize(handle)
            return n_promotions

        job = mpirun(program, MAINT_RANKS, machine=origin2000(),
                     services=sdm_services())
        return {"read_loop": job.phase_max("read-loop"),
                "n_promotions": job.values[0]}

    cells = {"static": run_cell("static"), "adaptive": run_cell("adaptive")}
    cells["best_static"] = cells["static"]["read_loop"]
    cells["default_static"] = cells["static"]["read_loop"]
    cells["win_vs_best_static"] = (
        cells["best_static"] / cells["adaptive"]["read_loop"]
    )
    cells["win_vs_default"] = cells["win_vs_best_static"]
    return cells


# ---------------------------------------------------------------------------


def run_matrix():
    table = ResultTable(
        "Ablation (policy) - self-tuning loops vs every static setting"
    )
    planner = run_planner_case()
    for cost, rows in planner["static"].items():
        table.add("ablation-policy", f"planner-static/{cost}x",
                  "rows-examined", float(rows), "rows")
    table.add("ablation-policy", "planner-adaptive",
              "rows-examined", float(planner["adaptive"]), "rows")
    table.add("ablation-policy", "planner-win-vs-best-static",
              "ratio", planner["win_vs_best_static"], "x")

    gap = run_gap_case()
    for g, cell in gap["static"].items():
        table.add("ablation-policy", f"gap-static/{g}B",
                  "virtual-time", cell["read_total"], "s")
    table.add("ablation-policy", "gap-adaptive",
              "virtual-time", gap["adaptive"]["read_total"], "s")
    table.add("ablation-policy", "gap-win-vs-best-static",
              "ratio", gap["win_vs_best_static"], "x")

    maint = run_maintenance_case()
    table.add("ablation-policy", "maintenance-static",
              "virtual-time", maint["static"]["read_loop"], "s")
    table.add("ablation-policy", "maintenance-adaptive",
              "virtual-time", maint["adaptive"]["read_loop"], "s")
    table.add("ablation-policy", "maintenance-win-vs-static",
              "ratio", maint["win_vs_best_static"], "x")
    return table, {"planner": planner, "gap": gap, "maintenance": maint}


def _round(obj):
    if isinstance(obj, dict):
        return {k: _round(v) for k, v in obj.items()}
    if isinstance(obj, float):
        return round(obj, 6)
    if isinstance(obj, (bool, int, str)):
        return obj
    return obj


def _emit_json(table, cases):
    """Write the matrix to $POLICY_BENCH_JSON for cross-PR tracking."""
    path = os.environ.get("POLICY_BENCH_JSON")
    if not path:
        return
    doc = {
        "benchmark": "ablation-policy",
        "planner_queries": PLANNER_QUERIES,
        "gap_ranks": GAP_RANKS,
        "maintenance_ranks": MAINT_RANKS,
        "maintenance_reads": MAINT_READS,
        "rows": [asdict(row) for row in table.rows],
        "cases": _round(cases),
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")


@pytest.mark.benchmark(group="ablation-policy")
def test_adaptive_policies_beat_every_static_setting(benchmark, report):
    table, cases = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    report(table)
    _emit_json(table, cases)
    # Each loop: at least as good as the best static setting of its knob.
    for name, case in cases.items():
        assert case["win_vs_best_static"] >= 1.0, (name, case)
    # And the tier must actually matter: >5% over the shipped defaults
    # on at least one loop.
    assert max(c["win_vs_default"] for c in cases.values()) > 1.05, cases
    # The maintenance win comes from the promotion actually firing.
    assert cases["maintenance"]["adaptive"]["n_promotions"] == 1, cases
    assert cases["maintenance"]["static"]["n_promotions"] == 0, cases
    # The planner's exploration must have converged (plans are stable).
    assert cases["planner"]["converged"], cases["planner"]
    benchmark.extra_info["planner_win"] = round(
        cases["planner"]["win_vs_best_static"], 3
    )
    benchmark.extra_info["gap_win"] = round(
        cases["gap"]["win_vs_best_static"], 3
    )
    benchmark.extra_info["maintenance_win"] = round(
        cases["maintenance"]["win_vs_best_static"], 3
    )
