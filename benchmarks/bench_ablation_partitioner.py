"""Ablation: partitioning-vector quality drives SDM's costs.

The paper assumes a MeTis vector; this bench quantifies why.  For the
multilevel (METIS-like), block, and random partitioners it reports:

* edge cut and total ghost nodes (communication-volume proxies),
* replicated (ghost) edges — directly the extra import volume SDM moves,
* the measured ghost-update exchange time in a simulated job.
"""

import numpy as np
import pytest

from repro.apps.fun3d.kernel import edge_sweep, localize, update_ghosts
from repro.bench.harness import ResultTable, scaled_machine
from repro.bench.figures import PAPER
from repro.config import origin2000
from repro.mesh import fun3d_like_problem
from repro.mpi import mpirun
from repro.partition import (
    Graph,
    block_partition,
    edge_cut,
    ghost_stats,
    multilevel_kway,
    random_partition,
)

NPROCS = 32
CELLS = 14


def run_partitioner_comparison():
    problem = fun3d_like_problem(CELLS)
    mesh = problem.mesh
    g = Graph.from_edges(mesh.n_nodes, mesh.edge1, mesh.edge2)
    scale = PAPER["fun3d_edges"] / mesh.n_edges
    machine = scaled_machine(origin2000(), scale)
    table = ResultTable(
        f"Ablation (partitioner) - vector quality -> SDM costs "
        f"(P={NPROCS}, {mesh.n_edges} edges)"
    )

    vectors = {
        "multilevel": multilevel_kway(g, NPROCS, seed=1),
        "block": block_partition(mesh.n_nodes, NPROCS),
        "random": random_partition(mesh.n_nodes, NPROCS, seed=1),
    }
    x_glob = problem.edge_arrays["xe0"]
    y_glob = problem.node_arrays["yn0"]

    results = {}
    for name, part in vectors.items():
        cut = edge_cut(g, part)
        stats = ghost_stats(mesh.edge1, mesh.edge2, part, NPROCS)

        def program(ctx, part=part):
            keep = (part[mesh.edge1] == ctx.rank) | (part[mesh.edge2] == ctx.rank)
            le1, le2 = mesh.edge1[keep], mesh.edge2[keep]
            owned = np.flatnonzero(part == ctx.rank)
            node_map = np.union1d(
                owned,
                np.unique(np.concatenate([le1, le2])) if keep.any() else owned,
            )
            e1l, e2l = localize(node_map, le1), localize(node_map, le2)
            p, q = edge_sweep(e1l, e2l, x_glob[keep], y_glob[node_map], ctx)
            t0 = ctx.now
            update_ghosts(ctx, node_map, part, p, q)
            return ctx.now - t0

        job = mpirun(program, NPROCS, machine=machine)
        exchange = max(job.values)
        results[name] = dict(cut=cut, ghosts=stats.total_ghosts,
                             replicated=stats.replicated_edges,
                             exchange=exchange)
        table.add("ablation-partitioner", name, "edge_cut", cut, "edges")
        table.add("ablation-partitioner", name, "ghost_nodes",
                  stats.total_ghosts, "nodes")
        table.add("ablation-partitioner", name, "replicated_edges",
                  stats.replicated_edges, "edges")
        table.add("ablation-partitioner", name, "ghost_exchange",
                  exchange, "s")
    return table, results


@pytest.mark.benchmark(group="ablation-partitioner")
def test_multilevel_vector_minimizes_sdm_costs(benchmark, report):
    table, results = benchmark.pedantic(
        run_partitioner_comparison, rounds=1, iterations=1
    )
    report(table)
    ml, blk, rnd = results["multilevel"], results["block"], results["random"]
    # Cut and ghost ordering: multilevel <= block << random.
    assert ml["cut"] <= blk["cut"]
    assert blk["cut"] < rnd["cut"]
    assert ml["ghosts"] <= blk["ghosts"]
    assert blk["ghosts"] < rnd["ghosts"]
    # And the exchange time follows the ghost volume.
    assert ml["exchange"] < rnd["exchange"]
    benchmark.extra_info["cut_multilevel"] = int(ml["cut"])
    benchmark.extra_info["cut_block"] = int(blk["cut"])
    benchmark.extra_info["cut_random"] = int(rnd["cut"])
