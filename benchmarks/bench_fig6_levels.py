"""Figure 6: FUN3D checkpoint write/read bandwidth under levels 1/2/3.

Regenerates the six bars (write and read for each file organization) on 64
simulated ranks and asserts the paper's findings for the Origin2000:

* level 3 (fewest files) is best, level 1 worst — but the differences are
  small, "because the file-open cost is small" on this machine;
* reads outrun writes.
"""

import pytest

from repro.bench.figures import run_fig6

NPROCS = 64
CELLS = 16


@pytest.mark.benchmark(group="fig6")
def test_fig6_file_organizations(benchmark, report):
    table = benchmark.pedantic(
        run_fig6, kwargs=dict(nprocs=NPROCS, cells=CELLS), rounds=1, iterations=1
    )
    report(table)

    w = {lvl: table.value(lvl, "write") for lvl in ("level1", "level2", "level3")}
    r = {lvl: table.value(lvl, "read") for lvl in ("level1", "level2", "level3")}

    # Ordering: fewer files, (slightly) better bandwidth.
    assert w["level1"] <= w["level2"] <= w["level3"]
    assert r["level1"] <= r["level2"] <= r["level3"]
    # ... but the difference is small on the Origin2000 (paper: "not
    # significant because the file-open cost is small").
    assert w["level3"] / w["level1"] < 1.25
    assert r["level3"] / r["level1"] < 1.25
    # Reads beat writes at every level.
    for lvl in w:
        assert r[lvl] > w[lvl]
    # Magnitudes live on the paper's axis (tens to ~150 MB/s).
    for v in list(w.values()) + list(r.values()):
        assert 40.0 < v < 200.0

    benchmark.extra_info.update(
        {f"write_{k}_MBps": round(v, 1) for k, v in w.items()}
    )
    benchmark.extra_info.update(
        {f"read_{k}_MBps": round(v, 1) for k, v in r.items()}
    )
