"""Guard the fault-injection machinery's zero-overhead claim.

The crash-tolerance tier must be free when nothing is injected: with no
:class:`FaultPlan` installed a ``fault_point`` is one attribute test,
lease heartbeats are single local UPDATEs issued only inside flips, and
pin touches are throttled to zero statements in short jobs.  This check
runs the same chunked write/reorganize/read workload twice — once with
``fault_plan=None``, once under an observe-only plan that records every
fault-point hit — and fails if the two runs differ in *any* of:

* virtual elapsed time,
* database statements issued,
* point-to-point message count and payload bytes,
* per-op collective counts and payload bytes.

Run directly (no JSON input; the workload is seconds)::

    python benchmarks/perfcheck_faults.py
"""

import sys

import numpy as np

from repro.config import fast_test
from repro.core import SDM, Organization, sdm_services
from repro.core.layout import CHUNKED
from repro.dtypes import DOUBLE
from repro.mpi import mpirun
from repro.simt import FaultPlan

NPROCS = 4
GLOBAL = 64
TIMESTEPS = 3


def maps_for(nprocs=NPROCS, n=GLOBAL):
    rng = np.random.default_rng(11)
    perm = rng.permutation(n)
    cuts = np.sort(rng.choice(np.arange(1, n), nprocs - 1, replace=False))
    return [p.astype(np.int64) for p in np.split(perm, cuts)]


def program(ctx, maps):
    sdm = SDM(ctx, "pf", organization=Organization.LEVEL_2,
              storage_order=CHUNKED, reorganize_mode="sync", snapshot=True)
    result = sdm.make_datalist(["d"])
    sdm.associate_attributes(result, data_type=DOUBLE, global_size=GLOBAL)
    handle = sdm.set_attributes(result)
    mine = maps[ctx.rank]
    sdm.data_view(handle, "d", mine)
    for t in range(TIMESTEPS):
        sdm.write(handle, "d", t, mine * 1.0 + t)
    sdm.reorganize(handle, "d", 0)
    back = np.empty(len(mine))
    for t in range(TIMESTEPS):
        sdm.read(handle, "d", t, back)
    sdm.finalize(handle)
    # Same program point both runs: the counters are comparable.
    return ctx.comm.transport.stats() if ctx.rank == 0 else None


def measure(fault_plan):
    maps = maps_for()
    job = mpirun(lambda ctx: program(ctx, maps), NPROCS,
                 machine=fast_test(), services=sdm_services(),
                 fault_plan=fault_plan)
    return {
        "elapsed": job.elapsed,
        "db_statements": job.services["db"].n_statements,
        "transport": job.values[0],
        "fault_log_len": len(job.fault_log),
    }


def main() -> int:
    off = measure(None)
    on = measure(FaultPlan.observe())
    failures = []
    if off["fault_log_len"] != 0:
        failures.append("fault log recorded without a plan installed")
    if on["fault_log_len"] == 0:
        failures.append("observe plan recorded no fault-point hits")
    for key in ("elapsed", "db_statements", "transport"):
        match = off[key] == on[key]
        status = "ok" if match else "FAIL"
        print(f"perfcheck: faults-off {key} = {off[key]!r}")
        print(f"perfcheck: faults-obs {key} = {on[key]!r} {status}")
        if not match:
            failures.append(
                f"{key} differs between plan=None and observe-only runs "
                "(fault instrumentation is not free)"
            )
    print(f"perfcheck: observe run recorded {on['fault_log_len']} "
          "fault-point hits at zero cost")
    if failures:
        for f in failures:
            print(f"perfcheck: FAIL {f}", file=sys.stderr)
        return 1
    print("perfcheck: fault machinery adds zero traffic when idle")
    return 0


if __name__ == "__main__":
    sys.exit(main())
