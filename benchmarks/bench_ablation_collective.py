"""Ablation: collective (two-phase) vs independent I/O for interleaved data.

SDM's entire performance story rests on handing noncontiguous interleaved
accesses to collective MPI-IO.  This bench writes a global array whose
elements are owned round-robin by rank (element-level interleaving — the
file layout "ordered by global node numbers" when ownership is scattered)
through three code paths:

* ``write_at_all`` — two-phase collective, what SDM emits;
* ``write_at`` on a RDWR handle — independent with data-sieving
  read-modify-write (lock-serialized, as ROMIO must);
* ``write_at`` on a WRONLY handle — independent, one request per run.

No time dilation: the pattern is synthetic, so it runs at true scale and
the factors are the machine model's own.
"""

import numpy as np
import pytest

from repro.bench.harness import ResultTable
from repro.config import origin2000
from repro.core import sdm_services
from repro.dtypes import FLOAT64, Contiguous
from repro.mpi import mpirun
from repro.mpiio import File, MODE_CREATE, MODE_RDWR, MODE_WRONLY

MB = 1024.0 * 1024.0
NPROCS = 8
ELEMENTS_PER_RANK = 4096
"""Each rank owns this many 8-byte elements, strided by NPROCS in the file."""


def run_paths():
    machine = origin2000()
    table = ResultTable(
        f"Ablation (collective vs independent) - element-interleaved writes "
        f"(P={NPROCS}, {ELEMENTS_PER_RANK} elems/rank)"
    )

    def make_program(mode_name):
        def program(ctx):
            fs = ctx.service("fs")
            amode = (
                MODE_CREATE | MODE_WRONLY
                if mode_name == "independent_wronly"
                else MODE_CREATE | MODE_RDWR
            )
            f = File.open(ctx.comm, fs, "inter.dat", amode)
            # Element k of this rank lives at global element k*P + rank.
            ft = Contiguous(1, FLOAT64).with_extent(8 * ctx.size)
            f.set_view(disp=8 * ctx.rank, etype=FLOAT64, filetype=ft)
            data = np.arange(ELEMENTS_PER_RANK, dtype=np.float64) + ctx.rank
            t0 = ctx.now
            if mode_name == "collective":
                f.write_at_all(0, data)
            else:
                f.write_at(0, data)
                ctx.comm.barrier()
            dt = ctx.now - t0
            f.close()
            return dt

        return program

    total_bytes = NPROCS * ELEMENTS_PER_RANK * 8
    results = {}
    for mode in ("collective", "independent_rdwr", "independent_wronly"):
        job = mpirun(make_program(mode), NPROCS, machine=machine,
                     services=sdm_services())
        bw = total_bytes / max(job.values) / MB
        results[mode] = bw
        table.add("ablation-collective", mode, "write", bw, "MB/s")
        # Correctness: the interleaved file must be exactly right either way.
        fs = job.services["fs"]
        whole = fs.lookup("inter.dat").store.read(0, total_bytes).view(np.float64)
        expect = np.empty(NPROCS * ELEMENTS_PER_RANK)
        for r in range(NPROCS):
            expect[r::NPROCS] = np.arange(ELEMENTS_PER_RANK) + r
        np.testing.assert_array_equal(whole, expect)
    return table, results


@pytest.mark.benchmark(group="ablation-collective")
def test_collective_io_is_the_enabler(benchmark, report):
    table, results = benchmark.pedantic(run_paths, rounds=1, iterations=1)
    report(table)
    # Two-phase collective crushes both independent paths by an order of
    # magnitude on element-interleaved data.
    assert results["collective"] > 10.0 * results["independent_rdwr"]
    assert results["collective"] > 10.0 * results["independent_wronly"]
    benchmark.extra_info.update({k: round(v, 2) for k, v in results.items()})
