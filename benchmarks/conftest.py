"""Shared benchmark infrastructure.

Benchmarks record their :class:`~repro.bench.harness.ResultTable` objects
through the ``report`` fixture; a terminal-summary hook prints every table
after the pytest-benchmark timing block, so ``pytest benchmarks/
--benchmark-only`` output ends with the paper-reproduction tables.
"""

from typing import List

import pytest

from repro.bench.harness import ResultTable

_TABLES: List[ResultTable] = []


@pytest.fixture()
def report():
    """Callable fixture: benchmarks pass tables to be printed at the end."""

    def _record(table: ResultTable) -> ResultTable:
        _TABLES.append(table)
        return table

    return _record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLES:
        return
    terminalreporter.section("paper reproduction results")
    for table in _TABLES:
        terminalreporter.write_line("")
        terminalreporter.write_line(table.render())
    terminalreporter.write_line("")
