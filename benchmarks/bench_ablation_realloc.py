"""Ablation: single-pass realloc edge reading vs two-pass count-then-store.

The paper credits part of SDM's lower ``index distri.`` cost to replacing
the original's two passes over the edge list ("one step to determine the
amount of memory ... and the other step to actually read the edges") with
growable buffers extended "dynamically as needed (using C function
realloc)".  This bench isolates exactly that choice: the same distributed
edge filtering run with

* ``growable`` — one examination pass, capacity-doubling appends (SDM), and
* ``two_pass`` — a counting pass plus a storing pass (the original),

on the Figure 5 problem, reporting the pure index-distribution time of
each.  The growth copies are charged too, showing the amortized-doubling
overhead is far below a second full pass.
"""

import numpy as np
import pytest

from repro.bench.harness import ResultTable, scaled_machine
from repro.bench.figures import PAPER, _fun3d_setup
from repro.config import origin2000
from repro.core.growable import GrowableArray
from repro.core.ring import _EXAMINE_OPS_PER_EDGE, EdgeChunk, ring_partition_index
from repro.mpi import mpirun

NPROCS = 64
CELLS = 14


def run_comparison():
    problem, part = _fun3d_setup(CELLS, NPROCS)
    mesh = problem.mesh
    scale = PAPER["fun3d_edges"] / mesh.n_edges
    machine = scaled_machine(origin2000(), scale)
    table = ResultTable(
        f"Ablation (realloc) - 1-pass growable vs 2-pass count-then-store "
        f"(P={NPROCS}, {mesh.n_edges} edges, scale x{scale:.0f})"
    )

    def chunk_for(ctx):
        counts = np.full(ctx.size, mesh.n_edges // ctx.size)
        counts[: mesh.n_edges % ctx.size] += 1
        start = int(counts[: ctx.rank].sum())
        end = start + int(counts[ctx.rank])
        return EdgeChunk(edge1=mesh.edge1[start:end],
                         edge2=mesh.edge2[start:end], gid_start=start)

    def growable_prog(ctx):
        t0 = ctx.now
        local = ring_partition_index(ctx, part, chunk_for(ctx))
        return ctx.now - t0, local.n_local_edges

    def two_pass_prog(ctx):
        """Same ring traffic, but each held chunk is examined twice: once
        to count, once to store into an exact-size allocation."""
        compute = ctx.machine.compute
        chunk = chunk_for(ctx)
        e1 = np.ascontiguousarray(chunk.edge1, dtype=np.int32)
        e2 = np.ascontiguousarray(chunk.edge2, dtype=np.int32)
        starts = ctx.comm.allgather(chunk.gid_start)
        t0 = ctx.now
        kept = []
        for step in range(ctx.size):
            holder = (ctx.rank - step) % ctx.size
            if len(e1):
                # Pass 1: count.
                ctx.proc.hold(compute.elements(len(e1), _EXAMINE_OPS_PER_EDGE))
                keep = (part[e1.astype(np.int64)] == ctx.rank) | (
                    part[e2.astype(np.int64)] == ctx.rank
                )
                n = int(keep.sum())
                # Pass 2: store into the exact allocation.
                ctx.proc.hold(compute.elements(len(e1), _EXAMINE_OPS_PER_EDGE))
                if n:
                    kept.append(starts[holder] + np.flatnonzero(keep))
            if ctx.size > 1:
                e1, e2 = ctx.comm.ring_shift((e1, e2))
        total = int(sum(len(k) for k in kept))
        ctx.proc.hold(compute.elements(max(total, 1), 2.0))  # sort pass
        return ctx.now - t0, total

    job_grow = mpirun(growable_prog, NPROCS, machine=machine)
    job_two = mpirun(two_pass_prog, NPROCS, machine=machine)
    t_grow = max(dt for dt, _n in job_grow.values)
    t_two = max(dt for dt, _n in job_two.values)
    # Identical distribution outcomes.
    assert [n for _t, n in job_grow.values] == [n for _t, n in job_two.values]

    table.add("ablation-realloc", "growable_1pass", "index_distri", t_grow, "s")
    table.add("ablation-realloc", "two_pass", "index_distri", t_two, "s")
    table.add("ablation-realloc", "two_pass/growable", "ratio",
              t_two / t_grow, "x")
    return table, t_grow, t_two


@pytest.mark.benchmark(group="ablation-realloc")
def test_single_pass_growable_beats_two_pass(benchmark, report):
    table, t_grow, t_two = benchmark.pedantic(run_comparison, rounds=1,
                                              iterations=1)
    report(table)
    # One pass + amortized growth beats two full passes, but by less than
    # 2x (ring communication is common to both).
    assert t_grow < t_two
    assert t_two / t_grow < 2.5
    benchmark.extra_info["speedup"] = round(t_two / t_grow, 2)
