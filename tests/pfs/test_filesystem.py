"""FileSystem service: namespace, permissions, contention timing."""

import numpy as np
import pytest

from repro.config import fast_test, origin2000
from repro.errors import (
    AccessModeError,
    FileExists,
    FileNotFound,
    InvalidFileHandle,
    SimProcessCrashed,
)
from repro.pfs import FileSystem
from repro.pfs.file import RD, RDWR, WR
from repro.simt import Simulator


def run_one(fn, machine=None):
    """Run fn(proc, fs) in a one-process simulation, return (result, time)."""
    sim = Simulator()
    fs = FileSystem(sim, machine or fast_test())
    p = sim.spawn(fn, fs)
    t = sim.run()
    return p.result, t, fs


def test_create_open_write_read_roundtrip():
    data = np.arange(64, dtype=np.uint8)

    def fn(proc, fs):
        h = fs.open(proc, "a.dat", WR, create=True)
        fs.write_at(proc, h, 0, data)
        fs.close(proc, h)
        h = fs.open(proc, "a.dat", RD)
        out = fs.read_at(proc, h, 0, 64)
        fs.close(proc, h)
        return out

    result, _, fs = run_one(fn)
    np.testing.assert_array_equal(result, data)
    assert fs.lookup("a.dat").size == 64


def test_open_missing_raises():
    def fn(proc, fs):
        fs.open(proc, "ghost", RD)

    with pytest.raises(SimProcessCrashed) as ei:
        run_one(fn)
    assert isinstance(ei.value.__cause__, FileNotFound)


def test_create_exclusive_semantics():
    def fn(proc, fs):
        fs.create(proc, "f")
        fs.create(proc, "f")  # exist_ok defaults to False

    with pytest.raises(SimProcessCrashed) as ei:
        run_one(fn)
    assert isinstance(ei.value.__cause__, FileExists)


def test_write_on_readonly_handle_rejected():
    def fn(proc, fs):
        h = fs.open(proc, "f", RD, create=True)
        fs.write_at(proc, h, 0, np.zeros(4, dtype=np.uint8))

    with pytest.raises(SimProcessCrashed) as ei:
        run_one(fn)
    assert isinstance(ei.value.__cause__, AccessModeError)


def test_read_on_writeonly_handle_rejected():
    def fn(proc, fs):
        h = fs.open(proc, "f", WR, create=True)
        fs.read_at(proc, h, 0, 4)

    with pytest.raises(SimProcessCrashed) as ei:
        run_one(fn)
    assert isinstance(ei.value.__cause__, AccessModeError)


def test_closed_handle_rejected():
    def fn(proc, fs):
        h = fs.open(proc, "f", RDWR, create=True)
        fs.close(proc, h)
        fs.read_at(proc, h, 0, 1)

    with pytest.raises(SimProcessCrashed) as ei:
        run_one(fn)
    assert isinstance(ei.value.__cause__, InvalidFileHandle)


def test_unlink_removes_file():
    def fn(proc, fs):
        fs.create(proc, "gone")
        assert fs.exists("gone")
        fs.unlink(proc, "gone")
        return fs.exists("gone")

    result, _, _ = run_one(fn)
    assert result is False


def test_stat_reports_size_and_times():
    def fn(proc, fs):
        h = fs.open(proc, "s.dat", WR, create=True)
        proc.hold(5.0)
        fs.write_at(proc, h, 0, np.zeros(100, dtype=np.uint8))
        fs.close(proc, h)
        st = fs.stat(proc, "s.dat")
        return st

    st, _, _ = run_one(fn)
    assert st.size == 100
    assert st.mtime > st.ctime


def test_write_time_scales_with_bytes():
    machine = origin2000()

    def fn(proc, fs):
        h = fs.open(proc, "t.dat", WR, create=True)
        t0 = proc.now
        fs.write_at(proc, h, 0, np.zeros(1_000, dtype=np.uint8))
        t_small = proc.now - t0
        t0 = proc.now
        fs.write_at(proc, h, 0, np.zeros(10_000_000, dtype=np.uint8))
        t_big = proc.now - t0
        return t_small, t_big

    (t_small, t_big), _, _ = run_one(fn, machine)
    assert t_big > 50 * t_small


def test_reads_faster_than_writes_per_stream():
    machine = origin2000()
    n = 10_000_000

    def fn(proc, fs):
        h = fs.open(proc, "rw.dat", RDWR, create=True)
        t0 = proc.now
        fs.write_at(proc, h, 0, np.zeros(n, dtype=np.uint8))
        t_w = proc.now - t0
        t0 = proc.now
        fs.read_at(proc, h, 0, n)
        t_r = proc.now - t0
        return t_w, t_r

    (t_w, t_r), _, _ = run_one(fn, machine)
    assert t_r < t_w


def test_controller_contention_saturates_aggregate_bandwidth():
    """2x controllers of jobs: second wave queues, total time doubles."""
    machine = origin2000()
    nc = machine.storage.n_controllers
    nbytes = 5_000_000

    def writer(proc, fs, i):
        h = fs.open(proc, f"c{i}.dat", WR, create=True)
        fs.write_at(proc, h, 0, np.zeros(nbytes, dtype=np.uint8))
        return proc.now

    def run_jobs(njobs):
        sim = Simulator()
        fs = FileSystem(sim, machine)
        procs = [sim.spawn(writer, fs, i, name=f"w{i}") for i in range(njobs)]
        sim.run()
        return max(p.result for p in procs)

    t_fill = run_jobs(nc)        # exactly saturates: one wave
    t_double = run_jobs(2 * nc)  # two waves
    assert t_double > 1.7 * t_fill


def test_noncontiguous_runs_cost_more_than_contiguous():
    machine = origin2000()
    n_runs = 500

    def fn(proc, fs):
        h = fs.open(proc, "runs.dat", WR, create=True)
        data = np.zeros(n_runs * 8, dtype=np.uint8)
        t0 = proc.now
        fs.write_at(proc, h, 0, data)
        t_contig = proc.now - t0
        offsets = np.arange(n_runs, dtype=np.int64) * 64
        lengths = np.full(n_runs, 8, dtype=np.int64)
        t0 = proc.now
        fs.write(proc, h, offsets, lengths, data)
        t_scattered = proc.now - t0
        return t_contig, t_scattered

    (t_contig, t_scattered), _, _ = run_one(fn, machine)
    assert t_scattered > 2 * t_contig


def test_fs_counters_track_traffic():
    def fn(proc, fs):
        h = fs.open(proc, "cnt.dat", RDWR, create=True)
        fs.write_at(proc, h, 0, np.zeros(100, dtype=np.uint8))
        fs.read_at(proc, h, 0, 50)
        return None

    _, _, fs = run_one(fn)
    assert fs.bytes_written == 100
    assert fs.bytes_read == 50
    assert fs.n_requests == 2
    assert fs.n_opens == 1
