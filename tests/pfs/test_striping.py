"""StripeLayout arithmetic."""

import numpy as np
import pytest

from repro.pfs import StripeLayout


def test_stripe_and_controller_mapping():
    lay = StripeLayout(stripe_size=100, n_controllers=4)
    assert lay.stripe_of(0) == 0
    assert lay.stripe_of(99) == 0
    assert lay.stripe_of(100) == 1
    assert lay.controller_of(0) == 0
    assert lay.controller_of(399) == 3
    assert lay.controller_of(400) == 0


def test_stripes_spanned():
    lay = StripeLayout(stripe_size=100, n_controllers=4)
    assert lay.stripes_spanned(0, 0) == 0
    assert lay.stripes_spanned(0, 1) == 1
    assert lay.stripes_spanned(0, 100) == 1
    assert lay.stripes_spanned(0, 101) == 2
    assert lay.stripes_spanned(50, 100) == 2
    assert lay.stripes_spanned(99, 2) == 2


def test_controllers_spanned_caps_at_pool_size():
    lay = StripeLayout(stripe_size=10, n_controllers=4)
    assert lay.controllers_spanned(0, 1000) == 4
    assert lay.controllers_spanned(0, 15) == 2


def test_controllers_for_runs():
    lay = StripeLayout(stripe_size=10, n_controllers=4)
    hit = lay.controllers_for_runs([0, 20], [5, 5])  # stripes 0 and 2
    np.testing.assert_array_equal(hit, [0, 2])
    all_hit = lay.controllers_for_runs([0], [1000])
    np.testing.assert_array_equal(all_hit, [0, 1, 2, 3])


def test_invalid_layout_rejected():
    with pytest.raises(ValueError):
        StripeLayout(stripe_size=0, n_controllers=1)
    with pytest.raises(ValueError):
        StripeLayout(stripe_size=64, n_controllers=0)
