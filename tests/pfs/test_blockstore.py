"""ByteStore: real byte storage with vectored scatter/gather."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PFSError
from repro.pfs import ByteStore


def test_write_read_roundtrip():
    s = ByteStore()
    data = np.arange(100, dtype=np.uint8)
    s.write(10, data)
    np.testing.assert_array_equal(s.read(10, 100), data)
    assert s.size == 110


def test_read_unwritten_returns_zeros():
    s = ByteStore()
    s.write(0, np.ones(10, dtype=np.uint8))
    out = s.read(5, 20)
    np.testing.assert_array_equal(out[:5], np.ones(5, dtype=np.uint8))
    np.testing.assert_array_equal(out[5:], np.zeros(15, dtype=np.uint8))


def test_growth_beyond_initial_capacity_preserves_data():
    s = ByteStore(initial_capacity=16)
    first = np.full(10, 7, dtype=np.uint8)
    s.write(0, first)
    s.write(100_000, np.full(10, 9, dtype=np.uint8))
    np.testing.assert_array_equal(s.read(0, 10), first)
    assert s.capacity >= 100_010
    assert s.size == 100_010


def test_write_accepts_typed_arrays():
    s = ByteStore()
    vals = np.array([1.5, -2.25, 3.0], dtype=np.float64)
    s.write(8, vals)
    got = s.read(8, 24).view(np.float64)
    np.testing.assert_array_equal(got, vals)


def test_writev_readv_scattered_runs():
    s = ByteStore()
    offsets = np.array([0, 100, 50], dtype=np.int64)
    lengths = np.array([4, 4, 4], dtype=np.int64)
    data = np.arange(12, dtype=np.uint8)
    s.writev(offsets, lengths, data)
    got = s.readv(offsets, lengths)
    np.testing.assert_array_equal(got, data)
    # Each run landed at its own offset.
    np.testing.assert_array_equal(s.read(100, 4), data[4:8])
    np.testing.assert_array_equal(s.read(50, 4), data[8:12])


def test_writev_many_runs_vectorized_path():
    s = ByteStore()
    n = 1000  # > loop threshold
    offsets = np.arange(n, dtype=np.int64) * 16
    lengths = np.full(n, 8, dtype=np.int64)
    data = np.arange(n * 8, dtype=np.uint8)
    s.writev(offsets, lengths, data)
    got = s.readv(offsets, lengths)
    np.testing.assert_array_equal(got, data)
    # Gaps stay zero.
    assert s.read(8, 8).sum() == 0


def test_writev_size_mismatch_rejected():
    s = ByteStore()
    with pytest.raises(PFSError):
        s.writev([0], [4], np.zeros(5, dtype=np.uint8))


def test_negative_offsets_rejected():
    s = ByteStore()
    with pytest.raises(PFSError):
        s.write(-1, np.zeros(1, dtype=np.uint8))
    with pytest.raises(PFSError):
        s.read(-1, 4)
    with pytest.raises(PFSError):
        s.writev([-5], [1], np.zeros(1, dtype=np.uint8))


def test_readv_past_eof_zero_fills():
    s = ByteStore()
    s.write(0, np.full(4, 3, dtype=np.uint8))
    out = s.readv([0, 2], [4, 6])
    np.testing.assert_array_equal(out[:4], np.full(4, 3, dtype=np.uint8))
    np.testing.assert_array_equal(out[4:6], np.full(2, 3, dtype=np.uint8))
    np.testing.assert_array_equal(out[6:], np.zeros(4, dtype=np.uint8))


def test_truncate_shrinks_and_zeroes():
    s = ByteStore()
    s.write(0, np.full(20, 5, dtype=np.uint8))
    s.truncate(10)
    assert s.size == 10
    s.write(0, np.zeros(0, dtype=np.uint8))  # no-op write
    np.testing.assert_array_equal(s.read(0, 20)[10:], np.zeros(10, dtype=np.uint8))


def test_overlapping_writes_last_wins():
    s = ByteStore()
    s.write(0, np.full(10, 1, dtype=np.uint8))
    s.write(5, np.full(10, 2, dtype=np.uint8))
    out = s.read(0, 15)
    np.testing.assert_array_equal(out[:5], np.full(5, 1, dtype=np.uint8))
    np.testing.assert_array_equal(out[5:], np.full(10, 2, dtype=np.uint8))


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 500), st.integers(1, 32)),
        min_size=1,
        max_size=20,
    )
)
def test_writev_readv_roundtrip_property(runs):
    """For non-overlapping runs, readv(writev(x)) == x."""
    # Make runs non-overlapping by spacing them out deterministically.
    offsets, lengths = [], []
    cursor = 0
    for gap, ln in runs:
        cursor += gap
        offsets.append(cursor)
        lengths.append(ln)
        cursor += ln
    offsets = np.array(offsets, dtype=np.int64)
    lengths = np.array(lengths, dtype=np.int64)
    rng = np.random.default_rng(0)
    data = rng.integers(0, 256, size=int(lengths.sum()), dtype=np.uint8)
    s = ByteStore()
    s.writev(offsets, lengths, data)
    np.testing.assert_array_equal(s.readv(offsets, lengths), data)
