"""flatten/merge_runs/pack/unpack behaviour + property-based invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dtypes import (
    FLOAT64,
    INT32,
    Contiguous,
    IndexedBlock,
    Vector,
    flatten,
    merge_runs,
    pack,
    unpack,
)
from repro.errors import DatatypeError


# ---------------------------------------------------------------------------
# merge_runs
# ---------------------------------------------------------------------------

def test_merge_runs_coalesces_adjacent():
    off = np.array([0, 4, 8, 20], dtype=np.int64)
    ln = np.array([4, 4, 4, 4], dtype=np.int64)
    mo, ml = merge_runs(off, ln)
    assert mo.tolist() == [0, 20]
    assert ml.tolist() == [12, 4]


def test_merge_runs_drops_zero_length():
    off = np.array([0, 10, 20], dtype=np.int64)
    ln = np.array([4, 0, 4], dtype=np.int64)
    mo, ml = merge_runs(off, ln)
    assert mo.tolist() == [0, 20]
    assert ml.tolist() == [4, 4]


def test_merge_runs_empty():
    mo, ml = merge_runs(np.array([], dtype=np.int64), np.array([], dtype=np.int64))
    assert len(mo) == 0 and len(ml) == 0


def test_merge_runs_preserves_typemap_order_no_sort():
    off = np.array([100, 0], dtype=np.int64)
    ln = np.array([4, 4], dtype=np.int64)
    mo, ml = merge_runs(off, ln)
    assert mo.tolist() == [100, 0]


@settings(max_examples=200, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 1000), st.integers(0, 50)),
        min_size=0,
        max_size=50,
    )
)
def test_merge_runs_conserves_bytes_property(run_list):
    off = np.array([o for o, _ in run_list], dtype=np.int64)
    ln = np.array([l for _, l in run_list], dtype=np.int64)
    mo, ml = merge_runs(off, ln)
    assert int(ml.sum()) == int(ln.sum())
    assert (ml > 0).all()
    # No two consecutive merged runs abut.
    if len(mo) > 1:
        assert (mo[1:] != mo[:-1] + ml[:-1]).all()


# ---------------------------------------------------------------------------
# flatten tiling
# ---------------------------------------------------------------------------

def test_flatten_count_tiles_at_extent():
    dt = Vector(count=2, blocklength=1, stride=2, base=INT32).with_extent(16)
    off, ln = flatten(dt, offset=100, count=2)
    assert off.tolist() == [100, 108, 116, 124]
    assert ln.tolist() == [4, 4, 4, 4]


def test_flatten_zero_count():
    off, ln = flatten(Contiguous(4, INT32), count=0)
    assert len(off) == 0


def test_flatten_negative_count_rejected():
    with pytest.raises(DatatypeError):
        flatten(Contiguous(4, INT32), count=-1)


def test_flatten_size_invariant_across_types():
    for dt in [
        Contiguous(7, FLOAT64),
        Vector(5, 2, 3, INT32),
        IndexedBlock(2, [9, 1, 4], FLOAT64),
    ]:
        off, ln = flatten(dt, count=3)
        assert int(ln.sum()) == 3 * dt.size


# ---------------------------------------------------------------------------
# pack / unpack
# ---------------------------------------------------------------------------

def test_pack_gathers_strided_doubles():
    buf = np.arange(8, dtype=np.float64)
    dt = Vector(count=4, blocklength=1, stride=2, base=FLOAT64)
    packed = pack(buf, dt)
    np.testing.assert_array_equal(
        packed.view(np.float64), np.array([0.0, 2.0, 4.0, 6.0])
    )


def test_unpack_is_inverse_of_pack():
    rng = np.random.default_rng(7)
    buf = rng.random(32)
    dt = IndexedBlock(1, [3, 17, 4, 28, 9], FLOAT64)
    packed = pack(buf, dt)
    out = np.zeros_like(buf)
    unpack(packed, out, dt)
    for disp in [3, 17, 4, 28, 9]:
        assert out[disp] == buf[disp]
    untouched = sorted(set(range(32)) - {3, 17, 4, 28, 9})
    assert (out[untouched] == 0).all()


def test_pack_source_too_small_rejected():
    buf = np.zeros(2, dtype=np.float64)
    dt = IndexedBlock(1, [5], FLOAT64)
    with pytest.raises(DatatypeError):
        pack(buf, dt)


def test_unpack_size_mismatch_rejected():
    buf = np.zeros(10, dtype=np.float64)
    dt = Contiguous(4, FLOAT64)
    with pytest.raises(DatatypeError):
        unpack(np.zeros(3, dtype=np.uint8), buf, dt)


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.integers(0, 63), min_size=1, max_size=32, unique=True),
    st.integers(1, 3),
)
def test_pack_unpack_roundtrip_property(displacements, blocklength):
    """pack→unpack restores exactly the selected elements, for any map."""
    disp = np.array(displacements, dtype=np.int64) * blocklength
    dt = IndexedBlock(blocklength, disp, FLOAT64)
    n = int(disp.max()) + blocklength + 1
    rng = np.random.default_rng(42)
    buf = rng.random(n)
    packed = pack(buf, dt)
    assert len(packed) == dt.size
    out = np.full(n, -1.0)
    unpack(packed, out, dt)
    for d in disp.tolist():
        np.testing.assert_array_equal(out[d : d + blocklength], buf[d : d + blocklength])
