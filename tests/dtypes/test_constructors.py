"""Unit tests: datatype sizes, extents, and run decompositions."""

import numpy as np
import pytest

from repro.dtypes import (
    BYTE,
    DOUBLE,
    FLOAT32,
    FLOAT64,
    INT,
    INT32,
    INT64,
    Contiguous,
    Hindexed,
    Hvector,
    Indexed,
    IndexedBlock,
    Struct,
    Subarray,
    Vector,
    flatten,
    from_numpy_dtype,
)
from repro.errors import DatatypeError


def runs_of(dt, offset=0, count=1):
    off, ln = flatten(dt, offset=offset, count=count)
    return list(zip(off.tolist(), ln.tolist()))


# ---------------------------------------------------------------------------
# Primitives
# ---------------------------------------------------------------------------

def test_primitive_sizes_and_extents():
    assert (BYTE.size, BYTE.extent) == (1, 1)
    assert (INT32.size, INT32.extent) == (4, 4)
    assert (INT64.size, INT64.extent) == (8, 8)
    assert (FLOAT32.size, FLOAT32.extent) == (4, 4)
    assert (FLOAT64.size, FLOAT64.extent) == (8, 8)
    assert INT is INT32 and DOUBLE is FLOAT64


def test_from_numpy_dtype_roundtrip():
    assert from_numpy_dtype(np.float64) is FLOAT64
    assert from_numpy_dtype("int32") is INT32
    with pytest.raises(DatatypeError):
        from_numpy_dtype(np.complex128)


# ---------------------------------------------------------------------------
# Contiguous / Vector / Hvector
# ---------------------------------------------------------------------------

def test_contiguous_is_single_merged_run():
    dt = Contiguous(10, FLOAT64)
    assert dt.size == 80 and dt.extent == 80
    assert runs_of(dt) == [(0, 80)]


def test_contiguous_zero_count():
    dt = Contiguous(0, FLOAT64)
    assert dt.size == 0 and runs_of(dt) == []


def test_vector_every_fourth_element():
    dt = Vector(count=3, blocklength=1, stride=4, base=FLOAT64)
    assert dt.size == 24
    assert dt.extent == (2 * 4 + 1) * 8  # last block start + blocklength
    assert runs_of(dt) == [(0, 8), (32, 8), (64, 8)]


def test_vector_blocklength_equals_stride_merges_to_contiguous():
    dt = Vector(count=4, blocklength=2, stride=2, base=INT32)
    assert runs_of(dt) == [(0, 32)]


def test_vector_overlapping_stride_rejected():
    with pytest.raises(DatatypeError):
        Vector(count=2, blocklength=4, stride=2, base=INT32)


def test_hvector_byte_stride():
    dt = Hvector(count=3, blocklength=1, stride_bytes=100, base=INT32)
    assert runs_of(dt) == [(0, 4), (100, 4), (200, 4)]
    assert dt.extent == 204


# ---------------------------------------------------------------------------
# Indexed family
# ---------------------------------------------------------------------------

def test_indexed_variable_blocks():
    dt = Indexed(blocklengths=[2, 1, 3], displacements=[0, 5, 10], base=FLOAT64)
    assert dt.size == 6 * 8
    assert dt.extent == 13 * 8
    assert runs_of(dt) == [(0, 16), (40, 8), (80, 24)]


def test_indexed_unsorted_displacements_keep_typemap_order():
    dt = Indexed(blocklengths=[1, 1], displacements=[7, 2], base=INT32)
    assert runs_of(dt) == [(28, 4), (8, 4)]


def test_indexed_block_from_map_array():
    map_array = np.array([3, 0, 9, 4], dtype=np.int64)
    dt = IndexedBlock(blocklength=1, displacements=map_array, base=FLOAT64)
    assert dt.size == 32
    assert dt.extent == 80
    assert runs_of(dt) == [(24, 8), (0, 8), (72, 8), (32, 8)]


def test_indexed_block_contiguous_map_merges():
    dt = IndexedBlock(1, np.arange(100), base=FLOAT64)
    assert runs_of(dt) == [(0, 800)]


def test_indexed_block_large_map_vectorized():
    n = 200_000
    disp = np.arange(n) * 2  # every other element
    dt = IndexedBlock(1, disp, base=FLOAT64)
    off, ln = flatten(dt)
    assert len(off) == n
    assert off[-1] == (n - 1) * 16
    assert int(ln.sum()) == dt.size


def test_hindexed_byte_displacements():
    dt = Hindexed(blocklengths=[1, 2], displacements_bytes=[4, 100], base=INT32)
    assert runs_of(dt) == [(4, 4), (100, 8)]


def test_indexed_negative_values_rejected():
    with pytest.raises(DatatypeError):
        Indexed([1], [-1], INT32)
    with pytest.raises(DatatypeError):
        Indexed([-1], [0], INT32)
    with pytest.raises(DatatypeError):
        IndexedBlock(1, [-3], INT32)


# ---------------------------------------------------------------------------
# Struct / Subarray / Resized
# ---------------------------------------------------------------------------

def test_struct_mixed_types():
    dt = Struct(
        blocklengths=[1, 3],
        displacements_bytes=[0, 8],
        types=[INT64, FLOAT32],
    )
    assert dt.size == 8 + 12
    assert dt.extent == 8 + 12
    assert runs_of(dt) == [(0, 20)]  # abutting runs merge


def test_struct_with_hole():
    dt = Struct([1, 1], [0, 16], [INT32, FLOAT64])
    assert dt.size == 12
    assert dt.extent == 24
    assert runs_of(dt) == [(0, 4), (16, 8)]


def test_subarray_2d_block():
    # 4x6 global, 2x3 block at (1, 2): rows are partially contiguous.
    dt = Subarray(shape=[4, 6], subshape=[2, 3], starts=[1, 2], base=FLOAT64)
    assert dt.size == 6 * 8
    assert dt.extent == 24 * 8
    assert runs_of(dt) == [(8 * 8, 24), (14 * 8, 24)]


def test_subarray_full_rows_merge():
    dt = Subarray(shape=[4, 6], subshape=[2, 6], starts=[1, 0], base=INT32)
    assert runs_of(dt) == [(24, 48)]


def test_subarray_out_of_bounds_rejected():
    with pytest.raises(DatatypeError):
        Subarray([4, 4], [2, 2], [3, 0], INT32)


def test_resized_extent_override_for_tiling():
    dt = Contiguous(2, INT32).with_extent(16)
    assert dt.size == 8 and dt.extent == 16
    assert runs_of(dt, count=3) == [(0, 8), (16, 8), (32, 8)]


# ---------------------------------------------------------------------------
# Nesting
# ---------------------------------------------------------------------------

def test_nested_vector_of_vectors():
    inner = Vector(count=2, blocklength=1, stride=2, base=INT32)  # x.x
    outer = Contiguous(2, inner.with_extent(16))
    assert runs_of(outer) == [(0, 4), (8, 4), (16, 4), (24, 4)]


def test_contiguous_of_struct_with_hole():
    s = Struct([1], [0], [INT32]).with_extent(8)  # int + 4B pad
    dt = Contiguous(3, s)
    assert runs_of(dt) == [(0, 4), (8, 4), (16, 4)]
