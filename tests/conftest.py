"""Shared pytest wiring: the ``--spmd-verify`` opt-in.

``pytest --spmd-verify ...`` exports ``SPMD_VERIFY=1`` for the whole
run, so every simulated MPI job cross-validates its per-rank collective
sequences (see ``docs/analysis.md``).  ``make verify-collectives`` runs
the datapath/maintenance harnesses this way.  Individual tests can also
request the ``spmd_verify`` fixture to force the sanitizer on for just
one test regardless of the flag.
"""

import os

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--spmd-verify",
        action="store_true",
        default=False,
        help="run every simulated MPI job with the SPMD_VERIFY runtime "
        "collective-sequence sanitizer enabled",
    )


def pytest_configure(config):
    if config.getoption("--spmd-verify"):
        os.environ["SPMD_VERIFY"] = "1"


@pytest.fixture
def spmd_verify(monkeypatch):
    """Force the runtime collective sanitizer on for this test."""
    monkeypatch.setenv("SPMD_VERIFY", "1")


@pytest.fixture
def no_spmd_verify(monkeypatch):
    """Force the sanitizer off (overhead/isolation tests)."""
    monkeypatch.delenv("SPMD_VERIFY", raising=False)
