"""Whole-system integration: distributed SDM output vs a sequential
reference computed with plain numpy (no MPI, no SDM, no simulation)."""

import numpy as np
import pytest

from repro.apps.fun3d import Fun3dRunConfig, run_fun3d_sdm
from repro.apps.fun3d.kernel import edge_sweep
from repro.config import fast_test
from repro.core import Organization, sdm_services
from repro.core.layout import checkpoint_file_name
from repro.mesh import fun3d_like_problem, install_mesh_file
from repro.mpi import mpirun
from repro.partition import Graph, multilevel_kway

NPROCS = 6
TIMESTEPS = 3


@pytest.fixture(scope="module")
def problem():
    return fun3d_like_problem(4)


@pytest.fixture(scope="module")
def part(problem):
    g = Graph.from_edges(
        problem.mesh.n_nodes, problem.mesh.edge1, problem.mesh.edge2
    )
    return multilevel_kway(g, NPROCS, seed=5)


def sequential_reference(problem, timesteps):
    """The same physics, computed on one CPU with global arrays."""
    mesh = problem.mesh
    x = problem.edge_arrays["xe0"]
    y = problem.node_arrays["yn0"].copy()
    per_step = {}
    for t in range(timesteps):
        p, q = edge_sweep(mesh.edge1, mesh.edge2, x, y)
        y = y + 1e-3 * p
        per_step[t] = {
            "p": p.copy(),
            "q": q.copy(),
            "r": p - q,
            "s": p * 0.5,
            "res": np.repeat(p, 5),
        }
    return per_step


@pytest.mark.parametrize("level", list(Organization))
def test_sdm_files_equal_sequential_reference(problem, part, level):
    """Every dataset, every timestep, every organization level: the bytes
    SDM puts on the simulated PFS equal the sequential computation."""
    mesh = problem.mesh
    reference = sequential_reference(problem, TIMESTEPS)

    def services(sim, machine):
        built = sdm_services()(sim, machine)
        install_mesh_file(
            built["fs"], "uns3d.msh", mesh.edge1, mesh.edge2,
            problem.edge_arrays, problem.node_arrays,
        )
        return built

    cfg = Fun3dRunConfig(
        organization=level, timesteps=TIMESTEPS, checkpoint_every=1,
        register_history=False,
    )
    job = mpirun(lambda ctx: run_fun3d_sdm(ctx, problem, part, cfg),
                 NPROCS, machine=fast_test(), services=services)
    fs = job.services["fs"]

    from repro.metadb.schema import SDMTables

    tables = SDMTables(job.services["db"])
    for t in range(TIMESTEPS):
        for name in ("p", "q", "r", "s", "res"):
            where = tables.lookup_execution(1, name, t)
            assert where is not None, (level, name, t)
            fname, base, nbytes = where
            data = fs.lookup(fname).store.read(base, nbytes).view(np.float64)
            np.testing.assert_allclose(
                data, reference[t][name], atol=1e-9,
                err_msg=f"level={level} dataset={name} t={t}",
            )


def test_history_and_no_history_runs_write_identical_files(problem, part):
    """Using the history file must not change a single output byte."""
    from repro.core import snapshot_services

    def services(seed_from=None):
        base = sdm_services(seed_from=seed_from)

        def factory(sim, machine):
            built = base(sim, machine)
            if not built["fs"].exists("uns3d.msh"):
                install_mesh_file(
                    built["fs"], "uns3d.msh", problem.mesh.edge1,
                    problem.mesh.edge2, problem.edge_arrays,
                    problem.node_arrays,
                )
            return built

        return factory

    cfg = Fun3dRunConfig(timesteps=2, register_history=True)
    job1 = mpirun(lambda ctx: run_fun3d_sdm(ctx, problem, part, cfg),
                  NPROCS, machine=fast_test(), services=services())
    snap = snapshot_services(job1)
    job2 = mpirun(lambda ctx: run_fun3d_sdm(ctx, problem, part, cfg),
                  NPROCS, machine=fast_test(), services=services(snap))
    assert all(r.used_history for r in job2.values)

    fs1, fs2 = job1.services["fs"], job2.services["fs"]
    for t in range(2):
        for name in ("p", "q", "res"):
            fname = checkpoint_file_name("fun3d", 1, name, t,
                                         Organization.LEVEL_2)
            a = fs1.lookup(fname).store.read(0, fs1.lookup(fname).size)
            # Run 2 appended to the same snapshot-carried files; its last
            # instance must equal run 1's (same physics, same layout).
            b = fs2.lookup(fname).store.read(0, fs2.lookup(fname).size)
            np.testing.assert_array_equal(a, b[: len(a)])
