"""RT template: model determinism, SDM vs original, file contents."""

import numpy as np
import pytest

from repro.apps.rt import RTRunConfig, run_rt_original, run_rt_sdm
from repro.apps.rt.model import evolve_interface, triangle_field_from_nodes
from repro.config import fast_test, origin2000
from repro.core import Organization, sdm_services
from repro.core.layout import checkpoint_file_name
from repro.mesh import rt_like_problem
from repro.mpi import mpirun
from repro.partition import Graph, multilevel_kway

NPROCS = 4


@pytest.fixture(scope="module")
def problem():
    return rt_like_problem(4)


@pytest.fixture(scope="module")
def part(problem):
    g = Graph.from_edges(
        problem.mesh.n_nodes, problem.mesh.edge1, problem.mesh.edge2
    )
    return multilevel_kway(g, NPROCS, seed=0)


def test_interface_amplitudes_grow_in_time(problem):
    coords = problem.mesh.coords
    a1 = np.abs(evolve_interface(coords, 0.1)).max()
    a2 = np.abs(evolve_interface(coords, 0.5)).max()
    assert a2 > a1


def test_triangle_field_is_vertex_mean():
    nodes = np.array([1.0, 2.0, 3.0, 4.0])
    tris = np.array([[0, 1, 2], [1, 2, 3]])
    np.testing.assert_allclose(
        triangle_field_from_nodes(nodes, tris), [2.0, 3.0]
    )


def test_sdm_rt_writes_correct_global_files(problem, part):
    """node_data lands in global node order; triangle_data contiguously."""
    mesh = problem.mesh

    def program(ctx):
        return run_rt_sdm(
            ctx, problem, part,
            RTRunConfig(organization=Organization.LEVEL_1, timesteps=2),
        )

    job = mpirun(program, NPROCS, machine=fast_test(),
                 services=sdm_services())
    fs = job.services["fs"]
    t = 1
    amplitudes = evolve_interface(mesh.coords, (t + 1) * 0.1)
    fname = checkpoint_file_name("rt", 1, "node_data", t, Organization.LEVEL_1)
    node_file = fs.lookup(fname).store.read(0, mesh.n_nodes * 8).view(np.float64)
    np.testing.assert_allclose(node_file, amplitudes, atol=1e-12)
    fname = checkpoint_file_name("rt", 1, "triangle_data", t, Organization.LEVEL_1)
    tri_file = fs.lookup(fname).store.read(
        0, problem.n_triangles * 8
    ).view(np.float64)
    expect = triangle_field_from_nodes(amplitudes, problem.triangle_nodes)
    np.testing.assert_allclose(tri_file, expect, atol=1e-12)


def test_rt_original_and_sdm_checksums_agree(problem, part):
    def sdm_prog(ctx):
        return run_rt_sdm(ctx, problem, part, RTRunConfig(timesteps=3))

    def orig_prog(ctx):
        return run_rt_original(ctx, problem, part, RTRunConfig(timesteps=3))

    sdm_job = mpirun(sdm_prog, NPROCS, machine=fast_test(), services=sdm_services())
    orig_job = mpirun(orig_prog, NPROCS, machine=fast_test(), services=sdm_services())
    for s, o in zip(sdm_job.values, orig_job.values):
        assert s.checksum == pytest.approx(o.checksum, rel=1e-12)
        assert s.bytes_written == o.bytes_written


def test_rt_chunked_storage_order_checksums_agree(problem, part):
    """The RT driver's storage_order knob: triangle_data's contiguous
    blocks become dense (index-free) chunks, node_data irregular ones;
    checksums match the canonical run exactly."""

    def make_prog(order):
        def program(ctx):
            return run_rt_sdm(
                ctx, problem, part,
                RTRunConfig(timesteps=3, storage_order=order),
            )
        return program

    canonical = mpirun(make_prog("canonical"), NPROCS, machine=fast_test(),
                       services=sdm_services())
    chunked = mpirun(make_prog("chunked"), NPROCS, machine=fast_test(),
                     services=sdm_services())
    for c, k in zip(canonical.values, chunked.values):
        assert k.checksum == pytest.approx(c.checksum, rel=1e-12)
        assert k.bytes_written == c.bytes_written
    from repro.metadb.schema import SDMTables

    tables = SDMTables(chunked.services["db"])
    tri_chunks = tables.chunks_for(1, "triangle_data", 0)
    assert tri_chunks and all(
        c.index_offset == c.data_offset for c in tri_chunks
    )  # contiguous blocks: dense chunks, no index bytes


def test_sdm_write_bandwidth_beats_original():
    """Figure 7's headline: collective writes >> sequential writes.

    Uses 8 ranks and a moderate mesh so data transfer (not per-statement
    metadata costs) decides; the full-scale factor is the Figure 7 bench.
    """
    machine = origin2000()
    big = rt_like_problem(12)
    g = Graph.from_edges(big.mesh.n_nodes, big.mesh.edge1, big.mesh.edge2)
    big_part = multilevel_kway(g, 8, seed=0)

    def sdm_prog(ctx):
        return run_rt_sdm(ctx, big, big_part, RTRunConfig(timesteps=2))

    def orig_prog(ctx):
        return run_rt_original(ctx, big, big_part, RTRunConfig(timesteps=2))

    sdm_job = mpirun(sdm_prog, 8, machine=machine, services=sdm_services())
    orig_job = mpirun(orig_prog, 8, machine=machine, services=sdm_services())
    assert sdm_job.phase_max("write") < 0.7 * orig_job.phase_max("write")


def test_rt_level1_vs_level23_file_counts(problem, part):
    for level, expected in ((Organization.LEVEL_1, 4), (Organization.LEVEL_2, 2)):
        def program(ctx, level=level):
            return run_rt_sdm(
                ctx, problem, part, RTRunConfig(organization=level, timesteps=2)
            )

        job = mpirun(program, NPROCS, machine=fast_test(), services=sdm_services())
        files = job.services["fs"].list_files()
        assert len(files) == expected, (level, files)
