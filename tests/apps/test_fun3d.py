"""FUN3D template: kernel correctness, SDM vs original equivalence, timing."""

import numpy as np
import pytest

from repro.apps.fun3d import (
    Fun3dRunConfig,
    edge_sweep,
    update_ghosts,
    localize,
    run_fun3d_original,
    run_fun3d_sdm,
)
from repro.config import fast_test, origin2000
from repro.core import Organization, sdm_services, snapshot_services
from repro.mesh import fun3d_like_problem, install_mesh_file
from repro.mpi import mpirun
from repro.partition import Graph, multilevel_kway

NPROCS = 4


@pytest.fixture(scope="module")
def problem():
    return fun3d_like_problem(3)


@pytest.fixture(scope="module")
def part(problem):
    g = Graph.from_edges(problem.mesh.n_nodes, problem.mesh.edge1, problem.mesh.edge2)
    return multilevel_kway(g, NPROCS, seed=0)


def services_for(problem, seed_from=None):
    base = sdm_services(seed_from=seed_from)

    def factory(sim, machine):
        services = base(sim, machine)
        if not services["fs"].exists("uns3d.msh"):
            install_mesh_file(
                services["fs"], "uns3d.msh",
                problem.mesh.edge1, problem.mesh.edge2,
                problem.edge_arrays, problem.node_arrays,
            )
        return services

    return factory


# ---------------------------------------------------------------------------
# Kernel
# ---------------------------------------------------------------------------

def test_localize_translates_global_to_local():
    node_map = np.array([2, 5, 9, 11], dtype=np.int64)
    np.testing.assert_array_equal(
        localize(node_map, np.array([9, 2, 11])), [2, 0, 3]
    )


def test_edge_sweep_antisymmetric_flux_conserves():
    """p contributions cancel in the global sum (conservation)."""
    e1 = np.array([0, 1, 2])
    e2 = np.array([1, 2, 3])
    x = np.array([1.0, 2.0, 3.0])
    y = np.array([1.0, 4.0, 9.0, 16.0])
    p, q = edge_sweep(e1, e2, x, y)
    assert abs(p.sum()) < 1e-12
    # Hand-check node 1: +flux(edge0 into e2 side is -) ...
    f = x * (y[e1] - y[e2])
    assert p[1] == pytest.approx(-f[0] + f[1])


def test_ghost_exchange_completes_owned_sums(part, problem):
    """Sequential reference: sweep on the whole mesh equals the distributed
    sweep + ghost exchange at owned positions."""
    mesh = problem.mesh
    x_glob = problem.edge_arrays["xe0"]
    y_glob = problem.node_arrays["yn0"]
    p_ref, q_ref = edge_sweep(mesh.edge1, mesh.edge2, x_glob, y_glob)

    def program(ctx):
        keep = (part[mesh.edge1] == ctx.rank) | (part[mesh.edge2] == ctx.rank)
        le1, le2 = mesh.edge1[keep], mesh.edge2[keep]
        owned = np.flatnonzero(part == ctx.rank)
        node_map = np.union1d(owned, np.unique(np.concatenate([le1, le2])))
        e1l, e2l = localize(node_map, le1), localize(node_map, le2)
        p, q = edge_sweep(e1l, e2l, x_glob[keep], y_glob[node_map])
        p, q = update_ghosts(ctx, node_map, part, p, q)
        sel = localize(node_map, owned)
        return owned, p[sel], q[sel]

    job = mpirun(program, NPROCS, machine=fast_test())
    for owned, p_loc, q_loc in job.values:
        np.testing.assert_allclose(p_loc, p_ref[owned], atol=1e-9)
        np.testing.assert_allclose(q_loc, q_ref[owned], atol=1e-9)


# ---------------------------------------------------------------------------
# Drivers
# ---------------------------------------------------------------------------

def test_sdm_and_original_produce_identical_results(problem, part):
    """Same physics, different I/O paths: checksums must agree."""

    def sdm_prog(ctx):
        return run_fun3d_sdm(
            ctx, problem, part,
            Fun3dRunConfig(register_history=False, timesteps=2),
        )

    def orig_prog(ctx):
        return run_fun3d_original(ctx, problem, part, timesteps=2)

    sdm_job = mpirun(sdm_prog, NPROCS, machine=fast_test(),
                     services=services_for(problem))
    orig_job = mpirun(orig_prog, NPROCS, machine=fast_test(),
                      services=services_for(problem))
    for s, o in zip(sdm_job.values, orig_job.values):
        assert s.checksum == pytest.approx(o.checksum, rel=1e-12)
        assert s.n_local_edges == o.n_local_edges
        assert s.n_local_nodes == o.n_local_nodes
        assert s.bytes_written == o.bytes_written


def test_sdm_read_back_matches_written(problem, part):
    def program(ctx):
        return run_fun3d_sdm(
            ctx, problem, part,
            Fun3dRunConfig(register_history=False, read_back=True),
        )

    job = mpirun(program, NPROCS, machine=fast_test(),
                 services=services_for(problem))
    for r in job.values:
        assert r.read_checksum is not None
        assert np.isfinite(r.read_checksum)


def test_sdm_chunked_read_back_matches_canonical(problem, part):
    """The driver's storage_order knob: chunked checkpoints (with and
    without reorganize_after) read back exactly what canonical wrote."""

    def make_program(order, reorganize_after=False):
        def program(ctx):
            return run_fun3d_sdm(
                ctx, problem, part,
                Fun3dRunConfig(
                    register_history=False, read_back=True,
                    storage_order=order, reorganize_after=reorganize_after,
                ),
            )
        return program

    canonical = mpirun(make_program("canonical"), NPROCS,
                       machine=fast_test(), services=services_for(problem))
    chunked = mpirun(make_program("chunked"), NPROCS,
                     machine=fast_test(), services=services_for(problem))
    reorganized = mpirun(make_program("chunked", reorganize_after=True),
                         NPROCS, machine=fast_test(),
                         services=services_for(problem))
    for c, k, r in zip(canonical.values, chunked.values, reorganized.values):
        assert k.read_checksum == pytest.approx(c.read_checksum, rel=1e-12)
        assert r.read_checksum == pytest.approx(c.read_checksum, rel=1e-12)
        assert k.checksum == pytest.approx(c.checksum, rel=1e-12)


def test_sdm_import_faster_than_original():
    """Figure 5's headline: parallel MPI-IO import beats rank-0+broadcast.

    Needs a problem big enough that data transfer dominates the fixed
    per-operation costs (at toy sizes open/view overheads make the two
    paths comparable — the full-scale split is the Figure 5 benchmark).
    """
    machine = origin2000()
    big = fun3d_like_problem(16)
    g = Graph.from_edges(big.mesh.n_nodes, big.mesh.edge1, big.mesh.edge2)
    big_part = multilevel_kway(g, NPROCS, seed=0)

    def sdm_prog(ctx):
        return run_fun3d_sdm(
            ctx, big, big_part,
            Fun3dRunConfig(register_history=False, timesteps=1),
        )

    def orig_prog(ctx):
        return run_fun3d_original(ctx, big, big_part, timesteps=1)

    sdm_job = mpirun(sdm_prog, NPROCS, machine=machine,
                     services=services_for(big))
    orig_job = mpirun(orig_prog, NPROCS, machine=machine,
                      services=services_for(big))
    assert sdm_job.phase_max("import") < orig_job.phase_max("import")
    # The index-distribution split (1-pass realloc + ring vs 2-pass over the
    # full list) only separates cleanly at full benchmark scale — Figure 5's
    # bench asserts it there.


def test_history_reuse_in_second_run(problem, part):
    def program(ctx):
        return run_fun3d_sdm(
            ctx, problem, part, Fun3dRunConfig(register_history=True, timesteps=1)
        )

    job1 = mpirun(program, NPROCS, machine=fast_test(),
                  services=services_for(problem))
    assert all(not r.used_history for r in job1.values)
    snap = snapshot_services(job1)
    job2 = mpirun(program, NPROCS, machine=fast_test(),
                  services=services_for(problem, seed_from=snap))
    assert all(r.used_history for r in job2.values)
    for a, b in zip(job1.values, job2.values):
        assert a.checksum == pytest.approx(b.checksum, rel=1e-12)
