"""Smoke tests: the shipped examples run end to end and self-verify.

Each example asserts its own correctness internally (paper-figure
partitioning, read-back equality, growth factors), so "main() completes"
is a meaningful check.  The two quickest examples run here; the heavier
ones are exercised by the benchmark suite's workloads.
"""

import runpy
import sys

import pytest


def run_example(name, capsys):
    runpy.run_path(f"examples/{name}.py", run_name="__main__")
    return capsys.readouterr().out


def test_quickstart_matches_paper(capsys):
    out = run_example("quickstart", capsys)
    assert "matches the paper's Figure 1 partitioning. OK" in out
    assert "partitioned edges  : [0, 2]" in out
    assert "partitioned edges  : [0, 1, 3]" in out


def test_file_organizations_example(capsys):
    out = run_example("file_organizations", capsys)
    assert "cross-run read of q@t=1 via execution_table verified. OK" in out
    assert "level 1: 6 file(s)" in out
    assert "level 3: 1 file(s)" in out
