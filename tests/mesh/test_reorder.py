"""RCM reordering: permutation validity, bandwidth reduction, run counts."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MeshError
from repro.mesh import box_tet_mesh
from repro.mesh.reorder import (
    apply_node_permutation,
    numbering_bandwidth,
    rcm_ordering,
)


def scrambled_mesh(cells, seed=0):
    """A box mesh with its node ids randomly permuted (a 'raw' mesh)."""
    mesh = box_tet_mesh(cells, cells, cells)
    rng = np.random.default_rng(seed)
    scramble = rng.permutation(mesh.n_nodes)
    e1, e2 = apply_node_permutation(scramble, mesh.edge1, mesh.edge2)
    return mesh.n_nodes, e1, e2


def test_rcm_is_a_permutation():
    n, e1, e2 = scrambled_mesh(4)
    perm = rcm_ordering(n, e1, e2)
    assert sorted(perm.tolist()) == list(range(n))


def test_rcm_reduces_bandwidth_of_scrambled_mesh():
    n, e1, e2 = scrambled_mesh(5)
    before = numbering_bandwidth(n, e1, e2)
    perm = rcm_ordering(n, e1, e2)
    r1, r2 = apply_node_permutation(perm, e1, e2)
    after = numbering_bandwidth(n, r1, r2)
    assert after < before / 3  # scrambled ~n, RCM ~surface-sized


def test_rcm_roughly_recovers_structured_quality():
    """RCM on a scrambled box mesh gets near the structured numbering's
    bandwidth (within a small factor)."""
    mesh = box_tet_mesh(5, 5, 5)
    structured = numbering_bandwidth(mesh.n_nodes, mesh.edge1, mesh.edge2)
    n, e1, e2 = scrambled_mesh(5)
    perm = rcm_ordering(n, e1, e2)
    r1, r2 = apply_node_permutation(perm, e1, e2)
    assert numbering_bandwidth(n, r1, r2) < 3 * structured


def test_apply_permutation_preserves_graph():
    """Renumbering must preserve the edge multiset as an abstract graph."""
    n, e1, e2 = scrambled_mesh(3)
    perm = rcm_ordering(n, e1, e2)
    r1, r2 = apply_node_permutation(perm, e1, e2)
    assert len(r1) == len(e1)
    # Canonical form invariants.
    assert (r1 < r2).all()
    enc = r1 * n + r2
    assert (np.diff(enc) > 0).all()
    # Map back: the edge set in old ids must match the original.
    back1, back2 = perm[r1], perm[r2]
    orig = set(zip(np.minimum(e1, e2).tolist(), np.maximum(e1, e2).tolist()))
    got = set(zip(np.minimum(back1, back2).tolist(),
                  np.maximum(back1, back2).tolist()))
    assert got == orig


def test_rcm_handles_disconnected_graphs():
    # Two disjoint paths + an isolated vertex.
    e1 = np.array([0, 1, 4, 5])
    e2 = np.array([1, 2, 5, 6])
    perm = rcm_ordering(8, e1, e2)
    assert sorted(perm.tolist()) == list(range(8))


def test_rcm_rejects_bad_inputs():
    with pytest.raises(MeshError):
        rcm_ordering(0, np.array([]), np.array([]))
    with pytest.raises(MeshError):
        rcm_ordering(3, np.array([0]), np.array([1, 2]))


def test_bandwidth_of_empty_edge_list():
    assert numbering_bandwidth(5, np.array([]), np.array([])) == 0


def test_locality_improves_map_array_run_counts():
    """The SDM consequence: after RCM, a contiguous block of node ids has
    far fewer file runs per owner block than under scrambled numbering."""
    from repro.dtypes import FLOAT64, IndexedBlock, flatten
    from repro.partition import Graph, multilevel_kway

    n, e1, e2 = scrambled_mesh(5, seed=3)
    perm = rcm_ordering(n, e1, e2)
    r1, r2 = apply_node_permutation(perm, e1, e2)

    def runs_for_partition(edge1, edge2):
        g = Graph.from_edges(n, edge1, edge2)
        part = multilevel_kway(g, 4, seed=0)
        total_runs = 0
        for r in range(4):
            mine = np.flatnonzero(part == r).astype(np.int64)
            off, ln = flatten(IndexedBlock(1, mine, FLOAT64))
            total_runs += len(off)
        return total_runs

    runs_scrambled = runs_for_partition(e1, e2)
    runs_rcm = runs_for_partition(r1, r2)
    assert runs_rcm < runs_scrambled / 2


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 30), st.integers(0, 2**31 - 1))
def test_rcm_valid_on_random_graphs_property(n, seed):
    rng = np.random.default_rng(seed)
    m = rng.integers(1, max(2, n))
    e1 = rng.integers(0, n, size=m).astype(np.int64)
    e2 = rng.integers(0, n, size=m).astype(np.int64)
    perm = rcm_ordering(n, e1, e2)
    assert sorted(perm.tolist()) == list(range(n))
