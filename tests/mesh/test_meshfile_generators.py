"""Mesh file layout/install and workload generators."""

import numpy as np
import pytest

from repro.config import fast_test
from repro.errors import MeshError
from repro.mesh import (
    fun3d_like_problem,
    install_mesh_file,
    mesh_file_layout,
    rt_like_problem,
    validate_mesh,
)
from repro.pfs import FileSystem
from repro.simt import Simulator


def make_fs():
    return FileSystem(Simulator(), fast_test())


def test_layout_offsets_match_paper_arithmetic():
    lay = mesh_file_layout(100, 40, ["x"], ["y"])
    assert lay.offset("edge1") == 0
    assert lay.offset("edge2") == 100 * 4
    # Paper: file_offset = 2*totalEdges*sizeof(int) for the first data array.
    assert lay.offset("x") == 2 * 100 * 4
    assert lay.offset("y") == 2 * 100 * 4 + 100 * 8
    assert lay.total_bytes == 2 * 100 * 4 + 100 * 8 + 40 * 8


def test_install_and_read_back():
    fs = make_fs()
    e1 = np.array([0, 0, 1], dtype=np.int64)
    e2 = np.array([1, 2, 2], dtype=np.int64)
    x = np.array([1.0, 2.0, 3.0])
    y = np.array([10.0, 20.0, 30.0])
    lay = install_mesh_file(fs, "uns3d.msh", e1, e2, {"x": x}, {"y": y})
    f = fs.lookup("uns3d.msh")
    assert f.size == lay.total_bytes
    got_e1 = f.store.read(lay.offset("edge1"), 12).view(np.int32)
    np.testing.assert_array_equal(got_e1, e1.astype(np.int32))
    got_y = f.store.read(lay.offset("y"), 24).view(np.float64)
    np.testing.assert_array_equal(got_y, y)


def test_install_rejects_bad_arrays():
    fs = make_fs()
    with pytest.raises(MeshError):
        install_mesh_file(
            fs, "bad", np.array([0]), np.array([1]),
            {"x": np.zeros(5)}, {},  # wrong edge-array length
        )


def test_install_rejects_existing_file():
    fs = make_fs()
    install_mesh_file(fs, "m", np.array([0]), np.array([1]), {}, {"y": np.zeros(2)})
    with pytest.raises(MeshError):
        install_mesh_file(fs, "m", np.array([0]), np.array([1]), {}, {"y": np.zeros(2)})


def test_fun3d_problem_shape():
    prob = fun3d_like_problem(6)
    assert validate_mesh(prob.mesh) == []
    assert set(prob.edge_arrays) == {"xe0", "xe1", "xe2", "xe3"}
    assert set(prob.node_arrays) == {"yn0", "yn1", "yn2", "yn3"}
    for arr in prob.edge_arrays.values():
        assert len(arr) == prob.mesh.n_edges
    for arr in prob.node_arrays.values():
        assert len(arr) == prob.mesh.n_nodes
    expected = (
        2 * prob.mesh.n_edges * 4
        + 4 * prob.mesh.n_edges * 8
        + 4 * prob.mesh.n_nodes * 8
    )
    assert prob.import_bytes == expected


def test_fun3d_problem_deterministic():
    a = fun3d_like_problem(4, seed=9)
    b = fun3d_like_problem(4, seed=9)
    np.testing.assert_array_equal(a.edge_arrays["xe0"], b.edge_arrays["xe0"])


def test_rt_problem_byte_ratio():
    prob = rt_like_problem(8)
    node_bytes = prob.mesh.n_nodes * 8
    tri_bytes = prob.n_triangles * 8
    ratio = tri_bytes / node_bytes
    assert abs(ratio - 74.0 / 36.0) < 0.01
    assert prob.triangle_nodes.shape == (prob.n_triangles, 3)
    assert len(prob.triangle_field) == prob.n_triangles
