"""Box tet mesh generation: counts, invariants, validators."""

import numpy as np
import pytest

from repro.errors import MeshError
from repro.mesh import box_tet_mesh, validate_mesh


def test_unit_cube_counts():
    m = box_tet_mesh(1, 1, 1)
    assert m.n_nodes == 8
    assert m.n_tets == 6
    # Kuhn subdivision of one cube: 12 cube edges + 6 face diagonals + 1
    # main diagonal = 19 edges.
    assert m.n_edges == 19
    assert validate_mesh(m) == []


def test_box_counts_scale():
    m = box_tet_mesh(3, 2, 4)
    assert m.n_nodes == 4 * 3 * 5
    assert m.n_tets == 6 * 3 * 2 * 4
    assert validate_mesh(m) == []


def test_edge_node_ratio_matches_unstructured_cfd():
    m = box_tet_mesh(10, 10, 10)
    ratio = m.n_edges / m.n_nodes
    # Interior ratio is 7; the boundary pulls it down on small boxes.
    # The paper's FUN3D mesh is ~8.2 — same regime.
    assert 5.5 < ratio < 7.5


def test_edges_canonical_sorted_unique():
    m = box_tet_mesh(4, 4, 4)
    assert (m.edge1 < m.edge2).all()
    enc = m.edge1 * m.n_nodes + m.edge2
    assert (np.diff(enc) > 0).all()


def test_boundary_faces_form_closed_surface():
    n = 3
    m = box_tet_mesh(n, n, n)
    # Boundary of the box: each boundary cube face contributes 2 triangles.
    expected = 6 * n * n * 2
    assert len(m.boundary_faces) == expected


def test_mesh_connectivity_single_component():
    import networkx as nx

    m = box_tet_mesh(3, 3, 3)
    g = nx.Graph()
    g.add_nodes_from(range(m.n_nodes))
    g.add_edges_from(zip(m.edge1.tolist(), m.edge2.tolist()))
    assert nx.is_connected(g)


def test_invalid_dimensions_rejected():
    with pytest.raises(MeshError):
        box_tet_mesh(0, 1, 1)


def test_validator_catches_corruption():
    m = box_tet_mesh(2, 2, 2)
    m.edge1, m.edge2 = m.edge2.copy(), m.edge1.copy()  # break canonical order
    assert any("canonicalized" in p for p in validate_mesh(m))

    m2 = box_tet_mesh(2, 2, 2)
    m2.tets[0, 1] = m2.tets[0, 0]  # degenerate tet
    assert any("degenerate" in p for p in validate_mesh(m2))

    m3 = box_tet_mesh(2, 2, 2)
    m3.edge1 = m3.edge1[:-1]
    assert any("mismatch" in p for p in validate_mesh(m3))
