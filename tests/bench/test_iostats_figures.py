"""I/O report, exscan, and smoke coverage of the figure runners."""

import numpy as np
import pytest

from repro.bench.figures import run_fig5, run_fig6, run_fig7
from repro.bench.iostats import io_report
from repro.config import fast_test
from repro.core import SDM, sdm_services
from repro.dtypes import DOUBLE
from repro.mpi import SUM, mpirun


# ---------------------------------------------------------------------------
# exscan
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("p", [1, 2, 5])
def test_exscan_exclusive_prefix(p):
    def program(ctx):
        return ctx.comm.exscan(ctx.rank + 1, op=SUM)

    job = mpirun(program, p, machine=fast_test())
    expect = [None] + [r * (r + 1) // 2 for r in range(1, p)]
    assert job.values == expect


def test_exscan_for_file_offsets_idiom():
    """The offsets idiom: each rank's append offset = exscan of its bytes."""

    def program(ctx):
        nbytes = (ctx.rank + 1) * 100
        offset = ctx.comm.exscan(nbytes, op=SUM)
        return 0 if offset is None else offset

    job = mpirun(program, 4, machine=fast_test())
    assert job.values == [0, 100, 300, 600]


# ---------------------------------------------------------------------------
# io_report
# ---------------------------------------------------------------------------

def test_io_report_summarizes_job():
    def program(ctx):
        sdm = SDM(ctx, "rep")
        result = sdm.make_datalist(["d"])
        sdm.associate_attributes(result, data_type=DOUBLE, global_size=64)
        handle = sdm.set_attributes(result)
        mine = np.arange(32, dtype=np.int64) + 32 * ctx.rank
        sdm.data_view(handle, "d", mine)
        with ctx.phase("write"):
            sdm.write(handle, "d", 0, mine * 1.0)
        buf = np.empty(32)
        with ctx.phase("read"):
            sdm.read(handle, "d", 0, buf)
        sdm.finalize(handle)
        return None

    job = mpirun(program, 2, machine=fast_test(), services=sdm_services())
    report = io_report(job)
    assert report.bytes_written == 64 * 8
    assert report.bytes_read == 64 * 8
    assert report.n_opens >= 2
    assert "write" in report.phase_bandwidth
    text = report.render()
    assert "bytes written" in text
    assert "rep/d.dat" in text


# ---------------------------------------------------------------------------
# Figure runners (tiny smoke configurations)
# ---------------------------------------------------------------------------

def test_run_fig5_smoke():
    table = run_fig5(nprocs=4, cells=4)
    configs = {r.config for r in table.rows}
    assert configs == {"original", "sdm_no_history", "sdm_with_history"}
    # All values positive and history run actually used the history.
    assert all(r.value > 0 for r in table.rows)
    assert table.value("sdm_with_history", "total") < table.value(
        "original", "total"
    )


def test_run_fig6_smoke():
    table = run_fig6(nprocs=4, cells=4)
    assert len(table.rows) == 6
    assert all(r.unit == "MB/s" and r.value > 0 for r in table.rows)


def test_run_fig7_smoke():
    table = run_fig7(proc_counts=(4,), cells=4)
    assert {r.config for r in table.rows} == {
        "original/P4", "level1/P4", "level23/P4"
    }
    assert table.value("level1/P4", "write") > table.value("original/P4", "write")
