"""Bench harness: time dilation invariants and result tables."""

import numpy as np
import pytest

from repro.bench import ResultTable, scaled_machine
from repro.config import origin2000


# ---------------------------------------------------------------------------
# scaled_machine
# ---------------------------------------------------------------------------

def test_scale_one_is_identity_on_rates():
    base = origin2000()
    m = scaled_machine(base, 1.0)
    assert m.network.bandwidth == base.network.bandwidth
    assert m.compute.element_op == base.compute.element_op
    assert m.storage.stream_read_bandwidth == base.storage.stream_read_bandwidth


def test_dilation_scales_rates_not_fixed_costs():
    base = origin2000()
    m = scaled_machine(base, 10.0)
    assert m.network.bandwidth == pytest.approx(base.network.bandwidth / 10)
    assert m.compute.element_op == pytest.approx(base.compute.element_op * 10)
    assert m.storage.stream_write_bandwidth == pytest.approx(
        base.storage.stream_write_bandwidth / 10
    )
    # Fixed per-operation costs unchanged: that is the whole point.
    assert m.network.latency == base.network.latency
    assert m.storage.file_open_cost == base.storage.file_open_cost
    assert m.database.query_cost == base.database.query_cost


def test_dilation_time_invariance_property():
    """A transfer of bytes/scale on the dilated machine takes exactly as
    long as the full transfer on the base machine (minus latency rounding)."""
    base = origin2000()
    for scale in (2.0, 64.0, 1000.0):
        m = scaled_machine(base, scale)
        full_bytes = 1 << 26
        t_base = base.network.transfer_time(full_bytes)
        t_scaled = m.network.transfer_time(full_bytes / scale)
        assert t_scaled == pytest.approx(t_base, rel=1e-12)
        t_base_io = base.storage.stream_time(full_bytes, write=True)
        t_scaled_io = m.storage.stream_time(full_bytes / scale, write=True)
        assert t_scaled_io == pytest.approx(t_base_io, rel=1e-12)


def test_dilation_scales_byte_granularity_parameters():
    base = origin2000()
    m = scaled_machine(base, 100.0)
    assert m.storage.stripe_size == base.storage.stripe_size // 100
    assert m.collective_io.cb_buffer_size == base.collective_io.cb_buffer_size // 100


def test_dilation_rejects_upscaling():
    with pytest.raises(ValueError):
        scaled_machine(origin2000(), 0.5)


def test_dilation_names_the_machine():
    m = scaled_machine(origin2000(), 64.0)
    assert "scale64" in m.name


# ---------------------------------------------------------------------------
# ResultTable
# ---------------------------------------------------------------------------

def test_table_add_get_value():
    t = ResultTable("demo")
    t.add("exp", "cfgA", "time", 1.5, "s", paper_value=2.0)
    t.add("exp", "cfgB", "time", 3.0, "s")
    assert t.value("cfgA", "time") == 1.5
    assert t.get("cfgB", "time").paper_value is None
    with pytest.raises(KeyError):
        t.value("cfgC", "time")


def test_table_render_contains_all_cells():
    t = ResultTable("My Title")
    t.add("e1", "config-x", "bandwidth", 123.456, "MB/s", paper_value=100.0,
          note="a note")
    text = t.render()
    assert "My Title" in text
    assert "config-x" in text
    assert "123.46" in text
    assert "100" in text
    assert "a note" in text
    # Header present and aligned block renders without exception.
    assert "measured" in text and "paper" in text


def test_table_render_empty():
    t = ResultTable("empty")
    text = t.render()
    assert "empty" in text
