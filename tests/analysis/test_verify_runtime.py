"""The SPMD_VERIFY runtime sanitizer: seeded mismatches, deadlock
reports, the shared trace schema, and the flag-off zero-overhead
guarantee."""

import numpy as np
import pytest

from repro.analysis import SPMDVerifier, format_runtime_mismatch
from repro.analysis.report import format_trace_collectives
from repro.config import fast_test
from repro.core import SDM, Organization, sdm_services
from repro.core.layout import CHUNKED
from repro.dtypes import DOUBLE
from repro.errors import (
    SimDeadlockError,
    SimProcessCrashed,
    SPMDVerificationError,
)
from repro.mpi import mpirun
from repro.simt.trace import CollectiveSignature, Trace


def sig(op="barrier", ctx="0", seq=1, rank=0, root=None, dtype="", count=-1):
    return CollectiveSignature(
        op=op, ctx=ctx, seq=seq, rank=rank, root=root,
        dtype=dtype, count=count, site=f"prog.py:{10 + rank} in main",
    )


# ---------------------------------------------------------------------------
# Seeded collective mismatches (fail fast, both call sites named)
# ---------------------------------------------------------------------------


def test_allreduce_shape_mismatch_is_caught(spmd_verify):
    def program(ctx):
        if ctx.rank == 0:  # spmdlint: ok(rank-branch) deliberately divergent: this test seeds the bug
            return ctx.comm.allreduce([0] * 4)
        return ctx.comm.allreduce([0] * 3)

    with pytest.raises(SimProcessCrashed) as ei:
        mpirun(program, 2, machine=fast_test())
    cause = ei.value.__cause__
    assert isinstance(cause, SPMDVerificationError)
    msg = str(cause)
    assert "payload shape mismatch" in msg
    assert "rank 0" in msg and "rank 1" in msg
    # Both ranks' call sites point into this test.
    assert msg.count("test_verify_runtime.py") == 2


def test_shape_mismatch_is_silent_corruption_without_the_flag(no_spmd_verify):
    # The motivating hazard: unverified, the 4-vs-3 allreduce "succeeds"
    # by list concatenation and every rank gets a 7-element result.
    def program(ctx):
        if ctx.rank == 0:  # spmdlint: ok(rank-branch) deliberately divergent: this test seeds the bug
            return ctx.comm.allreduce([0] * 4)
        return ctx.comm.allreduce([0] * 3)

    job = mpirun(program, 2, machine=fast_test())
    assert [len(v) for v in job.values] == [7, 7]


def test_op_kind_mismatch_is_caught(spmd_verify):
    def program(ctx):
        if ctx.rank == 0:  # spmdlint: ok(rank-branch) deliberately divergent: this test seeds the bug
            ctx.comm.barrier()
        else:
            ctx.comm.allgather(1)

    with pytest.raises(SimProcessCrashed) as ei:
        mpirun(program, 2, machine=fast_test())
    msg = str(ei.value.__cause__)
    assert "op mismatch" in msg
    assert "'barrier'" in msg and "'allgather'" in msg


def test_root_mismatch_is_caught(spmd_verify):
    def program(ctx):
        root = 0 if ctx.rank == 0 else 1
        # spmdlint: ok(comm-mismatch) deliberately divergent: this test seeds the bug
        return ctx.comm.bcast("x", root=root)

    with pytest.raises(SimProcessCrashed) as ei:
        mpirun(program, 2, machine=fast_test())
    assert "root mismatch" in str(ei.value.__cause__)


def test_matching_job_passes_clean(spmd_verify):
    def program(ctx):
        total = ctx.comm.allreduce(ctx.rank)
        parts = ctx.comm.allgather(total)
        ctx.comm.barrier()
        return parts

    job = mpirun(program, 4, machine=fast_test())
    assert all(v == [6, 6, 6, 6] for v in job.values)


# ---------------------------------------------------------------------------
# Deadlock reporting (missing collective, divergent enqueue)
# ---------------------------------------------------------------------------


def test_missing_collective_deadlock_names_the_waiter(spmd_verify):
    def program(ctx):
        if ctx.rank == 0:  # spmdlint: ok(rank-branch) deliberately divergent: this test seeds the deadlock
            ctx.comm.barrier()

    with pytest.raises(SimDeadlockError) as ei:
        mpirun(program, 2, machine=fast_test())
    msg = str(ei.value)
    assert "rank0 waiting in barrier()" in msg
    assert "not in any collective: rank1" in msg
    assert "skipped a collective" in msg


def test_divergent_maintenance_enqueue_deadlocks_with_diagnostics(spmd_verify):
    """Only rank 0 enqueues a background reorganize: its worker enters
    the job's collectives alone (on the job-unique ``("maint", jobid)``
    context) and blocks; the deadlock report must name the stuck worker
    and its pending op."""
    from repro.core.maintenance import REORGANIZE

    n = 16
    maps = [np.arange(r, n, 4, dtype=np.int64) for r in range(4)]

    def program(ctx):
        sdm = SDM(ctx, "dp", organization=Organization.LEVEL_2,
                  storage_order=CHUNKED, reorganize_mode="background")
        result = sdm.make_datalist(["d"])
        sdm.associate_attributes(result, data_type=DOUBLE, global_size=n)
        handle = sdm.set_attributes(result)
        sdm.data_view(handle, "d", maps[ctx.rank])
        sdm.write(handle, "d", 0, maps[ctx.rank] * 1.0)
        # Seed the bug below the SDM API (sdm.reorganize's own metadata
        # probe is a world-context bcast the verifier would flag first):
        # a bare per-rank enqueue that rank 0 alone performs.
        if ctx.rank == 0:  # spmdlint: ok(rank-branch) deliberately divergent: this test seeds the deadlock
            sdm.maintenance.enqueue(
                ctx, REORGANIZE,
                application=sdm.application,
                organization=int(sdm.organization),
                group_id=handle.group_id,
                runid=sdm.runid,
                dataset="d",
                timestep=0,
                data_type="FLOAT64",
                global_size=n,
            )

    with pytest.raises(SimDeadlockError) as ei:
        mpirun(program, 4, machine=fast_test(), services=sdm_services())
    msg = str(ei.value)
    assert "maint-w0" in msg
    assert "waiting in" in msg
    assert "('maint'," in msg  # the pending op names the job context


# ---------------------------------------------------------------------------
# End-of-job sequence check (SPMDVerifier unit level)
# ---------------------------------------------------------------------------


def test_final_check_passes_on_matching_sequences():
    v = SPMDVerifier(2)
    v.enter(sig(rank=0), "rank0", 2, 0.0)
    v.enter(sig(rank=1), "rank1", 2, 0.0)
    v.final_check()
    assert v.checked == 2


def test_final_check_flags_unmatched_site():
    v = SPMDVerifier(2)
    v.enter(sig(rank=0), "rank0", 2, 0.0)
    with pytest.raises(SPMDVerificationError) as ei:
        v.final_check()
    msg = str(ei.value)
    assert "unmatched-collective" in msg
    assert "barrier" in msg and "rank 0" in msg


def test_final_check_flags_diverged_counts_on_nonblocking_contexts():
    # Size-1 communicators never rendezvous, so a count divergence can
    # only be seen by the end-of-job series comparison.
    v = SPMDVerifier(2)
    v.enter(sig(ctx="m", seq=1, rank=0), "rank0", 1, 0.0)
    v.enter(sig(ctx="m", seq=1, rank=1), "rank1", 1, 0.0)
    v.enter(sig(ctx="m", seq=2, rank=1), "rank1", 1, 0.0)
    with pytest.raises(SPMDVerificationError) as ei:
        v.final_check()
    msg = str(ei.value)
    assert "sequence-mismatch" in msg
    assert "rank 0: 1 collective(s)" in msg
    assert "rank 1: 2 collective(s)" in msg


def test_deadlock_report_lists_pending_and_recent():
    v = SPMDVerifier(2)
    v.enter(sig(op="allgather", seq=1, rank=0), "rank0", 2, 0.0)
    v.enter(sig(op="allgather", seq=1, rank=1), "rank1", 2, 0.0)
    v.leave("rank0")
    v.leave("rank1")
    v.enter(sig(op="barrier", seq=2, rank=0), "rank0", 2, 1.0)
    report = v.deadlock_report()
    assert "rank0 waiting in barrier()" in report
    assert "recent: allgather()" in report
    assert "not in any collective: rank1" in report


def test_mismatch_message_has_both_sites():
    a = sig(op="allreduce", dtype="list[int]", count=4, rank=0)
    b = sig(op="allreduce", dtype="list[int]", count=3, rank=1)
    msg = format_runtime_mismatch(a, b, "payload shape mismatch")
    assert "prog.py:10 in main" in msg
    assert "prog.py:11 in main" in msg
    assert "allreduce(dtype=list[int], count=4)" in msg


# ---------------------------------------------------------------------------
# Trace schema unification + pretty-printer
# ---------------------------------------------------------------------------


def test_signatures_ride_the_trace(spmd_verify):
    def program(ctx):
        ctx.comm.allreduce([1.0, 2.0])
        ctx.comm.barrier()

    job = mpirun(program, 2, machine=fast_test())
    sigs = job.sim.trace.collectives()
    assert len(sigs) == 4  # 2 ranks x 2 collectives
    assert {s.op for s in sigs} == {"allreduce", "barrier"}
    assert all(s.ctx == "0" for s in sigs)
    reduces = [s for s in sigs if s.op == "allreduce"]
    assert all(s.count == 2 and s.dtype == "list[float]" for s in reduces)
    assert all("test_verify_runtime.py" in s.site for s in sigs)
    # Per-rank sequence numbers advance in program order.
    for r in (0, 1):
        seqs = [s.seq for s in sigs if s.rank == r]
        assert seqs == sorted(seqs)


def test_trace_pretty_printer_renders_timeline(spmd_verify):
    def program(ctx):
        ctx.comm.barrier()

    job = mpirun(program, 2, machine=fast_test())
    text = format_trace_collectives(job.sim.trace)
    assert "rank0  #1 ctx=0 barrier()" in text
    assert "rank1  #1 ctx=0 barrier()" in text

    empty = format_trace_collectives(Trace(enabled=True))
    assert "no collective records" in empty


# ---------------------------------------------------------------------------
# Flag off: zero overhead, no state
# ---------------------------------------------------------------------------


def _counter_program(ctx):
    ctx.comm.allreduce(ctx.rank)
    ctx.comm.allgather([1, 2])
    ctx.comm.send(0, dest=(ctx.rank + 1) % ctx.size, tag=9)
    ctx.comm.recv(tag=9)
    ctx.comm.barrier()
    t = ctx.comm.transport
    return (
        dict(t.coll_counts), dict(t.coll_bytes),
        t.n_p2p_messages, t.p2p_bytes, t.verifier is not None,
    )


def test_flag_off_means_no_verifier_and_identical_counters(
    no_spmd_verify, monkeypatch
):
    off = mpirun(_counter_program, 4, machine=fast_test())
    assert all(v[4] is False for v in off.values)
    assert len(off.sim.trace) == 0  # nothing recorded

    monkeypatch.setenv("SPMD_VERIFY", "1")
    on = mpirun(_counter_program, 4, machine=fast_test())
    assert all(v[4] is True for v in on.values)

    # The sanitizer observes; it must not perturb the modelled run:
    # identical traffic counters and identical virtual elapsed time.
    assert [v[:4] for v in off.values] == [v[:4] for v in on.values]
    assert off.elapsed == on.elapsed
