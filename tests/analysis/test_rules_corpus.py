"""Golden corpus for the spmdlint rules.

Each rule gets at least one minimal true-positive snippet and one
false-positive-avoidance snippet drawn from this codebase's real idioms
(rank-0-computes-then-broadcasts, literal field lists, collective file
handles).  Suppression and baseline behavior are exercised on the same
snippets.
"""

import textwrap

import pytest

from repro.analysis import lint_source
from repro.analysis.findings import load_baseline, save_baseline


def findings_in(src, path="snippet.py", baseline=None):
    return lint_source(textwrap.dedent(src), path, baseline=baseline)


def rules_of(result):
    return [f.rule for f in result.findings]


# ---------------------------------------------------------------------------
# SPMD001 rank-branch
# ---------------------------------------------------------------------------


def test_rank_branch_true_positive():
    res = findings_in(
        """
        def program(ctx):
            comm = ctx.comm
            if comm.rank == 0:
                comm.barrier()
        """
    )
    assert rules_of(res) == ["rank-branch"]
    f = res.findings[0]
    assert f.code == "SPMD001"
    assert f.op == "barrier"
    assert "rank-dependent branch" in f.message


def test_rank_branch_matched_on_both_arms_is_clean():
    res = findings_in(
        """
        def program(ctx):
            comm = ctx.comm
            if comm.rank == 0:
                data = comm.bcast(build(), root=0)
            else:
                data = comm.bcast(None, root=0)
            return data
        """
    )
    assert rules_of(res) == []


def test_rank_zero_computes_then_broadcasts_is_clean():
    # THE idiom of this codebase: only rank 0 computes, everyone bcasts.
    res = findings_in(
        """
        def program(ctx):
            comm = ctx.comm
            plan = None
            if comm.rank == 0:
                plan = expensive_plan()
            plan = comm.bcast(plan, root=0)
            comm.barrier()
            return plan
        """
    )
    assert rules_of(res) == []


def test_laundered_guard_is_clean():
    # A value that went through bcast/allreduce is rank-uniform:
    # branching on it afterwards is safe.
    res = findings_in(
        """
        def program(ctx):
            comm = ctx.comm
            n = len(my_chunk(comm.rank))
            n = comm.allreduce(n)
            if n > 0:
                comm.barrier()
        """
    )
    assert rules_of(res) == []


def test_implicit_flow_through_rank_guarded_assignment():
    # ``flag`` differs across ranks even though no rank value flows
    # into it directly.
    res = findings_in(
        """
        def program(ctx):
            comm = ctx.comm
            flag = False
            if comm.rank == 0:
                flag = True
            if flag:
                comm.barrier()
        """
    )
    assert rules_of(res) == ["rank-branch"]


# ---------------------------------------------------------------------------
# SPMD002 rank-loop
# ---------------------------------------------------------------------------


def test_rank_loop_true_positive():
    res = findings_in(
        """
        def program(ctx):
            comm = ctx.comm
            for _ in range(comm.rank):
                comm.barrier()
        """
    )
    assert rules_of(res) == ["rank-loop"]
    assert res.findings[0].code == "SPMD002"


def test_uniform_trip_count_is_clean():
    res = findings_in(
        """
        def program(ctx):
            comm = ctx.comm
            steps = comm.bcast(compute_steps(), root=0)
            for _ in range(steps):
                comm.barrier()
        """
    )
    assert rules_of(res) == []


def test_literal_field_list_with_rank_data_is_clean():
    # The fun3d/rt writer idiom: the *elements* are per-rank arrays but
    # the trip count is the literal list length — identical everywhere.
    res = findings_in(
        """
        def program(ctx):
            comm = ctx.comm
            mine = my_slice(comm.rank)
            fields = [("p", mine), ("q", mine * 2.0)]
            for name, values in fields:
                write_shared(name, values)
                comm.barrier()
        """
    )
    assert rules_of(res) == []


# ---------------------------------------------------------------------------
# SPMD003 early-exit
# ---------------------------------------------------------------------------


def test_early_return_true_positive():
    res = findings_in(
        """
        def program(ctx):
            comm = ctx.comm
            if comm.rank == 0:
                return None
            comm.barrier()
        """
    )
    assert "early-exit" in rules_of(res)
    f = [f for f in res.findings if f.rule == "early-exit"][0]
    assert f.code == "SPMD003"
    assert "barrier" in f.message


def test_rank_guarded_raise_true_positive():
    res = findings_in(
        """
        def program(ctx):
            comm = ctx.comm
            if comm.rank == 0 and bad_input():
                raise ValueError("bad input")
            return comm.allgather(1)
        """
    )
    assert "early-exit" in rules_of(res)


def test_uniform_exit_is_clean():
    # Every rank raises or none does: the guard is laundered.
    res = findings_in(
        """
        def program(ctx):
            comm = ctx.comm
            errors = comm.allreduce(count_local_errors())
            if errors:
                raise ValueError(f"{errors} errors")
            comm.barrier()
        """
    )
    assert rules_of(res) == []


def test_exit_in_both_arms_is_clean():
    res = findings_in(
        """
        def program(ctx):
            comm = ctx.comm
            if comm.rank == 0:
                return "root"
            else:
                return "leaf"
        """
    )
    assert rules_of(res) == []


def test_collective_in_sibling_arm_is_not_on_continuation():
    # Regression shape from core/api.py: a guarded raise in ONE arm,
    # the collective in the OTHER arm — nothing follows the raise.
    res = findings_in(
        """
        def program(ctx, chunk):
            comm = ctx.comm
            ok = comm.allreduce(1)
            if chunk is None:
                local = comm.gather(0)
                if local is None:
                    raise RuntimeError("no history")
            else:
                local = comm.allgather(chunk)
            return local
        """
    )
    assert "early-exit" not in rules_of(res)


# ---------------------------------------------------------------------------
# SPMD004 comm-mismatch
# ---------------------------------------------------------------------------


def test_same_ops_different_communicators_true_positive():
    res = findings_in(
        """
        def program(ctx, world, row):
            if ctx.comm.rank == 0:
                world.barrier()
            else:
                row.barrier()
        """
    )
    assert rules_of(res) == ["comm-mismatch"]
    assert res.findings[0].code == "SPMD004"
    assert "different communicators" in res.findings[0].message


def test_rank_dependent_root_true_positive():
    res = findings_in(
        """
        def program(ctx):
            comm = ctx.comm
            return comm.bcast(1, root=comm.rank)
        """
    )
    assert rules_of(res) == ["comm-mismatch"]
    assert "root" in res.findings[0].message


def test_rank_indexed_communicator_true_positive():
    res = findings_in(
        """
        def program(ctx, comms):
            picked = comms[ctx.comm.rank]
            picked.barrier()
        """
    )
    assert rules_of(res) == ["comm-mismatch"]


def test_constant_root_and_shared_comm_are_clean():
    res = findings_in(
        """
        def program(ctx):
            comm = ctx.comm
            total = comm.reduce(local_sum(), root=0)
            return comm.bcast(total, root=0)
        """
    )
    assert rules_of(res) == []


def test_collective_file_handle_is_uniform():
    # Handles from a collective open name one shared context; calling
    # collective I/O through them is not a mismatch.
    res = findings_in(
        """
        def program(sdm, buf):
            f = sdm._open_cached("data.dat", 3)
            f.read_at_all(0, buf)
            sdm._close_cached("data.dat")
        """
    )
    assert rules_of(res) == []


def test_numpy_reduce_is_not_a_collective():
    res = findings_in(
        """
        def program(ctx, values):
            if ctx.comm.rank == 0:
                return np.maximum.reduce(values)
            return None
        """
    )
    assert rules_of(res) == []


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------

_GUARDED = """
def program(ctx):
    comm = ctx.comm
    if comm.rank == 0:{trailer}
        comm.barrier()
"""


def test_justified_suppression_is_honored():
    src = _GUARDED.format(
        trailer="  # spmdlint: ok(rank-branch) exercised by a matching job elsewhere"
    )
    res = findings_in(src)
    assert res.findings == []
    assert [f.rule for f in res.suppressed] == ["rank-branch"]


def test_suppression_without_reason_is_rejected():
    src = _GUARDED.format(trailer="  # spmdlint: ok(rank-branch)")
    res = findings_in(src)
    rules = rules_of(res)
    assert "rank-branch" in rules  # the finding still stands
    assert "bad-suppression" in rules  # and the empty reason is flagged


def test_suppression_for_wrong_rule_does_not_apply():
    src = _GUARDED.format(
        trailer="  # spmdlint: ok(rank-loop) wrong rule entirely"
    )
    res = findings_in(src)
    assert rules_of(res) == ["rank-branch"]
    assert res.suppressed == []


def test_suppression_on_line_above_statement():
    res = findings_in(
        """
        def program(ctx):
            comm = ctx.comm
            # spmdlint: ok(rank-branch) peer collective issued by the service tier
            if comm.rank == 0:
                comm.barrier()
        """
    )
    assert res.findings == []
    assert len(res.suppressed) == 1


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------


def test_baseline_roundtrip_masks_known_findings(tmp_path):
    src = _GUARDED.format(trailer="")
    first = findings_in(src)
    assert len(first.findings) == 1

    baseline_file = tmp_path / "spmdlint.baseline"
    save_baseline(str(baseline_file), first.findings)
    baseline = load_baseline(str(baseline_file))
    assert baseline  # one fingerprint recorded

    second = findings_in(src, baseline=baseline)
    assert second.findings == []
    assert [f.rule for f in second.baselined] == ["rank-branch"]


def test_baseline_does_not_mask_new_instances(tmp_path):
    src = _GUARDED.format(trailer="")
    first = findings_in(src)
    baseline_file = tmp_path / "spmdlint.baseline"
    save_baseline(str(baseline_file), first.findings)
    baseline = load_baseline(str(baseline_file))

    # Same fingerprint shape appearing twice: one is baselined, the
    # second is new and must fail.
    doubled = """
def program(ctx):
    comm = ctx.comm
    if comm.rank == 0:
        comm.barrier()
    if comm.rank == 1:
        comm.barrier()
"""
    res = findings_in(doubled, baseline=baseline)
    assert len(res.baselined) == 1
    assert len(res.findings) == 1


def test_missing_baseline_file_is_empty(tmp_path):
    assert load_baseline(str(tmp_path / "absent")) == {}
