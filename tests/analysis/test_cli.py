"""The ``python -m repro.analysis`` entry point: exit codes, baseline
workflow, and directory walking."""

import textwrap

from repro.analysis.__main__ import main

BAD = textwrap.dedent(
    """
    def program(ctx):
        comm = ctx.comm
        if comm.rank == 0:
            comm.barrier()
    """
)

CLEAN = textwrap.dedent(
    """
    def program(ctx):
        comm = ctx.comm
        comm.barrier()
        return comm.allreduce(1)
    """
)


def test_clean_tree_exits_zero(tmp_path, capsys):
    (tmp_path / "good.py").write_text(CLEAN)
    rc = main([str(tmp_path), "--no-baseline"])
    assert rc == 0
    assert "0 new finding(s)" in capsys.readouterr().out


def test_finding_exits_nonzero_and_prints_location(tmp_path, capsys):
    (tmp_path / "bad.py").write_text(BAD)
    rc = main([str(tmp_path), "--no-baseline"])
    assert rc == 1
    out = capsys.readouterr().out
    assert "SPMD001" in out and "bad.py:5" in out


def test_write_baseline_then_clean_run(tmp_path, capsys):
    (tmp_path / "bad.py").write_text(BAD)
    baseline = tmp_path / "spmdlint.baseline"

    rc = main([str(tmp_path), "--baseline", str(baseline), "--write-baseline"])
    assert rc == 0
    assert baseline.exists()
    capsys.readouterr()

    # Baselined findings are reported as known but do not fail.
    rc = main([str(tmp_path), "--baseline", str(baseline)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "baseline:" in out and "1 baselined" in out

    # A *new* finding alongside the baselined one still fails.
    (tmp_path / "worse.py").write_text(BAD)
    rc = main([str(tmp_path), "--baseline", str(baseline)])
    assert rc == 1


def test_subdirectories_are_walked(tmp_path):
    pkg = tmp_path / "pkg" / "sub"
    pkg.mkdir(parents=True)
    (pkg / "deep.py").write_text(BAD)
    assert main([str(tmp_path), "--no-baseline", "-q"]) == 1
